"""Table IV: user-written index arithmetic before and after LEGO."""

from repro.bench import figures


def test_table4_op_reduction(benchmark, report_rows):
    result = benchmark(figures.table4)
    report_rows["Table IV"] = result
    matmul_row = next(r for r in result.rows if r["operator"] == "Matmul")
    assert (matmul_row["original_ops"], matmul_row["optimized_ops"]) == (31, 9)
