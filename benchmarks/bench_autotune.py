"""Autotuner smoke benchmark: sweep the paper's three CUDA/MLIR winners.

Runs the layout autotuner end-to-end for the three applications whose
paper-preferred configurations the tuner must reproduce (LUD block-64
coarsening, the NW skewed shared-buffer layout, transpose staged through
shared memory) and records candidate counts, winners and wall-clock so the
performance trajectory is tracked across PRs.

Run standalone to emit the JSON artifact the CI job uploads::

    PYTHONPATH=src python benchmarks/bench_autotune.py   # writes BENCH_autotune.json

or under pytest for the assertions only.
"""

import json
import time
from pathlib import Path

APPS = ("lud", "nw", "transpose")


def run_autotune_smoke() -> dict:
    from repro.tune import ResultCache, autotune

    report: dict = {"apps": {}, "total_wall_seconds": 0.0}
    started = time.perf_counter()
    for name in APPS:
        # cold sweep populates the shared result cache, the warm sweep replays
        # it — the cache-hit path the serving layer depends on, exercised and
        # measured instead of reported as a perpetual "cache_hits: 0"
        cache = ResultCache()
        cold_started = time.perf_counter()
        result = autotune(name, cache=cache)
        cold_wall = time.perf_counter() - cold_started
        warm_started = time.perf_counter()
        warm = autotune(name, cache=cache)
        warm_wall = time.perf_counter() - warm_started
        summary = result.summary()
        lookups = warm.cache_hits + warm.cache_misses
        summary["cold_wall_seconds"] = cold_wall
        summary["warm_wall_seconds"] = warm_wall
        summary["warm_hit_rate"] = warm.cache_hits / lookups if lookups else 0.0
        summary["warm_speedup"] = cold_wall / warm_wall if warm_wall > 0 else float("inf")
        summary["warm_best_config"] = dict(warm.best.config)
        report["apps"][name] = summary
    report["total_wall_seconds"] = time.perf_counter() - started
    return report


def check_report(report: dict) -> None:
    for name in APPS:
        summary = report["apps"][name]
        assert summary["candidates"] >= 20, f"{name}: space shrank below 20 candidates"
        assert summary["best_time_ms"] > 0
    # the acceptance bar: >= 20 candidates per app, all three sweeps in
    # interactive time (the budget is 5 s; allow slack for loaded CI workers)
    assert report["total_wall_seconds"] < 20.0
    # the winners the paper reports
    assert report["apps"]["lud"]["best_config"]["block"] == 64
    assert report["apps"]["nw"]["best_config"]["layout"] not in ("row", "col")
    assert report["apps"]["transpose"]["best_config"]["variant"] == "smem"
    # the warm path: every evaluation replays from the shared result cache
    # and agrees with the cold sweep's winner
    for name in APPS:
        summary = report["apps"][name]
        assert summary["warm_hit_rate"] == 1.0, (
            f"{name}: warm sweep hit rate {summary['warm_hit_rate']:.2f}, expected 1.0"
        )
        assert summary["warm_best_config"] == summary["best_config"]
        assert summary["warm_speedup"] > 1.0, (
            f"{name}: warm sweep no faster than cold ({summary['warm_speedup']:.2f}x)"
        )


def test_autotune_smoke():
    check_report(run_autotune_smoke())


if __name__ == "__main__":
    # one sweep serves both purposes in CI: the assertions run on the same
    # report that becomes the uploaded artifact
    artifact = Path(__file__).resolve().parent.parent / "BENCH_autotune.json"
    report = run_autotune_smoke()
    check_report(report)
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
