"""Scalable-search benchmark: 10^4+-point spaces, a device zoo, bounded time.

The tentpole acceptance run for the search engine (:mod:`repro.tune.search`):

* **scale** — the matmul and LUD spaces (each >= 10^4 valid configurations)
  are searched end to end — seeded pre-filter, analytic ranking, measured
  re-rank — on every device in a three-member zoo slice (A100, H100,
  RTX 4090), each search finishing in interactive time;
* **fidelity** — on the small spaces (NW, transpose) where exhaustive
  *measured* tuning is feasible, the search winner must equal the
  exhaustive-measured ground-truth winner;
* **learning** — a repeated LUD search on the shared store must pick up the
  cost model trained from the first run's profiles;
* **persistence** — per-device winners land in a tuning table, and
  :func:`repro.serve.warm_from_table` pre-compiles them so a fresh service
  answers the first tuned-kernel request without compiling.

Run standalone to emit the JSON artifact the CI job uploads::

    PYTHONPATH=src python benchmarks/bench_search.py   # writes BENCH_search.json

or under pytest for the assertions only.
"""

import json
import time
from pathlib import Path

DEVICES = ("a100", "h100", "rtx4090")
BIG_APPS = ("matmul", "lud")
GROUND_TRUTH_APPS = ("nw", "transpose")
BUDGET = 512
#: >= repro.tune.model.MIN_SAMPLES, so one measured sweep is enough to train
#: the cost model the repeat search picks up
MEASURE_TOP_K = 8
#: per-search wall budget (seconds) — generous for loaded CI workers; the
#: searches run in ~1-3 s locally
WALL_BUDGET_SECONDS = 60.0


def run_search_bench() -> dict:
    from repro.tune import ProfileStore, ResultCache, TuningTable, search

    cache = ResultCache()
    store = ProfileStore(cache)
    table = TuningTable(cache)
    report: dict = {"devices": {}, "ground_truth": {}, "total_wall_seconds": 0.0}
    started = time.perf_counter()

    # -- scale: >= 10^4-point spaces on every zoo device -----------------------
    for device in DEVICES:
        rows = {}
        for app in BIG_APPS:
            result = search(app, device=device, budget=BUDGET,
                            measure_top_k=MEASURE_TOP_K, cache=cache,
                            profile_store=store, table=table)
            rows[app] = result.summary()
        report["devices"][device] = rows

    # -- learning: the second search on a device picks up the trained model ---
    relearn = search("lud", device="a100", budget=BUDGET, seed=1,
                     measure_top_k=MEASURE_TOP_K, cache=cache,
                     profile_store=store, table=table)
    report["relearn"] = relearn.summary()

    # -- fidelity: small spaces vs exhaustive-measured ground truth -----------
    for app in GROUND_TRUTH_APPS:
        result = search(app, device="a100", budget=BUDGET,
                        measure_top_k=MEASURE_TOP_K, cache=cache,
                        profile_store=store, table=table)
        truth = search(app, device="a100", strategy="exhaustive",
                       measure_top_k=result.space_size, cache=ResultCache(),
                       train=False)
        report["ground_truth"][app] = {
            "search": result.summary(),
            "exhaustive_measured": truth.summary(),
            "winner_matches": result.best.config == truth.best.config,
        }

    # -- persistence: tuning table warms a fresh service ----------------------
    from repro.serve import CompileService, warm_from_table

    with CompileService(workers=2) as service:
        warmed = warm_from_table(service, table)
        stats = service.stats()
    report["warm_from_table"] = {
        "table_rows": len(table),
        "requests": warmed,
        "compiled": stats.compiled,
    }

    report["total_wall_seconds"] = time.perf_counter() - started
    return report


def check_report(report: dict) -> None:
    assert set(report["devices"]) == set(DEVICES)
    for device, rows in report["devices"].items():
        for app in BIG_APPS:
            summary = rows[app]
            # the tentpole scale bar: a >= 10^4-candidate space searched end
            # to end (analytic pre-filter + measured re-rank) in bounded time
            assert summary["candidates_considered"] >= 10_000, (
                f"{app}: space shrank to {summary['candidates_considered']}"
            )
            assert summary["candidates_measured"] >= 1
            assert summary["profiles_failed"] == 0
            assert summary["wall_seconds"] < WALL_BUDGET_SECONDS, (
                f"{app} on {device}: {summary['wall_seconds']:.1f}s "
                f"over the {WALL_BUDGET_SECONDS:.0f}s budget"
            )
            assert summary["best_measured_time_ms"], f"{app}: winner was not measured"
        # the paper's LUD winner survives the grown space on every device
        lud_best = rows["lud"]["best_config"]
        assert lud_best["block"] == 64 and lud_best["cuda_block"] == 16, (
            f"lud winner drifted on {device}: {lud_best}"
        )

    # repeated search on a shared store uses the learned cost model
    assert report["relearn"]["model_used"], "second lud search ignored the trained model"
    assert report["relearn"]["model_samples"] >= 6

    # where exhaustive measurement is feasible the search must agree with it
    for app, row in report["ground_truth"].items():
        assert row["winner_matches"], (
            f"{app}: search winner {row['search']['best_config']} != exhaustive "
            f"ground truth {row['exhaustive_measured']['best_config']}"
        )
    nw_best = report["ground_truth"]["nw"]["search"]["best_config"]
    assert nw_best["layout"] not in ("row", "col")
    assert report["ground_truth"]["transpose"]["search"]["best_config"]["variant"] == "smem"

    # the tuning table holds per-device winners and warms a fresh service
    warm = report["warm_from_table"]
    assert warm["table_rows"] >= len(DEVICES) * len(BIG_APPS)
    assert warm["requests"] >= 1
    assert report["total_wall_seconds"] < 10 * WALL_BUDGET_SECONDS


def test_search_smoke():
    check_report(run_search_bench())


if __name__ == "__main__":
    # one run serves both purposes in CI: the assertions run on the same
    # report that becomes the uploaded artifact
    artifact = Path(__file__).resolve().parent.parent / "BENCH_search.json"
    report = run_search_bench()
    check_report(report)
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
