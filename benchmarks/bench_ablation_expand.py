"""Ablation (Section IV-A): pre-expansion vs. unexpanded simplification.

The paper's cost-model motivation: pre-expanding index expressions before
simplification helps LUD-style expressions (divisibility folds become
visible) and hurts NW-style expressions (expansion only adds terms).  The
benchmark measures both pipelines on representative expressions and checks
the auto mode always matches the better hand-picked variant.
"""

from repro.codegen import CodegenContext, compare_expansion_strategies
from repro.core import GroupBy, Row, TileBy
from repro.symbolic import SymbolicEnv, Var, symbols


def _matmul_pointer_case():
    M, K, BM, BK = symbols("M K BM BK")
    pid_m, k = Var("pid_m"), Var("k")
    env = SymbolicEnv()
    env.declare_size(M, K, BM, BK)
    env.declare_index(pid_m, M // BM)
    env.declare_index(k, K // BK)
    env.declare_divisible(M, BM)
    env.declare_divisible(K, BK)
    layout = TileBy([M // BM, K // BK], [BM, BK]).OrderBy(Row(M, K))
    sl = layout[pid_m, k, :, :]
    sl.contribute_env(env)
    return sl.offset, env


def _rowwise_case():
    M, N = symbols("M N")
    row = Var("row")
    env = SymbolicEnv()
    env.declare_size(M, N)
    env.declare_index(row, M)
    layout = GroupBy([M, N]).OrderBy(Row(M, N))
    sl = layout[row, :]
    sl.contribute_env(env)
    return sl.offset, env


def test_ablation_expansion_choice(benchmark, report_rows):
    def run():
        tiled_expr, tiled_env = _matmul_pointer_case()
        row_expr, row_env = _rowwise_case()
        return {
            "tiled": compare_expansion_strategies(tiled_expr, tiled_env),
            "rowwise": compare_expansion_strategies(row_expr, row_env),
        }

    comparison = benchmark(run)
    # expansion helps (or at worst ties) the tiled pointer expression ...
    assert comparison["tiled"]["expanded"] <= comparison["tiled"]["unexpanded"]
    # ... and never helps the already-simple row-wise expression
    assert comparison["rowwise"]["unexpanded"] <= comparison["rowwise"]["expanded"]
