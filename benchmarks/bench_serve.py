"""Compilation-service benchmark: replay synthetic traffic cold and warm.

Replays >= 1000 synthetic compile requests drawn from the application
registry's search spaces through :class:`repro.serve.CompileService` and
measures the three regimes the service exists for:

* **cold / 1 worker** — every request submitted one at a time against empty
  caches: the pre-service baseline (each distinct kernel pays full
  generation);
* **cold / N workers** — the same trace batch-submitted to a fresh
  multi-worker service: batching + in-flight dedup;
* **warm batch** — the trace replayed against the warm cache: the steady
  state of a long-running service.

The acceptance bar asserted here (and in CI): warm-cache batch throughput
at least 10x the cold single-request throughput, and every distinct kernel
compiled exactly once per service.

Run standalone to emit the JSON artifact the CI job uploads::

    PYTHONPATH=src python benchmarks/bench_serve.py   # writes BENCH_serve.json

or under pytest for the assertions only.
"""

import json
import time
from pathlib import Path

TOTAL_REQUESTS = 1000
DUPLICATE_FRACTION = 0.4
WORKERS = 4


def run_serve_bench() -> dict:
    from repro.serve import CompileService, synthetic_requests

    requests = synthetic_requests(
        total=TOTAL_REQUESTS, duplicate_fraction=DUPLICATE_FRACTION, seed=7
    )
    distinct = len({r.local_key() for r in requests})

    # Regime 1: cold, single worker, one request at a time (the baseline an
    # inline caller experiences, minus any caching at all on first sight).
    with CompileService(workers=1) as cold_service:
        started = time.perf_counter()
        for request in requests:
            cold_service.compile(request)
        cold_seconds = time.perf_counter() - started

        # Regime 3 measured on the same service: the identical trace against
        # the fully warm cache (batch submission, steady-state serving).
        started = time.perf_counter()
        cold_service.submit_batch(requests)
        warm_seconds = time.perf_counter() - started
        # Warm p99 timed over its own samples: the service's reservoir now
        # holds cold and warm passes mixed, whose p99 is a cold compile.
        from repro.obs import percentile

        warm_samples = []
        for request in requests[:200]:
            t0 = time.perf_counter()
            cold_service.compile(request)
            warm_samples.append(time.perf_counter() - t0)
        warm_p99_ms = percentile(sorted(warm_samples), 0.99) * 1e3
        warm_stats = cold_service.stats()

    # Regime 2: cold again, but batch-submitted over N workers.
    with CompileService(workers=WORKERS) as multi_service:
        started = time.perf_counter()
        multi_service.submit_batch(requests)
        multi_seconds = time.perf_counter() - started
        multi_stats = multi_service.stats()

    cold_rps = len(requests) / cold_seconds
    warm_rps = len(requests) / warm_seconds
    return {
        "requests": len(requests),
        "distinct": distinct,
        "duplicate_fraction": DUPLICATE_FRACTION,
        "cold_single_worker": {
            "wall_seconds": cold_seconds,
            "requests_per_second": cold_rps,
        },
        "cold_multi_worker": {
            "workers": WORKERS,
            "wall_seconds": multi_seconds,
            "requests_per_second": len(requests) / multi_seconds,
            "compiled": multi_stats.compiled,
            "deduped": multi_stats.deduped,
        },
        "warm_batch": {
            "wall_seconds": warm_seconds,
            "requests_per_second": warm_rps,
            "p99_ms": warm_p99_ms,
        },
        "warm_over_cold_speedup": warm_rps / cold_rps,
        "stats": warm_stats.as_dict(),
    }


def check_report(report: dict) -> None:
    assert report["requests"] >= 1000
    assert report["distinct"] < report["requests"], "traffic must contain duplicates"
    # the tentpole acceptance bar: warm batch serving is at least an order of
    # magnitude faster than cold one-at-a-time compilation
    assert report["warm_over_cold_speedup"] >= 10.0, (
        f"warm/cold speedup {report['warm_over_cold_speedup']:.1f}x below the 10x bar"
    )
    # each distinct kernel compiled exactly once per service, in both regimes
    assert report["stats"]["compiled"] == report["distinct"]
    assert report["cold_multi_worker"]["compiled"] == report["distinct"]
    assert report["stats"]["errors"] == 0


def test_serve_bench():
    check_report(run_serve_bench())


if __name__ == "__main__":
    # one replay serves both purposes in CI: the assertions run on the same
    # report that becomes the uploaded artifact
    artifact = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    report = run_serve_bench()
    check_report(report)
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
