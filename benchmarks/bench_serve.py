"""Compilation-service benchmark: thread-service regimes plus the farm SLO gate.

Replays >= 1000 synthetic compile requests drawn from the application
registry's search spaces through :class:`repro.serve.CompileService` and
measures the three regimes the service exists for:

* **cold / 1 worker** — every request submitted one at a time against empty
  caches: the pre-service baseline (each distinct kernel pays full
  generation);
* **cold / N workers** — the same trace batch-submitted to a fresh
  multi-worker service: batching + in-flight dedup;
* **warm batch** — the trace replayed against the warm cache: the steady
  state of a long-running service.

Then the **farm burst replay** (:func:`run_farm_bench`): a real-time
Zipf/Poisson burst trace served by a 4-process :class:`CompileFarm`, warmed
from a tuning table, with one worker SIGKILLed mid-burst.  The SLOs gated
here (and by the ``farm-smoke`` CI job):

* interactive p99.9 latency under :data:`FARM_P999_BOUND_MS`,
* the replay keeps up with the burst (wall time bounded by the trace
  duration plus :data:`FARM_DRAIN_SLACK_S` of drain),
* zero lost requests, zero double compiles, zero errors, zero interactive
  sheds — and the mid-burst kill was absorbed (``restarts >= 1``).

The thread-service acceptance bar is unchanged: warm-cache batch throughput
at least 10x the cold single-request throughput, and every distinct kernel
compiled exactly once per service.

Run standalone to emit the JSON artifact the CI job uploads::

    PYTHONPATH=src python benchmarks/bench_serve.py   # writes BENCH_serve.json

or under pytest for the assertions only.
"""

import json
import time
from pathlib import Path

TOTAL_REQUESTS = 1000
DUPLICATE_FRACTION = 0.4
WORKERS = 4

#: the farm burst-replay shape: steady serving, a 4x burst, a cool-down
FARM_PHASES = (
    ("steady", 1.2, 100.0, 0.9),
    ("burst", 1.2, 400.0, 0.7),
    ("cooldown", 0.8, 80.0, 0.9),
)
FARM_WORKERS = 4
FARM_UNIQUE = 48
FARM_SEED = 7
#: SIGKILL one worker this many trace-seconds in (mid-burst)
FARM_KILL_AT = 1.6
#: interactive tail-latency SLO for the burst replay
FARM_P999_BOUND_MS = 2000.0
#: the farm must drain within this long after the last arrival
FARM_DRAIN_SLACK_S = 2.0


def run_serve_bench() -> dict:
    from repro.serve import CompileService, synthetic_requests

    requests = synthetic_requests(
        total=TOTAL_REQUESTS, duplicate_fraction=DUPLICATE_FRACTION, seed=7
    )
    distinct = len({r.local_key() for r in requests})

    # Regime 1: cold, single worker, one request at a time (the baseline an
    # inline caller experiences, minus any caching at all on first sight).
    with CompileService(workers=1) as cold_service:
        started = time.perf_counter()
        for request in requests:
            cold_service.compile(request)
        cold_seconds = time.perf_counter() - started

        # Regime 3 measured on the same service: the identical trace against
        # the fully warm cache (batch submission, steady-state serving).
        started = time.perf_counter()
        cold_service.submit_batch(requests)
        warm_seconds = time.perf_counter() - started
        # Warm p99 timed over its own samples: the service's reservoir now
        # holds cold and warm passes mixed, whose p99 is a cold compile.
        from repro.obs import percentile

        warm_samples = []
        for request in requests[:200]:
            t0 = time.perf_counter()
            cold_service.compile(request)
            warm_samples.append(time.perf_counter() - t0)
        warm_p99_ms = percentile(sorted(warm_samples), 0.99) * 1e3
        warm_stats = cold_service.stats()

    # Regime 2: cold again, but batch-submitted over N workers.
    with CompileService(workers=WORKERS) as multi_service:
        started = time.perf_counter()
        multi_service.submit_batch(requests)
        multi_seconds = time.perf_counter() - started
        multi_stats = multi_service.stats()

    cold_rps = len(requests) / cold_seconds
    warm_rps = len(requests) / warm_seconds
    return {
        "requests": len(requests),
        "distinct": distinct,
        "duplicate_fraction": DUPLICATE_FRACTION,
        "cold_single_worker": {
            "wall_seconds": cold_seconds,
            "requests_per_second": cold_rps,
        },
        "cold_multi_worker": {
            "workers": WORKERS,
            "wall_seconds": multi_seconds,
            "requests_per_second": len(requests) / multi_seconds,
            "compiled": multi_stats.compiled,
            "deduped": multi_stats.deduped,
        },
        "warm_batch": {
            "wall_seconds": warm_seconds,
            "requests_per_second": warm_rps,
            "p99_ms": warm_p99_ms,
        },
        "warm_over_cold_speedup": warm_rps / cold_rps,
        "stats": warm_stats.as_dict(),
    }


def run_farm_bench() -> dict:
    """The farm burst replay: warm start, real-time arrivals, mid-burst kill."""
    import collections

    from repro.cache import ResultCache
    from repro.serve import BurstPhase, CompileFarm, Rejected, trace_summary, traffic_trace
    from repro.tune.tables import TuningTable

    phases = tuple(
        BurstPhase(name, duration=duration, rate=rate, interactive_fraction=fraction)
        for name, duration, rate, fraction in FARM_PHASES
    )
    duration = sum(p.duration for p in phases)
    trace = traffic_trace(phases=phases, unique=FARM_UNIQUE, seed=FARM_SEED)

    # warm the farm from a tuning table holding the trace's hottest winners —
    # the popular head is exactly what a prior search would have tuned
    popularity = collections.Counter(t.request.local_key() for t in trace)
    hottest = set(key for key, _ in popularity.most_common(8))
    table = TuningTable(ResultCache(None))
    seen = set()
    for timed in trace:
        key = timed.request.local_key()
        if key in hottest and key not in seen:
            seen.add(key)
            table.put(timed.request.app, "bench-device", timed.request.config)

    with CompileFarm(workers=FARM_WORKERS, warm_table=table) as farm:
        warmed = farm.stats().warmed
        started = time.perf_counter()
        futures = []
        killed_pid = None
        for timed in trace:
            lag = timed.at - (time.perf_counter() - started)
            if lag > 0:
                time.sleep(lag)
            if killed_pid is None and timed.at >= FARM_KILL_AT:
                killed_pid = farm.kill_worker(0)
            futures.append(farm.submit(timed.request, lane=timed.lane))
        outcomes = [f.result(timeout=120.0) for f in futures]
        wall_seconds = time.perf_counter() - started
        stats = farm.stats()
        integrity = farm._store.verify_integrity()

    shed = sum(1 for o in outcomes if isinstance(o, Rejected))
    interactive = stats.lane("interactive").as_dict()
    sweep = stats.lane("sweep").as_dict()
    return {
        "phases": [
            {"name": n, "duration": d, "rate": r, "interactive_fraction": f}
            for n, d, r, f in FARM_PHASES
        ],
        "trace": trace_summary(trace),
        "trace_duration_seconds": duration,
        "workers": FARM_WORKERS,
        "warmed": warmed,
        "killed_pid": killed_pid,
        "wall_seconds": wall_seconds,
        "requests_per_second": len(trace) / wall_seconds,
        "served": len(outcomes) - shed,
        "shed": shed,
        "interactive_p999_ms": interactive["latency"]["p999_ms"],
        "interactive": interactive,
        "sweep": sweep,
        "stats": stats.as_dict(),
        "store_integrity": integrity,
        "slo": {
            "p999_bound_ms": FARM_P999_BOUND_MS,
            "drain_bound_seconds": duration + FARM_DRAIN_SLACK_S,
        },
    }


def check_farm_report(report: dict) -> None:
    stats = report["stats"]
    # correctness SLOs: nothing lost, nothing compiled twice, kill absorbed
    assert stats["lost"] == 0, f"{stats['lost']} requests were lost"
    assert stats["double_compiled"] == 0, "a kernel compiled twice farm-wide"
    assert stats["errors"] == 0
    assert stats["restarts"] >= 1, "the mid-burst kill was never absorbed"
    assert report["store_integrity"]["corrupt"] == 0
    assert report["warmed"] > 0, "the tuning table warmed nothing"
    # latency SLO: interactive tail under the burst (kill included)
    assert report["interactive_p999_ms"] <= FARM_P999_BOUND_MS, (
        f"interactive p99.9 {report['interactive_p999_ms']:.0f}ms breaches the "
        f"{FARM_P999_BOUND_MS:.0f}ms SLO"
    )
    # throughput-under-burst SLO: the farm keeps up with arrivals and drains
    assert report["wall_seconds"] <= report["slo"]["drain_bound_seconds"], (
        f"replay took {report['wall_seconds']:.1f}s for a "
        f"{report['trace_duration_seconds']:.1f}s trace: the farm fell behind"
    )
    # the interactive lane never sheds at the default caps
    assert report["interactive"]["shed"] == 0, "interactive traffic was shed"
    assert report["served"] + report["shed"] == report["trace"]["requests"]


def check_report(report: dict) -> None:
    assert report["requests"] >= 1000
    assert report["distinct"] < report["requests"], "traffic must contain duplicates"
    # the tentpole acceptance bar: warm batch serving is at least an order of
    # magnitude faster than cold one-at-a-time compilation
    assert report["warm_over_cold_speedup"] >= 10.0, (
        f"warm/cold speedup {report['warm_over_cold_speedup']:.1f}x below the 10x bar"
    )
    # each distinct kernel compiled exactly once per service, in both regimes
    assert report["stats"]["compiled"] == report["distinct"]
    assert report["cold_multi_worker"]["compiled"] == report["distinct"]
    assert report["stats"]["errors"] == 0


def test_serve_bench():
    check_report(run_serve_bench())


def test_farm_bench():
    check_farm_report(run_farm_bench())


if __name__ == "__main__":
    # one replay serves both purposes in CI: the assertions run on the same
    # report that becomes the uploaded artifact
    artifact = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    report = run_serve_bench()
    check_report(report)
    report["farm"] = run_farm_bench()
    check_farm_report(report["farm"])
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
