"""Vectorized-engine speedup benchmark: tree-walk vs batched execution.

Times every registered application's kernel on its substrate twice — once
under the per-program/per-block tree-walk interpreters, once under the
vectorized engine (``repro.vm``) in strict mode, so a silent fallback to
the tree walk cannot masquerade as a speedup — and asserts that the two
engines agree bit-for-bit on the outputs *and* on every trace counter
(DRAM elements/bytes/transactions, shared-memory traffic, the full
bank-conflict profile, flops).  The problem sizes are chosen large enough
that interpreter overhead, not NumPy kernel time, dominates the tree walk:
that is the regime the engine was built for, and where the paper-scale
sweeps previously had to sample.

Run standalone to write the artifact the ``vm-smoke`` CI job uploads::

    PYTHONPATH=src python benchmarks/bench_vm.py   # writes BENCH_vm.json

or under pytest for the assertions only.  The gate is a >= 10x geometric
-mean speedup across the eight apps and >= 10x on matmul specifically.
"""

import json
import math
import time
from pathlib import Path

import numpy as np

MIN_GEOMEAN_SPEEDUP = 10.0
MIN_MATMUL_SPEEDUP = 10.0


def trace_counters(trace) -> dict:
    """Every comparable counter of a substrate trace, as plain floats."""
    out = {}
    for key in ("load_elements", "store_elements", "load_bytes", "store_bytes",
                "load_transactions", "store_transactions", "flops",
                "tensor_core_flops", "smem_load_bytes", "smem_store_bytes",
                "smem_bytes", "smem_per_block", "blocks", "threads_per_block",
                "programs"):
        if hasattr(trace, key):
            out[key] = float(getattr(trace, key))
    profile = getattr(trace, "smem_profile", None)
    if profile is not None:
        out["smem_accesses"] = float(profile.accesses)
        out["smem_total_passes"] = float(profile.total_passes)
        out["smem_worst_degree"] = float(profile.worst_degree)
        out["smem_histogram"] = {int(k): int(v) for k, v in profile.histogram.items()}
    return out


def _case_matmul():
    from repro.apps.matmul import MatmulConfig, generate_matmul_kernel, run_matmul

    config = MatmulConfig(256, 256, 256, BM=8, BN=8, BK=8, GM=4)
    kernel = generate_matmul_kernel("nn")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((config.M, config.K)).astype(np.float16)
    b = rng.standard_normal((config.K, config.N)).astype(np.float16)
    return lambda: run_matmul(kernel, a, b, config, "nn")


def _case_grouped_gemm():
    from repro.apps.grouped_gemm import (GroupedGemmConfig,
                                         generate_grouped_gemm_kernel,
                                         run_grouped_gemm)

    config = GroupedGemmConfig(groups=4, M=128, N=128, K=128, BM=8, BN=8, BK=8)
    kernel = generate_grouped_gemm_kernel()
    rng = np.random.default_rng(1)
    a = rng.standard_normal((4, 128, 128)).astype(np.float16)
    b = rng.standard_normal((4, 128, 128)).astype(np.float16)
    return lambda: run_grouped_gemm(kernel, a, b, config)


def _case_softmax():
    from repro.apps.softmax import generate_softmax_kernel, run_softmax

    kernel = generate_softmax_kernel()
    rng = np.random.default_rng(2)
    x = rng.standard_normal((4096, 64)).astype(np.float32)
    return lambda: run_softmax(kernel, x)


def _case_layernorm():
    from repro.apps.layernorm import generate_layernorm_forward, run_layernorm_forward

    kernel = generate_layernorm_forward()
    rng = np.random.default_rng(3)
    x = rng.standard_normal((4096, 64)).astype(np.float32)
    w = rng.standard_normal(64).astype(np.float32)
    b = rng.standard_normal(64).astype(np.float32)
    return lambda: run_layernorm_forward(kernel, x, w, b)


def _case_nw():
    from repro.apps.nw import NwConfig, nw_buffer_layout, run_nw_blocked

    config = NwConfig(n=512, block=16)
    rng = np.random.default_rng(4)
    reference = rng.integers(-4, 5, size=(config.n, config.n)).astype(np.int32)
    layout = nw_buffer_layout(config.block, "antidiagonal")
    return lambda: run_nw_blocked(reference, config, layout=layout)


def _case_lud():
    from repro.apps.lud import LudConfig, run_lud_internal

    config = LudConfig(n=640, block=64, cuda_block=16)
    rng = np.random.default_rng(5)
    matrix = rng.standard_normal((config.n, config.n)).astype(np.float32)
    return lambda: run_lud_internal(matrix.copy(), config, step=0)


def _case_stencil():
    from repro.apps.stencil import STENCILS, run_stencil

    spec = {s.name: s for s in STENCILS}["star-7pt"]
    rng = np.random.default_rng(6)
    grid = rng.standard_normal((64, 64, 64)).astype(np.float32)
    return lambda: run_stencil(grid, spec, brick=4)


def _case_transpose():
    from repro.apps.transpose import (TransposeConfig, generate_transpose_module,
                                      run_transpose)

    config = TransposeConfig(n=512, tile=16)
    kernel = generate_transpose_module(config.n, config.tile, "smem", skew=True)
    rng = np.random.default_rng(7)
    matrix = rng.standard_normal((config.n, config.n)).astype(np.float32)
    return lambda: run_transpose(kernel, matrix, config)


CASES = [
    ("matmul", _case_matmul),
    ("grouped_gemm", _case_grouped_gemm),
    ("softmax", _case_softmax),
    ("layernorm", _case_layernorm),
    ("nw", _case_nw),
    ("lud", _case_lud),
    ("stencil", _case_stencil),
    ("transpose", _case_transpose),
]


def _timed(run, engine: str):
    from repro.vm import use_engine

    with use_engine(engine):
        start = time.perf_counter()
        output, trace = run()
        elapsed = time.perf_counter() - start
    return np.asarray(output), trace_counters(trace), elapsed


def run_vm_bench() -> dict:
    report = {"apps": {}, "engines": ["treewalk", "vectorized-strict"]}
    speedups = []
    for name, build in CASES:
        run = build()
        tree_out, tree_trace, tree_s = _timed(run, "treewalk")
        vec_out, vec_trace, vec_s = _timed(run, "vectorized-strict")
        assert tree_out.shape == vec_out.shape and np.array_equal(tree_out, vec_out), (
            f"{name}: vectorized output differs from tree walk"
        )
        assert tree_trace == vec_trace, (
            f"{name}: vectorized trace counters differ from tree walk:\n"
            f"  treewalk:   {tree_trace}\n  vectorized: {vec_trace}"
        )
        speedup = tree_s / vec_s
        speedups.append(speedup)
        report["apps"][name] = {
            "treewalk_s": tree_s,
            "vectorized_s": vec_s,
            "speedup": speedup,
            "trace": tree_trace,
        }
    report["geomean_speedup"] = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    report["min_geomean_speedup"] = MIN_GEOMEAN_SPEEDUP
    report["min_matmul_speedup"] = MIN_MATMUL_SPEEDUP
    report["ok"] = (
        report["geomean_speedup"] >= MIN_GEOMEAN_SPEEDUP
        and report["apps"]["matmul"]["speedup"] >= MIN_MATMUL_SPEEDUP
    )
    return report


def check_report(report: dict) -> None:
    assert set(report["apps"]) == {name for name, _ in CASES}
    matmul = report["apps"]["matmul"]["speedup"]
    assert matmul >= MIN_MATMUL_SPEEDUP, (
        f"matmul vectorized speedup {matmul:.1f}x below the {MIN_MATMUL_SPEEDUP:.0f}x gate"
    )
    geomean = report["geomean_speedup"]
    assert geomean >= MIN_GEOMEAN_SPEEDUP, (
        f"geomean vectorized speedup {geomean:.1f}x below the {MIN_GEOMEAN_SPEEDUP:.0f}x gate"
    )
    assert report["ok"]


def test_vm_speedup():
    check_report(run_vm_bench())


if __name__ == "__main__":
    artifact = Path(__file__).resolve().parent.parent / "BENCH_vm.json"
    report = run_vm_bench()
    for name, row in report["apps"].items():
        print(f"{name:>14}: treewalk {row['treewalk_s']*1e3:8.1f}ms  "
              f"vectorized {row['vectorized_s']*1e3:7.1f}ms  "
              f"speedup {row['speedup']:7.1f}x")
    print(f"{'geomean':>14}: {report['geomean_speedup']:.1f}x "
          f"(gate {MIN_GEOMEAN_SPEEDUP:.0f}x, matmul gate {MIN_MATMUL_SPEEDUP:.0f}x)")
    check_report(report)
    slim = {k: v for k, v in report.items() if k != "apps"}
    slim["apps"] = {
        name: {k: v for k, v in row.items() if k != "trace"}
        for name, row in report["apps"].items()
    }
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(slim, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
