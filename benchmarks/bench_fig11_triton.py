"""Figure 11: the Triton benchmark suite (LEGO vs Triton vs PyTorch/cuBLAS)."""

from repro.bench import figures


def test_fig11_triton_suite(benchmark, report_rows):
    result = benchmark.pedantic(lambda: figures.fig11(sizes=(2048, 4096, 8192)), rounds=1, iterations=1)
    report_rows["Figure 11"] = result
    matmul_rows = [r for r in result.rows if r["benchmark"] == "matmul_fp16"]
    assert all(abs(r["lego_tflops"] - r["triton_tflops"]) / r["triton_tflops"] < 0.05 for r in matmul_rows)
