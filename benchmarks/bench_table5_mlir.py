"""Table V: MLIR 2-D transpose throughput, naive vs shared-memory staged."""

from repro.bench import figures


def test_table5_transpose(benchmark, report_rows):
    result = benchmark(lambda: figures.table5(sizes=(2048, 4096, 8192)))
    report_rows["Table V"] = result
    smem = [r for r in result.rows if r["variant"] == "smem"]
    naive = [r for r in result.rows if r["variant"] == "naive"]
    assert min(s["lego_mlir_gbs"] for s in smem) > 3 * max(n["lego_mlir_gbs"] for n in naive)
