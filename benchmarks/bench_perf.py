"""Measured-profiling smoke benchmark: the eight-app perf sweep.

Runs ``repro.perf``'s sweep over every registered application (measured vs
analytic time, bound resource, coalescing efficiency, bank-conflict factor
per sampled configuration) plus the two-stage tuner on the three apps whose
paper-preferred winners must survive *measured* ranking, and emits the JSON
artifact that seeds the performance trajectory.

Run standalone to write the artifact the CI job uploads::

    PYTHONPATH=src python benchmarks/bench_perf.py   # writes BENCH_perf.json

or under pytest for the assertions only.
"""

import argparse
import json
from pathlib import Path

#: default disagreement bound, with per-app overrides.  matmul/transpose/nw
#: hold a tight 10x; the stencil gets its own wide bound because the
#: cache-less substrates honestly over-charge the cube stencils' neighbour
#: reuse (every one of the 125-point stencil's passes bills as DRAM where
#: real hardware's L2 absorbs them) — to be narrowed when reuse-aware
#: costing lands.
MAX_ANALYTIC_ERROR = 20.0
MAX_ANALYTIC_ERROR_FOR = {"matmul": 10.0, "transpose": 10.0, "nw": 10.0, "stencil": 130.0}


def run_perf_smoke() -> dict:
    from repro.perf.__main__ import run_sweep
    from repro.tune import autotune

    args = argparse.Namespace(
        apps="all", samples=3, seed=0, max_error=MAX_ANALYTIC_ERROR,
        max_error_for=[f"{app}={bound}" for app, bound in MAX_ANALYTIC_ERROR_FOR.items()],
        json_path=None,
    )
    report = run_sweep(args)
    report["measured_tuning"] = {}
    for app, top_k in (("lud", 5), ("nw", 4), ("transpose", 5)):
        result = autotune(app, measure_top_k=top_k)
        report["measured_tuning"][app] = result.summary()
    return report


def check_report(report: dict) -> None:
    assert report["ok"], f"perf sweep unhealthy: max error {report['max_analytic_error']:.2f}x"
    # every app must measure at least one kernel — all eight substrate paths
    assert set(report["apps"]) == {
        "grouped_gemm", "layernorm", "lud", "matmul", "nw", "softmax", "stencil", "transpose",
    }
    for name, row in report["apps"].items():
        assert row["measured"] >= 1, f"{name}: no configuration was measured"
        assert row["failed"] == 0, f"{name}: {row['failed']} profiles failed"
        assert row["errors_ok"], (
            f"{name}: worst analytic error {row['max_analytic_error']:.2f}x "
            f"exceeds its {row['max_error']:.0f}x bound"
        )
    # the winners the paper reports, under measured ranking
    tuning = report["measured_tuning"]
    assert tuning["lud"]["best_config"]["block"] == 64
    assert tuning["lud"]["best_config"]["cuda_block"] == 16
    assert tuning["nw"]["best_config"]["layout"] not in ("row", "col")
    assert tuning["transpose"]["best_config"]["variant"] == "smem"
    for app in ("lud", "nw", "transpose"):
        assert tuning[app]["measured_candidates"] >= 1
        assert tuning[app]["max_analytic_error"] <= MAX_ANALYTIC_ERROR


def test_perf_smoke():
    check_report(run_perf_smoke())


if __name__ == "__main__":
    # one sweep serves both purposes in CI: the assertions run on the same
    # report that becomes the uploaded artifact
    artifact = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    report = run_perf_smoke()
    check_report(report)
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps({k: v for k, v in report.items() if k != "apps"}, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
