"""Observability benchmark: span coverage of an instrumented autotune,
Chrome-trace schema validity, and the disabled-instrumentation overhead.

Three gates (the ``obs-smoke`` CI job runs all of them):

* **Coverage** — a traced two-stage matmul autotune (bounded subspace,
  ``measure_top_k=3``) must produce a span tree rooted at ``tune.autotune``
  whose named stages include the analytic pre-filter, the cost model, the
  compile-service batch, VM execution and the measured re-rank, with
  self-times summing to within 10% of the root's wall time (coverage
  >= 90%) and the tree's total self-time matching the wall clock.
* **Schema** — the exported trace passes
  :func:`repro.obs.validate_chrome_trace`, so ``chrome://tracing`` /
  Perfetto can always open what we emit.
* **Overhead** — with tracing disabled, the fully instrumented serve
  replay costs < 2% over baseline.  Wall-clock A/B runs of a multi-worker
  replay are far noisier than 2% on shared CI runners, so the gate is
  arithmetic instead: the measured per-call cost of a disabled ``span()``
  times the number of span call sites the replay actually executes must be
  under 2% of the replay's wall time.

Run standalone to emit the JSON artifact the CI job uploads::

    PYTHONPATH=src python benchmarks/bench_obs.py   # writes BENCH_obs.json

or under pytest for the assertions only.
"""

import json
import time
from pathlib import Path

REPLAY_REQUESTS = 400
MEASURE_TOP_K = 3


def _disabled_span_overhead() -> dict:
    """Measure the per-call cost of ``span()`` with tracing off."""
    from repro.obs.trace import Tracer, span, tracing

    calls = 200_000
    with tracing(False):
        started = time.perf_counter()
        for _ in range(calls):
            with span("bench.noop", "bench", key=1):
                pass
        per_call = (time.perf_counter() - started) / calls
    # an enabled tracer for contrast (records, allocates, locks)
    enabled = Tracer(enabled=True, max_events=1000)
    started = time.perf_counter()
    for _ in range(1000):
        with enabled.span("bench.noop", "bench", key=1):
            pass
    per_call_enabled = (time.perf_counter() - started) / 1000
    return {
        "calls": calls,
        "disabled_ns_per_call": per_call * 1e9,
        "enabled_ns_per_call": per_call_enabled * 1e9,
    }


def run_obs_bench() -> dict:
    from repro.obs import TRACER, tracing
    from repro.obs.__main__ import REQUIRED_STAGES, run_instrumented_autotune
    from repro.serve import CompileService, synthetic_requests

    # Gate 1 + 2: instrumented autotune -> attribution + schema validation.
    autotune_report = run_instrumented_autotune("matmul", measure_top_k=MEASURE_TOP_K)
    trace = autotune_report.pop("trace")

    # Gate 3: replay wall time vs the arithmetic cost of its disabled spans.
    overhead = _disabled_span_overhead()
    requests = synthetic_requests(total=REPLAY_REQUESTS, duplicate_fraction=0.5, seed=3)
    with tracing(True):
        TRACER.clear()
        with CompileService(workers=2) as service:
            started = time.perf_counter()
            service.submit_batch(requests)
            replay_seconds = time.perf_counter() - started
        replay_spans = len(TRACER.events())
        TRACER.clear()
    span_cost_seconds = replay_spans * overhead["disabled_ns_per_call"] / 1e9
    overhead_fraction = span_cost_seconds / replay_seconds if replay_seconds > 0 else 0.0

    return {
        "autotune": {
            key: value for key, value in autotune_report.items()
            if key != "attribution"
        } | {"stages": {
            name: row for name, row in autotune_report["attribution"]["stages"].items()
        }},
        "coverage": autotune_report["coverage"],
        "wall_ms": autotune_report["attribution"]["wall_ms"],
        "self_sum_ms": autotune_report["attribution"]["self_sum_ms"],
        "missing_stages": autotune_report["missing_stages"],
        "required_stages": list(REQUIRED_STAGES),
        "schema_problems": autotune_report["schema_problems"],
        "trace_events": len(trace["traceEvents"]),
        "replay": {
            "requests": REPLAY_REQUESTS,
            "wall_seconds": replay_seconds,
            "spans_recorded": replay_spans,
            "disabled_span_cost_seconds": span_cost_seconds,
            "disabled_overhead_fraction": overhead_fraction,
        },
        "span_overhead": overhead,
    }


def check_report(report: dict) -> None:
    # Gate 1: every acceptance stage present, >= 90% of wall attributed.
    assert not report["missing_stages"], (
        f"span tree misses required stages: {report['missing_stages']}"
    )
    assert report["coverage"] >= 0.90, (
        f"named stages cover {report['coverage']:.1%} of the autotune wall "
        f"time; the acceptance bar is 90%"
    )
    # tree consistency: the reconstructed self-times sum to the root span's
    # wall time (a containment bug would break this before it breaks coverage)
    assert report["wall_ms"] > 0
    assert abs(report["self_sum_ms"] - report["wall_ms"]) <= 0.1 * report["wall_ms"], (
        f"span-tree self-times ({report['self_sum_ms']:.2f}ms) diverge from "
        f"the root wall time ({report['wall_ms']:.2f}ms)"
    )

    # Gate 2: the export loads in any Chrome-trace viewer.
    assert report["schema_problems"] == [], report["schema_problems"]
    assert report["trace_events"] > 10

    # Gate 3: disabled instrumentation costs < 2% of the replay.
    replay = report["replay"]
    assert replay["disabled_overhead_fraction"] < 0.02, (
        f"disabled tracing overhead {replay['disabled_overhead_fraction']:.2%} "
        f"of replay wall time exceeds the 2% bar"
    )
    assert replay["spans_recorded"] > 0, "replay recorded no spans while traced"


def test_obs_bench():
    check_report(run_obs_bench())


if __name__ == "__main__":
    # one run serves both purposes in CI: the assertions run on the same
    # report that becomes the uploaded artifact
    artifact = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    report = run_obs_bench()
    check_report(report)
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps({k: v for k, v in report.items() if k != "autotune"},
                     indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
