"""Table II: the integer division/modulo simplification rules."""

from repro.bench import figures


def test_table2_simplification_rules(benchmark, report_rows):
    result = benchmark(figures.table2)
    report_rows["Table II"] = result
    assert all(row["matches_expected"] and row["oracle_agrees"] for row in result.rows)
