"""Figure 12b: LUD thread-coarsening / block-size sweep."""

from repro.bench import figures


def test_fig12b_lud_sweep(benchmark, report_rows):
    result = benchmark(lambda: figures.fig12b(n=2048))
    report_rows["Figure 12b"] = result
    times = {row["lud_block"]: row["time_ms"] for row in result.rows}
    assert times[64] == min(times.values())
