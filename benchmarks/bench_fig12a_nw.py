"""Figure 12a: NW speedup from the anti-diagonal shared-memory layout."""

from repro.bench import figures


def test_fig12a_nw_speedup(benchmark, report_rows):
    result = benchmark.pedantic(lambda: figures.fig12a(sizes=(2048, 4096, 8192, 16384)), rounds=1, iterations=1)
    report_rows["Figure 12a"] = result
    assert all(1.3 <= row["speedup"] <= 2.2 for row in result.rows)
