"""Range-analysis smoke benchmark (thin wrapper over ``repro.symbolic.bench``).

The gates live in :mod:`repro.symbolic.bench` so they are importable from the
package (the ``range-smoke`` CI job runs ``python -m repro.symbolic.bench``);
this wrapper makes the same gates runnable under pytest and as a standalone
script from the ``benchmarks/`` directory.
"""

import json
from pathlib import Path

from repro.symbolic.bench import run


def check_report(report: dict) -> None:
    lud = report["lud_bijectivity"]
    assert lud["all_static"], (
        f"{len(lud['fallbacks'])} of {lud['shapes']} LUD kernel shapes fell "
        f"back from the static bijectivity proof: {lud['fallbacks']}"
    )
    assert lud["cross_checked"] > 0, "no shape was cross-checked by enumeration"
    assert lud["within_budget"], (
        f"generating {lud['shapes']} shapes took {lud['generation_seconds']:.2f}s, "
        f"over the {lud['budget_seconds']:.0f}s budget"
    )
    guards = report["guard_elimination"]
    assert guards["nw_ok"], "no NW wavefront guard was eliminated"
    assert guards["stencil_ok"], "no stencil interior guard was eliminated"


def test_range_bench():
    check_report(run())


if __name__ == "__main__":
    artifact = Path(__file__).resolve().parent.parent / "BENCH_symbolic.json"
    report = run()
    check_report(report)
    artifact.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
