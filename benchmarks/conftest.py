"""Shared fixtures for the benchmark harnesses (one module per table/figure)."""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): which paper table/figure a benchmark regenerates")


@pytest.fixture(scope="session")
def report_rows():
    """Collects each benchmark's reproduced rows so the session prints a summary."""
    collected: dict[str, object] = {}
    yield collected
    if collected:
        print("\n\n==== reproduced experiments ====")
        for name in sorted(collected):
            print(collected[name].to_text())
            print()
