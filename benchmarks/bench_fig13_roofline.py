"""Figure 13: roofline placement of the LUD and stencil variants."""

from repro.bench import figures


def test_fig13_rooflines(benchmark, report_rows):
    result = benchmark(figures.fig13)
    report_rows["Figure 13"] = result
    assert all(row["achieved_gflops"] > 0 for row in result.rows)
