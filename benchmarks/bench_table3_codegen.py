"""Table III: per-application code-generation and simplification latency."""

from repro.bench import figures


def test_table3_generation_latency(benchmark, report_rows):
    result = benchmark.pedantic(figures.table3, rounds=1, iterations=1)
    report_rows["Table III"] = result
    assert all(row["generation_seconds"] < 30.0 for row in result.rows)
