"""Figure 12c: 3-D stencils, array vs brick data layout."""

from repro.bench import figures


def test_fig12c_stencil_speedups(benchmark, report_rows):
    result = benchmark(lambda: figures.fig12c(n=512, brick=8))
    report_rows["Figure 12c"] = result
    assert all(3.2 <= row["speedup"] <= 4.0 for row in result.rows)
