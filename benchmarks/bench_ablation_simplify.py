"""Ablation: range-aware simplification on vs. off.

Disabling the assumption environment (no index ranges, no divisibility
facts) leaves the raw layout-lowered expressions with their full flatten /
unflatten arithmetic — this quantifies how much of the paper's Table IV
reduction comes from the range-proved Table II rules rather than from plain
algebraic cleanup.
"""

from repro.codegen import CodegenContext
from repro.core import Row, TileBy
from repro.symbolic import SymbolicEnv, Var, operation_count, simplify_fixpoint, symbols


def _lowered_ops(with_assumptions: bool) -> int:
    M, K, BM, BK = symbols("M K BM BK")
    pid_m, k = Var("pid_m"), Var("k")
    env = SymbolicEnv()
    if with_assumptions:
        env.declare_size(M, K, BM, BK)
        env.declare_index(pid_m, M // BM)
        env.declare_index(k, K // BK)
        env.declare_divisible(M, BM)
        env.declare_divisible(K, BK)
    layout = TileBy([M // BM, K // BK], [BM, BK]).OrderBy(Row(M, K))
    sl = layout[pid_m, k, :, :]
    if with_assumptions:
        sl.contribute_env(env)
    return operation_count(simplify_fixpoint(sl.offset, env))


def test_ablation_range_aware_simplification(benchmark, report_rows):
    ops_with, ops_without = benchmark(lambda: (_lowered_ops(True), _lowered_ops(False)))
    assert ops_with < ops_without / 2
