"""Simplify throughput and cache hit-rate on real layout index expressions.

Exercises the memoised rewrite engine on the index expressions the matmul,
NW and LUD applications actually lower (the Tables III/IV hot path):

* **cold** — every expression simplified under a fresh assumption
  environment (empty caches, the pre-refactor behaviour on every pass);
* **warm** — the same expressions re-simplified under the same environment,
  which the hash-consed IR turns into fixpoint-cache lookups.

The warm/cold ratio and the fixpoint-cache hit rate are what the interning +
memoisation refactor bought; the assertions pin both so a regression that
silently disables a cache layer fails loudly.

Reference numbers from the machine this refactor was developed on (same
workloads, before vs after the hash-consed IR landed):

===============================  ==========  ==========
metric                           before      after
===============================  ==========  ==========
kernel generation (3 apps)       0.77 s      0.030 s
``figures.table3()``             1.34 s      0.065 s
full tier-1 test suite           11.4 s      ~5 s
===============================  ==========  ==========
"""

import time

from repro.apps import lud, matmul
from repro.codegen import CodegenContext
from repro.core.slicing import LayoutSlice
from repro.symbolic import CACHE_STATS, SymbolicEnv, as_expr, simplify_fixpoint


def _index_expressions() -> list[tuple[object, SymbolicEnv]]:
    """(raw index expression, populated environment) pairs for 3 applications."""
    pairs: list[tuple[object, SymbolicEnv]] = []

    # matmul: every binding of the "nn" lowering context
    ctx = matmul.build_matmul_context("nn")
    for value in ctx._bindings.values():
        if isinstance(value, LayoutSlice):
            value.contribute_env(ctx.env)
            pairs.append((value.offset, ctx.env))
        else:
            pairs.append((as_expr(value), ctx.env))

    # NW-style anti-diagonal staging: the wavefront buffer index arithmetic
    # (the real NW layout is a GenP device function, so its symbolic content
    # is this addressing pattern rather than a layout.apply lowering)
    b = 16
    nw_ctx = CodegenContext(name="nw_bench")
    i0 = nw_ctx.index("i0", b)
    i1 = nw_ctx.index("i1", b)
    wave = i0 + i1
    nw_expr = (wave % (2 * b - 1)) * b + (wave * b + i0) % b
    pairs.append((as_expr(nw_expr), nw_ctx.env))

    # LUD: the coarsened thread layout's element offset
    lud_layout = lud.coarsened_thread_layout(64, 16)
    lud_ctx = CodegenContext(name="lud_bench")
    r_i = lud_ctx.index("r_i", 4)
    r_j = lud_ctx.index("r_j", 4)
    ty = lud_ctx.index("ty", 16)
    tx = lud_ctx.index("tx", 16)
    pairs.append((as_expr(lud_layout.apply(r_i, r_j, ty, tx)), lud_ctx.env))

    return pairs


def _simplify_all(pairs, fresh_env: bool) -> float:
    started = time.perf_counter()
    for expr, env in pairs:
        simplify_fixpoint(expr, env.copy() if fresh_env else env)
    return time.perf_counter() - started


def _fresh_env_copy(env: SymbolicEnv) -> SymbolicEnv:
    """A copy of ``env`` with the memo tables dropped (cold-cache baseline)."""
    copy = env.copy()
    copy._invalidate()
    return copy


def test_simplify_cache_throughput(benchmark, report_rows):
    from repro.bench.harness import ExperimentResult

    pairs = _index_expressions()

    # cold: fresh environment copies with cleared caches every round
    cold_seconds = min(
        _simplify_all([(e, _fresh_env_copy(env)) for e, env in pairs], fresh_env=False)
        for _ in range(3)
    )

    # warm: same environments => fixpoint-cache hits
    _simplify_all(pairs, fresh_env=False)  # populate
    before = CACHE_STATS.snapshot()
    warm_seconds = benchmark.pedantic(
        lambda: _simplify_all(pairs, fresh_env=False), rounds=3, iterations=1
    )
    delta = CACHE_STATS.delta(before, CACHE_STATS.snapshot())

    rows = [
        {
            "workload": "matmul+NW+LUD index expressions",
            "expressions": len(pairs),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
            "fixpoint_hit_rate": delta["fixpoint_hit_rate"],
        }
    ]
    report_rows["Simplify cache"] = ExperimentResult(
        experiment="Simplify cache",
        description="Memoised rewrite engine throughput: cold vs warm environments",
        rows=rows,
    )

    assert delta["fixpoint_hit_rate"] > 0.9, "warm re-simplification should hit the fixpoint cache"
    assert warm_seconds * 5 < cold_seconds, "warm path should be >=5x faster than cold"
