"""Table I: LEGO vs CuTe/Graphene layout specifications (equivalence check)."""

from repro.bench import figures


def bench(benchmark_fn):
    return benchmark_fn()


def test_table1_layout_equivalence(benchmark, report_rows):
    result = benchmark(figures.table1)
    report_rows["Table I"] = result
    assert all(row["lego_matches_cute"] for row in result.rows)
