"""GroupBy/OrderBy blocks, sugar, slicing, ExpandBy, injective and CuTe comparison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Col,
    ExpandBy,
    GenP,
    GroupBy,
    InjectiveLayout,
    OrderBy,
    RegP,
    Row,
    StrideLayout,
    TileBy,
    TileOrderBy,
    antidiagonal,
    broadcast_cols,
    broadcast_rows,
    equivalent,
    even_mapping,
    expanded_shape,
    morton,
    reverse_permutation,
    strides_from_layout,
)
from repro.core.sugar import interleave_sigma
from repro.symbolic import Var


# -- the paper's worked examples ------------------------------------------------------


def figure2_layout() -> GroupBy:
    return GroupBy([6, 4]).OrderBy(RegP([2, 2], [2, 1]), reverse_permutation(3, 2))


def figure6_layout() -> GroupBy:
    return (
        GroupBy([6, 6])
        .OrderBy(RegP([2, 3, 2, 3], [1, 3, 2, 4]))
        .OrderBy(RegP([2, 2], [2, 1]), antidiagonal(3))
    )


def test_figure2_apply_and_inv_match_paper():
    layout = figure2_layout()
    assert layout.apply(4, 1) == 6
    assert layout.inv(6) == (4, 1)


def test_figure2_is_bijective():
    assert figure2_layout().verify()


def test_figure2_physical_table_is_consistent_with_apply():
    layout = figure2_layout()
    table = layout.physical_table()
    # the element whose logical flat index is 17 (logical position (4, 1))
    # is stored at physical position 6, as in the paper's walkthrough
    assert table[6] == 17
    for i in range(6):
        for j in range(4):
            assert table[layout.apply(i, j)] == i * 4 + j
    matrix = layout.physical_matrix(6, 4)
    assert matrix.shape == (6, 4)
    assert sorted(matrix.reshape(-1).tolist()) == list(range(24))


def test_figure6_intermediate_and_final_indices():
    middle = GroupBy([6, 6]).OrderBy(RegP([2, 3, 2, 3], [1, 3, 2, 4]))
    assert middle.apply(4, 2) == 23
    final = figure6_layout()
    assert final.apply(4, 2) == 15
    assert final.inv(15) == (4, 2)


def test_figure6_is_bijective():
    assert figure6_layout().verify()


# -- GroupBy / OrderBy mechanics -------------------------------------------------------


def test_groupby_requires_shape():
    with pytest.raises(ValueError):
        GroupBy([])


def test_groupby_size_mismatch_rejected():
    with pytest.raises(ValueError):
        GroupBy([4, 4]).OrderBy(RegP([3, 3]))


def test_orderby_requires_perms():
    with pytest.raises(ValueError):
        OrderBy()


def test_orderby_rejects_non_perm():
    with pytest.raises(TypeError):
        OrderBy([2, 2])


def test_groupby_without_orderby_is_row_major():
    layout = GroupBy([3, 5])
    for i in range(3):
        for j in range(5):
            assert layout.apply(i, j) == i * 5 + j


def test_groupby_accepts_multiple_shape_parts():
    layout = GroupBy([2, 2], [3, 3])
    assert layout.dims() == (2, 2, 3, 3)
    assert layout.size() == 36


def test_groupby_apply_accepts_sequence_or_varargs():
    layout = figure2_layout()
    assert layout.apply([4, 1]) == layout.apply(4, 1)


def test_groupby_rejects_out_of_range_index():
    with pytest.raises(IndexError):
        figure2_layout().apply(6, 0)


def test_chained_orderbys_compose_in_listed_order():
    # a transpose followed by a transpose is the identity
    layout = GroupBy([3, 4]).OrderBy(RegP([3, 4], [2, 1])).OrderBy(RegP([4, 3], [2, 1]))
    for i in range(3):
        for j in range(4):
            assert layout.apply(i, j) == i * 4 + j


def test_permutation_vector_and_physical_table_are_inverse():
    layout = figure6_layout()
    perm = layout.permutation_vector()
    table = layout.physical_table()
    assert np.array_equal(table[perm], np.arange(36))


def test_verify_requires_concrete_layout():
    symbolic = GroupBy([Var("N"), 4])
    with pytest.raises(TypeError):
        symbolic.verify()


@given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=4),
       st.permutations([1, 2, 3, 4]))
@settings(max_examples=40, deadline=None)
def test_random_two_level_layouts_are_bijective(outer, inner, sigma):
    layout = GroupBy([outer * inner, outer * inner]).OrderBy(
        RegP([outer, inner, outer, inner], list(sigma))
    )
    assert layout.verify()


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_apply_inv_roundtrip_property(rows, cols):
    layout = GroupBy([rows, cols]).OrderBy(RegP([rows, cols], [2, 1]))
    for flat in range(rows * cols):
        assert layout.apply(*layout.inv(flat)) == flat


# -- sugar -----------------------------------------------------------------------------


def test_row_and_col_are_regp():
    assert Row(3, 4).sigma == (1, 2)
    assert Col(3, 4).sigma == (2, 1)
    assert Row([3, 4]).dims() == (3, 4)


def test_interleave_sigma_matches_paper():
    assert interleave_sigma(2, 3) == [1, 3, 5, 2, 4, 6]
    assert interleave_sigma(3, 2) == [1, 4, 2, 5, 3, 6]


def test_tileby_matches_blocked_row_major():
    layout = TileBy([2, 2], [3, 3])
    # logical (block_i, block_j, i, j) of a 6x6 matrix tiled 3x3, stored so the
    # interleaved physical space is (2x3) x (2x3), i.e. the original row-major
    for bi in range(2):
        for bj in range(2):
            for i in range(3):
                for j in range(3):
                    expected = (bi * 3 + i) * 6 + (bj * 3 + j)
                    assert layout.apply(bi, bj, i, j) == expected


def test_tileby_requires_consistent_rank():
    with pytest.raises(ValueError):
        TileBy([2, 2], [3])
    with pytest.raises(ValueError):
        TileBy()


def test_tileorderby_requires_consistent_rank():
    with pytest.raises(ValueError):
        TileOrderBy(Row(2, 2), Row(3))
    with pytest.raises(ValueError):
        TileOrderBy()


def test_tileorderby_is_bijective():
    layout = TileOrderBy(Col(2, 2), Row(3, 3))
    assert layout.verify()


# -- slicing -----------------------------------------------------------------------------


def test_slice_produces_atoms_and_offset():
    m, k, bm, bk = Var("M"), Var("K"), Var("BM"), Var("BK")
    layout = TileBy([m // bm, k // bk], [bm, bk]).OrderBy(Row(m, k))
    sl = layout[Var("pid_m"), Var("k"), :, :]
    assert len(sl.atoms) == 2
    assert sl.atoms[0].extent == bm
    assert sl.atoms[1].extent == bk
    assert sl.atoms[0].broadcast_suffix() == "[:, None]"
    assert sl.atoms[1].broadcast_suffix() == "[None, :]"
    assert "tl.arange" in sl.atoms[0].triton_render()


def test_slice_wrong_arity_raises():
    layout = GroupBy([4, 4])
    with pytest.raises(ValueError):
        layout[1]


def test_slice_with_stop_overrides_extent():
    layout = GroupBy([8, 8])
    sl = layout[0, slice(None, 4)]
    assert sl.atoms[0].extent == 4


def test_slice_rejects_step():
    layout = GroupBy([8, 8])
    with pytest.raises(ValueError):
        layout[0, slice(0, 8, 2)]


def test_slice_concrete_offset_evaluates():
    layout = GroupBy([4, 4])
    sl = layout[2, :]
    env = {sl.atoms[0].name: 3}
    assert sl.offset.evaluate(env) == 11


# -- ExpandBy (partial tiles) ----------------------------------------------------------------


def test_expanded_shape_rounds_up():
    assert expanded_shape((10, 7), (4, 4)) == (12, 8)
    assert expanded_shape((8, 8), (4, 4)) == (8, 8)
    with pytest.raises(ValueError):
        expanded_shape((10,), (0,))


def test_expandby_masks_padding():
    original = (5, 5)
    expanded = expanded_shape(original, (3, 3))
    layout = TileBy([2, 2], [3, 3])
    adapter = ExpandBy(original, expanded, layout)
    seen = set()
    padded = 0
    for bi in range(2):
        for bj in range(2):
            for i in range(3):
                for j in range(3):
                    flat = adapter.apply(bi, bj, i, j)
                    if flat == -1:
                        padded += 1
                    else:
                        assert 0 <= flat < 25
                        seen.add(flat)
    assert len(seen) == 25
    assert padded == 36 - 25


def test_expandby_inv_roundtrip():
    original = (5, 5)
    layout = TileBy([2, 2], [3, 3])
    adapter = ExpandBy(original, expanded_shape(original, (3, 3)), layout)
    for flat in range(25):
        coords = adapter.inv(flat)
        assert adapter.apply(*coords) == flat


def test_expandby_apply_masked_predicate():
    layout = TileBy([2, 2], [3, 3])
    adapter = ExpandBy((5, 5), (6, 6), layout)
    offset, in_bounds = adapter.apply_masked(Var("bi"), Var("bj"), Var("i"), Var("j"))
    assert offset is not None
    assert in_bounds.evaluate({"bi": 1, "bj": 1, "i": 2, "j": 2}) is False
    assert in_bounds.evaluate({"bi": 0, "bj": 0, "i": 0, "j": 0}) is True


def test_expandby_validates_shapes():
    layout = TileBy([2, 2], [3, 3])
    with pytest.raises(ValueError):
        ExpandBy((7, 7), (6, 6), layout)
    with pytest.raises(ValueError):
        ExpandBy((5, 5), (6, 6, 6), layout)
    with pytest.raises(ValueError):
        ExpandBy((5, 5), (7, 6), layout)  # 42 != 36


# -- injective layouts -------------------------------------------------------------------------


def test_broadcast_rows_and_cols():
    rows = broadcast_rows(3, 4)
    cols = broadcast_cols(3, 4)
    assert rows.apply(2, 3) == 2
    assert cols.apply(2, 3) == 3
    with pytest.raises(TypeError):
        rows.inv(0)


def test_even_mapping_is_injective():
    layout = even_mapping(8)
    assert layout.apply(3) == 6
    assert layout.check_injective()


def test_broadcast_is_not_injective():
    assert not broadcast_rows(3, 4).check_injective()


def test_injective_layout_validates_index():
    with pytest.raises(IndexError):
        even_mapping(4).apply(5)
    with pytest.raises(ValueError):
        InjectiveLayout((), lambda: 0)


# -- CuTe / Graphene comparison -------------------------------------------------------------------


def test_stride_layout_row_and_column_major():
    row = StrideLayout.row_major(3, 4)
    col = StrideLayout.column_major(3, 4)
    assert row.apply(1, 2) == 6
    assert col.apply(1, 2) == 7
    assert row.size() == 12


def test_stride_layout_nested_modes_flatten():
    nested = StrideLayout(((2, 2), (3, 3)), ((18, 9), (3, 1)))
    assert nested.rank == 4
    assert nested.apply(1, 0, 2, 1) == 18 + 7


def test_stride_layout_validation():
    with pytest.raises(ValueError):
        StrideLayout((2, 2), (1,))
    with pytest.raises(IndexError):
        StrideLayout.row_major(2, 2).apply(2, 0)
    with pytest.raises(ValueError):
        StrideLayout.row_major(2, 2).apply(0, 0, 0)


def test_strides_recovered_for_affine_layout():
    layout = GroupBy([4, 4]).OrderBy(RegP([4, 4], [2, 1]))
    recovered = strides_from_layout(layout)
    assert recovered is not None
    assert recovered.stride == (1, 4)


def test_strides_not_recoverable_for_antidiagonal():
    layout = GroupBy([4, 4]).OrderBy(antidiagonal(4))
    assert strides_from_layout(layout) is None


def test_strides_not_recoverable_for_morton():
    layout = GroupBy([4, 4]).OrderBy(morton(4))
    assert strides_from_layout(layout) is None


def test_equivalent_checks_every_coordinate():
    layout = GroupBy([3, 4])
    assert equivalent(layout, StrideLayout.row_major(3, 4))
    assert not equivalent(layout, StrideLayout.column_major(3, 4))
