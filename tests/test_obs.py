"""The unified observability layer: tracer, metrics registry, attribution.

Covers the ISSUE-8 satellite contracts explicitly:

* the shared ceil-based nearest-rank percentile (one implementation, both
  call sites pinned),
* :class:`~repro.serve.metrics.LatencyRecorder` under concurrent
  ``record()`` — exact count/total at quiescence, reservoir eviction order,
* :class:`~repro.symbolic.stats.CacheCounters` snapshot/delta round-trips,
  including a reset between the snapshots (negative deltas are impossible),
* span-tree reconstruction, per-stage attribution and the Chrome trace-event
  schema validator the ``obs-smoke`` CI job runs.
"""

import json
import threading
import time

import pytest

from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    SpanNode,
    Tracer,
    attribution,
    percentile,
    record_vm_fallback,
    span_trees,
    validate_chrome_trace,
)
from repro.obs.trace import TRACER, tracing


# -- shared percentile helper -------------------------------------------------------


def test_percentile_nearest_rank_semantics():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.5) == 7.0
    assert percentile([7.0], 0.99) == 7.0
    # ceil-based nearest rank: p50 of [1, 2] is the 1st smallest
    assert percentile([1.0, 2.0], 0.50) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0
    ordered = [float(i) for i in range(1, 101)]
    assert percentile(ordered, 0.50) == 50.0
    assert percentile(ordered, 0.95) == 95.0
    assert percentile(ordered, 0.99) == 99.0
    assert percentile(ordered, 1.0) == 100.0
    assert percentile(ordered, 0.0) == 1.0


def test_percentile_is_the_single_shared_implementation():
    """Both historical call sites delegate to ``repro.obs.percentile``."""
    from repro.serve.metrics import LatencyRecorder

    assert LatencyRecorder._percentile is percentile


def test_latency_recorder_percentiles_pinned():
    """The p50/p95/p99 regression behaviour the serve side always had."""
    from repro.serve.metrics import LatencyRecorder

    recorder = LatencyRecorder()
    for ms in range(1, 101):
        recorder.record(ms / 1e3)
    snap = recorder.snapshot()
    assert snap["count"] == 100
    assert snap["p50_ms"] == pytest.approx(50.0)
    assert snap["p95_ms"] == pytest.approx(95.0)
    assert snap["p99_ms"] == pytest.approx(99.0)
    assert snap["max_ms"] == pytest.approx(100.0)


# -- LatencyRecorder under concurrency (satellite 3) --------------------------------


def test_latency_recorder_concurrent_record_exact_at_quiescence():
    from repro.serve.metrics import LatencyRecorder

    recorder = LatencyRecorder(max_samples=50_000)
    threads, per_thread = 8, 2_000
    barrier = threading.Barrier(threads)

    def hammer():
        barrier.wait()
        for _ in range(per_thread):
            recorder.record(0.001)

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    snap = recorder.snapshot()
    assert recorder.count == threads * per_thread
    assert snap["count"] == threads * per_thread
    # the running sum is exact: mean of identical samples is the sample
    assert snap["mean_ms"] == pytest.approx(1.0)


def test_latency_recorder_reservoir_evicts_oldest_first():
    from repro.serve.metrics import LatencyRecorder

    recorder = LatencyRecorder(max_samples=10)
    for value in range(25):
        recorder.record(float(value))
    # the reservoir keeps exactly the 10 most recent samples (15..24) while
    # count/total still cover all 25
    assert sorted(recorder._samples) == [float(v) for v in range(15, 25)]
    snap = recorder.snapshot()
    assert snap["count"] == 25
    assert snap["mean_ms"] == pytest.approx(sum(range(25)) / 25 * 1e3)
    assert snap["p50_ms"] == pytest.approx(19.0 * 1e3)


def test_latency_recorder_rejects_nonpositive_bound():
    from repro.serve.metrics import LatencyRecorder

    with pytest.raises(ValueError):
        LatencyRecorder(max_samples=0)


# -- CacheCounters snapshot/delta round-trips (satellites 3 + 6) --------------------


def test_cache_counters_delta_roundtrip():
    from repro.symbolic.stats import CacheCounters

    counters = CacheCounters()
    before = counters.snapshot()
    counters.simplify_hits += 5
    counters.simplify_misses += 1
    counters.count_rule("mod_fold")
    counters.count_rule("mod_fold")
    after = counters.snapshot()
    delta = CacheCounters.delta(before, after)
    assert delta["simplify_hits"] == 5
    assert delta["simplify_misses"] == 1
    assert delta["simplify_hit_rate"] == pytest.approx(5 / 6)
    assert delta["rule_applications"] == {"mod_fold": 2}
    assert "epoch" not in delta


def test_cache_counters_delta_never_negative_across_reset():
    """A third-party snapshot holder survives a reset mid-window (satellite 6)."""
    from repro.symbolic.stats import CacheCounters

    counters = CacheCounters()
    counters.simplify_hits = 100
    counters.proof_misses = 40
    counters.count_rule("add_fold")
    before = counters.snapshot()
    counters.reset()  # bumps the epoch
    counters.simplify_hits = 3
    after = counters.snapshot()
    delta = CacheCounters.delta(before, after)
    assert all(
        value >= 0
        for value in delta.values()
        if isinstance(value, (int, float))
    ), delta
    # the delta is the exact count since the reset, not after-minus-stale
    assert delta["simplify_hits"] == 3
    assert delta["proof_misses"] == 0
    assert delta["rule_applications"] == {}


def test_reset_cache_statistics_routes_through_registry():
    from repro.symbolic.stats import reset_cache_statistics

    before = REGISTRY.snapshot()
    reset_cache_statistics()
    after = REGISTRY.snapshot()
    assert after["__epoch__"] > before["__epoch__"]
    # registry-level deltas across the reset are clamped non-negative too
    delta = MetricsRegistry.delta(before, after)
    assert all(value >= 0 for value in delta.values())


# -- tracer -------------------------------------------------------------------------


def test_disabled_tracer_records_nothing_and_reuses_null_span():
    from repro.obs.trace import _NULL_SPAN

    tracer = Tracer(enabled=False)
    s1 = tracer.span("a")
    s2 = tracer.span("b", app="x")
    assert s1 is _NULL_SPAN and s2 is _NULL_SPAN
    with s1 as inner:
        inner.add(key="value")
    tracer.instant("point")
    assert len(tracer) == 0


def test_tracer_records_nested_spans_with_containment():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", "test"):
        with tracer.span("inner", "test", detail=1):
            time.sleep(0.001)
    events = tracer.events()
    assert [e["name"] for e in events] == ["inner", "outer"]
    outer = events[1]
    inner = events[0]
    assert outer["ph"] == inner["ph"] == "X"
    assert outer["ts"] <= inner["ts"]
    assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]
    assert inner["args"] == {"detail": 1}


def test_span_records_exception_and_propagates():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("failing", "test"):
            raise RuntimeError("boom")
    (event,) = tracer.events()
    assert event["args"]["error"] == "RuntimeError"


def test_tracer_bounded_buffer_counts_drops():
    tracer = Tracer(enabled=True, max_events=3)
    for index in range(5):
        with tracer.span(f"s{index}"):
            pass
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert tracer.chrome_trace()["otherData"]["dropped"] == 2
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0


def test_tracer_threads_share_one_clock_and_metadata():
    tracer = Tracer(enabled=True)

    def worker():
        with tracer.span("worker.task", "test"):
            pass

    with tracer.span("main.task", "test"):
        thread = threading.Thread(target=worker, name="obs-worker")
        thread.start()
        thread.join()
    trace = tracer.chrome_trace()
    names = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
    assert "obs-worker" in names
    tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert len(tids) == 2


def test_chrome_trace_export_is_valid_json_and_schema(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("stage", "test", app="matmul"):
        tracer.instant("marker", "test", note="hello")
    path = tracer.export(tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []
    assert loaded["otherData"]["producer"] == "repro.obs"
    phases = sorted(e["ph"] for e in loaded["traceEvents"])
    assert phases == ["M", "X", "i"]


def test_trace_schema_validator_flags_malformed_events():
    bad = {
        "traceEvents": [
            {"name": 7, "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 1.0},
            {"name": "neg", "ph": "X", "pid": 1, "tid": 1, "ts": -5.0, "dur": 1.0},
            {"name": "nodur", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0},
            {"name": "badph", "ph": "?", "pid": 1, "tid": 1, "ts": 0.0},
        ]
    }
    problems = validate_chrome_trace(bad)
    assert len(problems) == 4


def test_tracing_context_manager_restores_state():
    previous = TRACER.enabled
    with tracing(True):
        assert TRACER.enabled
    assert TRACER.enabled == previous


def test_vm_fallback_instrumentation_counts_and_marks():
    fallbacks = REGISTRY.counter("repro.vm.fallbacks")
    before = fallbacks.value
    with tracing(True):
        TRACER.clear()
        record_vm_fallback("minitriton", None, ValueError("unsupported op"))
        events = TRACER.events()
    assert fallbacks.value == before + 1
    assert any(
        e["name"] == "vm.fallback" and e["ph"] == "i"
        and e["args"]["substrate"] == "minitriton"
        and "ValueError" in e["args"]["error"]
        for e in events
    )


# -- metrics registry ---------------------------------------------------------------


def test_registry_counter_gauge_histogram_snapshot():
    registry = MetricsRegistry()
    registry.counter("test.requests").inc(3)
    registry.gauge("test.depth").set(7)
    hist = registry.histogram("test.latency")
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    snap = registry.snapshot()
    assert snap["test.requests"] == 3.0
    assert snap["test.depth"] == 7.0
    assert snap["test.latency.count"] == 4.0
    assert snap["test.latency.mean"] == pytest.approx(2.5)
    assert snap["test.latency.p50"] == 2.0
    assert snap["test.latency.max"] == 4.0


def test_registry_create_or_get_and_type_conflicts():
    registry = MetricsRegistry()
    c1 = registry.counter("dup.name")
    assert registry.counter("dup.name") is c1
    with pytest.raises(ValueError):
        registry.gauge("dup.name")
    with pytest.raises(ValueError):
        registry.counter("x").inc(-1)
    backed = registry.gauge("cb", fn=lambda: 42.0)
    assert backed.value == 42.0
    with pytest.raises(ValueError):
        backed.set(1.0)


def test_registry_absorbs_live_sources_and_delta_clamps():
    registry = MetricsRegistry()
    state = {"hits": 10, "nested": {"misses": 2}}
    registry.register_source("svc", lambda: state)
    before = registry.snapshot()
    assert before["svc.hits"] == 10.0
    assert before["svc.nested.misses"] == 2.0
    state["hits"] = 25  # sources are read live, never copied
    after = registry.snapshot()
    delta = MetricsRegistry.delta(before, after)
    assert delta["svc.hits"] == 15.0
    # a shrinking value (reset without epoch bump) clamps to zero
    state["hits"] = 1
    assert MetricsRegistry.delta(after, registry.snapshot())["svc.hits"] == 0.0
    assert registry.unregister_source("svc")
    assert "svc.hits" not in registry.snapshot()


def test_registry_epoch_reset_semantics():
    registry = MetricsRegistry()
    counts = {"n": 100}
    registry.register_source("src", lambda: counts)
    before = registry.snapshot()
    registry.on_reset("src")
    counts["n"] = 5
    after = registry.snapshot()
    delta = MetricsRegistry.delta(before, after)
    # after the reset the delta is the exact post-reset count, never -95
    assert delta["src.n"] == 5.0
    assert registry.snapshot()["repro.obs.source_resets"] == 1.0


def test_registry_dead_source_skipped():
    registry = MetricsRegistry()

    def dead():
        raise RuntimeError("service closed")

    registry.register_source("gone", dead)
    registry.counter("alive").inc()
    snap = registry.snapshot()
    assert snap["alive"] == 1.0
    assert not any(key.startswith("gone") for key in snap)


def test_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("test.total", help="requests").inc(2)
    registry.gauge("test-depth").set(3)
    hist = registry.histogram("test.lat")
    for v in range(1, 101):
        hist.observe(float(v))
    registry.register_source("src", lambda: {"hits": 9})
    text = registry.render_prometheus()
    assert "# HELP test_total requests" in text
    assert "# TYPE test_total counter" in text
    assert "test_total 2" in text
    assert "test_depth 3" in text  # dashes sanitized
    assert 'test_lat{quantile="0.5"} 50' in text
    assert 'test_lat{quantile="0.99"} 99' in text
    assert "test_lat_count 100" in text
    assert "src_hits 9" in text


def test_default_registry_absorbs_symbolic_cache():
    snap = REGISTRY.snapshot()
    assert any(key.startswith("repro.symbolic.cache.") for key in snap)


def test_service_register_metrics_roundtrip():
    from repro.serve import CompileService

    registry = MetricsRegistry()
    with CompileService(workers=1) as service:
        name = service.register_metrics(registry=registry)
        snap = registry.snapshot()
        assert f"{name}.submitted" in snap
        assert registry.unregister_source(name)


# -- span trees and attribution -----------------------------------------------------


def _event(name, ts, dur, tid=1, pid=1, cat="test"):
    return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid}


def test_span_tree_reconstruction_from_containment():
    events = [
        _event("child.b", 60.0, 30.0),
        _event("root", 0.0, 100.0),
        _event("child.a", 10.0, 40.0),
        _event("grandchild", 15.0, 10.0),
    ]
    trees = span_trees(events)
    ((_, roots),) = trees.items()
    (root,) = roots
    assert root.name == "root"
    assert [c.name for c in root.children] == ["child.a", "child.b"]
    assert [g.name for g in root.children[0].children] == ["grandchild"]
    assert root.self_time == pytest.approx(100.0 - 40.0 - 30.0)
    assert isinstance(root, SpanNode)
    assert sum(1 for _ in root.walk()) == 4


def test_attribution_self_times_sum_to_wall():
    events = [
        _event("root", 0.0, 100.0),
        _event("stage.a", 5.0, 50.0),
        _event("stage.b", 60.0, 35.0),
        _event("stage.a", 20.0, 10.0),  # nested under the first stage.a
    ]
    report = attribution(events, root_name="root")
    assert report["root"] == "root"
    assert report["wall_ms"] == pytest.approx(0.1)
    # within one tree the self-times sum exactly to the root duration
    assert report["self_sum_ms"] == pytest.approx(report["wall_ms"])
    assert report["coverage"] == pytest.approx(1.0 - (100 - 50 - 35) / 100)
    stages = report["stages"]
    assert stages["stage.a"]["count"] == 2
    assert stages["stage.a"]["self_ms"] == pytest.approx(0.05)
    assert stages["stage.b"]["self_ms"] == pytest.approx(0.035)


def test_attribution_separates_worker_threads():
    events = [
        _event("root", 0.0, 100.0, tid=1),
        _event("stage.a", 10.0, 80.0, tid=1),
        _event("worker.compile", 20.0, 30.0, tid=2),
    ]
    report = attribution(events, root_name="root")
    assert "worker.compile" not in report["stages"]
    assert report["other_threads"]["worker.compile"]["self_ms"] == pytest.approx(0.03)
    # overlapping worker time never inflates main-tree coverage past 100%
    assert report["coverage"] <= 1.0


def test_end_to_end_traced_block_attributes(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("job", "test"):
        with tracer.span("job.load", "test"):
            time.sleep(0.002)
        with tracer.span("job.compute", "test"):
            time.sleep(0.002)
    report = attribution(tracer.events(), root_name="job")
    assert set(report["stages"]) >= {"job.load", "job.compute"}
    assert report["coverage"] > 0.5
    assert validate_chrome_trace(tracer.chrome_trace()) == []


# -- serialization satellites -------------------------------------------------------


def test_kernel_profile_serializes_device_and_engine():
    from repro.perf.profile import KernelProfile

    profile = KernelProfile(app="matmul", device="a100-80gb", engine="vectorized")
    payload = profile.as_dict()
    assert payload["device"] == "a100-80gb"
    assert payload["engine"] == "vectorized"


def test_search_result_serializes_engine_and_stage_seconds():
    from repro.tune.search import SearchResult
    from repro.tune.tuner import Candidate

    result = SearchResult(
        app="matmul", device="h100", strategy="halving", engine="vectorized",
        space_size=10, evaluated=10, measured=2,
        evaluations=[Candidate(config={"BM": 64}, time_seconds=1e-3)],
        stage_seconds={"prefilter": 0.5, "model": 0.01, "measure": 1.5},
    )
    summary = result.summary()
    assert summary["engine"] == "vectorized"
    assert summary["stage_seconds"]["measure"] == 1.5
    assert summary["device"] == "h100"


# -- range-analysis instrumentation (ISSUE: stride-aware range analysis) ------------


def test_symbolic_range_span_nests_under_codegen_lower():
    from repro.codegen import CodegenContext, prove_guard_redundant
    from repro.symbolic import SymbolicEnv

    with tracing(True):
        TRACER.clear()
        ctx = CodegenContext("traced_obligation")
        i = ctx.index("i", 16)
        ctx.bind("offset", i * 4 + 3)
        ctx.require_in_bounds("offset", 0, 63)
        ctx.lower()
        events = TRACER.events()
    assert ctx.proven_bounds == {"offset": True}
    # touch the other proof outcomes so all three counters are registered
    env = SymbolicEnv()
    j = env.declare_index("j", 8)
    assert prove_guard_redundant(j.lt(8), env, kernel="traced_obligation")
    assert not prove_guard_redundant(j.lt(7), env, kernel="traced_obligation")
    lower = [e for e in events if e["name"] == "codegen.lower"]
    proofs = [e for e in events if e["name"] == "symbolic.range"]
    assert lower and proofs
    outer = lower[-1]
    for inner in proofs:
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]
    assert proofs[-1]["args"]["kernel"] == "traced_obligation"
    assert proofs[-1]["args"]["query"] == "in_bounds"
    # the proof outcome counters are registered on the shared registry
    names = set(REGISTRY.snapshot())
    assert "repro.symbolic.proofs_static" in names
    assert "repro.symbolic.proofs_fallback" in names
    assert "repro.symbolic.guards_eliminated" in names
