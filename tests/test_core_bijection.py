"""Canonical bijections, permutation blocks and the permutation library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GenP,
    RegP,
    antidiagonal,
    flatten_index,
    hilbert2d,
    morton,
    reverse_permutation,
    unflatten_index,
    xor_swizzle,
)
from repro.core.bijection import product, validate_index
from repro.core.perms import apply_permutation, identity_permutation, invert_permutation


# -- canonical bijections -------------------------------------------------------


def test_flatten_row_major_2d():
    assert flatten_index((0, 0), (6, 4)) == 0
    assert flatten_index((4, 1), (6, 4)) == 17
    assert flatten_index((5, 3), (6, 4)) == 23


def test_unflatten_inverts_flatten_2d():
    for flat in range(24):
        assert flatten_index(unflatten_index(flat, (6, 4)), (6, 4)) == flat


def test_flatten_empty_dims_is_zero():
    assert flatten_index((), ()) == 0
    assert unflatten_index(0, ()) == ()


def test_flatten_rank_mismatch_raises():
    with pytest.raises(ValueError):
        flatten_index((1, 2, 3), (4, 4))


def test_validate_index_raises_out_of_range():
    with pytest.raises(IndexError):
        validate_index((6, 0), (6, 4))
    with pytest.raises(IndexError):
        validate_index((0, -1), (6, 4))
    validate_index((5, 3), (6, 4))  # in range: no error


def test_product():
    assert product(()) == 1
    assert product((3, 4, 5)) == 60


@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4), st.data())
@settings(max_examples=60, deadline=None)
def test_flatten_unflatten_roundtrip_property(dims, data):
    dims = tuple(dims)
    total = math.prod(dims)
    flat = data.draw(st.integers(min_value=0, max_value=total - 1))
    coords = unflatten_index(flat, dims)
    assert all(0 <= c < d for c, d in zip(coords, dims))
    assert flatten_index(coords, dims) == flat


# -- permutation helpers ----------------------------------------------------------


def test_identity_permutation():
    assert identity_permutation(4) == (1, 2, 3, 4)


def test_invert_permutation_roundtrip():
    sigma = (3, 1, 4, 2)
    inverse = invert_permutation(sigma)
    assert apply_permutation(apply_permutation((10, 20, 30, 40), sigma), inverse) == (10, 20, 30, 40)


@given(st.permutations(list(range(1, 6))))
@settings(max_examples=40, deadline=None)
def test_invert_permutation_property(sigma):
    inverse = invert_permutation(sigma)
    values = tuple(range(100, 100 + len(sigma)))
    assert apply_permutation(apply_permutation(values, sigma), inverse) == values


# -- RegP ---------------------------------------------------------------------------


def test_regp_identity_is_row_major():
    perm = RegP([3, 4])
    for i in range(3):
        for j in range(4):
            assert perm.apply((i, j)) == i * 4 + j


def test_regp_transpose():
    perm = RegP([3, 4], [2, 1])
    # physical order is column-major of the logical tile
    assert perm.apply((0, 0)) == 0
    assert perm.apply((1, 0)) == 1
    assert perm.apply((0, 1)) == 3
    assert perm.permuted_dims() == (4, 3)


def test_regp_inv_is_inverse():
    perm = RegP([2, 3, 4], [3, 1, 2])
    seen = set()
    for i in range(2):
        for j in range(3):
            for k in range(4):
                flat = perm.apply((i, j, k))
                assert perm.inv(flat) == (i, j, k)
                seen.add(flat)
    assert seen == set(range(24))


def test_regp_rejects_bad_sigma():
    with pytest.raises(ValueError):
        RegP([2, 2], [1, 3])
    with pytest.raises(ValueError):
        RegP([2, 2], [1, 1])
    with pytest.raises(ValueError):
        RegP([], [])


def test_regp_rejects_out_of_range_index():
    with pytest.raises(IndexError):
        RegP([2, 2]).apply((2, 0))


# -- GenP -----------------------------------------------------------------------------


def test_genp_applies_user_functions():
    perm = GenP([2, 3], lambda i, j: j * 2 + i, lambda f: (f % 2, f // 2), name="colmajor")
    assert perm.apply((1, 2)) == 5
    assert perm.inv(5) == (1, 2)
    assert perm.check_bijective()


def test_genp_check_bijective_detects_non_bijection():
    bad = GenP([2, 2], lambda i, j: 0, lambda f: (0, 0))
    assert not bad.check_bijective()


def test_genp_dims_and_repr():
    perm = GenP([4, 4], lambda i, j: i * 4 + j, lambda f: (f // 4, f % 4), name="rm")
    assert perm.dims() == (4, 4)
    assert "rm" in repr(perm)


# -- permutation library ----------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 5, 8, 17])
def test_antidiagonal_is_bijective(n):
    assert antidiagonal(n).check_bijective()


def test_antidiagonal_matches_paper_figure7_order():
    perm = antidiagonal(3)
    # anti-diagonal order of a 3x3 tile: (0,0), (0,1),(1,0), (0,2),(1,1),(2,0), ...
    order = sorted(((perm.apply((i, j)), (i, j)) for i in range(3) for j in range(3)))
    diagonals = [i + j for _, (i, j) in order]
    assert diagonals == sorted(diagonals)


def test_antidiagonal_contiguous_along_diagonal():
    perm = antidiagonal(17)
    positions = [perm.apply((i, 8 - i)) for i in range(9)]
    assert sorted(positions) == list(range(min(positions), min(positions) + 9))


@pytest.mark.parametrize("shape", [(3, 2), (2, 2, 2), (5,)])
def test_reverse_permutation_bijective(shape):
    assert reverse_permutation(*shape).check_bijective()


def test_reverse_permutation_formula():
    perm = reverse_permutation(3, 2)
    assert perm.apply((0, 0)) == 5
    assert perm.apply((2, 1)) == 0


@pytest.mark.parametrize("side,rank", [(2, 2), (4, 2), (8, 2), (4, 3)])
def test_morton_bijective(side, rank):
    assert morton(side, rank).check_bijective()


def test_morton_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        morton(6)


def test_morton_locality():
    perm = morton(4)
    # the four elements of each aligned 2x2 quad are contiguous in Z-order
    quad = {perm.apply((i, j)) for i in range(2) for j in range(2)}
    assert quad == set(range(4))


@pytest.mark.parametrize("rows,cols", [(8, 8), (16, 32), (4, 8)])
def test_xor_swizzle_bijective(rows, cols):
    assert xor_swizzle(rows, cols).check_bijective()


def test_xor_swizzle_removes_column_conflicts():
    perm = xor_swizzle(32, 32)
    column = [perm.apply((i, 0)) % 32 for i in range(32)]
    assert len(set(column)) == 32  # all different banks


def test_xor_swizzle_rejects_non_power_of_two_cols():
    with pytest.raises(ValueError):
        xor_swizzle(8, 6)


@pytest.mark.parametrize("side", [2, 4, 8, 16])
def test_hilbert2d_bijective(side):
    assert hilbert2d(side).check_bijective()


def test_hilbert2d_neighbours_are_adjacent():
    perm = hilbert2d(8)
    inv = perm.inv
    for d in range(63):
        (x0, y0), (x1, y1) = inv(d), inv(d + 1)
        assert abs(x0 - x1) + abs(y0 - y1) == 1


def test_hilbert_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        hilbert2d(6)
