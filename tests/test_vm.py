"""Golden equivalence of the vectorized execution engine (:mod:`repro.vm`).

The batched engine must be *observationally identical* to the tree-walk
interpreters: same output buffers bit-for-bit AND the same trace — every
DRAM counter (elements, bytes, transactions at the recorded sector size),
the shared-memory traffic and full bank-conflict profile (accesses,
passes, worst degree, histogram), and the flop counts.  These tests run
each app's kernel under both engines at small full-launch sizes and
compare everything; a mutation test then breaks the batched Triton store
on purpose and checks that :mod:`repro.check` catches the corruption,
proving the differential runner guards the vectorized path for real.
"""

import numpy as np
import pytest

from repro.vm import engine_mode, evenly_spaced, set_engine_mode, use_engine
from repro.vm import engine as engine_module


def trace_counters(trace) -> dict:
    """Every comparable counter of a substrate trace, as plain numbers."""
    out = {}
    for key in ("load_elements", "store_elements", "load_bytes", "store_bytes",
                "load_transactions", "store_transactions", "flops",
                "tensor_core_flops", "smem_load_bytes", "smem_store_bytes",
                "smem_bytes", "smem_per_block", "blocks", "threads_per_block",
                "programs", "sector_bytes"):
        if hasattr(trace, key):
            out[key] = float(getattr(trace, key))
    profile = getattr(trace, "smem_profile", None)
    if profile is not None:
        out["smem_accesses"] = profile.accesses
        out["smem_total_passes"] = profile.total_passes
        out["smem_worst_degree"] = profile.worst_degree
        out["smem_histogram"] = dict(profile.histogram)
    return out


def assert_engines_agree(run):
    """Run ``run()`` under both engines; outputs and traces must match."""
    with use_engine("treewalk"):
        tree_out, tree_trace = run()
    with use_engine("vectorized-strict"):
        vec_out, vec_trace = run()
    tree_out, vec_out = np.asarray(tree_out), np.asarray(vec_out)
    assert tree_out.shape == vec_out.shape
    assert np.array_equal(tree_out, vec_out)
    assert trace_counters(tree_trace) == trace_counters(vec_trace)
    return tree_out


# -- engine-mode plumbing ---------------------------------------------------


def test_default_mode_is_vectorized(monkeypatch):
    monkeypatch.delenv("REPRO_VM", raising=False)
    monkeypatch.setattr(engine_module._local, "mode", None, raising=False)
    assert engine_mode() == "vectorized"


def test_env_selects_mode(monkeypatch):
    monkeypatch.setattr(engine_module._local, "mode", None, raising=False)
    monkeypatch.setenv("REPRO_VM", "treewalk")
    assert engine_mode() == "treewalk"
    # a typo'd engine name must fail loudly, not silently run the default
    # engine while the user believes they selected another
    monkeypatch.setattr(engine_module._local, "mode", None, raising=False)
    monkeypatch.setenv("REPRO_VM", "bogus")
    with pytest.raises(ValueError, match="REPRO_VM"):
        engine_mode()
    monkeypatch.setenv("REPRO_VM", "")
    assert engine_mode() == "vectorized"


def test_use_engine_restores_previous_mode():
    set_engine_mode("vectorized")
    with use_engine("treewalk"):
        assert engine_mode() == "treewalk"
        with use_engine("vectorized-strict"):
            assert engine_mode() == "vectorized-strict"
        assert engine_mode() == "treewalk"
    assert engine_mode() == "vectorized"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        set_engine_mode("fast")
    with pytest.raises(ValueError):
        with use_engine("faster"):
            pass


# -- sampled-id selection (the set-dedup regression) ------------------------


def test_evenly_spaced_exact_small_grids():
    assert evenly_spaced(16, 4) == [0, 4, 8, 12]
    assert evenly_spaced(7, 3) == [0, 2, 4]
    assert evenly_spaced(5, 5) == [0, 1, 2, 3, 4]
    # count >= total: the full range, never more
    assert evenly_spaced(4, 9) == [0, 1, 2, 3]
    assert evenly_spaced(0, 3) == []
    assert evenly_spaced(6, 0) == []


def test_evenly_spaced_always_exact_count():
    # the old float-stride + set-dedup selection could not *guarantee* the
    # requested count; the integer form is exact by construction, even at
    # grid sizes where float products lose integer precision
    for total, count in ((10**9, 997), (2**53 + 3, 1000), (12345, 123)):
        ids = evenly_spaced(total, count)
        assert len(ids) == count
        assert ids[0] == 0
        assert all(b > a for a, b in zip(ids, ids[1:]))
        assert ids[-1] < total


def test_sampled_launches_execute_exactly_the_requested_count():
    from repro.apps.softmax import generate_softmax_kernel, run_softmax

    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 8)).astype(np.float32)
    kernel = generate_softmax_kernel()
    _, trace = run_softmax(kernel, x, sample_programs=5)
    assert trace.sampled
    assert trace.programs == 16  # scaled() folds the 16/5 scale back in
    _, full = run_softmax(kernel, x)
    assert not full.sampled
    assert full.programs == 16


def test_sampled_block_launches_execute_exactly_the_requested_count():
    from repro.apps.stencil import STENCILS, run_stencil
    from repro.apps.transpose import (TransposeConfig, generate_transpose_module,
                                      run_transpose)

    spec = {s.name: s for s in STENCILS}["star-7pt"]
    rng = np.random.default_rng(1)
    grid = rng.standard_normal((8, 8, 8)).astype(np.float32)
    with use_engine("treewalk"):
        _, trace = run_stencil(grid, spec, brick=4)
    assert trace.executed_blocks == 8

    config = TransposeConfig(n=16, tile=8)
    kernel = generate_transpose_module(config.n, config.tile, "smem", skew=True)
    matrix = rng.standard_normal((16, 16)).astype(np.float32)
    _, result = run_transpose(kernel, matrix, config, sample_blocks=3)
    assert result.executed_blocks == 3


# -- golden equivalence: mini-Triton ---------------------------------------


@pytest.mark.parametrize("variant", ["nn", "nt", "tn", "tt"])
def test_vm_matmul_matches_treewalk(variant):
    from repro.apps.matmul import MatmulConfig, generate_matmul_kernel, run_matmul

    config = MatmulConfig(32, 32, 32, BM=8, BN=8, BK=8, GM=2)
    kernel = generate_matmul_kernel(variant)
    rng = np.random.default_rng(11)
    a = rng.standard_normal((32, 32)).astype(np.float16)
    b = rng.standard_normal((32, 32)).astype(np.float16)
    assert_engines_agree(lambda: run_matmul(kernel, a, b, config, variant))


def test_vm_grouped_gemm_matches_treewalk():
    from repro.apps.grouped_gemm import (GroupedGemmConfig,
                                         generate_grouped_gemm_kernel,
                                         run_grouped_gemm)

    config = GroupedGemmConfig(groups=2, M=16, N=16, K=16, BM=8, BN=8, BK=8)
    kernel = generate_grouped_gemm_kernel()
    rng = np.random.default_rng(12)
    a = rng.standard_normal((2, 16, 16)).astype(np.float16)
    b = rng.standard_normal((2, 16, 16)).astype(np.float16)
    assert_engines_agree(lambda: run_grouped_gemm(kernel, a, b, config))


def test_vm_softmax_matches_treewalk():
    from repro.apps.softmax import generate_softmax_kernel, run_softmax

    kernel = generate_softmax_kernel()
    rng = np.random.default_rng(13)
    x = rng.standard_normal((32, 16)).astype(np.float32)
    out = assert_engines_agree(lambda: run_softmax(kernel, x))
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)


def test_vm_layernorm_matches_treewalk():
    from repro.apps.layernorm import (generate_layernorm_backward,
                                      generate_layernorm_forward,
                                      run_layernorm_backward,
                                      run_layernorm_forward)

    rng = np.random.default_rng(14)
    x = rng.standard_normal((32, 16)).astype(np.float32)
    w = rng.standard_normal(16).astype(np.float32)
    b = rng.standard_normal(16).astype(np.float32)
    dy = rng.standard_normal((32, 16)).astype(np.float32)
    fwd = generate_layernorm_forward()
    bwd = generate_layernorm_backward()
    assert_engines_agree(lambda: run_layernorm_forward(fwd, x, w, b))
    assert_engines_agree(lambda: run_layernorm_backward(bwd, dy, x, w))


# -- golden equivalence: mini-CUDA -----------------------------------------


@pytest.mark.parametrize("layout", ["antidiagonal", "skew1", "row", "col"])
def test_vm_nw_matches_treewalk(layout):
    from repro.apps.nw import NwConfig, nw_buffer_layout, run_nw_blocked

    config = NwConfig(n=32, block=8)
    rng = np.random.default_rng(15)
    reference = rng.integers(-4, 5, size=(32, 32)).astype(np.int32)
    assert_engines_agree(
        lambda: run_nw_blocked(reference, config, layout=nw_buffer_layout(8, layout))
    )


def test_vm_lud_matches_treewalk():
    from repro.apps.lud import LudConfig, run_lud_internal

    config = LudConfig(n=64, block=16, cuda_block=8)
    rng = np.random.default_rng(16)
    matrix = rng.standard_normal((64, 64)).astype(np.float32)
    assert_engines_agree(lambda: run_lud_internal(matrix.copy(), config, step=0))


@pytest.mark.parametrize("name,layout", [
    ("star-7pt", None),
    ("star-7pt", "brick"),
    ("cube-125pt", None),
])
def test_vm_stencil_matches_treewalk(name, layout):
    from repro.apps.stencil import STENCILS, brick_layout, run_stencil

    spec = {s.name: s for s in STENCILS}[name]
    rng = np.random.default_rng(17)
    n = 8
    grid = rng.standard_normal((n, n, n)).astype(np.float32)
    group = brick_layout(n, 4) if layout == "brick" else None
    assert_engines_agree(lambda: run_stencil(grid, spec, layout=group, brick=4))


# -- golden equivalence: MLIR interpreter ----------------------------------


@pytest.mark.parametrize("variant,skew", [("naive", True), ("smem", True), ("smem", False)])
def test_vm_transpose_matches_treewalk(variant, skew):
    from repro.apps.transpose import (TransposeConfig, generate_transpose_module,
                                      run_transpose)

    config = TransposeConfig(n=32, tile=8)
    kernel = generate_transpose_module(config.n, config.tile, variant, skew=skew)
    rng = np.random.default_rng(18)
    matrix = rng.standard_normal((32, 32)).astype(np.float32)
    out = assert_engines_agree(lambda: run_transpose(kernel, matrix, config))
    np.testing.assert_array_equal(out.reshape(32, 32), matrix.T)


# -- the differential runner guards the vectorized path ---------------------


def test_check_catches_corrupted_vectorized_store(monkeypatch):
    """Mutation test: break the batched store, repro.check must notice.

    This is the proof that the golden-equivalence contract is enforced by
    machinery, not by luck: a vectorized executor that writes wrong values
    fails differential verification while the tree walk still passes.
    """
    from repro.check import run_check
    from repro.vm import triton as vm_triton

    config = {"implementation": "lego"}
    with use_engine("vectorized-strict"):
        assert run_check("softmax", config).status == "passed"

    original = vm_triton.batched_tl.store

    def corrupted(pointer, value, mask=None):
        return original(pointer, value + 1.0, mask)

    monkeypatch.setattr(vm_triton.batched_tl, "store", corrupted)
    with use_engine("vectorized-strict"):
        assert run_check("softmax", config).status == "failed"
    with use_engine("treewalk"):
        assert run_check("softmax", config).status == "passed"


def test_fallback_restores_buffers_after_batched_failure(monkeypatch):
    """A raising batched executor must not leave half-written buffers behind.

    The dispatch snapshots device buffers, restores them on failure and
    re-runs the tree walk — so plain ``vectorized`` mode still produces
    the correct output (and treewalk-identical counters) when the batched
    attempt dies halfway through.
    """
    from repro.apps.softmax import generate_softmax_kernel, run_softmax
    from repro.vm import triton as vm_triton

    rng = np.random.default_rng(19)
    x = rng.standard_normal((16, 8)).astype(np.float32)
    kernel = generate_softmax_kernel()
    with use_engine("treewalk"):
        expected, expected_trace = run_softmax(kernel, x)

    original = vm_triton.batched_tl.store
    calls = {"n": 0}

    def dies_after_writing(pointer, value, mask=None):
        original(pointer, value, mask)  # corrupt the buffer first
        calls["n"] += 1
        raise RuntimeError("batched executor exploded")

    monkeypatch.setattr(vm_triton.batched_tl, "store", dies_after_writing)
    with use_engine("vectorized-strict"):
        with pytest.raises(RuntimeError):
            run_softmax(kernel, x)
    with use_engine("vectorized"):
        out, trace = run_softmax(kernel, x)
    assert calls["n"] >= 2  # the batched attempt really ran (twice)
    np.testing.assert_array_equal(out, expected)
    assert trace_counters(trace) == trace_counters(expected_trace)
