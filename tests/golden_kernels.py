"""Golden-kernel artifact generation shared by the golden test and its regenerator.

``build_artifacts`` produces a name -> source-text mapping covering every
backend (Triton, CUDA, MLIR) and the four applications the acceptance
criteria call out (matmul, NW, LUD, stencil).  The checked-in files under
``tests/golden/`` were produced from the pre-refactor expression engine;
``tests/test_golden_kernels.py`` asserts the current engine reproduces them
byte for byte.

Regenerate (only when an *intentional* output change lands) with::

    PYTHONPATH=src python tests/golden_kernels.py --write
"""

from __future__ import annotations

import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"


def build_artifacts() -> dict[str, str]:
    from repro.apps import grouped_gemm, layernorm, lud, matmul, nw, softmax, stencil
    from repro.codegen import CodegenContext
    from repro.codegen.mlir import generate_transpose_module
    from repro.symbolic import PythonPrinter, Var

    artifacts: dict[str, str] = {}

    # Triton backend
    for variant in ("nn", "tn"):
        artifacts[f"matmul_{variant}.triton.txt"] = matmul.generate_matmul_kernel(variant).source
    artifacts["grouped_gemm.triton.txt"] = grouped_gemm.generate_grouped_gemm_kernel().source
    artifacts["softmax.triton.txt"] = softmax.generate_softmax_kernel().source
    artifacts["layernorm_fwd.triton.txt"] = layernorm.generate_layernorm_forward().source
    artifacts["layernorm_bwd.triton.txt"] = layernorm.generate_layernorm_backward().source

    # CUDA backend
    artifacts["nw_accessor.cuda.txt"] = nw.generate_nw_wrapper(16)
    artifacts["lud_internal_b64.cuda.txt"] = lud.generate_lud_internal_kernel(
        lud.LudConfig(1024, 64, 16)
    ).source

    # MLIR backend
    for variant in ("naive", "smem"):
        artifacts[f"transpose_{variant}.mlir.txt"] = generate_transpose_module(
            2048, 32, variant
        ).text

    # Stencil brick layout: lower the brick offset expression symbolically.
    layout = stencil.brick_layout(512, 8)
    i, j, k = Var("i"), Var("j"), Var("k")
    ctx = CodegenContext(name="stencil_brick")
    for var in (i, j, k):
        ctx.index(var, 512)
    ctx.bind("brick_offset", layout.apply(i, j, k))
    rendered = {name: b.render(PythonPrinter()) for name, b in ctx.lower().items()}
    artifacts["stencil_brick_offset.txt"] = rendered["brick_offset"] + "\n"

    return artifacts


def write_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, text in build_artifacts().items():
        (GOLDEN_DIR / name).write_text(text)
        print(f"wrote {GOLDEN_DIR / name}")


if __name__ == "__main__":
    if "--write" in sys.argv:
        write_goldens()
    else:
        print(__doc__)
