"""The reproduced tables and figures have the shapes the paper reports."""

import pytest

from repro.bench import figures
from repro.bench.harness import ExperimentResult, format_series, format_table
from repro.bench.roofline import lud_roofline, stencil_roofline


def test_table1_all_layouts_equivalent():
    result = figures.table1()
    assert all(row["lego_matches_cute"] for row in result.rows)
    assert len(result.rows) == 6


def test_table2_all_rules_simplify_and_agree_with_oracle():
    result = figures.table2()
    assert len(result.rows) == 7
    assert all(row["matches_expected"] for row in result.rows)
    assert all(row["oracle_agrees"] for row in result.rows)


def test_table3_generation_latency_is_interactive():
    result = figures.table3()
    times = {row["benchmark"]: row["generation_seconds"] for row in result.rows}
    assert len(times) == 8
    assert all(t < 30.0 for t in times.values())
    assert times["Softmax"] < times["Matmul (each variant)"]


def test_table4_op_reductions():
    result = figures.table4()
    by_name = {row["operator"]: row for row in result.rows}
    assert by_name["Matmul"]["original_ops"] == 31
    assert by_name["Matmul"]["optimized_ops"] == 9
    for row in result.rows:
        assert row["optimized_ops"] < row["original_ops"]


@pytest.fixture(scope="module")
def fig11_rows():
    return figures.fig11(sizes=(2048, 8192)).rows


def test_fig11_lego_tracks_triton(fig11_rows):
    for row in fig11_rows:
        if "triton_tflops" in row:
            assert row["lego_tflops"] == pytest.approx(row["triton_tflops"], rel=0.05)
        elif row["benchmark"] != "layernorm_forward":
            assert row["lego_gbs"] == pytest.approx(row["triton_gbs"], rel=0.15)


def test_fig11_cublas_gap_closes_with_size(fig11_rows):
    matmul_rows = {r["size"]: r for r in fig11_rows if r["benchmark"] == "matmul_fp16"}
    gap_2k = matmul_rows[2048]["cublas_tflops"] / matmul_rows[2048]["lego_tflops"]
    gap_8k = matmul_rows[8192]["cublas_tflops"] / matmul_rows[8192]["lego_tflops"]
    assert gap_2k > gap_8k
    assert gap_8k < 1.1


def test_fig11_fused_kernels_beat_pytorch(fig11_rows):
    for row in fig11_rows:
        if row["benchmark"] in ("softmax", "layernorm_forward", "layernorm_backward"):
            assert row["lego_gbs"] > row["pytorch_gbs"]


def test_fig12a_nw_speedups_in_band():
    result = figures.fig12a(sizes=(2048, 8192))
    speedups = [row["speedup"] for row in result.rows]
    assert all(1.3 <= s <= 2.2 for s in speedups)
    assert speedups[-1] >= speedups[0]  # grows with problem size


def test_fig12b_best_is_block64():
    result = figures.fig12b(n=2048)
    times = {row["lud_block"]: row["time_ms"] for row in result.rows}
    assert times[64] == min(times.values())
    coarsening = {row["lud_block"]: row["coarsening"] for row in result.rows}
    assert coarsening[64] == 4 and coarsening[16] == 1


def test_fig12c_brick_speedups_in_band():
    result = figures.fig12c()
    assert len(result.rows) == 6
    for row in result.rows:
        assert 3.2 <= row["speedup"] <= 4.0


def test_fig13_rooflines_move_toward_the_roof():
    lud_rows = {row["kernel"]: row for row in lud_roofline(2048)}
    assert lud_rows["LUD block 64 (coarsen 4)"]["achieved_gflops"] > lud_rows["LUD block 16 (coarsen 1)"]["achieved_gflops"]
    stencil_rows = stencil_roofline(512)
    for array_row, brick_row in zip(stencil_rows[::2], stencil_rows[1::2]):
        assert brick_row["achieved_gflops"] > array_row["achieved_gflops"]
        assert brick_row["achieved_gflops"] <= brick_row["memory_roof_gflops"] * 1.05


def test_table5_transpose_shape():
    result = figures.table5(sizes=(2048, 8192))
    for row in result.rows:
        assert row["lego_mlir_gbs"] > row["cuda_sdk_gbs"] * 0.98
    naive = [r for r in result.rows if r["variant"] == "naive"]
    smem = [r for r in result.rows if r["variant"] == "smem"]
    assert min(s["lego_mlir_gbs"] for s in smem) > 3 * max(n["lego_mlir_gbs"] for n in naive)


def test_experiment_result_helpers():
    result = ExperimentResult("X", "demo", rows=[{"a": 1, "b": 2.0}, {"a": 3, "b": 4.5}])
    assert result.column("a") == [1, 3]
    text = result.to_text()
    assert "X: demo" in text and "4.5" in text
    assert format_table([]) == "(no rows)"
    assert "s1: 1" in format_series("s1", [1], [1])
