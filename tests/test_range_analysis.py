"""Stride-aware range analysis: intervals, IndexRange, unified caches, proofs."""

import pytest

from repro.symbolic import (
    Const,
    EnvCaches,
    Interval,
    SymbolicEnv,
    Var,
    affine_strides,
    as_expr,
    constant_interval,
    index_range,
    is_mixed_radix_bijection,
    prove_in_bounds,
    prove_le,
    prove_nonneg,
    record_proof_queries,
    simplify_fixpoint,
)


# -- Interval.floordiv / Interval.mod vs concrete enumeration -----------------------


_ENDPOINTS = (-6, -3, -1, 0, 1, 3, 6)


def _bounded_intervals():
    return [
        Interval(lo, hi)
        for lo in _ENDPOINTS
        for hi in _ENDPOINTS
        if lo <= hi
    ]


def _sample_values(interval, spread=25):
    lo = interval.lo if interval.lo is not None else -spread
    hi = interval.hi if interval.hi is not None else spread
    return range(lo, hi + 1)


def test_interval_floordiv_sound_on_bounded_intervals():
    # exhaustive over small bounded numerator/divisor intervals: every
    # concrete quotient must land inside the abstract result
    for num in _bounded_intervals():
        for den in _bounded_intervals():
            result = num.floordiv(den)
            for x in _sample_values(num):
                for d in _sample_values(den):
                    if d == 0:
                        continue
                    assert result.contains(x // d), (num, den, x, d, result)


def test_interval_mod_sound_on_bounded_intervals():
    for num in _bounded_intervals():
        for den in _bounded_intervals():
            result = num.mod(den)
            for x in _sample_values(num):
                for d in _sample_values(den):
                    if d == 0:
                        continue
                    assert result.contains(x % d), (num, den, x, d, result)


@pytest.mark.parametrize("num", [
    Interval(None, -1), Interval(None, 6), Interval(-3, None),
    Interval(0, None), Interval(None, None),
])
@pytest.mark.parametrize("den", [
    Interval(1, 4), Interval(-4, -1), Interval(-3, 5),
    Interval(2, None), Interval(None, -2), Interval(None, None),
])
def test_interval_divmod_sound_on_half_bounded_intervals(num, den):
    fdiv, fmod = num.floordiv(den), num.mod(den)
    for x in _sample_values(num):
        for d in _sample_values(den):
            if d == 0:
                continue
            assert fdiv.contains(x // d), (num, den, x, d, fdiv)
            assert fmod.contains(x % d), (num, den, x, d, fmod)


def test_interval_floordiv_precision():
    # tight, not just sound: the positive-divisor corners
    assert Interval(0, 7).floordiv(Interval(2, 2)) == Interval(0, 3)
    assert Interval(-7, -1).floordiv(Interval(2, 2)) == Interval(-4, -1)
    # negative numerator with an unbounded divisor stays strictly negative
    assert Interval(-7, -3).floordiv(Interval(1, None)) == Interval(-7, -1)
    # negative divisor through the x//d == (-x)//(-d) identity
    assert Interval(1, 7).floordiv(Interval(-2, -2)) == Interval(-4, -1)


def test_interval_mod_precision():
    assert Interval(0, 100).mod(Interval(8, 8)) == Interval(0, 7)
    # the nonneg identity: a value already below the divisor is unchanged
    assert Interval(2, 5).mod(Interval(8, 8)) == Interval(2, 5)
    # negative divisor: python mod lands in (d, 0]
    assert Interval(0, 100).mod(Interval(-8, -8)) == Interval(-7, 0)


# -- IndexRange ---------------------------------------------------------------------


def test_index_range_of_declared_index_is_constant():
    env = SymbolicEnv()
    i = env.declare_index("i", 16)
    r = index_range(i, env)
    assert r.is_constant()
    assert (r.lo, r.hi) == (0, 15)
    assert constant_interval(i * 4 + 3, env) == Interval(3, 63)


def test_index_range_add_cancels_opaque_bases():
    env = SymbolicEnv()
    x = Var("x")  # undeclared: opaque
    r = index_range(x - x, env)
    # the opaque fallback is exact (offset interval [0, 0]), so the
    # enclosing Add cancels to a constant zero range
    assert r.is_constant()
    assert (r.lo, r.hi) == (0, 0)


def test_index_range_strides_track_affine_coefficients():
    env = SymbolicEnv()
    i = env.declare_index("i", 4)
    x = Var("x")
    r = index_range(x * 16 + i, env)
    assert not r.is_constant()
    assert r.stride_of("x") == 16
    assert (r.lo, r.hi) == (0, 3)


def test_index_range_mod_by_positive_constant_bounds():
    env = SymbolicEnv()
    x = Var("x")
    r = index_range(x % 8, env)
    assert r.is_constant()
    assert (r.lo, r.hi) == (0, 7)


# -- affine_strides / is_mixed_radix_bijection --------------------------------------


def test_affine_strides_exact_decomposition():
    tx, ty, r_j, r_i = Var("tx"), Var("ty"), Var("r_j"), Var("r_i")
    expr = tx + 16 * (ty + 16 * (r_j + 4 * r_i))
    assert affine_strides(expr, ("tx", "ty", "r_j", "r_i")) == (
        0,
        {"tx": 1, "ty": 16, "r_j": 256, "r_i": 1024},
    )


def test_affine_strides_rejects_foreign_vars_and_nonaffine():
    tx, other = Var("tx"), Var("other")
    assert affine_strides(tx + other, ("tx",)) is None
    assert affine_strides((tx * 5) % 7, ("tx",)) is None
    assert affine_strides(tx * tx, ("tx",)) is None


def test_mixed_radix_bijection_verdicts():
    # the LUD golden shape: strides (1, 16, 256, 1024), extents (16, 16, 4, 4)
    good = [(1, 16), (16, 16), (256, 4), (1024, 4)]
    assert is_mixed_radix_bijection(0, good, 4096)
    # permuted order is still a basis
    assert is_mixed_radix_bijection(0, list(reversed(good)), 4096)
    # extent-1 dimensions contribute nothing
    assert is_mixed_radix_bijection(0, good + [(7, 1)], 4096)
    # broken chains, offsets and wrong totals are all rejected
    assert not is_mixed_radix_bijection(1, good, 4096)
    assert not is_mixed_radix_bijection(0, [(1, 16), (8, 16)], 256)
    assert not is_mixed_radix_bijection(0, good, 2048)
    assert not is_mixed_radix_bijection(0, [(1, 4), (-4, 4)], 16)


# -- unified cache epoch ------------------------------------------------------------


def test_env_caches_share_one_invalidation_epoch():
    env = SymbolicEnv()
    caches = env.caches
    assert isinstance(caches, EnvCaches)
    i = env.declare_index("i", 8)
    # populate several families through their public entry points
    simplify_fixpoint((i + 8) % 8, env)
    prove_nonneg(i, env)
    index_range(i, env)
    populated = [fam for fam in caches.families() if fam]
    assert len(populated) >= 3
    epoch = caches.epoch
    fingerprint = env.fingerprint
    env.declare_index("j", 4)  # new fact: one bump clears every family
    assert caches.epoch == epoch + 1
    assert env.fingerprint != fingerprint
    assert all(not fam for fam in caches.families())


def test_env_copy_snapshots_caches():
    env = SymbolicEnv()
    i = env.declare_index("i", 8)
    index_range(i, env)
    clone = env.copy()
    clone.declare_index("j", 4)
    # the clone invalidated its own caches; the original kept its entries
    assert any(env.caches.families())
    assert env.fingerprint != clone.fingerprint


# -- simplify rules fed by range facts ----------------------------------------------


def test_div_interval_collapse_handles_negative_ranges():
    env = SymbolicEnv()
    j = env.declare_range("j", -3, -1)
    # [-3, -1] lies within [-4, 0), so j // 4 is the constant -1 — out of
    # reach of the nonneg-only div rules
    assert simplify_fixpoint(as_expr(j) // 4, env) == Const(-1)


def test_mod_interval_collapse_rewrites_to_offset():
    env = SymbolicEnv()
    j = env.declare_range("j", -3, -1)
    simplified = simplify_fixpoint(as_expr(j) % 4, env)
    for value in (-3, -2, -1):
        assert simplified.evaluate({"j": value}) == value % 4


# -- prover: stride-aware stage and the in-bounds query -----------------------------


def test_prove_nonneg_through_possibly_negative_scaling():
    env = SymbolicEnv()
    x = env.declare_range("x", -5, 5)
    # range_of treats a product with a possibly-negative factor as top;
    # the IndexRange stage bounds 2x + 10 to [0, 20] directly
    assert prove_nonneg(2 * as_expr(x) + 10, env)
    assert not prove_nonneg(2 * as_expr(x) + 9, env)


def test_prove_in_bounds_is_inclusive_two_sided():
    env = SymbolicEnv()
    i = env.declare_index("i", 16)
    expr = i * 4 + 3
    assert prove_in_bounds(expr, 0, 63, env)
    assert prove_in_bounds(expr, 3, 63, env)
    assert not prove_in_bounds(expr, 0, 62, env)
    assert not prove_in_bounds(expr, 4, 63, env)


def test_record_proof_queries_captures_all_kinds():
    env = SymbolicEnv()
    i = env.declare_index("i", 16)
    with record_proof_queries() as log:
        prove_le(i, 15, env)
        prove_le(i, 15, env)  # cache hit is still a query
        prove_nonneg(i, env)
        prove_in_bounds(i, 0, 15, env)
    kinds = [kind for kind, _, _ in log]
    assert kinds.count("le") >= 2
    assert "nonneg" in kinds and "in_bounds" in kinds
    assert all(proven for _, _, proven in log)
    # recording is scoped: nothing records outside the context
    with record_proof_queries() as log2:
        pass
    prove_le(i, 15, env)
    assert log2 == []
