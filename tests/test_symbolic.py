"""Symbolic engine: expressions, ranges, simplification rules, prover, cost, printers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Add,
    CPrinter,
    Const,
    CostWeights,
    FloorDiv,
    Interval,
    Max,
    Min,
    MLIRArithPrinter,
    Mod,
    Mul,
    PythonPrinter,
    RangeEnv,
    SymbolicEnv,
    SymInterval,
    TritonPrinter,
    Var,
    as_expr,
    brute_force_check,
    choose_cheapest,
    expand,
    operation_count,
    prove,
    prove_le,
    prove_lt,
    prove_nonneg,
    simplify,
    simplify_fixpoint,
    symbols,
)
from repro.symbolic.expr import Cmp


# -- expression construction and evaluation ------------------------------------------


def test_as_expr_and_constants_fold():
    assert as_expr(3) == Const(3)
    assert (Const(2) + 3).evaluate({}) == 5
    assert (Const(2) * 3 - 1).evaluate({}) == 5


def test_operator_overloading_builds_nodes():
    x, y = symbols("x y")
    expr = (x + 2) * y - x // 3 + x % 4
    assert expr.evaluate({"x": 7, "y": 2}) == (7 + 2) * 2 - 7 // 3 + 7 % 4


def test_add_collects_like_terms():
    x = Var("x")
    assert (x + x) == Mul(2, x)
    assert (x - x) == Const(0)
    assert (2 * x + 3 * x) == Mul(5, x)


def test_mul_folds_constants_and_zero():
    x = Var("x")
    assert Mul(2, 3, x) == Mul(6, x)
    assert Mul(0, x) == Const(0)
    assert Mul(1, x) == x


def test_floordiv_and_mod_by_one():
    x = Var("x")
    assert FloorDiv(x, 1) == x
    assert Mod(x, 1) == Const(0)


def test_min_max_constant_folding():
    assert Min(3, 5) == Const(3)
    assert Max(3, 5, 2) == Const(5)
    x = Var("x")
    assert Min(x, x) == x


def test_expr_equality_and_hash_are_structural():
    x1, x2 = Var("x"), Var("x")
    assert x1 == x2
    assert hash(x1 + 1) == hash(x2 + 1)
    assert (x1 + 1) != (x1 + 2)


def test_subs_replaces_subexpressions():
    x, y = symbols("x y")
    expr = x * y + x
    replaced = expr.subs({x: Const(3)})
    assert replaced.evaluate({"y": 2}) == 9


def test_free_vars_and_walk():
    x, y = symbols("x y")
    expr = (x + y) // 2 % 5
    assert expr.free_vars() == {"x", "y"}
    assert any(isinstance(node, FloorDiv) for node in expr.walk())


def test_evaluate_missing_variable_raises():
    with pytest.raises(KeyError):
        Var("missing").evaluate({})


def test_comparisons_evaluate_to_bool():
    x = Var("x")
    assert x.lt(5).evaluate({"x": 3}) is True
    assert x.ge(5).evaluate({"x": 3}) is False


# -- intervals -----------------------------------------------------------------------


def test_interval_arithmetic():
    a = Interval(0, 3)
    b = Interval(1, 2)
    assert (a + b) == Interval(1, 5)
    assert (a * b) == Interval(0, 6)
    assert a.contains(2)
    assert not a.contains(4)


def test_interval_floordiv_and_mod():
    a = Interval(0, 10)
    d = Interval(2, 2)
    assert a.floordiv(d) == Interval(0, 5)
    assert a.mod(Interval(4, 4)).hi <= 3


def test_range_env_range_of():
    env = RangeEnv({"x": Interval(0, 7)})
    x = Var("x")
    assert env.range_of(x * 2 + 1) == Interval(1, 15)


def test_sym_interval_constructors():
    assert SymInterval.index(Var("N")).lo == Const(0)
    assert SymInterval.positive().lo == Const(1)
    lo, hi = SymInterval.point(4).constant_bounds()
    assert (lo, hi) == (4, 4)


# -- the Table II rules -----------------------------------------------------------------


@pytest.fixture()
def env():
    environment = SymbolicEnv()
    return environment


def test_rule1_multiple_plus_remainder_mod(env):
    d, q, r = symbols("d q r")
    env.declare_size(d)
    env.declare_nonneg(q)
    env.declare_index(r, d)
    assert simplify_fixpoint(Mod(d * q + r, d), env) == r


def test_rule2_multiple_plus_remainder_div(env):
    d, q, r = symbols("d q r")
    env.declare_size(d)
    env.declare_nonneg(q)
    env.declare_index(r, d)
    assert simplify_fixpoint(FloorDiv(d * q + r, d), env) == q


def test_rule3_mod_over_div(env):
    x, d = symbols("x d")
    env.declare_size(d)
    env.declare_nonneg(x)
    assert simplify_fixpoint(FloorDiv(Mod(x, d), d), env) == Const(0)


def test_rule4_small_numerator_div(env):
    x, a = symbols("x a")
    env.declare_size(a)
    env.declare_index(x, a)
    assert simplify_fixpoint(FloorDiv(x, a), env) == Const(0)


def test_rule5_small_value_mod(env):
    x, a = symbols("x a")
    env.declare_size(a)
    env.declare_index(x, a)
    assert simplify_fixpoint(Mod(x, a), env) == x


def test_rule6_division_by_one(env):
    n, y = symbols("n y")
    assert simplify_fixpoint(FloorDiv(n + y, 1), env) == n + y


def test_rule7_div_mod_recombination(env):
    x, a = symbols("x a")
    env.declare_size(a)
    env.declare_nonneg(x)
    assert simplify_fixpoint(a * FloorDiv(x, a) + Mod(x, a), env) == x


def test_rules_do_not_fire_without_side_conditions(env):
    x, a = symbols("x a")
    # x unconstrained: x % a must NOT simplify to x
    env.declare_size(a)
    assert simplify_fixpoint(Mod(x, a), env) != x


def test_divisibility_fact_enables_folding(env):
    K, BK = symbols("K BK")
    env.declare_size(K, BK)
    env.declare_divisible(K, BK)
    assert simplify_fixpoint(Mod(K, BK), env) == Const(0)
    assert simplify_fixpoint(Mul(BK, FloorDiv(K, BK)), env) == K


def test_nested_mod_collapses_with_divisibility(env):
    x, m, d = symbols("x m d")
    env.declare_size(m, d)
    env.declare_nonneg(x)
    env.declare_divisible(m, d)
    assert simplify_fixpoint(Mod(Mod(x, m), d), env) == Mod(x, d)


def test_simplified_matmul_pointer_expression(env):
    """The la_optr lowering of Figure 10 (pointer arithmetic collapses to <= 7 ops)."""
    from repro.core import Row, TileBy

    M, K, BM, BK, pid_m, k = symbols("M K BM BK pid_m k")
    env.declare_size(M, K, BM, BK)
    env.declare_index(pid_m, M // BM)
    env.declare_index(k, K // BK)
    env.declare_divisible(K, BK)
    env.declare_divisible(M, BM)
    layout = TileBy([M // BM, K // BK], [BM, BK]).OrderBy(Row(M, K))
    sl = layout[pid_m, k, :, :]
    sl.contribute_env(env)
    raw = sl.offset
    simplified = simplify_fixpoint(expand(raw), env)
    assert operation_count(simplified) <= 7
    # brute-force agreement on a concrete configuration
    atom_names = [atom.name for atom in sl.atoms]
    domains = {"M": [8], "K": [6], "BM": [4], "BK": [3], "pid_m": range(2), "k": range(2),
               atom_names[0]: range(4), atom_names[1]: range(3)}
    assert brute_force_check(raw, domains, equivalent_to=simplified)


def test_grouped_pid_m_matches_figure10(env):
    """The grouped thread-block inverse collapses to the Figure 10 expression."""
    nt_m, nt_n, GM, pid = symbols("nt_m nt_n GM pid")
    env.declare_size(nt_m, nt_n, GM)
    env.declare_index(pid, nt_m * nt_n)
    mn = Min(GM, nt_m)
    mx = Max(1, nt_m // GM)
    inner = nt_n * (Mod(pid // (nt_n * mn), mx) * mn + Mod(pid, mn)) + Mod(pid, nt_n * mn) // mn
    expr = FloorDiv(Mod(inner, nt_m * nt_n), nt_n)
    simplified = simplify_fixpoint(expr, env)
    expected = Mod(pid // (nt_n * mn), mx) * mn + Mod(pid, mn)
    assert simplified == expected


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_rule2_agrees_with_python_semantics(d, q, r):
    r = r % d
    x = Var("x")
    env = SymbolicEnv()
    env.declare_size(Var("d"))
    expr = FloorDiv(Var("d") * q + r, Var("d"))
    assert expr.evaluate({"d": d}) == (d * q + r) // d


@given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=63))
@settings(max_examples=60, deadline=None)
def test_rule7_oracle_property(a, x):
    expr = Const(a) * FloorDiv(Const(x), Const(a)) + Mod(Const(x), Const(a))
    assert expr.evaluate({}) == x


# -- prover ---------------------------------------------------------------------------------


def test_prove_nonneg_and_le():
    env = SymbolicEnv()
    n, i = symbols("N i")
    env.declare_size(n)
    env.declare_index(i, n)
    assert prove_nonneg(i, env)
    assert prove_le(i, n - 1, env)
    assert prove_lt(i, n, env)
    assert not prove_lt(n, i, env)


def test_prove_with_user_le_fact():
    env = SymbolicEnv()
    a, b = symbols("a b")
    env.declare_size(a, b)
    assert not prove_le(a, b, env)
    env.declare_le(a, b)
    assert prove_le(a, b, env)
    assert prove_le(2 * a, 2 * b, env)


def test_prove_structural_floordiv_identity():
    env = SymbolicEnv()
    x, d = symbols("x d")
    env.declare_size(d)
    env.declare_nonneg(x)
    assert prove_le(d * FloorDiv(x, d), x, env)


def test_prove_min_max_product_lemma():
    env = SymbolicEnv()
    a, b = symbols("a b")
    env.declare_size(a, b)
    assert prove_le(Min(a, b) * Max(1, a // b), a, env)


def test_prove_predicate_nodes():
    env = SymbolicEnv()
    i, n = symbols("i n")
    env.declare_size(n)
    env.declare_index(i, n)
    assert prove(Cmp("<", i, n), env)
    assert prove(Cmp(">=", i, 0), env)
    assert not prove(Cmp("<", n, i), env)


def test_brute_force_check_detects_inequivalence():
    x = Var("x")
    assert not brute_force_check(Mod(x, 4), {"x": range(8)}, equivalent_to=x)
    assert brute_force_check(Mod(x, 4), {"x": range(4)}, equivalent_to=x)


def test_declared_positive_expression():
    env = SymbolicEnv()
    K, BK, k = symbols("K BK k")
    env.declare_size(K, BK)
    env.declare_index(k, K // BK)  # implies K // BK >= 1
    assert env.is_declared_positive(K // BK)
    assert simplify_fixpoint(FloorDiv(k, K // BK), env) == Const(0)


# -- cost model and expansion choice ------------------------------------------------------------


def test_operation_count_counts_nodes():
    x, y = symbols("x y")
    assert operation_count(x + y) == 1
    assert operation_count((x + y) * 2) == 2
    assert operation_count([x + y, x * y]) == 2
    assert operation_count(x // y, CostWeights(floordiv=8)) == 8


def test_choose_cheapest_picks_minimum():
    x, y = symbols("x y")
    cheap = x + y
    pricey = (x + y) * (x + y) // 3
    label, chosen, cost = choose_cheapest([("pricey", pricey), ("cheap", cheap)])
    assert label == "cheap"
    assert chosen == cheap
    assert cost == operation_count(cheap)
    with pytest.raises(ValueError):
        choose_cheapest([])


def test_expand_distributes_products():
    x, y, z = symbols("x y z")
    expanded = expand((x + y) * z)
    assert expanded == x * z + y * z


# -- printers -------------------------------------------------------------------------------------


def test_python_and_triton_printers():
    x, y = symbols("x y")
    expr = (x + 1) * y // 4 % 3
    printed = PythonPrinter().doprint(expr)
    # the printed text must evaluate back to the same values as the expression
    for xv in range(5):
        for yv in range(5):
            assert eval(printed, {}, {"x": xv, "y": yv}) == expr.evaluate({"x": xv, "y": yv})
    rendered = TritonPrinter({"x": "tl.arange(0, 4)"}).doprint(x + 1)
    assert "tl.arange" in rendered


def test_c_printer_uses_c_operators():
    x = Var("x")
    text = CPrinter().doprint(x // 4 + x % 3)
    assert "/" in text and "%" in text and "//" not in text


def test_mlir_arith_printer_lowers_to_ops():
    x, y = symbols("x y")
    printer = MLIRArithPrinter({"x": "%x", "y": "%y"})
    ops, result = printer.lower(x * 4 + y % 2)
    assert result.startswith("%")
    assert any("arith.muli" in op for op in ops)
    assert any("arith.remsi" in op or "arith.remui" in op for op in ops)
