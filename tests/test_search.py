"""Tests for the scalable search engine (repro.tune.search and friends).

Covers the streaming SearchSpace on million-point products, the seeded
strategies, the measured re-rank's fault isolation, the learned cost model,
the device zoo and the per-device tuning tables.
"""

import random
import time
import warnings

import numpy as np
import pytest

from repro.tune import (
    Choice,
    CostModel,
    ProfileStore,
    ResultCache,
    SearchSpace,
    TuningTable,
    autotune,
    evolutionary,
    measure_candidates,
    problem_signature,
    search,
    successive_halving,
)


def _million_point_space(constraint=None):
    return SearchSpace(
        *(Choice(f"axis{i}", tuple(range(10))) for i in range(6)),
        constraint=constraint,
    )


# -- streaming SearchSpace ----------------------------------------------------------


def test_million_point_space_counts_and_samples_fast():
    space = _million_point_space()
    started = time.perf_counter()
    assert len(space) == 10**6
    drawn = space.sample(64, random.Random(0))
    elapsed = time.perf_counter() - started
    assert elapsed < 1.0, f"len+sample took {elapsed:.2f}s on a 10^6-point space"
    assert len(drawn) == 64
    assert len({tuple(sorted(c.items())) for c in drawn}) == 64  # no replacement


def test_million_point_constrained_space_samples_fast():
    space = _million_point_space(constraint=lambda c: c["axis0"] != c["axis1"])
    started = time.perf_counter()
    drawn = space.sample(64, random.Random(1))
    elapsed = time.perf_counter() - started
    assert elapsed < 1.0, f"constrained sample took {elapsed:.2f}s"
    assert all(c["axis0"] != c["axis1"] for c in drawn)
    assert len(drawn) == 64


def test_decode_matches_enumeration_order():
    space = SearchSpace(Choice("a", (1, 2, 3)), Choice("b", ("x", "y")))
    assert [space.decode(i) for i in range(space.raw_size)] == list(space)
    with pytest.raises(IndexError):
        space.decode(space.raw_size)


def test_sample_is_seed_deterministic_and_subset_of_enumeration():
    space = SearchSpace(
        Choice("a", tuple(range(8))), Choice("b", tuple(range(8))),
        constraint=lambda c: (c["a"] + c["b"]) % 2 == 0,
    )
    everything = [tuple(sorted(c.items())) for c in space]
    first = space.sample(10, random.Random(7))
    second = space.sample(10, random.Random(7))
    assert first == second
    assert all(tuple(sorted(c.items())) in set(everything) for c in first)
    # results come back in enumeration order
    positions = [everything.index(tuple(sorted(c.items()))) for c in first]
    assert positions == sorted(positions)


def test_sample_count_covering_space_returns_full_enumeration():
    space = SearchSpace(
        Choice("a", (1, 2, 3)), Choice("b", (4, 5)),
        constraint=lambda c: c["a"] != 3,
    )
    assert space.sample(100, random.Random(0)) == list(space)


def test_chunks_stream_the_space_in_order():
    space = SearchSpace(Choice("a", tuple(range(5))), Choice("b", (0, 1)))
    chunks = list(space.chunks(3))
    assert [len(c) for c in chunks] == [3, 3, 3, 1]
    assert [cfg for chunk in chunks for cfg in chunk] == list(space)
    with pytest.raises(ValueError):
        next(space.chunks(0))


def test_stratified_sampling_covers_every_value_of_the_axis():
    space = SearchSpace(Choice("layout", ("row", "col", "brick")),
                        Choice("tile", tuple(range(16))))
    drawn = space.sample(6, random.Random(3), stratify="layout")
    assert {c["layout"] for c in drawn} == {"row", "col", "brick"}
    with pytest.raises(ValueError, match="unknown stratify axis"):
        space.sample(3, random.Random(0), stratify="nope")


def test_extended_app_spaces_cleared_the_scale_bar():
    from repro.apps.registry import get_app

    for name in ("matmul", "grouped_gemm", "lud", "stencil"):
        space = get_app(name).space
        assert len(space) >= 10_000, f"{name}: only {len(space)} valid configs"


# -- strategies ---------------------------------------------------------------------


def test_successive_halving_is_seed_deterministic():
    first = successive_halving("matmul", budget=96, seed=5, cache=ResultCache())
    second = successive_halving("matmul", budget=96, seed=5, cache=ResultCache())
    assert [c.config for c in first] == [c.config for c in second]
    other = successive_halving("matmul", budget=96, seed=6, cache=ResultCache())
    assert [c.config for c in first] != [c.config for c in other]


def test_evolutionary_is_seed_deterministic_and_respects_constraints():
    from repro.apps.registry import get_app

    space = get_app("lud").space
    first = evolutionary("lud", budget=80, seed=2, cache=ResultCache())
    second = evolutionary("lud", budget=80, seed=2, cache=ResultCache())
    assert [c.config for c in first] == [c.config for c in second]
    assert all(space.constraint(c.config) for c in first)


def test_sampled_strategies_always_include_the_paper_config():
    from repro.apps.registry import get_app

    paper_first = next(iter(get_app("lud").space))
    ranked = successive_halving("lud", budget=32, seed=11, cache=ResultCache())
    assert paper_first in [c.config for c in ranked]


def test_search_exhaustive_matches_autotune_winner():
    result = search("nw", strategy="exhaustive", measure_top_k=0, cache=ResultCache())
    baseline = autotune("nw")
    assert result.best.config == baseline.best.config
    assert result.evaluated == len(baseline.evaluations) == result.space_size


def test_search_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="unknown search strategy"):
        search("nw", strategy="simulated-annealing", cache=ResultCache())


# -- measured re-rank and fault isolation -------------------------------------------


def test_measure_top_k_larger_than_space_measures_everything():
    result = autotune("transpose", measure_top_k=1000)
    assert len(result.profiles) == len(result.evaluations) == 24
    assert result.best.measured


def test_inexecutable_candidate_is_demoted_not_fatal():
    # lud blocks >= 128 need more static shared memory than any CUDA device
    # allows, so their profiles come back "skipped"; the sweep must survive
    # and the demoted candidate must rank below every measured one
    from repro.tune.tuner import evaluate_configs
    from repro.apps.registry import get_app

    spec = get_app("lud")
    configs = [
        {"block": 128, "cuda_block": 16, "smem_layout": "row",
         "panel_layout": "row", "unroll": 1, "prefetch": 0, "vector": 1},
        {"block": 64, "cuda_block": 16, "smem_layout": "row",
         "panel_layout": "row", "unroll": 1, "prefetch": 0, "vector": 1},
        {"block": 32, "cuda_block": 16, "smem_layout": "row",
         "panel_layout": "row", "unroll": 1, "prefetch": 0, "vector": 1},
    ]
    candidates = evaluate_configs(spec, configs, cache=ResultCache())
    profiles = measure_candidates(spec, candidates)
    assert [p.status for p in profiles] == ["skipped", "measured", "measured"]
    demoted, ok_64, ok_32 = candidates
    assert not demoted.measured and demoted.metrics["profile_status"] == "skipped"
    assert ok_64.measured and ok_32.measured
    ranked = sorted(candidates, key=type(candidates[0]).rank_key)
    assert ranked[-1] is demoted  # analytic tier sorts below measured tier


def test_parallel_measurement_matches_serial_and_isolates_faults():
    from repro.tune.tuner import evaluate_configs
    from repro.apps.registry import get_app

    spec = get_app("lud")
    configs = [
        {"block": b, "cuda_block": 16, "smem_layout": "row",
         "panel_layout": "row", "unroll": 1, "prefetch": 0, "vector": 1}
        for b in (128, 64, 32, 16)
    ]
    serial = evaluate_configs(spec, configs, cache=ResultCache())
    parallel = evaluate_configs(spec, configs, cache=ResultCache())
    serial_profiles = measure_candidates(spec, serial, workers=0)
    parallel_profiles = measure_candidates(spec, parallel, workers=2)
    assert [p.status for p in serial_profiles] == [p.status for p in parallel_profiles]
    assert [c.measured_time_seconds for c in serial] == pytest.approx(
        [c.measured_time_seconds for c in parallel]
    )


def test_search_keeps_walking_past_demoted_candidates():
    # on the H100-like spec the analytic ranking leads with inexecutable
    # block-128 configurations; the measured ladder must drain past them and
    # still crown a *measured* winner — the paper's block-64 configuration
    result = search("lud", device="h100", budget=256, measure_top_k=4,
                    cache=ResultCache())
    assert result.measured >= 4
    assert result.best.measured
    assert result.best.config["block"] == 64
    assert result.best.config["cuda_block"] == 16


# -- the learned cost model ---------------------------------------------------------


def test_ridge_model_recovers_a_synthetic_ranking():
    rng = np.random.default_rng(0)
    features = [rng.uniform(0.0, 10.0, size=11) for _ in range(64)]
    # ground truth: time dominated by two features the model must discover
    seconds = [10 ** ((f[0] * 0.4 + f[4] * 0.2) - 3.0) for f in features]
    model = CostModel.fit(features, seconds, app="toy", device="test")
    predicted = [model.predict_seconds(f) for f in features]
    true_order = np.argsort(seconds)
    predicted_order = np.argsort(predicted)
    # rank agreement (Spearman-ish): the orderings must strongly correlate
    rank_of = np.empty(len(seconds))
    rank_of[true_order] = np.arange(len(seconds))
    pred_rank = np.empty(len(seconds))
    pred_rank[predicted_order] = np.arange(len(seconds))
    correlation = np.corrcoef(rank_of, pred_rank)[0, 1]
    assert correlation > 0.95


def test_cost_model_payload_roundtrip_and_feature_guard():
    model = CostModel.fit([np.arange(11.0) + i for i in range(9)],
                          [1e-3 * (i + 1) for i in range(9)], app="a", device="d")
    clone = CostModel.from_payload(model.payload())
    probe = np.linspace(0.0, 5.0, 11)
    assert clone.predict_seconds(probe) == pytest.approx(model.predict_seconds(probe))
    stale = model.payload()
    stale["features"] = ["something", "else"]
    assert CostModel.from_payload(stale) is None


def test_profile_store_trains_after_min_samples(tmp_path):
    cache = ResultCache(tmp_path / "store.json")
    store = ProfileStore(cache)
    assert store.model("lud", "dev") is None
    result = search("lud", budget=128, measure_top_k=8, cache=cache,
                    profile_store=store)
    device = result.device
    assert store.sample_count("lud", device) >= 8
    model = store.model("lud", device)
    assert model is not None and model.samples >= 8
    # the next search actually uses it
    again = search("lud", budget=128, seed=3, measure_top_k=4, cache=cache,
                   profile_store=store)
    assert again.model_used and again.model_samples >= 8
    assert again.best.config["block"] == 64


# -- device zoo ---------------------------------------------------------------------


def test_device_zoo_lookup():
    from repro.gpusim import A100_80GB, DEVICE_ZOO, get_device

    assert set(DEVICE_ZOO) >= {"a100", "h100", "rtx4090", "orin"}
    assert get_device("a100") is A100_80GB
    assert get_device("H100").num_sms == 132
    assert get_device(A100_80GB) is A100_80GB
    assert get_device(A100_80GB.name) is A100_80GB
    with pytest.raises(ValueError, match="a100"):
        get_device("tpu-v5")


def test_search_winners_are_device_keyed(tmp_path):
    cache = ResultCache(tmp_path / "zoo.json")
    table = TuningTable(cache)
    for device in ("a100", "rtx4090"):
        search("matmul", device=device, budget=192, measure_top_k=2,
               cache=cache, table=table)
    entries = table.entries()
    assert len(entries) == 2
    assert len({e["device"] for e in entries}) == 2
    a100_best = table.best("matmul", "NVIDIA A100 80GB")
    assert a100_best is not None and "BM" in a100_best


# -- tuning tables and service warming ----------------------------------------------


def test_problem_signature_ignores_tuning_axes():
    assert problem_signature({"n": 2048, "block": 64}) == "n=2048"
    assert problem_signature({"block": 64, "unroll": 4}) == "default"
    # variant is a tuned axis (the apps search over it), not a problem key
    assert problem_signature({"M": 512, "N": 256, "variant": "nn", "BM": 128}) == (
        "M=512,N=256"
    )


def test_warm_from_table_precompiles_winners(tmp_path):
    from repro.serve import CompileService, warm_from_table

    cache = ResultCache(tmp_path / "warm.json")
    table = TuningTable(cache)
    search("transpose", budget=64, measure_top_k=0, cache=cache, table=table)
    with CompileService(workers=2) as service:
        warmed = warm_from_table(service, table)
        assert warmed == 1
        assert service.stats().compiled == 1
        # the request a client would send for the tuned config is now a hit
        from repro.serve import CompileRequest
        from repro.apps.registry import get_app

        spec = get_app("transpose")
        config = table.best("transpose", "NVIDIA A100 80GB")
        service.compile(CompileRequest("transpose", spec.generate_config(config)))
        assert service.stats().memory_hits >= 1


# -- compatibility shims ------------------------------------------------------------


def test_tune_cache_module_is_a_deprecated_alias():
    import importlib

    module = importlib.import_module("repro.tune.cache")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cls = module.ResultCache
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    from repro.cache import ResultCache as canonical

    assert cls is canonical


# -- the vectorized LUD analytic path -----------------------------------------------


def test_lud_vectorized_matches_reference_loop_at_defaults():
    from repro.apps.lud import LudConfig, lud_performance, lud_performance_vectorized
    from repro.gpusim import A100_80GB

    for block, cuda_block in ((16, 16), (32, 16), (64, 16), (64, 8), (128, 16)):
        config = LudConfig(n=2048, block=block, cuda_block=cuda_block)
        reference = lud_performance(config, A100_80GB)
        fast, features = lud_performance_vectorized(config, A100_80GB)
        assert fast == pytest.approx(reference, rel=1e-9), (block, cuda_block)
        assert features["flops"] > 0


def test_lud_satellite_axes_only_ever_cost():
    from repro.apps.lud import LudConfig, lud_performance_vectorized

    config = LudConfig(n=2048, block=64, cuda_block=16)
    neutral, _ = lud_performance_vectorized(config)
    for axes in ({"smem_layout": "col"}, {"panel_layout": "skew"},
                 {"unroll": 16}, {"prefetch": 1}, {"vector": 4}):
        penalised, _ = lud_performance_vectorized(config, **axes)
        assert penalised >= neutral, axes
