"""Measured profiling: trace->cost adapters, profile(), two-stage tuning.

The adapter tests pin the measured :class:`KernelCost` of one app per
substrate against hand-computed element/byte/transaction counts on tiny
fixed configurations, and the extrapolation tests assert that
``KernelCost.scaled`` of a sampled run reproduces the full (unsampled)
run.  The tuning tests are the acceptance bar: ``autotune(measure_top_k=)``
must reproduce the paper-preferred winners under *measured* ranking.
"""

import numpy as np
import pytest

from repro.apps.lud import LudConfig, lud_perf_case, run_lud_internal
from repro.apps.registry import PerfCase, get_app
from repro.apps.softmax import generate_softmax_kernel, run_softmax
from repro.apps.transpose import TransposeConfig, generate_transpose, run_transpose
from repro.gpusim import A100_80GB, KernelCost, occupancy_factor, warp_transactions
from repro.perf import (
    KernelProfile,
    adapter_for,
    profile,
    profile_app,
    trace_metrics,
    trace_to_cost,
)
from repro.serve.metrics import LatencyRecorder
from repro.tune import autotune


# -- satellite: LatencyRecorder percentile bias ------------------------------------


def test_percentile_nearest_rank_even_window():
    # p50 of [1, 2, 3, 4] is the 2nd smallest under ceil-based nearest rank;
    # the old round(q * (len - 1)) picked the 3rd (banker's rounding of 1.5)
    assert LatencyRecorder._percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0
    assert LatencyRecorder._percentile([1.0, 2.0], 0.50) == 1.0
    assert LatencyRecorder._percentile([1.0, 2.0, 3.0], 0.50) == 2.0


def test_percentile_pins_p50_p95_p99_exactly():
    recorder = LatencyRecorder()
    for v in range(1, 101):  # 1..100 milliseconds
        recorder.record(v / 1e3)
    snap = recorder.snapshot()
    # nearest rank over n=100: p-th percentile is the p-th smallest sample
    assert snap["p50_ms"] == pytest.approx(50.0)
    assert snap["p95_ms"] == pytest.approx(95.0)
    assert snap["p99_ms"] == pytest.approx(99.0)
    assert snap["max_ms"] == pytest.approx(100.0)


def test_percentile_empty_and_single():
    assert LatencyRecorder._percentile([], 0.5) == 0.0
    assert LatencyRecorder._percentile([7.0], 0.99) == 7.0


# -- satellite: occupancy clamps -----------------------------------------------------


def test_occupancy_clamped_by_max_blocks_per_sm():
    from dataclasses import replace

    # 32-thread blocks: the thread limit alone would allow 2048/32 = 64
    # resident blocks; the hardware scheduler stops at max_blocks_per_sm
    tiny_blocks = KernelCost(blocks=1e6, threads_per_block=32.0)
    capped = replace(A100_80GB, max_blocks_per_sm=2)
    assert occupancy_factor(tiny_blocks, capped) < occupancy_factor(tiny_blocks, A100_80GB)


def test_occupancy_penalises_narrow_blocks_with_few_resident_warps():
    # identical residency pressure, but 64-thread blocks contribute only two
    # warps each: too few resident warps to hide latency
    wide = KernelCost(blocks=1e6, threads_per_block=256.0, smem_per_block=32768.0)
    narrow = KernelCost(blocks=1e6, threads_per_block=64.0, smem_per_block=32768.0)
    assert occupancy_factor(narrow, A100_80GB) < occupancy_factor(wide, A100_80GB)


# -- adapters: one app per substrate, hand-computed -----------------------------------


def test_triton_adapter_matches_hand_computed_softmax_counts():
    m, n = 4, 8
    rng = np.random.default_rng(0)
    x = rng.standard_normal((m, n)).astype(np.float32)
    _, trace = run_softmax(generate_softmax_kernel(), x)
    # one program per row: each loads its 8-float row (32 bytes, exactly one
    # aligned sector) and stores it back
    assert trace.load_elements == m * n
    assert trace.store_elements == m * n
    assert trace.load_bytes == m * n * 4
    assert trace.load_transactions == m  # one 32-byte sector per row
    assert trace.store_transactions == m
    # counted flops: tl.max + tl.exp + tl.sum, one per element each
    assert trace.flops == 3 * m * n
    cost = trace_to_cost(trace, A100_80GB, name="softmax")
    assert cost.dram_bytes == 2 * m * n * 4  # moved == useful: fully coalesced
    assert cost.flops == 3 * m * n
    assert cost.blocks == m
    assert cost.tensor_core is False and cost.dtype == "fp32"
    metrics = trace_metrics(trace, A100_80GB)
    assert metrics["coalescing_efficiency"] == pytest.approx(1.0)


def test_cuda_adapter_matches_hand_computed_lud_counts():
    B = 8
    cfg = LudConfig(n=2 * B, block=B, cuda_block=B)  # one trailing block, r=1
    rng = np.random.default_rng(1)
    matrix = (rng.standard_normal((cfg.n, cfg.n)) + cfg.n * np.eye(cfg.n)).astype(np.float32)
    out, trace = run_lud_internal(matrix, cfg)
    # semantics: the wave applies m[B:, B:] -= m[B:, :B] @ m[:B, B:]
    expected = matrix.copy()
    expected[B:, B:] -= matrix[B:, :B] @ matrix[:B, B:]
    np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-5)
    # global traffic: two staged B x B panels + read-modify-write of the block
    assert trace.load_elements == 3 * B * B
    assert trace.store_elements == B * B
    # every 8-float row segment is 32 bytes in one aligned sector; a warp
    # covers 4 rows, so each 64-lane access costs 8 sector transactions
    assert trace.load_transactions == 3 * B  # 3 staged/read accesses x 8 rows
    assert trace.store_transactions == B
    # arithmetic: one multiply-add per (i, j, k)
    assert trace.flops == 2 * B**3
    # shared traffic: 2 B^2 staging stores + register-blocked 2 r b t^2 loads
    assert trace.smem_store_bytes == 2 * B * B * 4
    assert trace.smem_load_bytes == 2 * 1 * B * (B * B) * 4
    cost = trace_to_cost(trace, A100_80GB, name="lud_internal")
    assert cost.dram_bytes == 4 * B * B * 4  # fully coalesced: moved == useful
    assert cost.smem_bytes == trace.smem_load_bytes + trace.smem_store_bytes
    assert cost.blocks == 1 and cost.threads_per_block == B * B
    assert cost.smem_per_block == 2 * B * B * 4


def test_mlir_adapter_matches_hand_computed_transpose_counts():
    tile = 4
    cfg = TransposeConfig(n=2 * tile, tile=tile)
    kernel = generate_transpose(cfg, "smem", skew=True)
    rng = np.random.default_rng(2)
    matrix = rng.standard_normal((cfg.n, cfg.n)).astype(np.float32)
    out, trace = run_transpose(kernel, matrix, cfg)
    np.testing.assert_allclose(out, matrix.T)
    blocks = (cfg.n // tile) ** 2
    # each block reads its tile once and writes it once
    assert trace.load_elements == cfg.n * cfg.n
    assert trace.store_elements == cfg.n * cfg.n
    # 4-float row segments: sector count independently derived from the
    # access pattern via the gpusim coalescing model
    row_bytes = [(r * cfg.n + c) * 4 for r in range(tile) for c in range(tile)]
    sectors_per_block_access = warp_transactions(row_bytes, A100_80GB.dram_sector_bytes)
    assert trace.load_transactions == blocks * sectors_per_block_access
    assert trace.store_transactions == blocks * sectors_per_block_access
    # staged through shared memory: one store + one load per element
    assert trace.smem_bytes == 2 * cfg.n * cfg.n * 4
    assert trace.bank_conflict_factor == 1.0  # the skewed layout's whole point
    cost = trace_to_cost(trace, A100_80GB, name="transpose")
    expected_moved = (trace.load_transactions + trace.store_transactions) * 32.0
    assert cost.dram_bytes == max(expected_moved, 2 * cfg.n * cfg.n * 4)
    assert cost.blocks == blocks and cost.threads_per_block == tile * tile


def test_adapter_rejects_unknown_trace_types():
    with pytest.raises(TypeError, match="no trace->cost adapter"):
        adapter_for(object())


def test_profile_threads_the_device_into_substrate_recording():
    from dataclasses import replace

    # a 128-byte-sector device: each 64-byte softmax row (16 floats)
    # half-fills its sector, so the recorded coalescing efficiency drops to
    # 0.5 — the device must reach the substrate's recorder, not just the
    # cost adapter
    wide = replace(A100_80GB, dram_sector_bytes=128)
    default = profile("softmax", {"implementation": "lego"})
    coarse = profile("softmax", {"implementation": "lego"}, device=wide)
    assert default.ok and coarse.ok
    assert default.metrics["coalescing_efficiency"] == pytest.approx(1.0)
    assert coarse.metrics["coalescing_efficiency"] == pytest.approx(0.5)
    assert coarse.metrics["moved_dram_bytes"] == 2 * default.metrics["moved_dram_bytes"]


def test_lud_static_smem_limit_follows_the_device():
    from dataclasses import replace

    roomy = replace(A100_80GB, max_static_smem_bytes=256 * 1024)
    rng = np.random.default_rng(0)
    assert lud_perf_case({"block": 128, "cuda_block": 16}, rng) is None
    case = lud_perf_case({"block": 128, "cuda_block": 16}, rng, device=roomy)
    assert isinstance(case, PerfCase)


def test_adapter_charges_recorded_sector_granularity():
    from repro.minitriton.language import KernelTrace

    # transactions counted at a 64-byte granularity must be charged at it
    trace = KernelTrace(load_bytes=64.0, load_transactions=2.0, sector_bytes=64)
    cost = trace_to_cost(trace, A100_80GB)
    assert cost.dram_bytes == 128.0  # 2 transactions x the 64-byte sectors


# -- sampled-run extrapolation (KernelCost.scaled) -----------------------------------


def test_sampled_softmax_cost_matches_full_run():
    m, n = 16, 8
    rng = np.random.default_rng(3)
    x = rng.standard_normal((m, n)).astype(np.float32)
    kernel = generate_softmax_kernel()
    _, full = run_softmax(kernel, x)
    _, sampled = run_softmax(kernel, x, sample_programs=4)
    assert sampled.sampled is True and full.sampled is False
    # the per-program work is uniform, so the scaled sampled trace matches
    # the full run exactly — and so do the adapted costs
    full_cost = trace_to_cost(full, A100_80GB)
    sampled_cost = trace_to_cost(sampled, A100_80GB)
    assert sampled_cost.dram_bytes == pytest.approx(full_cost.dram_bytes)
    assert sampled_cost.flops == pytest.approx(full_cost.flops)
    assert sampled_cost.blocks == pytest.approx(full_cost.blocks)


def test_scaled_lud_cost_matches_wider_wave():
    # one measured block extrapolated by KernelCost.scaled must equal a real
    # launch with that many blocks (the kernel is uniform per block)
    B = 8
    rng = np.random.default_rng(4)
    one = LudConfig(n=2 * B, block=B, cuda_block=B)
    four = LudConfig(n=3 * B, block=B, cuda_block=B)  # 2 x 2 trailing blocks
    m1 = (rng.standard_normal((one.n, one.n)) + one.n * np.eye(one.n)).astype(np.float32)
    m4 = (rng.standard_normal((four.n, four.n)) + four.n * np.eye(four.n)).astype(np.float32)
    _, t1 = run_lud_internal(m1, one)
    _, t4 = run_lud_internal(m4, four)
    scaled = trace_to_cost(t1, A100_80GB).scaled(4.0)
    real = trace_to_cost(t4, A100_80GB)
    assert scaled.flops == pytest.approx(real.flops)
    assert scaled.smem_bytes == pytest.approx(real.smem_bytes)
    assert scaled.blocks == pytest.approx(real.blocks)
    assert scaled.dram_bytes == pytest.approx(real.dram_bytes)


# -- profile() ----------------------------------------------------------------------


def test_profile_transpose_measures_and_compares():
    report = profile("transpose", {"variant": "smem", "skew": 1, "tile": 32,
                                   "generator": "lego"})
    assert report.ok
    assert report.measured_seconds > 0
    assert report.analytic_seconds > 0
    assert report.analytic_error < 3.0
    assert report.target_config["n"] == 2048
    assert report.scale == (2048 // 32) ** 2 / 4.0
    assert report.metrics["bank_conflict_factor"] == pytest.approx(1.0)
    row = report.as_dict()
    assert row["status"] == "measured" and row["bound"] in ("dram", "smem", "compute", "l2")


def test_profile_skips_evaluation_only_baselines():
    report = profile("transpose", {"variant": "smem", "skew": 1, "tile": 32,
                                   "generator": "cuda_sdk"})
    assert report.skipped
    assert "no executable kernel" in report.reason


def test_profile_is_seed_deterministic():
    config = {"layout": "antidiagonal", "block": 8}
    a = profile("nw", config, seed=7)
    b = profile("nw", config, seed=7)
    assert a.ok and b.ok
    assert a.measured_seconds == b.measured_seconds
    assert a.metrics == b.metrics


def test_profile_app_always_includes_the_preferred_config():
    profiles = profile_app("lud", samples=1)
    first = next(iter(get_app("lud").space))
    assert profiles[0].config == first
    assert any(p.ok for p in profiles)


def test_lud_perf_case_rejects_static_smem_overflow():
    rng = np.random.default_rng(0)
    assert lud_perf_case({"block": 128, "cuda_block": 16}, rng) is None
    case = lud_perf_case({"block": 64, "cuda_block": 16}, rng)
    assert isinstance(case, PerfCase)
    nb = 2048 // 64
    assert case.scale == sum(j * j for j in range(1, nb))
    assert case.launches == 3 * nb
    with pytest.raises(ValueError, match="static shared"):
        run_lud_internal(np.eye(256, dtype=np.float32), LudConfig(n=256, block=128))


# -- two-stage tuning: the paper's winners under measured ranking ---------------------


def test_measured_autotune_reproduces_lud_block64_coarsen4():
    result = autotune("lud", measure_top_k=5)
    best = result.best
    assert best.measured
    assert best.config["block"] == 64
    assert best.config["cuda_block"] == 16  # coarsening 64 / 16 = 4
    assert best.metrics["analytic_error"] < 10.0
    assert len(result.profiles) == 5
    # measured candidates re-rank strictly ahead of analytic-only ones
    measured = [c for c in result.ranked if c.measured]
    assert result.ranked[: len(measured)] == measured


def test_measured_autotune_reproduces_nw_skewed_layout():
    result = autotune("nw", measure_top_k=4)
    best = result.best
    assert best.measured
    # the paper's fix: a conflict-free (anti-diagonal / skewed) buffer layout
    # (the staging phase contributes a trace of boundary conflicts, so the
    # wavefront-phase factor is near 1, not exactly 1)
    assert best.config["layout"] not in ("row", "col")
    assert best.metrics["bank_conflict_factor"] < 1.1
    conflicted = [p for p in result.profiles
                  if p.ok and p.config["layout"] in ("row", "col")]
    for p in conflicted:
        assert p.metrics["bank_conflict_factor"] > 1.1


def test_measured_autotune_reproduces_transpose_smem_over_naive():
    result = autotune("transpose", measure_top_k=5)
    best = result.best
    assert best.measured
    assert best.config["variant"] == "smem"
    assert best.config["generator"] == "lego"
    summary = result.summary()
    assert summary["measured_candidates"] >= 1
    assert summary["max_analytic_error"] < 10.0
    assert summary["best_measured_time_ms"] > 0


def test_measured_autotune_records_disagreement_per_candidate():
    result = autotune("lud", measure_top_k=3)
    measured = [c for c in result.evaluations if c.measured]
    assert measured
    for candidate in measured:
        assert candidate.metrics["analytic_error"] >= 1.0
        assert "coalescing_efficiency" in candidate.metrics
        assert candidate.metrics["measured_bound"] in ("dram", "smem", "compute", "l2")


# -- the sweep CLI -------------------------------------------------------------------


def test_perf_sweep_cli_writes_artifact(tmp_path):
    from repro.perf.__main__ import main

    path = tmp_path / "BENCH_perf.json"
    report = main(["--apps", "softmax", "--samples", "1", "--json", str(path)])
    assert report["ok"] is True
    assert path.exists()
    rows = report["apps"]["softmax"]
    assert rows["measured"] >= 1
    measured_rows = [r for r in rows["rows"] if r["status"] == "measured"]
    assert measured_rows[0]["measured_ms"] > 0
    assert measured_rows[0]["analytic_ms"] > 0
    assert "coalescing_efficiency" in measured_rows[0]["metrics"]


def test_kernel_profile_summary_reads_reasonably():
    report = KernelProfile(app="x", config={"a": 1}, reason="because")
    assert "skipped" in report.summary()
