"""The multi-process compile farm: claims, sharded store, chaos, SLO replay.

Everything here runs real worker *processes* (spawn context) — these are the
tests that earn the farm's headline claims: exactly-once compilation across
processes, survival of a SIGKILL mid-compile, bounded admission with typed
shedding, strict interactive priority, and bit-identical replay summaries
regardless of worker count.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.cache import ClaimRegistry, ResultCache, ShardedFileStore
from repro.serve import (
    CompileFarm,
    CompileRequest,
    CompileService,
    LANE_INTERACTIVE,
    LANE_SWEEP,
    Rejected,
    synthetic_requests,
    table_requests,
    trace_summary,
    traffic_trace,
)
from repro.serve.__main__ import main as serve_main, parse_phases
from repro.tune.tables import TuningTable

SPAWN = multiprocessing.get_context("spawn")


# -- claim files --------------------------------------------------------------------


def test_claim_acquire_is_exclusive(tmp_path):
    a = ClaimRegistry(tmp_path, ttl=30.0, owner="a")
    b = ClaimRegistry(tmp_path, ttl=30.0, owner="b")
    claim = a.acquire("kernel-1")
    assert claim is not None
    assert b.acquire("kernel-1") is None, "a live claim must block other claimants"
    assert b.held("kernel-1")
    assert b.holder("kernel-1")["owner"] == "a"
    claim.release()
    assert not b.held("kernel-1")
    second = b.acquire("kernel-1")
    assert second is not None and second.registry is b
    second.release()
    assert a.outstanding() == []


def test_claim_release_is_idempotent_and_context_managed(tmp_path):
    registry = ClaimRegistry(tmp_path, ttl=30.0)
    with registry.acquire("k") as claim:
        assert registry.held("k")
    claim.release()  # second release is a no-op
    assert registry.outstanding() == []


def test_expired_lease_is_broken(tmp_path):
    holder = ClaimRegistry(tmp_path, ttl=0.05, owner="holder")
    claim = holder.acquire("k")
    assert claim is not None
    time.sleep(0.1)
    breaker = ClaimRegistry(tmp_path, ttl=30.0, owner="breaker")
    # make the pid check inconclusive so only the deadline can break it:
    # a live-pid same-host claim past its lease must still be breakable
    taken = breaker.acquire("k")
    assert taken is not None, "an expired lease must be breakable"
    assert breaker.broken == 1
    assert breaker.holder("k")["owner"] == "breaker"
    taken.release()


def test_dead_claimant_is_broken_before_lease_expiry(tmp_path):
    """A same-host claim whose pid is gone breaks immediately (no TTL wait)."""
    proc = SPAWN.Process(target=_exit_zero)
    proc.start()
    proc.join()
    registry = ClaimRegistry(tmp_path, ttl=3600.0, owner="breaker")
    path = registry._path("k")
    path.write_text(json.dumps({
        "owner": "ghost", "pid": proc.pid,
        "host": __import__("socket").gethostname(),
        "deadline": time.time() + 3600.0,
    }))
    started = time.perf_counter()
    claim = registry.acquire("k")
    assert claim is not None, "a dead claimant must not hold the claim"
    assert time.perf_counter() - started < 5.0, "broke via pid, not the 1h lease"
    assert registry.broken == 1
    claim.release()


def _exit_zero():
    pass


def test_claim_refresh_extends_lease(tmp_path):
    registry = ClaimRegistry(tmp_path, ttl=0.2)
    claim = registry.acquire("k")
    deadline = claim.deadline
    time.sleep(0.1)
    claim.refresh(ttl=30.0)
    assert claim.deadline > deadline
    time.sleep(0.15)  # past the original lease; refreshed claim still live
    other = ClaimRegistry(tmp_path, ttl=30.0)
    assert other.acquire("k") is None
    claim.release()


# -- the sharded file store ---------------------------------------------------------


def test_filestore_roundtrip_and_enumeration(tmp_path):
    store = ShardedFileStore(tmp_path / "s", shards=4)
    assert store.get("missing") is None
    for i in range(20):
        store.put(f"key-{i}", {"index": i})
    assert len(store) == 20
    assert store.get("key-7") == {"index": 7}
    assert "key-7" in store and "key-99" not in store
    assert sorted(store.keys()) == sorted(f"key-{i}" for i in range(20))
    assert dict(store.items())["key-3"] == {"index": 3}
    store.put("key-3", {"index": 33})  # overwrite wins
    assert store.get("key-3") == {"index": 33}
    assert store.stats()["corrupt_entries"] == 0
    assert store.verify_integrity() == {"entries": 20, "corrupt": 0, "stray_tmp": 0}


def test_filestore_prune(tmp_path):
    store = ShardedFileStore(tmp_path / "s", shards=2)
    for i in range(10):
        store.put(f"key-{i}", {"index": i})
    removed = store.prune(lambda key, value: value["index"] % 2 == 0)
    assert removed == 5
    assert len(store) == 5
    assert all(value["index"] % 2 == 0 for _, value in store.items())


def test_filestore_flags_foreign_corruption(tmp_path):
    """Junk written *around* the atomic protocol is detected, not crashed on."""
    store = ShardedFileStore(tmp_path / "s", shards=2)
    store.put("good", {"ok": True})
    path = store._path("bad")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ not json")
    assert store.get("bad") is None
    assert store.stats()["corrupt_entries"] == 1
    integrity = store.verify_integrity()
    assert integrity["corrupt"] == 1 and integrity["entries"] == 2
    # and a writer that died between mkstemp and replace leaves legal debris
    (path.parent / "dead.json.x.tmp").write_text("partial")
    assert store.verify_integrity()["stray_tmp"] == 1
    assert store.get("good") == {"ok": True}


# -- multi-process contention stress (satellite: torn-write property) ----------------


def _hammer_store(root: str, writer_id: int, rounds: int, keys: int) -> None:
    store = ShardedFileStore(root)
    for round_no in range(rounds):
        for k in range(keys):
            body = f"{writer_id}:{round_no}:{k}" * 20
            store.put(f"shared-{k}", {
                "writer": writer_id, "round": round_no, "body": body,
                "checksum": _checksum(body),
            })


def _checksum(body: str) -> str:
    import hashlib

    return hashlib.sha256(body.encode()).hexdigest()


def test_filestore_multiprocess_writers_never_tear(tmp_path):
    """N processes overwriting the same keys: every read is a complete write."""
    root = str(tmp_path / "contended")
    writers = [
        SPAWN.Process(target=_hammer_store, args=(root, w, 30, 8))
        for w in range(4)
    ]
    for p in writers:
        p.start()
    reader = ShardedFileStore(root)
    deadline = time.monotonic() + 60.0
    reads = 0
    while any(p.is_alive() for p in writers):
        assert time.monotonic() < deadline, "stress writers wedged"
        for k in range(8):
            value = reader.get(f"shared-{k}")
            if value is not None:
                reads += 1
                assert value["checksum"] == _checksum(value["body"]), (
                    "torn read: checksum does not match body"
                )
    for p in writers:
        p.join()
        assert p.exitcode == 0
    assert reads > 0, "the reader never overlapped the writers"
    assert reader.stats()["corrupt_entries"] == 0
    integrity = reader.verify_integrity()
    assert integrity["corrupt"] == 0
    assert integrity["entries"] == 8


def _hammer_result_cache(path: str, writer_id: int, rounds: int) -> None:
    for round_no in range(rounds):
        cache = ResultCache(path)
        assert not cache.corrupt_reset, "a writer observed a torn store"
        cache.put(f"writer-{writer_id}/round-{round_no}", {"writer": writer_id})
        cache.reload()
        cache.save()


def test_result_cache_multiprocess_saves_stay_readable(tmp_path):
    """Concurrent reload+save cycles never leave a torn/unparseable store."""
    path = str(tmp_path / "store.json")
    writers = [
        SPAWN.Process(target=_hammer_result_cache, args=(path, w, 15))
        for w in range(3)
    ]
    for p in writers:
        p.start()
    deadline = time.monotonic() + 60.0
    while any(p.is_alive() for p in writers):
        assert time.monotonic() < deadline, "result-cache writers wedged"
        observer = ResultCache(path)
        assert not observer.corrupt_reset, "os.replace atomicity was violated"
    for p in writers:
        p.join()
        assert p.exitcode == 0
    final = ResultCache(path)
    assert not final.corrupt_reset
    assert len(final) > 0


# -- the farm: serving correctness ---------------------------------------------------


def _small_trace(total: int, duplicate_fraction: float = 0.5, seed: int = 11):
    return synthetic_requests(
        apps=["matmul", "lud"], total=total,
        duplicate_fraction=duplicate_fraction, seed=seed,
    )


def test_farm_serves_same_kernels_as_thread_service():
    requests = _small_trace(10, duplicate_fraction=0.0)
    with CompileService(workers=2) as service:
        expected = service.submit_batch(requests)
    with CompileFarm(workers=2) as farm:
        got = farm.submit_batch(requests, lane=LANE_INTERACTIVE)
        stats = farm.stats()
    assert [getattr(k, "source", None) for k in got] == \
        [getattr(k, "source", None) for k in expected]
    assert stats.lost == 0 and stats.double_compiled == 0
    assert stats.submitted == stats.shed + stats.resolved


def test_farm_dedups_duplicates_to_one_compile_each():
    requests = _small_trace(36, duplicate_fraction=0.7)
    distinct = len({r.stable_key() for r in requests})
    with CompileFarm(workers=3) as farm:
        futures = [farm.submit(r) for r in requests]
        for f in futures:
            f.result(timeout=120)
        stats = farm.stats()
        integrity = farm._store.verify_integrity()
    assert stats.compiled == distinct, "duplicates must coalesce, not recompile"
    assert stats.double_compiled == 0
    assert stats.lost == 0
    assert integrity["corrupt"] == 0
    lane = stats.lane(LANE_INTERACTIVE)
    assert lane.coalesced == len(requests) - distinct
    assert lane.latency["p999_ms"] >= lane.latency["p99_ms"] >= 0.0


def test_farm_memory_tier_answers_repeats():
    request = CompileRequest("matmul", {"variant": "nn"})
    with CompileFarm(workers=1) as farm:
        first = farm.compile(request)
        second = farm.compile(request)
        stats = farm.stats()
    assert first.source == second.source
    assert stats.lane(LANE_INTERACTIVE).memory_hits == 1
    assert stats.compiled == 1


def test_farm_rejects_unknown_lane():
    with CompileFarm(workers=1) as farm:
        with pytest.raises(ValueError, match="unknown lane"):
            farm.submit(CompileRequest("matmul", {"variant": "nn"}), lane="batch")


# -- admission control ---------------------------------------------------------------


def test_sweep_overload_sheds_typed_rejections():
    requests = _small_trace(24, duplicate_fraction=0.0, seed=13)
    with CompileFarm(workers=1, admission={LANE_SWEEP: 2},
                     compile_delay=0.05) as farm:
        futures = [farm.submit(r, lane=LANE_SWEEP) for r in requests]
        results = [f.result(timeout=120) for f in futures]
        stats = farm.stats()
    shed = [r for r in results if isinstance(r, Rejected)]
    assert shed, "a 2-deep sweep lane must shed a 24-request instant flood"
    marker = shed[0]
    assert marker.lane == LANE_SWEEP and marker.reason == "queue_full"
    assert marker.limit == 2 and marker.queue_depth >= 2
    assert stats.lane(LANE_SWEEP).shed == len(shed)
    assert stats.lost == 0, "submitted must equal shed + resolved"
    assert stats.submitted == stats.shed + stats.resolved


def test_interactive_lane_jumps_the_sweep_queue():
    """With a sweep backlog queued, an interactive arrival resolves early."""
    sweep = _small_trace(8, duplicate_fraction=0.0, seed=17)
    order: list[tuple[str, int]] = []
    lock = threading.Lock()

    def record(tag, index):
        def _done(_future):
            with lock:
                order.append((tag, index))
        return _done

    with CompileFarm(workers=1, max_outstanding=1, compile_delay=0.05) as farm:
        futures = []
        for i, request in enumerate(sweep):
            future = farm.submit(request, lane=LANE_SWEEP)
            future.add_done_callback(record("sweep", i))
            futures.append(future)
        interactive = farm.submit(
            CompileRequest("matmul", {"variant": "tt"}), lane=LANE_INTERACTIVE
        )
        interactive.add_done_callback(record("interactive", 0))
        futures.append(interactive)
        for f in futures:
            f.result(timeout=120)
    position = [tag for tag, _ in order].index("interactive")
    # at submit time at most max_outstanding (1) sweep tickets are in flight,
    # plus one may complete while the interactive request is being enqueued —
    # strict priority means it is dispatched next, never after the backlog
    assert position <= 2, f"interactive resolved at position {position} of {order}"


# -- chaos: SIGKILL mid-compile ------------------------------------------------------


def test_sigkill_mid_compile_redrives_without_loss_or_double_compile():
    requests = _small_trace(8, duplicate_fraction=0.0, seed=19)
    with CompileFarm(workers=2, compile_delay=0.4, claim_ttl=2.0) as farm:
        futures = [farm.submit(r) for r in requests]
        time.sleep(0.5)  # land the kill inside a compile_delay window
        killed = farm.kill_worker(0)
        results = [f.result(timeout=180) for f in futures]
        stats = farm.stats()
        integrity = farm._store.verify_integrity()
        claims_left = farm._claims_dir.glob("*.claim")
    assert killed > 0
    assert all(not isinstance(r, Rejected) for r in results)
    assert stats.restarts >= 1, "the dead worker was never replaced"
    assert stats.redriven >= 1, "the orphaned in-flight work was not re-driven"
    assert stats.alive == 2, "the farm did not return to full strength"
    assert stats.lost == 0
    assert stats.errors == 0
    assert stats.double_compiled == 0, "a kill must never double-compile a kernel"
    assert integrity["corrupt"] == 0, "the kill corrupted a store shard"
    assert list(claims_left) == [], "a claim file outlived the drain"


def test_repeated_kills_exhaust_into_farm_error():
    """A request that keeps killing its worker fails loudly, not forever."""
    request = CompileRequest("matmul", {"variant": "nn"})
    from repro.serve import FarmCompileError

    with CompileFarm(workers=1, compile_delay=0.6, max_redrives=1,
                     claim_ttl=1.0) as farm:
        future = farm.submit(request)
        deadline = time.monotonic() + 60.0
        kills = 0
        while not future.done() and time.monotonic() < deadline:
            try:
                farm.kill_worker(0)
                kills += 1
            except RuntimeError:
                pass  # between death and respawn: no live worker to kill
            time.sleep(0.3)
        assert future.done(), "the future never resolved under repeated kills"
        with pytest.raises(FarmCompileError):
            future.result()
        assert kills >= 2
        assert farm.stats().lost == 0


# -- cross-process / cross-farm claim dedup ------------------------------------------


def test_two_farms_sharing_a_store_compile_each_kernel_once(tmp_path):
    """Claims dedup across *farms* too: shared store, global exactly-once."""
    requests = _small_trace(4, duplicate_fraction=0.0, seed=23)
    distinct = len({r.stable_key() for r in requests})
    root = tmp_path / "shared-farm-store"
    farm_a = CompileFarm(workers=2, store=root, compile_delay=0.3)
    farm_b = CompileFarm(workers=2, store=root, compile_delay=0.3)
    try:
        futures = []
        for request in requests:
            futures.append(farm_a.submit(request))
            futures.append(farm_b.submit(request))
        for f in futures:
            assert f.result(timeout=180) is not None
        stats_a, stats_b = farm_a.stats(), farm_b.stats()
    finally:
        farm_a.close()
        farm_b.close()
    total_compiled = stats_a.compiled + stats_b.compiled
    assert total_compiled == distinct, (
        f"{total_compiled} fresh compiles for {distinct} kernels across two farms"
    )
    assert stats_a.double_compiled == 0 and stats_b.double_compiled == 0
    dedup_waits = (
        stats_a.lane(LANE_INTERACTIVE).dedup_waits
        + stats_b.lane(LANE_INTERACTIVE).dedup_waits
        + stats_a.lane(LANE_INTERACTIVE).store_hits
        + stats_b.lane(LANE_INTERACTIVE).store_hits
    )
    assert dedup_waits == 2 * distinct - total_compiled


# -- cache warming from tuning tables ------------------------------------------------


def _winner_table(tmp_path, version=None):
    cache = ResultCache(tmp_path / "tables.json")
    table = TuningTable(cache)
    table.put("matmul", "devA", {"variant": "nn"}, time_ms=1.0,
              measured=True, version=version)
    table.put("lud", "devA", {"n": 1024, "block": 64, "cuda_block": 16},
              time_ms=2.0, measured=True, version=version)
    return table


def test_farm_warms_from_tuning_table(tmp_path):
    table = _winner_table(tmp_path)
    warm_requests = table_requests(table)
    assert len(warm_requests) == 2
    with CompileFarm(workers=2, warm_table=table) as farm:
        warmed_stats = farm.stats()
        # the very first client request for a warmed kernel is a memory hit
        first = farm.compile(warm_requests[0], lane=LANE_INTERACTIVE)
        stats = farm.stats()
    assert warmed_stats.warmed == 2
    assert first is not None
    lane = stats.lane(LANE_INTERACTIVE)
    assert lane.memory_hits == 1, "a warmed kernel still went to a worker"
    assert lane.hit_rate == 1.0
    sweep = stats.lane(LANE_SWEEP)
    assert sweep.submitted == 2, "warming rides the sweep lane"
    assert stats.compiled == 2 and stats.double_compiled == 0


def test_stale_version_table_warms_nothing(tmp_path):
    table = _winner_table(tmp_path, version="0.0.0")
    assert table_requests(table) == []
    with CompileFarm(workers=1, warm_table=table) as farm:
        stats = farm.stats()
    assert stats.warmed == 0
    assert stats.compiled == 0 and stats.submitted == 0


# -- deterministic replay across worker counts ---------------------------------------


def test_traffic_trace_is_deterministic():
    kwargs = dict(apps=["matmul", "lud"], unique=8, seed=31)
    one = traffic_trace(**kwargs)
    two = traffic_trace(**kwargs)
    assert [(t.at, t.lane, t.phase, t.request.local_key()) for t in one] == \
        [(t.at, t.lane, t.phase, t.request.local_key()) for t in two]
    assert trace_summary(one) == trace_summary(two)
    assert trace_summary(traffic_trace(apps=["matmul", "lud"], unique=8,
                                       seed=32)) != trace_summary(one)


def test_parse_phases():
    phases = parse_phases("steady:1:100,burst:0.5:400:0.6")
    assert [p.name for p in phases] == ["steady", "burst"]
    assert phases[0].interactive_fraction == 0.8  # the default
    assert phases[1].rate == 400.0 and phases[1].interactive_fraction == 0.6
    with pytest.raises(ValueError):
        parse_phases("oops:1")
    with pytest.raises(ValueError):
        parse_phases(" , ")


def _replay_report(tmp_path, workers: int) -> dict:
    out = tmp_path / f"replay-{workers}.json"
    serve_main([
        "--farm", "--workers", str(workers), "--speed", "0",
        "--apps", "matmul,lud", "--unique", "10", "--seed", "41",
        "--phases", "steady:0.3:60:0.9,burst:0.2:200:0.7",
        "--json", str(out),
    ])
    return json.loads(out.read_text())


def test_farm_replay_summary_identical_across_worker_counts(tmp_path, capsys):
    solo = _replay_report(tmp_path, 1)
    quad = _replay_report(tmp_path, 4)
    capsys.readouterr()  # swallow the CLI's JSON dumps
    assert solo["trace"] == quad["trace"], (
        "the trace fingerprint must not depend on how many workers served it"
    )
    for report in (solo, quad):
        farm = report["farm"]
        assert farm["lost"] == 0
        assert farm["double_compiled"] == 0
        assert report["replay"]["served"] + report["replay"]["shed"] == \
            report["trace"]["requests"]
    assert quad["farm"]["workers"] == 4 and solo["farm"]["workers"] == 1


# -- observability ------------------------------------------------------------------


def test_farm_registers_metrics_and_counts_events():
    from repro.obs import REGISTRY

    requests = _small_trace(12, duplicate_fraction=0.0, seed=43)
    with CompileFarm(workers=1, admission={LANE_SWEEP: 1}) as farm:
        source = farm.register_metrics()
        try:
            futures = [farm.submit(r, lane=LANE_SWEEP) for r in requests]
            for f in futures:
                f.result(timeout=120)
            snapshot = REGISTRY.snapshot()
        finally:
            REGISTRY.unregister_source(source)
    assert snapshot[f"{source}.submitted"] == len(requests)
    assert snapshot[f"{source}.lost"] == 0
    sheds = snapshot[f"{source}.shed"]
    assert sheds > 0
    assert snapshot.get("repro.farm.sheds", 0.0) >= sheds
