"""Search spaces, the result cache, and the layout autotuner."""

import json

import pytest

from repro.apps.registry import AppSpec, available_apps, get_app
from repro.tune import Choice, ResultCache, SearchSpace, autotune, sweep


# -- search spaces ------------------------------------------------------------------


def test_space_enumerates_cartesian_product_in_order():
    space = SearchSpace(Choice("a", (1, 2)), Choice("b", ("x", "y")))
    assert list(space) == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"}, {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]
    assert len(space) == 4


def test_space_constraint_filters_candidates():
    space = SearchSpace(
        Choice("block", (16, 32)), Choice("cuda", (8, 16, 32)),
        constraint=lambda c: c["block"] % c["cuda"] == 0 and c["block"] >= c["cuda"],
    )
    assert all(c["block"] % c["cuda"] == 0 for c in space)
    assert len(space) == 5


def test_space_subspace_narrows_axes():
    space = SearchSpace(Choice("a", (1, 2, 3)), Choice("b", (4, 5)))
    narrowed = space.subspace(a=(2,))
    assert list(narrowed) == [{"a": 2, "b": 4}, {"a": 2, "b": 5}]
    with pytest.raises(ValueError):
        space.subspace(nope=(1,))


def test_space_rejects_duplicates_and_empty_choices():
    with pytest.raises(ValueError):
        SearchSpace(Choice("a", (1,)), Choice("a", (2,)))
    with pytest.raises(ValueError):
        Choice("a", ())


def test_space_from_dict():
    space = SearchSpace.from_dict({"a": (1, 2), "b": (3,)})
    assert len(space) == 2


# -- result cache -------------------------------------------------------------------


def test_cache_roundtrip_and_persistence(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    key = ResultCache.key("app", {"a": 1}, {"offs": "N*row"})
    assert cache.get(key) is None
    cache.put(key, {"time_seconds": 1.5})
    assert cache.get(key) == {"time_seconds": 1.5}
    cache.save()

    reloaded = ResultCache(path)
    assert reloaded.get(key) == {"time_seconds": 1.5}
    assert json.loads(path.read_text())  # plain JSON on disk


def test_cache_key_depends_on_expressions_config_and_backend():
    base = ResultCache.key("app", {"a": 1}, {"offs": "N*row"})
    assert ResultCache.key("app", {"a": 2}, {"offs": "N*row"}) != base
    assert ResultCache.key("app", {"a": 1}, {"offs": "N*row + 1"}) != base
    assert ResultCache.key("other", {"a": 1}, {"offs": "N*row"}) != base
    # two backends lowering to identical expressions must not collide
    assert ResultCache.key("app", {"a": 1}, {"offs": "N*row"}, backend="triton") != base
    assert ResultCache.key("app", {"a": 1}, {"offs": "N*row"}, backend="triton") != \
        ResultCache.key("app", {"a": 1}, {"offs": "N*row"}, backend="cuda")
    # insertion order of the config must not matter
    assert ResultCache.key("app", {"b": 2, "a": 1}) == ResultCache.key("app", {"a": 1, "b": 2})


# -- the registry -------------------------------------------------------------------


def test_registry_knows_all_eight_apps():
    assert set(available_apps()) == {
        "matmul", "grouped_gemm", "softmax", "layernorm", "nw", "lud", "stencil", "transpose",
    }


def test_registry_resolves_specs_lazily_and_rejects_unknown():
    spec = get_app("lud")
    assert spec.backend == "cuda"
    assert len(spec.space) >= 20
    with pytest.raises(ValueError, match="unknown app"):
        get_app("fft")


# -- the autotuner ------------------------------------------------------------------


@pytest.fixture
def toy_spec():
    calls = []

    def evaluate(config):
        calls.append(dict(config))
        return {"time_seconds": abs(config["x"] - 3) + 1.0, "x": config["x"]}

    spec = AppSpec(
        name="toy",
        backend="triton",
        space=SearchSpace(Choice("x", (1, 2, 3, 4))),
        evaluate=evaluate,
    )
    return spec, calls


def test_autotune_ranks_by_estimated_time(toy_spec):
    spec, _ = toy_spec
    result = autotune(spec)
    assert result.best.config == {"x": 3}
    assert [c.config["x"] for c in result.evaluations] == [1, 2, 3, 4]
    assert result.best.metrics == {"x": 3}
    assert len(result.table()) == 4 and "time_ms" in result.table()[0]
    assert result.summary()["best_config"] == {"x": 3}


def test_autotune_uses_the_persistent_cache(toy_spec, tmp_path):
    spec, calls = toy_spec
    path = tmp_path / "tune.json"
    first = autotune(spec, cache_path=path)
    assert len(calls) == 4 and not any(c.cached for c in first.evaluations)

    second = autotune(spec, cache_path=path)
    assert len(calls) == 4  # nothing re-evaluated
    assert all(c.cached for c in second.evaluations)
    assert second.best.config == first.best.config


def test_autotune_tolerates_non_kernel_generate_results():
    # ad-hoc specs may generate arbitrary objects (plain source text here);
    # they rank with config-only cache keys instead of crashing
    spec = AppSpec(
        name="adhoc",
        backend="triton",
        space=SearchSpace(Choice("x", (1, 2))),
        evaluate=lambda config: float(config["x"]),
        generate=lambda config: f"// kernel for x={config['x']}\n",
    )
    result = autotune(spec)
    assert result.best.config == {"x": 1}
    assert all(c.has_kernel for c in result.evaluations)
    assert all(c.index_ops == 0 for c in result.evaluations)


def test_autotune_rejects_empty_spaces(toy_spec):
    spec, _ = toy_spec
    with pytest.raises(ValueError, match="empty"):
        autotune(spec, space=SearchSpace(Choice("x", (99,)),
                                         constraint=lambda c: False))


def test_autotune_parallel_evaluation_matches_serial():
    from repro.apps.registry import get_app

    # a narrowed slice of the (now 10^4+-point) stencil space: big enough to
    # exercise pool chunking, small enough to sweep twice in a test
    space = get_app("stencil").space.subspace(
        brick=(8,), brick_y=(8,), brick_z=(8,), vector=(1,), unroll=(1,)
    )
    serial = autotune("stencil", space=space)
    parallel = autotune("stencil", space=space, parallel=2)
    assert [c.config for c in serial.evaluations] == [c.config for c in parallel.evaluations]
    assert [c.time_seconds for c in serial.evaluations] == pytest.approx(
        [c.time_seconds for c in parallel.evaluations]
    )


# -- the paper's winners ------------------------------------------------------------


def test_autotuner_reproduces_lud_paper_winner():
    result = autotune("lud")
    assert len(result) >= 20
    best = result.best
    assert best.config["block"] == 64
    assert best.config["cuda_block"] == 16  # coarsening factor 4, Figure 12b
    assert best.has_kernel  # generated through the unified CUDA backend


def test_autotuner_reproduces_nw_skewed_layout():
    result = autotune("nw")
    assert len(result) >= 20
    best = result.best
    # the paper's fix is a skewed (conflict-free) shared-buffer layout; the
    # anti-diagonal layout and the unit row-cyclic skew are equivalent here
    assert best.config["layout"] not in ("row", "col")
    assert best.metrics["conflict_factor"] < 1.1
    # the row-major buffer at the paper's block sizes conflicts heavily
    row_factors = {c.config["block"]: c.metrics["conflict_factor"]
                   for c in result.evaluations if c.config["layout"] == "row"}
    assert row_factors[16] > 2.0 and row_factors[32] > 2.0


def test_autotuner_reproduces_transpose_smem_over_naive():
    result = autotune("transpose")
    assert len(result) >= 20
    best = result.best
    assert best.config["variant"] == "smem"
    assert best.config["generator"] == "lego"  # Table V's slight LEGO-MLIR edge
    best_naive = min(c.time_seconds for c in result.evaluations
                     if c.config["variant"] == "naive")
    assert best.time_seconds < best_naive / 3
    # at the paper's tile of 32 the skewed shared layout beats the row-major one
    tile32 = {(c.config["skew"]): c.time_seconds for c in result.evaluations
              if c.config["variant"] == "smem" and c.config["tile"] == 32
              and c.config["generator"] == "lego"}
    assert tile32[1] < tile32[0]


def test_autotuner_prefers_fused_softmax():
    result = autotune("softmax")
    assert result.best.config["implementation"] == "lego"
