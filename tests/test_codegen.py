"""Template engine, codegen context, Triton/CUDA/MLIR backends."""

import numpy as np
import pytest

from repro.codegen import (
    CodegenContext,
    GeneratedKernel,
    TemplateError,
    available_backends,
    extract_placeholders,
    generate_accessor_wrapper,
    generate_cuda_kernel,
    generate_triton_kernel,
    get_backend,
    render_template,
    compare_expansion_strategies,
    time_generation,
)
from repro.codegen.mlir import generate_transpose_module, lower_expr_to_ops, skewed_tile_layout
from repro.core import GroupBy, Row, TileBy, antidiagonal
from repro.mlir import OpBuilder, VerificationError, print_module, run_gpu_kernel, verify_module
from repro.mlir.ir import Block
from repro.symbolic import SymbolicEnv, Var, symbols


# -- template engine ----------------------------------------------------------------


def test_render_template_substitutes_placeholders():
    assert render_template("a = {{ x }} + {{y}}", {"x": "1", "y": 2}) == "a = 1 + 2"


def test_render_template_missing_binding_raises():
    with pytest.raises(TemplateError):
        render_template("{{ missing }}", {})


def test_render_template_non_strict_keeps_placeholder():
    assert render_template("{{ keep }}", {}, strict=False) == "{{ keep }}"


def test_render_template_indent_filter():
    text = render_template("  {{ body | indent(2) }}", {"body": "a\nb"})
    assert text == "  a\n  b"


def test_render_template_unknown_filter():
    with pytest.raises(TemplateError):
        render_template("{{ x | upper }}", {"x": "a"})


def test_extract_placeholders_unique_in_order():
    assert extract_placeholders("{{a}} {{b}} {{a}}") == ["a", "b"]


# -- codegen context ----------------------------------------------------------------------


def test_context_lowers_layout_slice():
    M, N = symbols("M N")
    row = Var("row")
    ctx = CodegenContext("t")
    ctx.size(M, N)
    ctx.index(row, M)
    ctx.bind("offsets", GroupBy([M, N]).OrderBy(Row(M, N))[row, :])
    lowered = ctx.lower()["offsets"]
    rendered = lowered.render()
    assert "row" in rendered and "N" in rendered
    assert lowered.ops <= 2


def test_context_bind_inverse_arity_check():
    ctx = CodegenContext("t")
    layout = GroupBy([4, 4])
    with pytest.raises(ValueError):
        ctx.bind_inverse(["only_one"], layout, Var("pid"))


def test_context_records_generation_time():
    ctx = CodegenContext("t")
    ctx.bind("x", Var("a") + 1)
    ctx.lower()
    assert ctx.generation_seconds is not None and ctx.generation_seconds >= 0


def test_compare_expansion_strategies_reports_both():
    x, y = symbols("x y")
    env = SymbolicEnv()
    report = compare_expansion_strategies((x + y) * (x + y), env)
    assert set(report) == {"unexpanded", "expanded"}
    assert report["unexpanded"] <= report["expanded"]


def test_time_generation_extracts_op_counts():
    from repro.apps.matmul import generate_matmul_kernel

    kernel, report = time_generation("matmul", lambda: generate_matmul_kernel("nn"))
    assert report.generation_seconds > 0
    assert report.original_ops > report.optimized_ops > 0
    assert 0 < report.reduction < 1
    assert report.details["backend"] == "triton"


# -- Triton backend ------------------------------------------------------------------------------


def test_generate_triton_kernel_validates_placeholders():
    ctx = CodegenContext("k")
    ctx.bind("present", Var("x") + 1)
    with pytest.raises(ValueError):
        generate_triton_kernel("k", "{{ present }} {{ absent }}", ctx)


def test_generate_triton_kernel_renders_arange():
    M, N = symbols("M N")
    row = Var("row")
    ctx = CodegenContext("k")
    ctx.size(M, N)
    ctx.index(row, M)
    ctx.bind("offs", GroupBy([M, N]).OrderBy(Row(M, N))[row, :])
    kernel = generate_triton_kernel("k", "ptr + {{ offs }}", ctx)
    assert "tl.arange(0, N)" in kernel.source
    assert kernel.binding_ops() >= 1


def test_matmul_kernel_matches_figure10():
    from repro.apps.matmul import generate_matmul_kernel

    source = generate_matmul_kernel("nn").source
    assert "pid_m = ((pid//(nt_n*min(GM, nt_m))) % max(1, nt_m//GM))*min(GM, nt_m) + pid % min(GM, nt_m)" in source
    assert "pid_n = (pid % (nt_n*min(GM, nt_m)))//min(GM, nt_m)" in source
    assert "BK*k + K*(((tl.arange(0, BM))[:, None]) + BM*pid_m)" in source


# -- CUDA backend -----------------------------------------------------------------------------------


def test_generate_cuda_kernel_uses_c_syntax():
    B = Var("B")
    i = Var("i")
    ctx = CodegenContext("k")
    ctx.size(B)
    ctx.index(i, B * B)
    ctx.bind("offset", (i // B) * B + i % B)
    kernel = generate_cuda_kernel("k", "m[{{ offset }}]", ctx)
    assert "//" not in kernel.source
    assert "/" in kernel.source or "%" in kernel.source or kernel.source == "m[i]"


def test_accessor_wrapper_for_antidiagonal_layout():
    wrapper = generate_accessor_wrapper("buff", GroupBy([17, 17]).OrderBy(antidiagonal(17)), "int")
    assert "__device__" in wrapper
    assert "antidiag(17, i0, i1)" in wrapper
    assert "struct LegoBuff" in wrapper


def test_accessor_wrapper_for_affine_layout():
    wrapper = generate_accessor_wrapper("tile", GroupBy([8, 8]).OrderBy(Row(8, 8)), "float")
    assert "operator()" in wrapper
    assert "8" in wrapper


# -- MLIR backend -------------------------------------------------------------------------------------


def test_lower_expr_to_ops_builds_arith():
    builder = OpBuilder(Block())
    x = Var("x")
    value = lower_expr_to_ops(builder, (x + 2) * 3 % 5, {"x": builder.insert("gpu.thread_id", [], [
        __import__("repro.mlir.types", fromlist=["INDEX"]).INDEX], {"dimension": "x"}).result})
    names = [op.name for op in builder.block.operations]
    assert "arith.muli" in names and "arith.remsi" in names
    assert value.type.__class__.__name__ == "IndexType"


def test_lower_expr_unbound_variable_raises_named_valueerror():
    builder = OpBuilder(Block())
    # Same shared validation as the Triton/CUDA template paths: a ValueError
    # naming the kernel and every missing name, not a bare KeyError.
    with pytest.raises(ValueError, match=r"'t5' has unbound SSA values: .*nope.*other"):
        lower_expr_to_ops(builder, Var("nope") + Var("other"), {}, kernel_name="t5")


def test_skewed_tile_layout_is_bijective_and_conflict_free():
    layout = skewed_tile_layout(16)
    assert layout.verify()
    column_banks = [layout.apply(i, 3) % 16 for i in range(16)]
    assert len(set(column_banks)) == 16


def test_transpose_modules_verify_and_print():
    for variant in ("naive", "smem"):
        kernel = generate_transpose_module(64, 16, variant)
        verify_module(kernel.module)
        text = print_module(kernel.module)
        assert "gpu.func" in text
        assert "memref.store" in text
        if variant == "smem":
            assert "memref<256xf32, 3>" in text


def test_transpose_rejects_bad_configuration():
    with pytest.raises(ValueError):
        generate_transpose_module(60, 16)
    with pytest.raises(ValueError):
        generate_transpose_module(64, 16, "bogus")


def test_transpose_interpreted_result_is_correct():
    kernel = generate_transpose_module(32, 8, "smem")
    source = np.arange(32 * 32, dtype=np.float32)
    destination = np.zeros_like(source)
    run_gpu_kernel(kernel.module, "transpose_smem", (4, 4, 1), (8, 8, 1), [source, destination])
    assert np.array_equal(destination.reshape(32, 32), source.reshape(32, 32).T)


def test_verifier_catches_use_before_def():
    from repro.mlir.dialects import arith, gpu
    from repro.mlir.ir import Module, FuncOp, Value
    from repro.mlir.types import INDEX

    module = Module()
    fn = gpu.func(module, "bad", [])
    builder = OpBuilder(fn.body)
    phantom = Value("phantom", INDEX)
    builder.insert("arith.addi", [phantom, phantom], [INDEX])
    gpu.return_(builder)
    with pytest.raises(VerificationError):
        verify_module(module)


def test_verifier_requires_terminator():
    from repro.mlir.dialects import gpu
    from repro.mlir.ir import Module

    module = Module()
    gpu.func(module, "empty", [])
    with pytest.raises(VerificationError):
        verify_module(module)


# -- unified backend registry -------------------------------------------------------


def test_registry_lists_all_three_backends():
    assert available_backends() == ["cuda", "mlir", "triton"]
    assert get_backend("triton").name == "triton"
    assert get_backend("mlir").name == "mlir"  # lazily imported on first use
    with pytest.raises(ValueError, match="unknown backend 'ptx'"):
        get_backend("ptx")


def _simple_context() -> CodegenContext:
    M, N = symbols("M N")
    row = Var("row")
    ctx = CodegenContext("k")
    ctx.size(M, N)
    ctx.index(row, M)
    ctx.bind("offs", GroupBy([M, N]).OrderBy(Row(M, N))[row, :])
    return ctx


def test_wrappers_and_registry_generate_identical_kernels():
    wrapper = generate_triton_kernel("k", "ptr + {{ offs }}", _simple_context())
    registry = get_backend("triton").generate("k", "ptr + {{ offs }}", _simple_context())
    assert wrapper.source == registry.source
    assert wrapper.backend == registry.backend == "triton"
    assert isinstance(wrapper, GeneratedKernel) and isinstance(registry, GeneratedKernel)

    cuda_wrapper = generate_cuda_kernel("k", "ptr[{{ offs }}]", _simple_context())
    cuda_registry = get_backend("cuda").generate("k", "ptr[{{ offs }}]", _simple_context())
    assert cuda_wrapper.source == cuda_registry.source
    assert cuda_wrapper.backend == "cuda"


def test_all_backends_share_generated_kernel_result_type():
    triton = generate_triton_kernel("k", "{{ offs }}", _simple_context())
    cuda = generate_cuda_kernel("k", "{{ offs }}", _simple_context())
    mlir = generate_transpose_module(64, 16, "smem")
    for kernel in (triton, cuda, mlir):
        assert isinstance(kernel, GeneratedKernel)
        assert kernel.source
        assert kernel.generation_seconds >= 0
    assert triton.binding_ops() == cuda.binding_ops() >= 1
    assert mlir.text == mlir.source  # MlirKernel keeps its .text alias
    assert mlir.kernel_names == ("transpose_smem",)


def test_backends_reject_unknown_options():
    with pytest.raises(TypeError, match="unexpected options"):
        get_backend("triton").generate("k", "{{ offs }}", _simple_context(), banana=1)


def test_unbound_placeholders_error_is_uniform_across_backends():
    ctx = CodegenContext("k")
    ctx.bind("present", Var("x") + 1)
    for backend in ("triton", "cuda"):
        with pytest.raises(ValueError, match=r"kernel 'k' has unbound placeholders: absent"):
            get_backend(backend).generate("k", "{{ present }} {{ absent }}", ctx)


def test_transpose_without_skew_uses_row_major_tile():
    skewed = generate_transpose_module(64, 16, "smem", skew=True)
    plain = generate_transpose_module(64, 16, "smem", skew=False)
    assert skewed.source != plain.source
    # the skew's (tx + ty) % tile arithmetic disappears with the row-major tile
    assert "arith.remsi" in skewed.source
    assert "arith.remsi" not in plain.source


# -- GPU-weighted variant selection -------------------------------------------------


def test_cost_weights_flip_expansion_variant():
    from repro.symbolic import CostWeights
    from repro.symbolic.expr import Mod

    x, y, z, w, v, a, b = symbols("x y z w v a b")
    ctx = CodegenContext("flip")
    ctx.size(Var("c"))
    ctx.index(b, 8)
    ctx.nonneg(x, y, z, w, v, a)
    # Unexpanded the modulo survives but the factored product stays cheap;
    # expanded the modulo simplifies away ((8a + b)*4 % 32 -> 4b) at the cost
    # of distributing the product.  Flat weights therefore keep the
    # unexpanded form, GPU-realistic div/mod weights prefer the expanded one.
    expr = (x + y + z + w + v) * Var("c") + Mod((a * 8 + b) * 4, 32)
    ctx.bind("offs", expr)

    flat = ctx.lower()["offs"]
    assert flat.variant == "unexpanded"

    gpu = ctx.lower(cost_weights=CostWeights.gpu_default())["offs"]
    assert gpu.variant == "expanded"
    assert "%" not in str(gpu.expr)

    # the lowering cache keys on the weights: asking again with flat weights
    # returns the unexpanded choice, not the cached GPU-weighted one
    assert ctx.lower()["offs"].variant == "unexpanded"
