"""Property-style regression tests for the Table II rewrite rules.

Random expressions are simplified under random assumption environments and
checked against concrete evaluation over every assignment consistent with the
declared ranges.  This is the soundness net for the memoised rewrite engine:
an unsound rule (or a cache returning a result from the wrong environment)
shows up as a value mismatch, not just a shape change.

Two families:

* concrete extents — index variables over small literal ranges, so the
  brute-force oracle enumerates independent domains directly;
* symbolic extents — a size symbol ``B`` with ``B | K`` declared, enumerated
  over *consistent* assignments (``K`` a multiple of ``B``, indices inside
  their extents), the situation the divisibility-driven rules fire in.
"""

import random

import pytest

from repro.symbolic import (
    Add,
    Const,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    SymbolicEnv,
    Var,
    simplify,
    simplify_fixpoint,
)

_N_CASES = 120
_MAX_DEPTH = 3


def _random_expr(rng: random.Random, atoms, pos_atoms, depth: int):
    """A random integer expression; denominators/moduli are provably positive."""
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.7:
            return rng.choice(atoms)
        return Const(rng.randint(-3, 6))
    op = rng.choice(("add", "add", "mul", "floordiv", "mod", "min", "max"))
    if op == "add":
        return Add(
            _random_expr(rng, atoms, pos_atoms, depth - 1),
            _random_expr(rng, atoms, pos_atoms, depth - 1),
        )
    if op == "mul":
        return Mul(
            Const(rng.randint(-2, 3)),
            _random_expr(rng, atoms, pos_atoms, depth - 1),
        )
    if op in ("floordiv", "mod"):
        num = _random_expr(rng, atoms, pos_atoms, depth - 1)
        if pos_atoms and rng.random() < 0.4:
            den = rng.choice(pos_atoms)
        else:
            den = Const(rng.randint(1, 6))
        return FloorDiv(num, den) if op == "floordiv" else Mod(num, den)
    cls = Min if op == "min" else Max
    return cls(
        _random_expr(rng, atoms, pos_atoms, depth - 1),
        _random_expr(rng, atoms, pos_atoms, depth - 1),
    )


def _check_equivalent(original, simplified, assignment: dict[str, int]) -> None:
    expected = original.evaluate(assignment)
    actual = simplified.evaluate(assignment)
    assert actual == expected, (
        f"unsound rewrite: {original!r} -> {simplified!r} "
        f"differs under {assignment} ({expected} != {actual})"
    )


@pytest.mark.parametrize("seed", range(_N_CASES))
def test_random_expr_concrete_env(seed):
    rng = random.Random(10_000 + seed)
    e_i = rng.randint(2, 6)
    e_j = rng.randint(2, 6)
    env = SymbolicEnv()
    i = env.declare_index("i", e_i)
    j = env.declare_index("j", e_j)
    expr = _random_expr(rng, atoms=[i, j], pos_atoms=[], depth=_MAX_DEPTH)

    simplified = simplify_fixpoint(expr, env)
    single_pass = simplify(expr, env)
    for iv in range(e_i):
        for jv in range(e_j):
            assignment = {"i": iv, "j": jv}
            _check_equivalent(expr, simplified, assignment)
            _check_equivalent(expr, single_pass, assignment)


@pytest.mark.parametrize("seed", range(_N_CASES))
def test_random_expr_symbolic_env(seed):
    rng = random.Random(20_000 + seed)
    env = SymbolicEnv()
    B, K = Var("B"), Var("K")
    env.declare_size(B, K)
    env.declare_divisible(K, B)
    i = env.declare_index("i", B)
    k = env.declare_index("k", FloorDiv(K, B))
    expr = _random_expr(rng, atoms=[i, k, B, K], pos_atoms=[B], depth=_MAX_DEPTH)

    simplified = simplify_fixpoint(expr, env)
    # every consistent assignment: K a multiple of B, indices inside extents
    for b in (2, 3, 4):
        for mult in (1, 2, 3):
            kk = b * mult
            for iv in range(b):
                for kv in range(kk // b):
                    assignment = {"B": b, "K": kk, "i": iv, "k": kv}
                    _check_equivalent(expr, simplified, assignment)


def test_environment_isolation_of_caches():
    """A fact declared in one env must not leak through caches into another."""
    env_a = SymbolicEnv()
    B = Var("B")
    env_a.declare_size(B)
    x = env_a.declare_index("x", B)
    expr = Mod(x, B)
    assert simplify_fixpoint(expr, env_a) == x  # 0 <= x < B

    env_b = SymbolicEnv()  # knows nothing about x or B
    assert simplify_fixpoint(expr, env_b) == expr

    # mutating an env invalidates its memoised results
    env_c = SymbolicEnv()
    env_c.declare_size(B)
    assert simplify_fixpoint(expr, env_c) == expr  # x unbounded so far
    env_c.declare_index("x", B)
    assert simplify_fixpoint(expr, env_c) == x
