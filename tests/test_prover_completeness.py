"""Prover completeness: the generation sweep's proven-rate must never regress.

Every ``prove_*`` query issued while generating kernels for the eight apps is
recorded (:func:`repro.symbolic.record_proof_queries`) and compared against
the committed baseline at ``tests/data/prover_baseline.json``.  A prover or
simplifier change that silently stops discharging queries some app depends on
shows up here as a per-app proven-rate drop before it shows up as a slower or
wrongly guarded kernel.

Regenerate the baseline after an intentional completeness change::

    PYTHONPATH=src python tests/test_prover_completeness.py --write
"""

import json
from pathlib import Path

from repro.apps.registry import available_apps, get_app
from repro.symbolic import record_proof_queries

BASELINE_PATH = Path(__file__).parent / "data" / "prover_baseline.json"

#: leading space configurations generated per app (deterministic: SearchSpace
#: iteration order is fixed, and the paper config is always included)
CONFIGS_PER_APP = 4


def generation_sweep() -> dict[str, dict]:
    """Generate kernels for every app, recording all proof queries."""
    results: dict[str, dict] = {}
    for name in available_apps():
        spec = get_app(name)
        configs = [dict(spec.paper_config)] if spec.paper_config else []
        for config in spec.space:
            configs.append(dict(config))
            if len(configs) >= 1 + CONFIGS_PER_APP:
                break
        generated = 0
        with record_proof_queries() as log:
            for config in configs:
                if spec.generate is None:
                    continue
                try:
                    kernel = spec.generate(config)
                except (KeyError, ValueError, TypeError):
                    # partial paper configs may not generate standalone
                    continue
                if kernel is not None:
                    generated += 1
        queries = len(log)
        proven = sum(1 for _, _, ok in log if ok)
        results[name] = {
            "generated": generated,
            "queries": queries,
            "proven": proven,
            "proven_rate": (proven / queries) if queries else 1.0,
        }
    return results


def test_proven_rate_never_regresses():
    assert BASELINE_PATH.exists(), (
        f"missing {BASELINE_PATH}; regenerate with "
        f"PYTHONPATH=src python {Path(__file__).name} --write"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    current = generation_sweep()
    assert set(current) >= set(baseline), (
        f"apps disappeared from the sweep: {sorted(set(baseline) - set(current))}"
    )
    regressions = []
    for name, recorded in baseline.items():
        now = current[name]
        # rates compare directly: a query the prover used to discharge but
        # no longer does drops the rate even if the query mix shifted
        if now["proven_rate"] < recorded["proven_rate"] - 1e-9:
            regressions.append(
                f"{name}: proven rate {now['proven_rate']:.3f} "
                f"(was {recorded['proven_rate']:.3f}, "
                f"{now['proven']}/{now['queries']} vs "
                f"{recorded['proven']}/{recorded['queries']})"
            )
        # the sweep must still exercise the prover at all
        if recorded["queries"] and not now["queries"]:
            regressions.append(f"{name}: generation no longer issues proof queries")
    assert not regressions, "prover completeness regressed:\n" + "\n".join(regressions)


def test_sweep_exercises_the_prover():
    current = generation_sweep()
    assert sum(app["queries"] for app in current.values()) > 100
    assert sum(app["generated"] for app in current.values()) >= 8


if __name__ == "__main__":
    import sys

    report = generation_sweep()
    if "--write" in sys.argv:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {BASELINE_PATH}")
    print(json.dumps(report, indent=2, sort_keys=True))
