"""Execution substrates: mini-Triton, mini-CUDA and the analytic GPU model."""

import numpy as np
import pytest

from repro.gpusim import (
    A100_80GB,
    AccessPattern,
    KernelCost,
    access_conflict_profile,
    bytes_per_element,
    coalescing_efficiency,
    cublas_matmul_time,
    estimate_time,
    occupancy_factor,
    pytorch_elementwise_time,
    roofline_point,
    strided_traffic,
    warp_conflict_degree,
    warp_transactions,
)
from repro.minicuda import Dim3, GlobalArray, SharedArray, launch, trace_to_cost
from repro.minitriton import compile_kernel, from_device, launch as tl_launch, to_device
from repro.core import GroupBy, antidiagonal


# -- mini-Triton ------------------------------------------------------------------------


SIMPLE_KERNEL = """
@triton.jit
def add_one(x_ptr, y_ptr, N, BN: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BN + tl.arange(0, BN)
    x = tl.load(x_ptr + offs)
    tl.store(y_ptr + offs, x + 1.0)
"""


def test_minitriton_compile_and_launch():
    fn = compile_kernel(SIMPLE_KERNEL, "add_one")
    x = np.arange(64, dtype=np.float32)
    xb, yb = to_device(x, "x"), to_device(np.zeros(64, dtype=np.float32), "y")
    trace = tl_launch(fn, grid=4, kernel_args={"x_ptr": xb, "y_ptr": yb, "N": 64, "BN": 16})
    assert np.array_equal(from_device(yb), x + 1)
    assert trace.load_elements == 64
    assert trace.store_elements == 64
    assert trace.load_bytes == 64 * 4


def test_minitriton_missing_kernel_name():
    with pytest.raises(KeyError):
        compile_kernel(SIMPLE_KERNEL, "not_there")


def test_minitriton_out_of_bounds_load_raises():
    fn = compile_kernel(SIMPLE_KERNEL, "add_one")
    xb = to_device(np.zeros(8, dtype=np.float32), "x")
    yb = to_device(np.zeros(8, dtype=np.float32), "y")
    with pytest.raises(IndexError):
        tl_launch(fn, grid=4, kernel_args={"x_ptr": xb, "y_ptr": yb, "N": 8, "BN": 16})


MASKED_KERNEL = """
@triton.jit
def masked_copy(x_ptr, y_ptr, N, BN: tl.constexpr):
    pid = tl.program_id(axis=0)
    offs = pid * BN + tl.arange(0, BN)
    mask = offs < N
    x = tl.load(x_ptr + offs, mask=mask, other=0.0)
    tl.store(y_ptr + offs, x, mask=mask)
"""


def test_minitriton_masked_access_handles_partial_tiles():
    fn = compile_kernel(MASKED_KERNEL, "masked_copy")
    x = np.arange(10, dtype=np.float32)
    xb, yb = to_device(x, "x"), to_device(np.zeros(10, dtype=np.float32), "y")
    tl_launch(fn, grid=2, kernel_args={"x_ptr": xb, "y_ptr": yb, "N": 10, "BN": 8})
    assert np.array_equal(from_device(yb), x)


def test_minitriton_sampled_launch_scales_trace_and_flags_it():
    fn = compile_kernel(SIMPLE_KERNEL, "add_one")
    x = np.zeros(1024, dtype=np.float32)
    xb, yb = to_device(x, "x"), to_device(x.copy(), "y")
    trace = tl_launch(fn, grid=64, kernel_args={"x_ptr": xb, "y_ptr": yb, "N": 1024, "BN": 16},
                      sample_programs=8)
    assert trace.load_elements == pytest.approx(1024, rel=0.01)
    # the scale is folded back into the counters, so the durable record that
    # device buffers are partial is the flag (repro.check refuses such traces)
    assert trace.sampled is True and trace.scale == 1.0


def test_minitriton_full_launch_is_not_flagged_sampled():
    fn = compile_kernel(SIMPLE_KERNEL, "add_one")
    xb = to_device(np.zeros(64, dtype=np.float32), "x")
    yb = to_device(np.zeros(64, dtype=np.float32), "y")
    trace = tl_launch(fn, grid=4, kernel_args={"x_ptr": xb, "y_ptr": yb, "N": 64, "BN": 16})
    assert trace.sampled is False
    # asking for at least the whole grid is a full launch, not a sample
    trace = tl_launch(fn, grid=4, kernel_args={"x_ptr": xb, "y_ptr": yb, "N": 64, "BN": 16},
                      sample_programs=64)
    assert trace.sampled is False


def test_minitriton_dot_records_tensor_core_flops():
    source = """
@triton.jit
def tiny_dot(a_ptr, b_ptr, c_ptr, N: tl.constexpr):
    offs = tl.arange(0, N)
    a = tl.load(a_ptr + offs[:, None] * N + offs[None, :])
    b = tl.load(b_ptr + offs[:, None] * N + offs[None, :])
    c = tl.dot(a.to(tl.float16), b.to(tl.float16))
    tl.store(c_ptr + offs[:, None] * N + offs[None, :], c)
"""
    fn = compile_kernel(source, "tiny_dot")
    a = np.random.randn(8, 8).astype(np.float32)
    b = np.random.randn(8, 8).astype(np.float32)
    ab, bb, cb = to_device(a.reshape(-1)), to_device(b.reshape(-1)), to_device(np.zeros(64, dtype=np.float32))
    trace = tl_launch(fn, grid=1, kernel_args={"a_ptr": ab, "b_ptr": bb, "c_ptr": cb, "N": 8})
    assert trace.tensor_core_flops == 2 * 8 ** 3
    result = from_device(cb, (8, 8))
    assert np.allclose(result, a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32), atol=0.5)


# -- mini-CUDA ---------------------------------------------------------------------------------


def test_dim3_normalisation():
    assert Dim3.of(4) == Dim3(4, 1, 1)
    assert Dim3.of((2, 3)) == Dim3(2, 3, 1)
    assert Dim3(2, 3, 4).count == 24


def test_block_context_thread_coordinates():
    seen = {}

    def kernel(ctx):
        seen["tx"] = ctx.tx.copy()
        seen["ty"] = ctx.ty.copy()

    launch(kernel, grid=1, block=(4, 2))
    assert list(seen["tx"][:4]) == [0, 1, 2, 3]
    assert list(seen["ty"][:4]) == [0, 0, 0, 0]
    assert list(seen["ty"][4:]) == [1, 1, 1, 1]


def test_global_array_records_transactions_and_layout_roundtrip():
    data = np.arange(64, dtype=np.float32).reshape(8, 8)
    layout = GroupBy([8, 8]).OrderBy(antidiagonal(8))
    array = GlobalArray(data, layout=layout)
    assert np.array_equal(array.to_numpy(), data)

    def kernel(ctx, buf):
        values = buf.load(ctx, ctx.ty, ctx.tx)
        buf.store(ctx, values + 1, ctx.ty, ctx.tx)

    trace = launch(kernel, grid=1, block=(8, 8), args=(array,))
    assert np.array_equal(array.to_numpy(), data + 1)
    assert trace.load_elements == 64
    assert trace.store_transactions >= 8


def test_global_array_out_of_range_raises():
    array = GlobalArray(np.zeros((4, 4), dtype=np.float32))

    def kernel(ctx, buf):
        buf.load(ctx, ctx.tx, ctx.tx + 10)

    with pytest.raises(IndexError):
        launch(kernel, grid=1, block=4, args=(array,))


def test_shared_array_bank_conflicts_row_major_vs_antidiagonal():
    results = {}

    def kernel(ctx, layout, key):
        buf = ctx.shared_array((17, 17), dtype=np.int32, layout=layout)
        lanes = np.arange(16)
        buf.store(np.ones(16), lanes + 1, 15 - lanes + 1)
        results[key] = ctx.trace.smem_profile.worst_degree

    launch(kernel, grid=1, block=16, args=(None, "row"))
    launch(kernel, grid=1, block=16, args=(GroupBy([17, 17]).OrderBy(antidiagonal(17)), "anti"))
    assert results["row"] > results["anti"] == 1


def test_shared_array_logical_view_roundtrip():
    def kernel(ctx, layout):
        buf = ctx.shared_array((4, 4), dtype=np.float32, layout=layout)
        idx = np.arange(4)
        for row in range(4):
            buf.store(np.full(4, row * 10) + idx, np.full(4, row), idx)
        kernel.out = buf.to_numpy()

    launch(kernel, grid=1, block=4, args=(GroupBy([4, 4]).OrderBy(antidiagonal(4)),))
    expected = np.arange(4)[None, :] + 10 * np.arange(4)[:, None]
    assert np.array_equal(kernel.out, expected)


def test_launch_sampling_scales_blocks():
    def kernel(ctx, buf):
        buf.load(ctx, ctx.tx + ctx.blockIdx.x * 8)

    array = GlobalArray(np.zeros(1024, dtype=np.float32))
    trace = launch(kernel, grid=128, block=8, args=(array,), sample_blocks=16)
    assert trace.load_elements == pytest.approx(1024, rel=0.01)
    assert trace.blocks == 128
    assert trace.sampled is True
    full = launch(kernel, grid=4, block=8, args=(array,))
    assert full.sampled is False


def test_trace_to_cost_charges_moved_sectors():
    def kernel(ctx, buf):
        buf.load(ctx, ctx.tx * 16)  # heavily strided: one sector per element

    array = GlobalArray(np.zeros(4096, dtype=np.float32))
    trace = launch(kernel, grid=1, block=32, args=(array,))
    cost = trace_to_cost(trace, "strided")
    assert cost.dram_bytes == pytest.approx(32 * 32)  # 32 lanes x 32-byte sectors


# -- analytic device model -------------------------------------------------------------------------


def test_warp_transactions_and_coalescing():
    contiguous = [4 * i for i in range(32)]
    strided = [128 * i for i in range(32)]
    assert warp_transactions(contiguous) == 4
    assert warp_transactions(strided) == 32
    assert coalescing_efficiency(contiguous, 4) == 1.0
    assert coalescing_efficiency(strided, 4) == pytest.approx(4 / 32)


def test_warp_conflict_degree_broadcast_and_conflict():
    same_word = [7] * 32
    assert warp_conflict_degree(same_word) == 1  # broadcast
    conflicting = [32 * i for i in range(16)]
    assert warp_conflict_degree(conflicting) == 16
    assert warp_conflict_degree([]) == 1


def test_access_conflict_profile_merge():
    p1 = access_conflict_profile([[0, 32], [0, 1]])
    p2 = access_conflict_profile([[0, 32, 64]])
    merged = p1.merge(p2)
    assert merged.accesses == 3
    assert merged.worst_degree == 3
    assert merged.average_degree == pytest.approx((2 + 1 + 3) / 3)


def test_access_pattern_traffic():
    pattern = AccessPattern(contiguous_run=32, run_stride=64, num_runs=100, element_bytes=4)
    summary = strided_traffic([pattern], A100_80GB)
    assert summary["useful_bytes"] == 32 * 100 * 4
    assert summary["moved_bytes"] >= summary["useful_bytes"]
    assert 0 < summary["efficiency"] <= 1


def test_bytes_per_element():
    assert bytes_per_element("fp16") == 2
    assert bytes_per_element("fp32") == 4
    with pytest.raises(ValueError):
        bytes_per_element("fp128")


def test_device_peak_flops_by_dtype():
    assert A100_80GB.peak_flops("fp16", tensor_core=True) == 312_000.0
    assert A100_80GB.peak_flops("fp32") == 19_500.0
    assert A100_80GB.peak_flops("fp64") == 9_700.0
    assert A100_80GB.smem_bandwidth_gbs > A100_80GB.dram_bandwidth_gbs


def test_estimate_time_identifies_bound():
    compute_heavy = KernelCost(flops=1e12, dram_bytes=1e6, blocks=1000, threads_per_block=256)
    memory_heavy = KernelCost(flops=1e6, dram_bytes=1e10, blocks=1000, threads_per_block=256)
    assert estimate_time(compute_heavy, A100_80GB).bound == "compute"
    assert estimate_time(memory_heavy, A100_80GB).bound == "dram"


def test_estimate_time_bank_conflicts_slow_smem_bound_kernels():
    base = KernelCost(smem_bytes=1e9, blocks=1000, threads_per_block=256)
    conflicted = KernelCost(smem_bytes=1e9, bank_conflict_factor=8.0, blocks=1000, threads_per_block=256)
    assert estimate_time(conflicted, A100_80GB).total > estimate_time(base, A100_80GB).total * 4


def test_occupancy_factor_penalises_tiny_grids():
    small = KernelCost(blocks=4, threads_per_block=256)
    large = KernelCost(blocks=10_000, threads_per_block=256)
    assert occupancy_factor(small, A100_80GB) < occupancy_factor(large, A100_80GB)


def test_roofline_point_memory_bound_kernel():
    cost = KernelCost(flops=1e9, dram_bytes=1e9, blocks=1000, threads_per_block=256)
    point = roofline_point(cost, A100_80GB)
    assert point["arithmetic_intensity"] == pytest.approx(1.0)
    assert point["achieved_gflops"] <= point["memory_roof_gflops"] * 1.05


def test_baselines_are_monotone_in_size():
    t2k = cublas_matmul_time(2048, 2048, 2048, A100_80GB)
    t8k = cublas_matmul_time(8192, 8192, 8192, A100_80GB)
    assert t8k > t2k
    assert pytorch_elementwise_time(1 << 20, A100_80GB) < pytorch_elementwise_time(1 << 24, A100_80GB)
