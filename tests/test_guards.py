"""Static guard elimination: obligations, proven launches, app equivalence."""

import numpy as np
import pytest

from repro.apps import lud, nw, stencil
from repro.codegen import (
    CodegenContext,
    discharge_in_bounds,
    generate_triton_kernel,
    prove_guard_redundant,
)
from repro.obs.metrics import counter
from repro.symbolic import BoolAnd, Mod, SymbolicEnv, Var, as_expr


# -- the codegen proof-obligation API ----------------------------------------------


def test_require_in_bounds_discharges_during_lower():
    ctx = CodegenContext("obligations")
    i = ctx.index("i", 16)
    ctx.bind("offset", i * 4 + 3)
    ctx.require_in_bounds("offset", 0, 63)
    ctx.lower()
    assert ctx.proven_bounds == {"offset": True}


def test_require_in_bounds_unprovable_is_false_not_an_error():
    ctx = CodegenContext("obligations")
    i = ctx.index("i", 16)
    ctx.bind("offset", i * 4)
    ctx.require_in_bounds("offset", 0, 10)
    ctx.lower()
    assert ctx.proven_bounds == {"offset": False}


def test_require_in_bounds_on_unbound_name_raises():
    ctx = CodegenContext("obligations")
    ctx.index("i", 4)
    ctx.require_in_bounds("missing", 0, 3)
    with pytest.raises(KeyError):
        ctx.lower()


def test_obligations_participate_in_the_lowering_cache_key():
    ctx = CodegenContext("obligations")
    i = ctx.index("i", 16)
    ctx.bind("offset", i * 4)
    first = ctx.lower()
    assert ctx.proven_bounds == {}
    ctx.require_in_bounds("offset", 0, 60)
    second = ctx.lower()  # a new obligation must invalidate the cached lowering
    assert ctx.proven_bounds == {"offset": True}
    assert second is not first


def test_generated_kernel_carries_proven_bounds():
    ctx = CodegenContext("carries")
    i = ctx.index("i", 8)
    ctx.bind("off", i * 2)
    ctx.require_in_bounds("off", 0, 14)
    kernel = generate_triton_kernel("carries", "x = {{ off }}", ctx)
    assert kernel.proven_bounds == {"off": True}


def test_guard_proof_updates_counters():
    env = SymbolicEnv()
    i = env.declare_index("i", 8)
    eliminated = counter("repro.symbolic.guards_eliminated")
    static = counter("repro.symbolic.proofs_static")
    fallback = counter("repro.symbolic.proofs_fallback")
    base = (eliminated.value, static.value, fallback.value)
    assert prove_guard_redundant(BoolAnd(i.ge(0), i.lt(8)), env, kernel="t")
    assert (eliminated.value, static.value) == (base[0] + 1, base[1] + 1)
    assert not prove_guard_redundant(i.lt(7), env, kernel="t")
    assert fallback.value == base[2] + 1
    assert discharge_in_bounds(i, 0, 7, env, kernel="t")
    assert static.value == base[1] + 2
    assert eliminated.value == base[0] + 1  # in-bounds proofs are not guard drops


# -- LUD: static bijectivity --------------------------------------------------------


@pytest.mark.parametrize("block,cuda_block", [(16, 16), (32, 16), (64, 16), (32, 8), (128, 32)])
def test_lud_bijectivity_is_static_and_agrees_with_enumeration(block, cuda_block):
    cfg = lud.LudConfig(n=2 * block, block=block, cuda_block=cuda_block)
    kernel = lud.generate_lud_internal_kernel(cfg)
    assert lud.prove_element_offset_bijection(kernel, cfg) is True
    assert lud.assert_element_offset_bijection(kernel, cfg) == "static"
    lud.check_element_offsets(kernel, cfg)  # the retained enumeration agrees
    assert kernel.proven_bounds == {"element_offset": True}


def test_lud_nonaffine_layout_falls_back_to_enumeration():
    # a multiplicative swizzle: flat * 5 % 16 is a bijection on [0, 16)
    # (5 is coprime with 16) but not affine, so the static proof abstains
    cfg = lud.LudConfig(n=8, block=4, cuda_block=2)
    r_i, r_j, ty, tx = Var("r_i"), Var("r_j"), Var("ty"), Var("tx")
    ctx = CodegenContext("swizzled")
    for var, extent in ((r_i, 2), (r_j, 2), (ty, 2), (tx, 2)):
        ctx.index(var, extent)
    flat = tx + 2 * as_expr(ty) + 4 * as_expr(r_j) + 8 * as_expr(r_i)
    ctx.bind("element_offset", Mod(flat * 5, 16))
    kernel = generate_triton_kernel("swizzled", "x = {{ element_offset }}", ctx)
    assert lud.prove_element_offset_bijection(kernel, cfg) is None
    assert lud.assert_element_offset_bijection(kernel, cfg) == "enumerated"


def test_lud_broken_layout_is_statically_rejected():
    cfg = lud.LudConfig(n=8, block=4, cuda_block=2)
    r_i, r_j, ty, tx = Var("r_i"), Var("r_j"), Var("ty"), Var("tx")
    ctx = CodegenContext("broken")
    for var, extent in ((r_i, 2), (r_j, 2), (ty, 2), (tx, 2)):
        ctx.index(var, extent)
    # stride 2 on tx collides with ty's stride: not a mixed-radix basis
    ctx.bind("element_offset", 2 * as_expr(tx) + 2 * as_expr(ty) + 4 * as_expr(r_j) + 8 * as_expr(r_i))
    kernel = generate_triton_kernel("broken", "x = {{ element_offset }}", ctx)
    assert lud.prove_element_offset_bijection(kernel, cfg) is False
    with pytest.raises(ValueError, match="not a bijection"):
        lud.assert_element_offset_bijection(kernel, cfg)


# -- NW: wavefront guard elimination ------------------------------------------------


def test_nw_wave_span_enumerates_exactly_the_live_blocks():
    for block_count in (1, 2, 3, 5, 8):
        for wave in range(2 * block_count - 1):
            lo, hi = nw.nw_wave_span(wave, block_count)
            blocks_on_wave = min(wave + 1, block_count, 2 * block_count - 1 - wave)
            assert hi - lo + 1 == blocks_on_wave
            for bx in range(lo, hi + 1):
                by = wave - bx
                assert 0 <= bx < block_count and 0 <= by < block_count
            # nothing outside the span is live
            if lo > 0:
                assert not (0 <= wave - (lo - 1) < block_count)
            if hi < block_count - 1:
                assert not (0 <= wave - (hi + 1) < block_count)


def test_nw_every_wave_guard_is_proven():
    nw._prove_wave_guard.cache_clear()
    for block_count in (1, 2, 4, 8):
        for wave in range(2 * block_count - 1):
            assert nw._prove_wave_guard(wave, block_count), (wave, block_count)


def test_nw_guard_eliminated_run_matches_guarded_run():
    rng = np.random.default_rng(3)
    cfg = nw.NwConfig(n=48, block=16)
    reference = rng.integers(-4, 5, size=(cfg.n, cfg.n)).astype(np.int32)
    expected = nw.nw_reference(reference, cfg.penalty)
    for layout in (None, nw.antidiagonal_buffer_layout(cfg.block)):
        out_e, tr_e = nw.run_nw_blocked(reference, cfg, layout=layout, eliminate_guards=True)
        out_g, tr_g = nw.run_nw_blocked(reference, cfg, layout=layout, eliminate_guards=False)
        assert np.array_equal(out_e, expected)
        assert np.array_equal(out_g, expected)
        # the unguarded launch must not perturb the measured profile: same
        # traffic, same conflicts, same executed blocks
        for attr in (
            "load_bytes", "store_bytes", "load_transactions", "store_transactions",
            "smem_load_bytes", "smem_store_bytes", "flops", "blocks", "executed_blocks",
        ):
            assert getattr(tr_e, attr) == getattr(tr_g, attr), attr
        assert tr_e.bank_conflict_factor == tr_g.bank_conflict_factor


# -- stencil: interior-block guard elimination --------------------------------------


def test_interior_block_span_matches_enumeration():
    for n, brick, r in [(8, 4, 1), (16, 4, 1), (16, 4, 2), (16, 8, 1), (12, 4, 3), (24, 4, 4)]:
        span = stencil.interior_block_span(n, brick, r)
        interior_blocks = [
            b for b in range(n // brick)
            if all(r <= b * brick + t < n - r for t in range(brick))
        ]
        if span is None:
            assert interior_blocks == []
        else:
            assert interior_blocks == list(range(span[0], span[1] + 1))


def test_stencil_interior_span_is_proven_whenever_it_exists():
    stencil._prove_interior_span.cache_clear()
    for n, brick, r in [(16, 4, 1), (16, 4, 2), (12, 4, 1), (24, 8, 2), (32, 4, 4)]:
        assert stencil.interior_block_span(n, brick, r) is not None
        assert stencil._prove_interior_span(n, brick, r), (n, brick, r)
    # no interior block -> nothing to prove, stays guarded
    assert not stencil._prove_interior_span(8, 4, 1)


@pytest.mark.parametrize("spec", [stencil.STENCILS[0], stencil.STENCILS[4]])
def test_stencil_guard_eliminated_run_matches_guarded_run(spec):
    rng = np.random.default_rng(5)
    n, brick = 16, 4
    grid = rng.standard_normal((n, n, n)).astype(np.float32)
    expected = stencil.stencil_reference(grid, spec)
    for layout in (None, stencil.brick_layout(n, brick)):
        out_e, tr_e = stencil.run_stencil(grid, spec, layout=layout, brick=brick,
                                          eliminate_guards=True)
        out_g, tr_g = stencil.run_stencil(grid, spec, layout=layout, brick=brick,
                                          eliminate_guards=False)
        assert np.allclose(out_e, expected, atol=1e-5)
        assert np.allclose(out_g, expected, atol=1e-5)
        for attr in ("load_bytes", "store_bytes", "load_transactions",
                     "store_transactions", "flops"):
            assert getattr(tr_e, attr) == getattr(tr_g, attr), attr
