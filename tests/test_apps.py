"""The benchmark applications: generated kernels are correct and layouts behave."""

import numpy as np
import pytest

from repro.apps import grouped_gemm, layernorm, lud, matmul, nw, softmax, stencil, transpose


# -- matmul -------------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_matmul_inputs():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((64, 64)).astype(np.float16)
    b = rng.standard_normal((64, 64)).astype(np.float16)
    return a, b, (a.astype(np.float32) @ b.astype(np.float32))


@pytest.mark.parametrize("variant", ["nn", "nt", "tn", "tt"])
def test_matmul_variants_only_change_layout_not_logic(variant, small_matmul_inputs):
    a, b, reference = small_matmul_inputs
    kernel = matmul.generate_matmul_kernel(variant)
    config = matmul.MatmulConfig(64, 64, 64, BM=16, BN=16, BK=16, GM=2)
    result, trace = matmul.run_matmul(kernel, a, b, config, variant)
    assert np.allclose(result.astype(np.float32), reference, atol=1.0, rtol=1e-2)
    assert trace.tensor_core_flops > 0


def test_matmul_reference_and_lego_op_counts_match_table4():
    assert matmul.reference_index_ops() == 31
    assert matmul.lego_spec_index_ops() == 9


def test_matmul_performance_ordering():
    small = matmul.MatmulConfig(2048, 2048, 2048)
    large = matmul.MatmulConfig(8192, 8192, 8192)
    # cuBLAS leads at 2k; the gap closes (ratio approaches 1) at 8k
    ratio_small = matmul.matmul_performance(small, "lego") / matmul.matmul_performance(small, "cublas")
    ratio_large = matmul.matmul_performance(large, "lego") / matmul.matmul_performance(large, "cublas")
    assert ratio_small > ratio_large
    assert ratio_large < 1.1


@pytest.mark.parametrize("variant", ["nn", "nt", "tn", "tt"])
@pytest.mark.parametrize("shape", [(32, 32, 16), (32, 16, 32), (16, 32, 32)])
def test_matmul_variants_handle_non_square_shapes(variant, shape):
    """Transposed operands must address correctly when M, N, K differ.

    Regression: the ``Col`` data layouts were built with reversed logical
    shapes, which cancels out for square operands (the only shape the suite
    used to run) but mis-addresses non-square ones — caught by the
    differential verification sweep.
    """
    m, n, k = shape
    rng = np.random.default_rng(2)
    a = rng.standard_normal((m, k)).astype(np.float16)
    b = rng.standard_normal((k, n)).astype(np.float16)
    kernel = matmul.generate_matmul_kernel(variant)
    config = matmul.MatmulConfig(m, n, k, BM=16, BN=16, BK=8, GM=2)
    result, _ = matmul.run_matmul(kernel, a, b, config, variant)
    reference = a.astype(np.float32) @ b.astype(np.float32)
    assert np.allclose(result.astype(np.float32), reference, atol=0.1, rtol=1e-2)


def test_matmul_rejects_unknown_variant():
    with pytest.raises(ValueError):
        matmul.build_matmul_context("xy")
    with pytest.raises(ValueError):
        matmul.matmul_performance(matmul.MatmulConfig(256, 256, 256), "rocblas")


# -- grouped GEMM ---------------------------------------------------------------------------


def test_grouped_gemm_correctness():
    rng = np.random.default_rng(2)
    a = rng.standard_normal((3, 32, 32)).astype(np.float16)
    b = rng.standard_normal((3, 32, 32)).astype(np.float16)
    kernel = grouped_gemm.generate_grouped_gemm_kernel()
    config = grouped_gemm.GroupedGemmConfig(groups=3, M=32, N=32, K=32, BM=16, BN=16, BK=16)
    result, _ = grouped_gemm.run_grouped_gemm(kernel, a, b, config)
    assert np.allclose(result.astype(np.float32), grouped_gemm.grouped_gemm_reference(a, b), atol=1.0, rtol=1e-2)


def test_grouped_gemm_fusion_beats_per_group_launches():
    config = grouped_gemm.GroupedGemmConfig(groups=16, M=512, N=512, K=512)
    fused = grouped_gemm.grouped_gemm_performance(config, "lego")
    eager = grouped_gemm.grouped_gemm_performance(config, "cublas")
    assert fused < eager


# -- softmax ------------------------------------------------------------------------------------


def test_softmax_kernel_matches_reference():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((48, 96)).astype(np.float32)
    kernel = softmax.generate_softmax_kernel()
    result, trace = softmax.run_softmax(kernel, x)
    assert np.allclose(result, softmax.softmax_reference(x), atol=1e-5)
    assert trace.load_elements == x.size
    assert trace.store_elements == x.size


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(4)
    x = rng.standard_normal((8, 32)).astype(np.float32)
    kernel = softmax.generate_softmax_kernel()
    result, _ = softmax.run_softmax(kernel, x)
    assert np.allclose(result.sum(axis=1), 1.0, atol=1e-5)


def test_softmax_fused_beats_pytorch_eager():
    config = softmax.SoftmaxConfig(M=4096, N=4096)
    assert softmax.softmax_performance(config, "lego") < softmax.softmax_performance(config, "pytorch")


# -- layernorm -------------------------------------------------------------------------------------


def test_layernorm_forward_matches_reference():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((32, 64)).astype(np.float32)
    w = rng.standard_normal(64).astype(np.float32)
    b = rng.standard_normal(64).astype(np.float32)
    kernel = layernorm.generate_layernorm_forward()
    result, _ = layernorm.run_layernorm_forward(kernel, x, w, b)
    assert np.allclose(result, layernorm.layernorm_reference(x, w, b), atol=1e-4)


def test_layernorm_backward_matches_reference():
    rng = np.random.default_rng(6)
    x = rng.standard_normal((32, 64)).astype(np.float32)
    dy = rng.standard_normal((32, 64)).astype(np.float32)
    w = rng.standard_normal(64).astype(np.float32)
    kernel = layernorm.generate_layernorm_backward()
    result, _ = layernorm.run_layernorm_backward(kernel, dy, x, w)
    assert np.allclose(result, layernorm.layernorm_backward_reference(dy, x, w), atol=1e-4)


def test_layernorm_lego_ahead_of_reference_triton_forward():
    config = layernorm.LayerNormConfig(M=4096, N=4096)
    lego = layernorm.layernorm_performance(config, "lego", "forward")
    triton = layernorm.layernorm_performance(config, "triton", "forward")
    pytorch = layernorm.layernorm_performance(config, "pytorch", "forward")
    assert lego < triton < pytorch


def test_layernorm_rejects_unknown_direction():
    with pytest.raises(ValueError):
        layernorm.layernorm_performance(layernorm.LayerNormConfig(64, 64), "lego", "sideways")


# -- NW --------------------------------------------------------------------------------------------


@pytest.fixture(scope="module")
def nw_case():
    rng = np.random.default_rng(7)
    reference = rng.integers(-4, 5, size=(48, 48)).astype(np.int32)
    config = nw.NwConfig(n=48, block=16, penalty=10)
    gold = nw.nw_reference(reference, 10)
    return reference, config, gold


def test_nw_blocked_row_major_matches_reference(nw_case):
    reference, config, gold = nw_case
    score, _ = nw.run_nw_blocked(reference, config, layout=None)
    assert np.array_equal(score, gold)


def test_nw_blocked_antidiagonal_layout_matches_reference(nw_case):
    reference, config, gold = nw_case
    score, _ = nw.run_nw_blocked(reference, config, layout=nw.antidiagonal_buffer_layout(16))
    assert np.array_equal(score, gold)


def test_nw_antidiagonal_layout_removes_bank_conflicts(nw_case):
    reference, config, _ = nw_case
    _, trace_row = nw.run_nw_blocked(reference, config, layout=None)
    _, trace_anti = nw.run_nw_blocked(reference, config, layout=nw.antidiagonal_buffer_layout(16))
    assert trace_row.bank_conflict_factor > 2.0
    assert trace_anti.bank_conflict_factor < 1.2


def test_nw_speedup_in_paper_band():
    result = nw.nw_speedup(4096, block=16, trace_n=64)
    assert 1.3 <= result["speedup"] <= 2.2


def test_nw_wrapper_contains_device_function():
    wrapper = nw.generate_nw_wrapper(16)
    assert "antidiag" in wrapper and "struct" in wrapper


def test_nw_config_validation():
    with pytest.raises(ValueError):
        nw.NwConfig(n=50, block=16)


# -- LUD -------------------------------------------------------------------------------------------


def test_lud_blocked_factorisation_reconstructs_input():
    rng = np.random.default_rng(8)
    a = rng.standard_normal((64, 64)) + 64 * np.eye(64)
    packed = lud.lud_blocked(a, 16)
    lower, upper = lud.split_lu(packed)
    assert np.allclose(lower @ upper, a, atol=1e-8)


def test_lud_blocked_matches_unblocked_reference():
    rng = np.random.default_rng(9)
    a = rng.standard_normal((32, 32)) + 32 * np.eye(32)
    packed = lud.lud_blocked(a, 8)
    ref_lower, ref_upper = lud.lud_reference(a)
    lower, upper = lud.split_lu(packed)
    assert np.allclose(lower, ref_lower, atol=1e-8)
    assert np.allclose(upper, ref_upper, atol=1e-8)


def test_lud_coarsened_thread_layout_covers_block():
    layout = lud.coarsened_thread_layout(64, 16)
    covered = {
        layout.apply(ri, rj, ti, tj)
        for ri in range(4)
        for rj in range(4)
        for ti in range(16)
        for tj in range(16)
    }
    assert covered == set(range(64 * 64))


def test_lud_kernel_generation_embeds_layout_offset():
    kernel = lud.generate_lud_internal_kernel(lud.LudConfig(1024, 64, 16))
    assert "lud_internal" in kernel.source
    assert "element" in kernel.source
    assert "{{" not in kernel.source


def test_lud_best_configuration_is_block64_coarsen4():
    times = {cfg.block: lud.lud_performance(cfg) for cfg in lud.lud_configurations(2048)}
    assert times[64] < times[32] < times[16]


def test_lud_config_validation():
    with pytest.raises(ValueError):
        lud.LudConfig(100, 16)
    with pytest.raises(ValueError):
        lud.LudConfig(128, 24, 16)


# -- stencils ------------------------------------------------------------------------------------------


def test_stencil_offsets_counts():
    counts = {spec.name: spec.points for spec in stencil.STENCILS}
    assert counts["star-7pt"] == 7
    assert counts["star-13pt"] == 13
    assert counts["cube-27pt"] == 27
    assert counts["cube-125pt"] == 125


@pytest.mark.parametrize("spec", stencil.STENCILS[:2] + stencil.STENCILS[4:5], ids=lambda s: s.name)
def test_stencil_kernel_matches_reference_both_layouts(spec):
    rng = np.random.default_rng(10)
    grid = rng.standard_normal((16, 16, 16)).astype(np.float32)
    reference = stencil.stencil_reference(grid, spec)
    out_array, _ = stencil.run_stencil(grid, spec, layout=None, brick=4)
    out_brick, _ = stencil.run_stencil(grid, spec, layout=stencil.brick_layout(16, 4), brick=4)
    assert np.allclose(out_array, reference, atol=1e-4)
    assert np.allclose(out_brick, reference, atol=1e-4)


def test_brick_layout_is_bijective_and_brick_contiguous():
    layout = stencil.brick_layout(8, 4)
    assert layout.verify()
    first_brick = {layout.apply(i, j, k) for i in range(4) for j in range(4) for k in range(4)}
    assert first_brick == set(range(64))


def test_stencil_speedups_in_paper_band():
    for spec in stencil.STENCILS:
        speedup = stencil.stencil_speedup(spec, 512, 8)["speedup"]
        assert 3.2 <= speedup <= 4.0, (spec.name, speedup)


def test_stencil_invalid_layout_name():
    with pytest.raises(ValueError):
        stencil.stencil_performance(stencil.STENCILS[0], 256, "diagonal")


# -- transpose -----------------------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ["naive", "smem"])
def test_transpose_kernels_are_correct(variant):
    config = transpose.TransposeConfig(64, 16)
    kernel = transpose.generate_transpose(config, variant)
    matrix = np.random.default_rng(11).standard_normal((64, 64)).astype(np.float32)
    result, launch_result = transpose.run_transpose(kernel, matrix, config)
    assert np.array_equal(result, matrix.T)
    assert launch_result.store_elements == 64 * 64


def test_transpose_naive_write_is_uncoalesced_and_smem_is_not():
    config = transpose.TransposeConfig(64, 16)
    _, naive = transpose.run_transpose(transpose.generate_transpose(config, "naive"),
                                       np.zeros((64, 64), dtype=np.float32), config)
    _, staged = transpose.run_transpose(transpose.generate_transpose(config, "smem"),
                                        np.zeros((64, 64), dtype=np.float32), config)
    assert naive.store_transactions > 3 * staged.store_transactions
    assert staged.bank_conflict_factor < 1.1


def test_transpose_table_shape_matches_paper():
    rows = transpose.transpose_table(sizes=(2048, 4096))
    by_key = {(r["size"], r["variant"]): r for r in rows}
    for size in (2048, 4096):
        naive = by_key[(size, "naive")]
        smem = by_key[(size, "smem")]
        # the staged variant is several times faster and LEGO has a slight edge
        assert smem["lego_mlir_gbs"] > 3 * naive["lego_mlir_gbs"]
        assert smem["lego_mlir_gbs"] > smem["cuda_sdk_gbs"]
        assert naive["lego_mlir_gbs"] > naive["cuda_sdk_gbs"]
