"""The shared cache package: sharded LRU tier + persistent JSON tier."""

import json
import threading

import pytest

from repro.cache import ResultCache, ShardedLRUCache


# -- sharded in-memory tier ---------------------------------------------------------


def test_sharded_lru_roundtrip_and_negative_values():
    cache = ShardedLRUCache(shards=4, capacity_per_shard=8)
    cache.put("a", 1)
    cache.put("b", None)  # negative results are legal values, not misses
    assert cache.get("a") == 1
    assert cache.lookup("b") == (True, None)
    assert cache.lookup("missing") == (False, None)
    assert "a" in cache and "missing" not in cache
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0


def test_sharded_lru_evicts_least_recently_used():
    cache = ShardedLRUCache(shards=1, capacity_per_shard=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"; "b" is now the LRU entry
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats()["evictions"] == 1


def test_sharded_lru_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        ShardedLRUCache(shards=0)
    with pytest.raises(ValueError):
        ShardedLRUCache(capacity_per_shard=0)


def test_sharded_lru_stats_aggregate_per_shard():
    cache = ShardedLRUCache(shards=4, capacity_per_shard=8)
    for i in range(16):
        cache.put(i, i)
    hits = sum(1 for i in range(16) if cache.lookup(i)[0])
    cache.lookup("nope")
    stats = cache.stats()
    assert stats["shards"] == 4 and len(stats["per_shard"]) == 4
    assert stats["hits"] == sum(s["hits"] for s in stats["per_shard"]) == hits
    assert stats["misses"] == 1
    assert 0.0 < stats["hit_rate"] < 1.0


def test_sharded_lru_counters_consistent_under_threads():
    cache = ShardedLRUCache(shards=4, capacity_per_shard=64)
    threads, per_thread = 8, 500
    barrier = threading.Barrier(threads)

    def worker(seed: int):
        barrier.wait()
        for i in range(per_thread):
            key = (seed * i) % 96  # overlapping key space across threads
            if i % 3 == 0:
                cache.put(key, key)
            else:
                cache.lookup(key)

    pool = [threading.Thread(target=worker, args=(t + 1,)) for t in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    stats = cache.stats()
    lookups = threads * sum(1 for i in range(per_thread) if i % 3 != 0)
    assert stats["hits"] + stats["misses"] == lookups
    assert len(cache) <= 4 * 64


# -- persistent tier ----------------------------------------------------------------


def test_result_cache_save_is_atomic_and_leaves_no_temp_files(tmp_path):
    path = tmp_path / "store.json"
    cache = ResultCache(path)
    cache.put("k", {"time_seconds": 1.0})
    cache.save()
    assert json.loads(path.read_text()) == {"k": {"time_seconds": 1.0}}
    # the temp file was renamed over the destination, not left behind
    assert [p.name for p in tmp_path.iterdir()] == ["store.json"]
    # unchanged store: save is a no-op that still reports the path
    assert cache.save() == path


def test_result_cache_corrupt_store_resets_and_flags(tmp_path):
    path = tmp_path / "store.json"
    path.write_text('{"k": {"time_seconds" TRUNCATED')
    cache = ResultCache(path)
    assert cache.corrupt_reset is True
    assert len(cache) == 0
    # the reset store works and persists over the corpse atomically
    cache.put("k", {"time_seconds": 2.0})
    cache.save()
    assert ResultCache(path).corrupt_reset is False
    assert ResultCache(path).get("k") == {"time_seconds": 2.0}


def test_result_cache_non_object_root_counts_as_corrupt(tmp_path):
    path = tmp_path / "store.json"
    path.write_text("[1, 2, 3]")
    cache = ResultCache(path)
    assert cache.corrupt_reset is True and len(cache) == 0


def test_result_cache_missing_or_absent_path_is_not_corrupt(tmp_path):
    assert ResultCache(tmp_path / "never-written.json").corrupt_reset is False
    assert ResultCache(None).corrupt_reset is False


def test_result_cache_key_includes_backend():
    base = ResultCache.key("app", {"a": 1}, {"offs": "N*row"}, backend="triton")
    assert ResultCache.key("app", {"a": 1}, {"offs": "N*row"}, backend="cuda") != base
    assert ResultCache.key("app", {"a": 1}, {"offs": "N*row"}) != base
    # same backend, same payload: stable
    assert ResultCache.key("app", {"a": 1}, {"offs": "N*row"}, backend="triton") == base


def test_result_cache_concurrent_writers_never_truncate(tmp_path):
    path = tmp_path / "store.json"
    cache = ResultCache(path)
    threads = 8
    barrier = threading.Barrier(threads)

    def worker(tid: int):
        barrier.wait()
        for i in range(25):
            cache.put(f"{tid}-{i}", {"time_seconds": float(i)})
            cache.save()

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    # whatever interleaving happened, the file on disk is complete JSON
    reloaded = ResultCache(path)
    assert reloaded.corrupt_reset is False
    assert len(reloaded) == threads * 25


# -- edge cases: LRU order under peek/get, pruning stranded salts --------------------


def test_sharded_lru_peek_refreshes_lru_order_without_counting():
    cache = ShardedLRUCache(shards=1, capacity_per_shard=2)
    cache.put("a", 1)
    cache.put("b", 2)
    before = cache.stats()
    assert cache.peek("a") == (True, 1)  # refreshes "a"; "b" becomes the LRU entry
    assert cache.peek("missing") == (False, None)
    after = cache.stats()
    # peek is the *uncounted* probe: hit/miss counters must not move
    assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])
    cache.put("c", 3)
    assert "a" in cache and "c" in cache and "b" not in cache


def test_sharded_lru_eviction_order_under_interleaved_peek_and_get():
    cache = ShardedLRUCache(shards=1, capacity_per_shard=3)
    for key in ("a", "b", "c"):
        cache.put(key, key)
    assert cache.get("a") == "a"       # order now: b, c, a
    assert cache.peek("b") == (True, "b")  # order now: c, a, b — peek recencies too
    cache.put("d", "d")                # evicts "c", the true LRU entry
    assert "c" not in cache
    assert all(key in cache for key in ("a", "b", "d"))
    stats = cache.stats()
    assert stats["evictions"] == 1
    # one counted hit (“a”), zero counted misses: peeks stayed off the books
    assert stats["hits"] == 1 and stats["misses"] == 0


def test_result_cache_prune_on_store_of_only_stranded_salts(tmp_path):
    path = tmp_path / "store.json"
    stranded = {
        "k1": {"salt": "old-version/old-code", "kernel": None},
        "k2": {"salt": "old-version/old-code", "kernel": {"name": "dead"}},
    }
    path.write_text(json.dumps(stranded))
    cache = ResultCache(path)
    assert len(cache) == 2
    removed = cache.prune(lambda key, entry: entry.get("salt") == "new-version/new-code")
    assert removed == 2 and len(cache) == 0
    # pruning dirties the store: save persists the now-empty map atomically
    assert cache.save() == path
    reloaded = ResultCache(path)
    assert len(reloaded) == 0 and reloaded.corrupt_reset is False
    # a second prune over the empty store removes nothing and stays clean
    assert reloaded.prune(lambda key, entry: False) == 0


def test_result_cache_prune_keeps_unsalted_entries():
    cache = ResultCache(None)
    cache.put("foreign", {"time_seconds": 1.0})
    cache.put("stranded", {"salt": "old", "kernel": None})
    removed = cache.prune(lambda key, entry: "salt" not in entry or entry["salt"] == "new")
    assert removed == 1
    assert cache.get("foreign") is not None and cache.get("stranded") is None


def test_result_cache_version_salt_invalidates_and_prune_reclaims(monkeypatch):
    """The 1.6.0 range-analysis refactor changes what cached results mean
    (guard-eliminated launches, statically proven layouts), so the version
    salt must repartition the key space and ``prune`` must reclaim the
    pre-refactor generation of entries."""
    import repro

    config = {"block": 64, "cuda_block": 16}
    exprs = {"element_offset": "tx + 16*ty"}
    current_key = ResultCache.key("lud", config, exprs, backend="cuda")
    monkeypatch.setattr(repro, "__version__", "1.5.0")
    old_key = ResultCache.key("lud", config, exprs, backend="cuda")
    monkeypatch.undo()
    assert old_key != current_key  # the bump re-salted every key

    cache = ResultCache(None)
    cache.put(old_key, {"version": "1.5.0", "time_seconds": 1.0})
    cache.put(current_key, {"version": repro.__version__, "time_seconds": 2.0})
    removed = cache.prune(lambda key, entry: entry.get("version") == repro.__version__)
    assert removed == 1
    assert cache.get(old_key) is None
    assert cache.get(current_key) == {"version": repro.__version__, "time_seconds": 2.0}


def test_result_cache_reload_merges_foreign_saves(tmp_path):
    """reload() picks up sibling writers without dropping local dirty puts."""
    path = tmp_path / "shared.json"
    ours = ResultCache(path)
    ours.put("local", {"time_seconds": 1.0})
    theirs = ResultCache(path)
    theirs.put("foreign", {"time_seconds": 2.0})
    theirs.save()
    assert ours.reload() is True
    assert ours.get("foreign") == {"time_seconds": 2.0}
    # the dirty local entry survived the merge and wins any key conflict
    assert ours.get("local") == {"time_seconds": 1.0}
    theirs.put("local", {"time_seconds": 99.0})
    theirs.save()
    assert ours.reload() is True
    assert ours.get("local") == {"time_seconds": 1.0}, "a reload dropped a dirty put"
    ours.save()
    assert ResultCache(path).get("local") == {"time_seconds": 1.0}


def test_result_cache_reload_flags_truncated_store(tmp_path):
    path = tmp_path / "store.json"
    cache = ResultCache(path)
    cache.put("k", {"time_seconds": 1.0})
    cache.save()
    path.write_text('{"k": {"time_')  # a non-atomic foreign writer truncated it
    assert cache.reload() is False
    assert cache.corrupt_reset is True
    assert cache.get("k") is not None, "local state must survive a bad reload"
