"""Occupancy and roofline behaviour of the analytic kernel model."""

import pytest

from repro.gpusim import A100_80GB, KernelCost, estimate_time, occupancy_factor, roofline_point


# -- occupancy_factor ---------------------------------------------------------------


def test_occupancy_defaults_to_full_without_block_info():
    assert occupancy_factor(KernelCost(), A100_80GB) == 1.0
    assert occupancy_factor(KernelCost(blocks=0.0), A100_80GB) == 1.0


def test_occupancy_penalises_partial_waves():
    # fewer blocks than SMs -> some SMs idle
    half = KernelCost(blocks=A100_80GB.num_sms / 2, threads_per_block=256)
    full = KernelCost(blocks=float(A100_80GB.num_sms * 4), threads_per_block=256)
    assert occupancy_factor(half, A100_80GB) < occupancy_factor(full, A100_80GB)


def test_occupancy_penalises_huge_thread_blocks():
    # 1024-thread blocks leave only 2 resident blocks per SM (poor latency hiding)
    big = KernelCost(blocks=1000.0, threads_per_block=1024)
    small = KernelCost(blocks=1000.0, threads_per_block=128)
    assert occupancy_factor(big, A100_80GB) < occupancy_factor(small, A100_80GB)


def test_occupancy_penalises_smem_limited_residency():
    base = dict(blocks=1000.0, threads_per_block=128)
    light = KernelCost(**base, smem_per_block=1024.0)
    heavy = KernelCost(**base, smem_per_block=float(A100_80GB.smem_per_sm_bytes))
    assert occupancy_factor(heavy, A100_80GB) < occupancy_factor(light, A100_80GB)


def test_occupancy_never_reaches_zero():
    terrible = KernelCost(blocks=1.0, threads_per_block=32,
                          smem_per_block=float(A100_80GB.smem_per_sm_bytes))
    assert occupancy_factor(terrible, A100_80GB) >= 0.05


# -- roofline_point -----------------------------------------------------------------


def _cost(flops: float, dram_bytes: float) -> KernelCost:
    return KernelCost(flops=flops, dram_bytes=dram_bytes,
                      blocks=1.0e5, threads_per_block=256, threads=2.56e7)


def test_roofline_point_memory_bound_kernel():
    point = roofline_point(_cost(flops=1e9, dram_bytes=1e9), A100_80GB)
    assert point["arithmetic_intensity"] == pytest.approx(1.0)
    assert point["bound"] == "dram"
    # achieved throughput sits below the memory roof at this intensity
    assert point["achieved_gflops"] <= point["memory_roof_gflops"]


def test_roofline_point_compute_bound_kernel():
    point = roofline_point(_cost(flops=1e13, dram_bytes=1e6), A100_80GB)
    assert point["bound"] == "compute"
    assert point["achieved_gflops"] <= point["peak_gflops"]
    # at this intensity the memory roof is far above the compute roof
    assert point["memory_roof_gflops"] > point["peak_gflops"]


def test_roofline_point_consistent_with_estimate_time():
    cost = _cost(flops=5e11, dram_bytes=2e9)
    point = roofline_point(cost, A100_80GB)
    breakdown = estimate_time(cost, A100_80GB)
    assert point["achieved_gflops"] == pytest.approx(cost.flops / breakdown.total / 1e9)
    assert set(breakdown.as_dict()) == {
        "total", "compute", "dram", "l2", "smem", "overhead", "occupancy", "bound",
    }


def test_roofline_point_infinite_intensity_without_dram_traffic():
    point = roofline_point(KernelCost(flops=1e9, dram_bytes=0.0), A100_80GB)
    assert point["arithmetic_intensity"] == float("inf")
