"""Error paths of the MLIR verifier and interpreter.

The happy paths are pinned by the transpose goldens and the substrate tests;
these exercise what ``mlir-opt -verify-diagnostics`` (and a crashing kernel)
would catch: unverifiable modules, type mismatches and out-of-bounds memref
accesses.
"""

import numpy as np
import pytest

from repro.mlir import VerificationError, run_gpu_kernel, verify_module
from repro.mlir.dialects import arith, build_gpu_module, func, gpu, memref
from repro.mlir.ir import Module, OpBuilder, Operation, Value
from repro.mlir.types import F32, INDEX, MemRefType


def _gpu_kernel(argument_types):
    """A fresh module + gpu.func + builder over its body."""
    module = build_gpu_module("m")
    fn = gpu.func(module, "k", argument_types)
    return module, fn, OpBuilder(fn.body)


# -- verifier -----------------------------------------------------------------------------


def test_verifier_rejects_use_before_definition():
    module, fn, builder = _gpu_kernel([])
    dangling = Value(name="ghost", type=INDEX)
    builder.insert("arith.addi", [dangling, dangling], [INDEX])
    gpu.return_(builder)
    with pytest.raises(VerificationError, match="used before definition"):
        verify_module(module)


def test_verifier_rejects_double_definition():
    module, fn, builder = _gpu_kernel([])
    first = builder.insert("arith.constant", [], [INDEX], {"value": 1})
    twin = Operation(name="arith.constant", operands=[], attributes={"value": 2})
    twin.results.append(first.result)  # re-defines an existing SSA value
    fn.body.operations.append(twin)
    gpu.return_(builder)
    with pytest.raises(VerificationError, match="defined twice"):
        verify_module(module)


def test_verifier_rejects_missing_gpu_terminator():
    module, fn, builder = _gpu_kernel([])
    func.return_(builder)  # wrong dialect's terminator
    with pytest.raises(VerificationError, match="terminate with gpu.return"):
        verify_module(module)


def test_verifier_rejects_memref_rank_mismatch():
    module, fn, builder = _gpu_kernel([MemRefType((4, 4), F32)])
    index = arith.constant(builder, 0)
    builder.insert("memref.load", [fn.argument(0), index], [F32])  # rank 2, one index
    gpu.return_(builder)
    with pytest.raises(VerificationError, match="rank-2 memref needs 2 indices"):
        verify_module(module)


def test_verifier_rejects_non_index_subscript_type():
    module, fn, builder = _gpu_kernel([MemRefType((4,), F32)])
    bad_index = arith.constant(builder, 1.5, F32)
    builder.insert("memref.load", [fn.argument(0), bad_index], [F32])
    gpu.return_(builder)
    with pytest.raises(VerificationError, match="must have index type"):
        verify_module(module)


def test_verifier_rejects_wrong_binary_arity():
    module, fn, builder = _gpu_kernel([])
    one = arith.constant(builder, 1)
    builder.insert("arith.addi", [one], [INDEX])
    gpu.return_(builder)
    with pytest.raises(VerificationError, match="expects 2 operands"):
        verify_module(module)


def test_verifier_rejects_duplicate_function_names():
    module = build_gpu_module("m")
    for _ in range(2):
        fn = gpu.func(module, "same", [])
        gpu.return_(OpBuilder(fn.body))
    with pytest.raises(VerificationError, match="duplicate function name"):
        verify_module(module)


# -- interpreter --------------------------------------------------------------------------


def _loading_kernel(index_value, size=8):
    module, fn, builder = _gpu_kernel([MemRefType((size,), F32)])
    index = arith.constant(builder, index_value)
    memref.load(builder, fn.argument(0), [index])
    gpu.return_(builder)
    verify_module(module)  # the error paths below are runtime-only
    return module


def test_interpreter_rejects_non_gpu_functions():
    module = Module()
    fn = func.func(module, "host", [])
    func.return_(OpBuilder(fn.body))
    with pytest.raises(ValueError, match="not a gpu.func kernel"):
        run_gpu_kernel(module, "host", grid=(1, 1, 1), block=(1, 1, 1), arguments=[])


def test_interpreter_rejects_wrong_argument_count():
    module = _loading_kernel(0)
    with pytest.raises(ValueError, match="expects 1 arguments, got 0"):
        run_gpu_kernel(module, "k", grid=(1, 1, 1), block=(1, 1, 1), arguments=[])


def test_interpreter_rejects_wrong_buffer_size():
    module = _loading_kernel(0)
    with pytest.raises(ValueError, match="has 4 elements, expected 8"):
        run_gpu_kernel(module, "k", grid=(1, 1, 1), block=(1, 1, 1),
                       arguments=[np.zeros(4, dtype=np.float32)])


def test_interpreter_raises_on_out_of_bounds_memref_access():
    module = _loading_kernel(99)  # verifies fine, faults at runtime
    with pytest.raises(IndexError):
        run_gpu_kernel(module, "k", grid=(1, 1, 1), block=(1, 1, 1),
                       arguments=[np.zeros(8, dtype=np.float32)])


def test_interpreter_rejects_unsupported_operations():
    module, fn, builder = _gpu_kernel([])
    one = arith.constant(builder, 1)
    builder.insert("arith.xori", [one, one], [INDEX])
    gpu.return_(builder)
    with pytest.raises(NotImplementedError, match="arith.xori"):
        run_gpu_kernel(module, "k", grid=(1, 1, 1), block=(1, 1, 1), arguments=[])


def test_unverified_module_fails_before_interpretation():
    """The generation pipeline's contract: verify first, interpret second —
    an unverifiable module is caught by the verifier, not by a crash."""
    module, fn, builder = _gpu_kernel([MemRefType((4,), F32)])
    dangling = Value(name="ghost", type=INDEX)
    memref.load(builder, fn.argument(0), [dangling])
    gpu.return_(builder)
    with pytest.raises(VerificationError):
        verify_module(module)
    # and the interpreter, if misused without verification, still refuses
    with pytest.raises(KeyError, match="undefined SSA value"):
        run_gpu_kernel(module, "k", grid=(1, 1, 1), block=(1, 1, 1),
                       arguments=[np.zeros(4, dtype=np.float32)])
