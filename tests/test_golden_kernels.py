"""Byte-identical golden tests for every code-generation backend.

The files under ``tests/golden/`` were captured from the expression engine
*before* the hash-consing + memoisation refactor; these tests pin the
generated Triton / CUDA / MLIR text (matmul, NW, LUD, stencil and friends)
so engine changes that alter output — rather than just speed — fail loudly.

Regenerate intentionally with ``PYTHONPATH=src python tests/golden_kernels.py --write``.
"""

import pytest

from golden_kernels import GOLDEN_DIR, build_artifacts


@pytest.fixture(scope="module")
def artifacts() -> dict[str, str]:
    return build_artifacts()


def _golden_names() -> list[str]:
    return sorted(p.name for p in GOLDEN_DIR.iterdir())


def test_golden_directory_is_complete(artifacts):
    assert set(_golden_names()) == set(artifacts), (
        "artifact set drifted from tests/golden/; regenerate with "
        "`PYTHONPATH=src python tests/golden_kernels.py --write`"
    )


@pytest.mark.parametrize("name", _golden_names())
def test_generated_kernel_matches_golden(artifacts, name):
    expected = (GOLDEN_DIR / name).read_text()
    assert artifacts[name] == expected, f"{name}: generated kernel text drifted from golden file"
