"""The differential verification subsystem: runner, fuzzer, hooks, mutations."""

import dataclasses

import numpy as np
import pytest

from repro.apps.registry import AppSpec, CheckCase, available_apps, get_app
from repro.check import (
    CheckFailure,
    check_all,
    check_app,
    check_kernel,
    differential_verifier,
    fuzz_symbolic,
    fuzz_trial,
    run_check,
    stable_seed,
    tolerance_for,
)
from repro.minitriton.language import KernelTrace
from repro.serve import CompileRequest, CompileService
from repro.serve.service import default_compiler
from importlib import import_module

# the package re-exports the ``simplify`` *function* under the same name, so
# the rewrite-engine module must be resolved explicitly
simplify_module = import_module("repro.symbolic.simplify")
from repro.symbolic.expr import Mod
from repro.tune.space import Choice, SearchSpace


# -- the differential runner over every app ----------------------------------------------


@pytest.mark.parametrize("app", sorted(available_apps()))
def test_every_app_differentially_verifies(app):
    """Sampled configs of every app execute on their substrate and match NumPy."""
    reports = check_app(app, samples=2, seed=0)
    assert reports, f"{app} produced no check reports"
    assert all(r.status in ("passed", "skipped") for r in reports), [
        r.summary() for r in reports if r.status == "failed"
    ]
    # at least one configuration per app must actually execute a kernel
    executed = [r for r in reports if r.passed]
    assert executed, f"{app}: every sampled config was skipped"
    for report in executed:
        assert report.elements > 0
        assert report.dtype


def test_paper_configs_verify_for_all_apps():
    """The paper-preferred configuration of each app passes its check."""
    for app in available_apps():
        spec = get_app(app)
        config = next(iter(spec.space))
        report = run_check(spec, config, seed=1)
        assert report.status == "passed", report.summary()


def test_check_all_groups_reports_by_app():
    results = check_all(["softmax", "nw"], samples=1, seed=0)
    assert set(results) == {"softmax", "nw"}
    assert all(isinstance(reports, list) and reports for reports in results.values())


def test_reports_are_seed_deterministic():
    first = run_check("matmul", {"variant": "tn"}, seed=7).as_dict()
    second = run_check("matmul", {"variant": "tn"}, seed=7).as_dict()
    assert first == second
    assert first["status"] == "passed"


def test_stable_seed_is_process_stable_and_distinct():
    assert stable_seed(0, "matmul", {"a": 1}) == stable_seed(0, "matmul", {"a": 1})
    assert stable_seed(0, "matmul", {"a": 1}) != stable_seed(1, "matmul", {"a": 1})


def test_tolerances_per_dtype():
    assert tolerance_for(np.dtype(np.int32)).exact
    assert tolerance_for(np.dtype(np.float16)).rtol > tolerance_for(np.dtype(np.float32)).rtol
    with pytest.raises(ValueError):
        tolerance_for(np.dtype(np.complex128))


def test_baseline_configs_are_skipped_not_failed():
    report = run_check("softmax", {"implementation": "pytorch"}, seed=0)
    assert report.skipped
    assert "no executable kernel" in report.reason


def test_check_kernel_regenerates_when_check_shrinks_kernel_axes():
    """Transpose bakes the problem size into its module; the runner must
    regenerate a downsized twin instead of executing the 2048^2 kernel."""
    spec = get_app("transpose")
    config = {"variant": "smem", "skew": 1, "tile": 8, "generator": "lego"}
    kernel = spec.generate(config)  # n = 2048 baked into the memref types
    report = check_kernel("transpose", config, kernel, seed=0)
    assert report.status == "passed", report.summary()
    assert report.check_config["n"] == 16


# -- sampled launches are rejected --------------------------------------------------------


def _adhoc_spec(execute):
    return AppSpec(
        name="adhoc",
        backend="triton",
        space=SearchSpace(Choice("x", (1,))),
        evaluate=lambda config: 1.0,
        reference=lambda config, inputs: np.zeros(4, dtype=np.float32),
        check_case=lambda config, rng: CheckCase(config=dict(config), inputs={}, execute=execute),
    )


def test_runner_rejects_sampled_launch_traces():
    """A partially executed grid must never pass a numeric check, even when
    the (partial) output happens to match."""
    sampled = KernelTrace(sampled=True)
    spec = _adhoc_spec(lambda kernel: (np.zeros(4, dtype=np.float32), sampled))
    report = run_check(spec, {"x": 1}, seed=0)
    assert report.status == "failed"
    assert "sampled" in report.reason


def test_runner_accepts_full_launch_traces():
    full = KernelTrace(programs=4)
    spec = _adhoc_spec(lambda kernel: (np.zeros(4, dtype=np.float32), full))
    report = run_check(spec, {"x": 1}, seed=0)
    assert report.status == "passed"
    assert report.trace["programs"] == 4.0


# -- mutation tests: a deliberately broken rewrite must be caught -------------------------


@pytest.fixture
def broken_mod_rule():
    """Install ``a % b -> a`` (wrong) as the highest-priority Mod rule."""
    broken = simplify_module.RewriteRule(
        name="broken-mod-identity",
        node_type=Mod,
        description="deliberately wrong rewrite for the mutation test",
        fn=lambda expr, env, rw: expr.args[0],
    )
    original = simplify_module._RULES_BY_TYPE.get(Mod, ())
    simplify_module._RULES_BY_TYPE[Mod] = (broken,) + original
    try:
        yield
    finally:
        simplify_module._RULES_BY_TYPE[Mod] = original
        # drop any expansion results memoised while the broken rule was live
        simplify_module._EXPAND_CACHE.clear()


def test_differential_runner_catches_broken_rewrite(broken_mod_rule):
    report = run_check("matmul", {"variant": "nn", "BM": 128, "BN": 128, "BK": 64, "GM": 8}, seed=0)
    assert report.status == "failed", report.summary()


def test_fuzzer_catches_broken_rewrite(broken_mod_rule):
    report = fuzz_symbolic(trials=120, seed=3)
    assert not report.ok
    assert any(f.property in ("simplify", "fixpoint", "lowering") for f in report.failures)
    # every failure carries the seed that replays it
    failure = report.failures[0]
    assert fuzz_trial(failure.seed), "printed seed must reproduce the failure"


# -- the fuzzer on healthy rules ----------------------------------------------------------


def test_fuzz_symbolic_is_clean_and_deterministic():
    first = fuzz_symbolic(trials=60, seed=0)
    second = fuzz_symbolic(trials=60, seed=0)
    assert first.ok, [f.as_dict() for f in first.failures]
    assert first.as_dict() == second.as_dict()
    assert first.checked == {"simplify": 60, "fixpoint": 60, "printer": 60, "lowering": 60}


def test_search_space_sample_is_valid_and_deterministic():
    space = get_app("lud").space
    draws = space.sample(4, 123)
    assert draws == space.sample(4, 123)
    assert all(config["block"] % config["cuda_block"] == 0 for config in draws)
    assert len({tuple(sorted(c.items())) for c in draws}) == len(draws)  # no replacement
    small = SearchSpace(Choice("a", (1, 2)))
    assert small.sample(10) == [{"a": 1}, {"a": 2}]  # count covers the space
    with pytest.raises(ValueError):
        small.sample(0)


# -- integration hooks --------------------------------------------------------------------


def _corrupting_compiler(request):
    """Compile normally, then shift every A-tile load by one element."""
    kernel = default_compiler(request)
    return dataclasses.replace(kernel, source=kernel.source.replace("a_ptrs = a_ptr + ", "a_ptrs = a_ptr + 1 + "))


def test_service_verify_rejects_wrong_kernels_before_caching():
    with CompileService(workers=1, compiler=_corrupting_compiler,
                        verify=differential_verifier(seed=0)) as service:
        request = CompileRequest(app="matmul", config={"variant": "nn"})
        with pytest.raises(CheckFailure):
            service.compile(request)
        stats = service.stats()
        assert stats.errors == 1
        assert stats.compiled == 0  # the wrong kernel never reached a cache tier
        # the failure is not cached either: a retry re-verifies and re-raises
        with pytest.raises(CheckFailure):
            service.compile(request)


def test_service_verify_passes_correct_kernels_once():
    checked = []

    def verifier(request, kernel):
        checked.append(request.local_key())
        differential_verifier(seed=0)(request, kernel)

    with CompileService(workers=2, verify=verifier) as service:
        request = CompileRequest(app="matmul", config={"variant": "tn"})
        first = service.compile(request)
        second = service.compile(request)
        assert first.source == second.source
    assert len(checked) == 1  # verification runs on first compilation only


def test_check_through_service_with_warm_durable_store(tmp_path):
    """A kernel restored from the durable tier has no live MLIR module; the
    runner must check a freshly generated twin instead of crashing."""
    store = tmp_path / "kernels.json"
    config = {"variant": "smem", "skew": 1, "tile": 8, "generator": "lego"}
    with CompileService(workers=1, store=store) as warmup:
        assert run_check("transpose", config, seed=0, service=warmup).passed
    # fresh service: cold memory tier, warm durable tier -> PersistedKernel
    with CompileService(workers=1, store=store) as restored:
        report = run_check("transpose", config, seed=0, service=restored)
        assert report.status == "passed", report.summary()
        assert restored.stats().persistent_hits == 1


def test_service_verifies_unstamped_durable_restores(tmp_path):
    """A store warmed without a verifier must not bypass a consumer's gate."""
    store = tmp_path / "kernels.json"
    request = CompileRequest(app="matmul", config={"variant": "nn"})
    with CompileService(workers=1, compiler=_corrupting_compiler, store=store) as producer:
        producer.compile(request)  # wrong kernel persisted, unverified
    with CompileService(workers=1, store=store, verify=differential_verifier(seed=0)) as consumer:
        with pytest.raises(CheckFailure):
            consumer.compile(request)
    # a healthy unstamped store verifies once on restore, then is stamped
    good_store = tmp_path / "good.json"
    with CompileService(workers=1, store=good_store) as producer:
        producer.compile(request)
    checked = []

    def counting_verifier(req, kernel):
        checked.append(req.local_key())
        differential_verifier(seed=0)(req, kernel)

    for _ in range(2):  # second service restores the now-stamped entry
        with CompileService(workers=1, store=good_store, verify=counting_verifier) as consumer:
            assert consumer.compile(request) is not None
            assert consumer.stats().persistent_hits == 1
    assert len(checked) == 1


def test_autotune_verify_top_k_attaches_reports():
    from repro import tune

    space = get_app("matmul").space.subspace(variant=("nn", "tn"), BM=(128,), BN=(128,),
                                            BK=(64,), GM=(8,))
    result = tune.autotune("matmul", space=space, verify_top_k=2, verify_seed=0)
    assert len(result.verification) == 2
    assert all(report.passed for report in result.verification)


def test_autotune_verify_top_k_raises_on_broken_rewrite(broken_mod_rule):
    from repro import tune
    from repro.serve import CompileService

    space = get_app("matmul").space.subspace(variant=("nn",), BM=(128,), BN=(128,),
                                            BK=(64,), GM=(8,))
    # a private service: the broken kernel must not enter the shared default cache
    with CompileService(workers=1) as service:
        with pytest.raises(CheckFailure):
            tune.autotune("matmul", space=space, service=service, verify_top_k=1)
