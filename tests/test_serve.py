"""The concurrent compilation service and the symbolic layer's thread safety."""

import threading

import pytest

from repro.apps.registry import get_app
from repro.cache import ShardedLRUCache
from repro.serve import (
    CompileRequest,
    CompileService,
    PersistedKernel,
    synthetic_requests,
)
from repro.serve.service import kernel_from_payload, kernel_payload
from repro.symbolic import CostWeights, Var


# -- the symbolic layer under threads -----------------------------------------------


def test_parallel_interning_yields_one_node():
    """N threads racing to build the same expression get the same object."""
    from repro.symbolic.expr import Add, FloorDiv, Mod, Mul

    threads = 8
    barrier = threading.Barrier(threads)
    results: list = [None] * threads

    def build(slot: int):
        # fresh variable names so this test really exercises first interning
        a, b, c = Var("tsafe_a"), Var("tsafe_b"), Var("tsafe_c")
        barrier.wait()
        results[slot] = Mod(FloorDiv(Add(Mul(a, 7), Mul(b, 3), 11), c), Add(a, c))

    pool = [threading.Thread(target=build, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    ids = {expr.expr_id for expr in results}
    assert len(ids) == 1, "racing constructors minted distinct nodes"
    assert all(expr is results[0] for expr in results)


def test_parallel_generation_matches_sequential_goldens(tmp_path):
    """Concurrent batch compiles are byte-identical to the inline path."""
    requests = [
        CompileRequest("matmul", {"variant": "nn"}),
        CompileRequest("matmul", {"variant": "tn"}),
        CompileRequest("lud", {"n": 1024, "block": 64, "cuda_block": 16}),
        CompileRequest("softmax", {"implementation": "lego"}),
    ] * 4
    sequential = [get_app(r.app).generate(r.config).source for r in requests]
    with CompileService(workers=4) as service:
        kernels = service.submit_batch(requests)
    assert [k.source for k in kernels] == sequential
    # and the first two match the checked-in goldens byte for byte
    from pathlib import Path

    golden = Path(__file__).parent / "golden"
    assert kernels[0].source == (golden / "matmul_nn.triton.txt").read_text()
    assert kernels[1].source == (golden / "matmul_tn.triton.txt").read_text()


# -- requests -----------------------------------------------------------------------


def test_request_keys_are_value_based():
    a = CompileRequest("matmul", {"variant": "nn"})
    b = CompileRequest("matmul", {"variant": "nn"})
    c = CompileRequest("matmul", {"variant": "tn"})
    assert a.local_key() == b.local_key() and a.stable_key() == b.stable_key()
    assert a.local_key() != c.local_key() and a.stable_key() != c.stable_key()
    weighted = CompileRequest("matmul", {"variant": "nn"}, cost_weights=CostWeights.gpu_default())
    assert weighted.local_key() != a.local_key()
    assert weighted.stable_key() != a.stable_key()
    backended = CompileRequest("matmul", {"variant": "nn"}, backend="triton")
    assert backended.local_key() != a.local_key()


def test_stable_key_is_salted_by_the_code_fingerprint(monkeypatch):
    from repro.serve import service as service_module

    request = CompileRequest("matmul", {"variant": "nn"})
    baseline = request.stable_key()
    assert request.stable_key() == baseline  # stable within one process
    # different source tree -> different durable-tier key space
    monkeypatch.setattr(service_module, "_CODE_FINGERPRINT", "edited-source")
    assert request.stable_key() != baseline


def test_request_config_is_copied():
    config = {"variant": "nn"}
    request = CompileRequest("matmul", config)
    config["variant"] = "tt"
    assert request.config == {"variant": "nn"}


# -- deduplication and counters -----------------------------------------------------


def _counting_compiler():
    calls: list[tuple] = []
    lock = threading.Lock()

    def compiler(request: CompileRequest):
        with lock:
            calls.append(request.local_key())
        return get_app(request.app).generate(request.config)

    return compiler, calls


def test_batch_compiles_each_distinct_kernel_exactly_once():
    compiler, calls = _counting_compiler()
    distinct = [
        CompileRequest("matmul", {"variant": v}) for v in ("nn", "nt", "tn", "tt")
    ] + [CompileRequest("softmax", {"implementation": "lego"})]
    requests = distinct * 8  # 40 requests, 5 distinct kernels
    with CompileService(compiler=compiler, workers=4) as service:
        kernels = service.submit_batch(requests)
        stats = service.stats()
    assert len(calls) == len(distinct), "a kernel compiled more than once"
    assert sorted(set(calls)) == sorted(r.local_key() for r in distinct)
    assert stats.compiled == len(distinct)
    assert stats.deduped + stats.memory_hits == len(requests) - len(distinct)
    assert stats.deduped > 0, "a 4-worker batch of 8x duplicates must dedup in flight"
    # all duplicates share the leader's kernel object
    assert kernels[0] is kernels[5] is kernels[-5]


def test_stats_invariants_hold_under_concurrent_submitters():
    compiler, calls = _counting_compiler()
    requests = synthetic_requests(apps=["matmul", "softmax", "layernorm"],
                                  total=120, duplicate_fraction=0.7, seed=3)
    distinct = len({r.local_key() for r in requests})
    service = CompileService(compiler=compiler, workers=4)
    threads = 6
    barrier = threading.Barrier(threads)
    chunks = [requests[i::threads] for i in range(threads)]

    def client(chunk):
        barrier.wait()
        service.submit_batch(chunk)

    pool = [threading.Thread(target=client, args=(chunk,)) for chunk in chunks]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    stats = service.stats()
    service.close()
    assert stats.submitted == stats.completed == len(requests)
    assert stats.submitted == stats.memory_hits + stats.memory_misses
    assert stats.memory_misses == stats.deduped + stats.compiled + stats.persistent_hits + stats.errors
    assert stats.compiled == len(calls) == distinct
    assert stats.errors == 0 and stats.queue_depth == 0
    assert stats.latency["count"] == len(requests)
    assert sum(s["hits"] for s in stats.shards) == stats.memory_hits


def test_negative_results_are_cached_not_recompiled():
    compiler, calls = _counting_compiler()
    request = CompileRequest("softmax", {"implementation": "pytorch"})  # generator declines
    with CompileService(compiler=compiler, workers=2) as service:
        assert service.compile(request) is None
        assert service.compile(request) is None
        stats = service.stats()
    assert len(calls) == 1
    assert stats.memory_hits == 1


def test_compiler_errors_propagate_and_are_not_cached():
    attempts = []

    def flaky(request):
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient backend failure")
        return get_app(request.app).generate(request.config)

    request = CompileRequest("matmul", {"variant": "nn"})
    with CompileService(compiler=flaky, workers=2) as service:
        with pytest.raises(RuntimeError, match="transient"):
            service.compile(request)
        kernel = service.compile(request)  # error was not cached; retried
        stats = service.stats()
    assert kernel is not None and len(attempts) == 2
    assert stats.errors == 1 and stats.compiled == 1


def test_closed_service_rejects_submissions():
    service = CompileService(workers=1)
    service.close()
    with pytest.raises(RuntimeError, match="closed"):
        service.submit(CompileRequest("matmul", {"variant": "nn"}))


# -- the persistent tier ------------------------------------------------------------


def test_persistent_tier_warms_a_fresh_service(tmp_path):
    store = tmp_path / "kernels.json"
    request = CompileRequest("lud", {"n": 1024, "block": 64, "cuda_block": 16})
    with CompileService(workers=2, store=store) as first:
        fresh = first.compile(request)
    assert store.exists()

    compiler, calls = _counting_compiler()
    with CompileService(compiler=compiler, workers=2, store=store) as second:
        restored = second.compile(request)
        stats = second.stats()
    assert calls == [], "the durable tier should have answered"
    assert stats.persistent_hits == 1 and stats.compiled == 0
    assert isinstance(restored, PersistedKernel)
    assert restored.source == fresh.source
    assert restored.rendered_expressions() == fresh.rendered_expressions()
    assert restored.binding_ops(CostWeights.gpu_default()) == fresh.binding_ops(
        CostWeights.gpu_default()
    )


def test_store_prunes_entries_stranded_by_a_code_change(tmp_path, monkeypatch):
    from repro.cache import ResultCache
    from repro.serve import service as service_module

    store = tmp_path / "kernels.json"
    with CompileService(workers=1, store=store) as first:
        first.compile(CompileRequest("matmul", {"variant": "nn"}))
    # tuner-style entries without a salt field must survive untouched
    shared = ResultCache(store)
    shared.put("eval-entry", {"time_seconds": 1.0})
    shared.save()
    assert len(ResultCache(store)) == 2

    # a source edit changes the fingerprint: the stranded kernel entry is
    # reclaimed on attach, the foreign entry is kept
    monkeypatch.setattr(service_module, "_CODE_FINGERPRINT", "edited-source")
    with CompileService(workers=1, store=store) as second:
        second.compile(CompileRequest("matmul", {"variant": "nn"}))
        assert second.stats().persistent_hits == 0  # old entry unreachable
        assert second.stats().compiled == 1
    reloaded = ResultCache(store)
    assert reloaded.get("eval-entry") == {"time_seconds": 1.0}
    assert len(reloaded) == 2  # foreign entry + the freshly salted kernel


def test_kernel_payload_roundtrip_includes_negative_results():
    fresh = get_app("matmul").generate({"variant": "nn"})
    restored = kernel_from_payload(kernel_payload(fresh))
    assert restored.source == fresh.source
    assert restored.name == fresh.name and restored.backend == fresh.backend
    assert restored.rendered_expressions() == fresh.rendered_expressions()
    assert kernel_from_payload(kernel_payload(None)) is None


# -- the autotuner on the service ---------------------------------------------------


def test_autotune_generation_dedups_through_the_service():
    from repro.tune import autotune

    service = CompileService(workers=4, cache=ShardedLRUCache(shards=4, capacity_per_shard=512))
    try:
        result = autotune("matmul", service=service)
        stats = service.stats()
        # 144 candidates project onto the 4 operand-layout variants
        assert stats.compiled == 4
        assert stats.deduped + stats.memory_hits == len(result) - 4
        # a second sweep is served entirely from the warm cache
        again = autotune("matmul", service=service)
        assert service.stats().compiled == 4
        assert again.best.config == result.best.config
        assert [c.index_ops for c in again.evaluations] == [
            c.index_ops for c in result.evaluations
        ]
    finally:
        service.close()


def test_autotune_ranking_unchanged_by_persisted_kernels(tmp_path):
    from repro.tune import autotune

    store = tmp_path / "kernels.json"
    with CompileService(workers=2, store=store) as first:
        cold = autotune("lud", service=first)
    with CompileService(workers=2, store=store) as second:
        warm = autotune("lud", service=second)
        stats = second.stats()
    assert stats.persistent_hits > 0 and stats.compiled == 0
    # the space has grown satellite axes since the paper's grid; the paper
    # winner is the subset that must survive
    assert warm.best.config == cold.best.config
    assert cold.best.config["block"] == 64 and cold.best.config["cuda_block"] == 16
    assert [c.index_ops for c in warm.evaluations] == [c.index_ops for c in cold.evaluations]
    assert [c.time_seconds for c in warm.evaluations] == [
        c.time_seconds for c in cold.evaluations
    ]


# -- synthetic traffic and the CLI --------------------------------------------------


def test_synthetic_requests_are_deterministic_and_duplicated():
    first = synthetic_requests(total=60, duplicate_fraction=0.5, seed=9)
    second = synthetic_requests(total=60, duplicate_fraction=0.5, seed=9)
    assert [(r.app, r.config) for r in first] == [(r.app, r.config) for r in second]
    assert len(first) == 60
    distinct = len({r.local_key() for r in first})
    assert distinct <= 30  # at least the duplicate fraction repeats
    shuffled = synthetic_requests(total=60, duplicate_fraction=0.5, seed=10)
    assert [(r.app, r.config) for r in first] != [(r.app, r.config) for r in shuffled]
    with pytest.raises(ValueError):
        synthetic_requests(total=0)
    with pytest.raises(ValueError):
        synthetic_requests(duplicate_fraction=1.0)


def test_cli_replay_reports_warm_second_pass(tmp_path, capsys):
    from repro.serve.__main__ import main

    out = tmp_path / "replay.json"
    report = main([
        "--apps", "matmul,softmax", "--requests", "40", "--workers", "2",
        "--passes", "2", "--store", str(tmp_path / "kernels.json"),
        "--json", str(out),
    ])
    assert report["requests"] == 40 and len(report["passes"]) == 2
    stats = report["stats"]
    assert stats["submitted"] == 80 and stats["errors"] == 0
    # the second pass never compiles: everything is already resident
    assert stats["compiled"] + stats["persistent_hits"] + stats["deduped"] <= 40
    assert stats["memory_hits"] >= 40
    assert out.exists()
    printed = capsys.readouterr().out
    assert '"requests_per_second"' in printed


def test_service_stats_latency_includes_p999():
    with CompileService(workers=2) as service:
        service.compile(CompileRequest("matmul", {"variant": "nn"}))
        latency = service.stats().latency
    assert {"p50_ms", "p95_ms", "p99_ms", "p999_ms"} <= set(latency)
    assert latency["p999_ms"] >= latency["p99_ms"] >= latency["p50_ms"] >= 0.0


def test_warm_from_table_skips_stale_version_rows(tmp_path):
    """Rows stamped by a different release warm nothing at the service tier."""
    from repro.cache import ResultCache
    from repro.serve import warm_from_table
    from repro.serve.service import table_requests
    from repro.tune.tables import TuningTable

    table = TuningTable(ResultCache(tmp_path / "stale.json"))
    table.put("matmul", "devA", {"variant": "nn"}, version="0.0.0")
    table.put("matmul", "devB", {"variant": "tn"})  # current release
    requests = table_requests(table)
    assert [r.config["variant"] for r in requests] == ["tn"]
    with CompileService(workers=1) as service:
        assert warm_from_table(service, table) == 1
        assert service.stats().compiled == 1
