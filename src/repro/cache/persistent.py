"""Persistent JSON-backed result store shared by the tuner and the service.

Originally ``repro.tune.cache``: the autotuner's evaluation cache, keyed by a
digest of the app, the candidate configuration and the lowered index
expressions of the generated kernel.  The compilation service reuses the same
store as the durable tier of its kernel cache (payloads are kernel sources
plus metadata instead of evaluation results), so the class moved here.

Durability contract:

* :meth:`ResultCache.save` is **atomic**: the store is written to a temp file
  in the destination directory and moved into place with ``os.replace``, so a
  crashed or concurrent writer can never leave a truncated JSON file behind.
* A load that finds an unreadable store falls back to empty and raises the
  :attr:`corrupt_reset` flag instead of failing, so a corrupted cache costs a
  re-fill, never an outage.
* ``get``/``put``/``save`` are serialised by an internal lock; one instance
  may be shared by the service's worker threads.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Mapping

__all__ = ["ResultCache", "stable_digest"]


def stable_digest(payload: Mapping) -> str:
    """SHA-256 over the canonical JSON form of ``payload``.

    The one fingerprint recipe every persistent key in the project derives
    from (the tuner's evaluation keys, the service's kernel-store keys):
    sorted keys, ``str()`` fallback for non-JSON values, hex digest.  Keep
    it single-sourced — a canonicalisation change applied to one copy would
    silently diverge the stores.
    """
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


class ResultCache:
    """A ``key -> result-dict`` map with optional (atomic) JSON persistence."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        #: a persisted store existed but could not be read; it was discarded
        self.corrupt_reset = False
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._lock = threading.Lock()
        if self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
                if not isinstance(loaded, dict):
                    raise json.JSONDecodeError("store root is not an object", "", 0)
                self._entries = loaded
            except (OSError, json.JSONDecodeError):
                self._entries = {}
                self.corrupt_reset = True

    @staticmethod
    def key(
        app: str,
        config: Mapping,
        expressions: Mapping[str, str] | None = None,
        backend: str = "",
        device: str = "",
    ) -> str:
        """Stable digest of one candidate evaluation.

        ``expressions`` maps binding names to the canonical printed form of
        the lowered (hash-consed) index expressions, so entries invalidate
        when the expression engine or a layout changes the generated kernel;
        candidates whose generated kernel is unavailable key off the
        configuration alone.  ``backend`` is the code-generation target —
        without it two backends lowering to identical index expressions
        would collide on one entry.  ``device`` names the
        :class:`~repro.gpusim.DeviceSpec` an evaluation was costed against —
        per-device tuning (:mod:`repro.tune.search`) reuses one store across
        the zoo, and the same configuration evaluates differently on every
        device.  The package version salts every key so entries also
        invalidate across releases of the analytic performance model (which
        evaluation depends on but the expressions cannot capture).
        """
        from .. import __version__

        payload = {
            "version": __version__,
            "app": app,
            "backend": backend,
            "device": device,
            "config": {name: config[name] for name in sorted(config)},
            "expressions": {name: expressions[name] for name in sorted(expressions)} if expressions else None,
        }
        return stable_digest(payload)

    def get(self, key: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry

    def put(self, key: str, result: Mapping) -> None:
        with self._lock:
            self._entries[key] = dict(result)
            self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def items(self, prefix: str = "") -> list[tuple[str, dict]]:
        """A consistent snapshot of ``(key, entry)`` pairs, optionally filtered.

        Digest keys are opaque, but clients that store *namespaced* records
        (the profile store's ``"profile-record/..."`` rows, the tuning
        tables' ``"tuning-table/..."`` rows) scan their namespace with
        ``prefix``.  Entries are copied, so a caller can iterate while
        service workers keep writing.
        """
        with self._lock:
            return [
                (key, dict(entry))
                for key, entry in self._entries.items()
                if key.startswith(prefix)
            ]

    def prune(self, keep) -> int:
        """Drop every entry for which ``keep(key, entry)`` is false.

        Returns the number of entries removed.  The store's clients use this
        to reclaim entries stranded by an invalidation-salt change (e.g. the
        service's code-fingerprint salt) — without it a long-lived store
        only ever grows, all dead weight eagerly loaded and re-written.
        """
        with self._lock:
            doomed = [key for key, entry in self._entries.items() if not keep(key, entry)]
            for key in doomed:
                del self._entries[key]
            if doomed:
                self._dirty = True
            return len(doomed)

    def reload(self) -> bool:
        """Re-read the backing file, merging entries written by other processes.

        A multi-process reader (the farm stress tests, a monitoring script)
        can refresh its view of a store that other ``ResultCache`` instances
        keep saving.  On-disk entries never overwrite this instance's own
        unsaved (dirty) state: local entries win on key conflicts, so a
        ``put`` can never be silently lost to a reload.  Returns ``False``
        (and raises :attr:`corrupt_reset`) if the file was unreadable — by
        the atomic-save contract that can only mean a non-``ResultCache``
        writer truncated it.
        """
        if self.path is None or not self.path.exists():
            return True
        try:
            loaded = json.loads(self.path.read_text())
            if not isinstance(loaded, dict):
                raise json.JSONDecodeError("store root is not an object", "", 0)
        except (OSError, json.JSONDecodeError):
            self.corrupt_reset = True
            return False
        with self._lock:
            merged = dict(loaded)
            if self._dirty:
                merged.update(self._entries)
            self._entries = merged
        return True

    def save(self) -> Path | None:
        """Atomically write the store back (no-op without a path or changes).

        The serialised store lands in a temp file next to the destination and
        is renamed over it with ``os.replace``, which is atomic on POSIX and
        Windows: a reader (or a crash) can only ever observe the old complete
        store or the new complete store, never a truncated one.
        """
        with self._lock:
            if self.path is None or not self._dirty:
                return self.path
            self.path.parent.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(self._entries, sort_keys=True, indent=1)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._dirty = False
            return self.path
