"""Cross-process in-flight deduplication: cache-keyed claim files with leases.

The compile farm (:mod:`repro.serve.farm`) runs worker *processes*, so the
thread-pool service's in-memory in-flight map cannot dedup across them.  The
primitive that can is the filesystem: a worker about to compile kernel ``K``
first *claims* it by atomically creating ``<dir>/<digest(K)>.claim``; a second
worker that finds the claim held polls the shared durable store for the
result instead of compiling the same kernel a second time.

Crash-safety is the whole point — a claim must never outlive a dead worker
by more than a bounded wait, or one ``SIGKILL`` mid-compile would wedge every
future request for that kernel.  Two mechanisms bound it:

* every claim carries a **lease deadline** (``time.time() + ttl``); a claim
  past its deadline is *stale* and any process may break it, and
* the claim records its **pid and host**, so a same-host observer detects a
  dead claimant immediately (``os.kill(pid, 0)``) instead of waiting out the
  lease — this is what keeps the farm's re-drive latency at the health-check
  interval rather than the lease TTL.

Atomicity: the claim file is written to a temp file and published with
``os.link`` (atomic create-that-fails-if-present), so a reader can never
observe a half-written claim and two racing claimants can never both win.
Breaking is unlink + re-link; two racing breakers both unlink (one sees
``ENOENT``, which is fine) and then race the link, which again has exactly
one winner.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from pathlib import Path

__all__ = ["Claim", "ClaimRegistry"]


class Claim:
    """One held claim: release it (or let the lease expire) when done."""

    __slots__ = ("registry", "key", "path", "deadline", "_released")

    def __init__(self, registry: "ClaimRegistry", key: str, path: Path, deadline: float):
        self.registry = registry
        self.key = key
        self.path = path
        self.deadline = deadline
        self._released = False

    def release(self) -> None:
        """Drop the claim file (idempotent; a broken claim unlinks silently)."""
        if self._released:
            return
        self._released = True
        try:
            os.unlink(self.path)
        except OSError:
            pass  # a breaker already reclaimed an expired lease

    def refresh(self, ttl: float | None = None) -> None:
        """Extend the lease for a compile running longer than one TTL."""
        payload = self.registry._payload(ttl)
        self.deadline = payload["deadline"]
        self.registry._publish(self.path, payload, replace=True)

    def __enter__(self) -> "Claim":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ClaimRegistry:
    """Claim files for one shared store, all under one directory.

    ``ttl`` is the lease duration stamped on every claim; ``owner`` names the
    claimant in the file (diagnostics only — correctness rests on pid/host
    and the deadline).
    """

    def __init__(self, directory: str | Path, ttl: float = 5.0, owner: str = ""):
        if ttl <= 0:
            raise ValueError("ClaimRegistry requires a positive lease ttl")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ttl = float(ttl)
        self.owner = owner or f"pid-{os.getpid()}"
        #: claims broken after their holder died or their lease expired
        self.broken = 0

    # -- internals ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        import hashlib

        return self.directory / (hashlib.sha256(key.encode()).hexdigest() + ".claim")

    def _payload(self, ttl: float | None = None) -> dict:
        return {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "deadline": time.time() + (self.ttl if ttl is None else ttl),
        }

    def _publish(self, path: Path, payload: dict, replace: bool = False) -> bool:
        """Atomically write ``payload`` at ``path``; False if already claimed."""
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            if replace:
                os.replace(tmp_name, path)
                return True
            try:
                os.link(tmp_name, path)
                return True
            except FileExistsError:
                return False
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    @staticmethod
    def _is_stale(entry: dict | None, mtime: float) -> bool:
        """A claim whose holder is provably dead or whose lease lapsed."""
        now = time.time()
        if entry is None:
            # unreadable content cannot happen through _publish, but a foreign
            # writer might leave junk: fall back to the mtime-based lease
            return now > mtime + 60.0
        if now > float(entry.get("deadline", 0.0)):
            return True
        pid = entry.get("pid")
        if pid and entry.get("host") == socket.gethostname():
            try:
                os.kill(int(pid), 0)
            except ProcessLookupError:
                return True  # same host, claimant gone: break immediately
            except (OSError, ValueError):
                pass  # no signal permission / odd pid: trust the deadline
        return False

    # -- the claim protocol ----------------------------------------------------

    def acquire(self, key: str) -> Claim | None:
        """Try to claim ``key``; ``None`` means a live claimant holds it.

        A stale claim (dead same-host pid, or lease deadline passed) is
        broken and re-acquired in the same call.
        """
        path = self._path(key)
        payload = self._payload()
        if self._publish(path, payload):
            return Claim(self, key, path, payload["deadline"])
        holder = self.holder(key)
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0  # released between our attempts: retry fresh
        if holder is not None and not self._is_stale(holder, mtime) and mtime:
            return None
        # break the stale claim and race any other breaker for the re-claim
        try:
            os.unlink(path)
        except OSError:
            pass
        self.broken += 1
        payload = self._payload()
        if self._publish(path, payload):
            return Claim(self, key, path, payload["deadline"])
        return None

    def holder(self, key: str) -> dict | None:
        """The current claim payload, or ``None`` if unclaimed/unreadable."""
        try:
            return json.loads(self._path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def held(self, key: str) -> bool:
        """Whether a *live* (non-stale) claim currently covers ``key``."""
        path = self._path(key)
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return False
        return not self._is_stale(self.holder(key), mtime)

    def outstanding(self) -> list[str]:
        """Filenames of every claim file currently on disk (live or stale)."""
        return sorted(p.name for p in self.directory.glob("*.claim"))
