"""A sharded, thread-safe in-memory LRU cache.

The compilation service (:mod:`repro.serve`) fields many concurrent lookups
against one shared kernel cache; a single lock would serialise them all.
Instead the key space is partitioned over N independent shards, each an LRU
map behind its own lock, so lookups for different keys proceed in parallel
and the lock hold time per operation stays at a dictionary access.

Per-shard hit/miss/eviction counters are maintained *inside* the shard lock,
so the invariant ``hits + misses == lookups`` holds exactly even under
thread churn (asserted by the concurrency tests).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable

__all__ = ["ShardedLRUCache"]


class _Shard:
    """One LRU partition: an ordered map plus counters behind a lock."""

    __slots__ = ("lock", "entries", "capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        self.lock = threading.Lock()
        self.entries: OrderedDict[Hashable, object] = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        with self.lock:
            if key in self.entries:
                self.entries.move_to_end(key)
                self.hits += 1
                return True, self.entries[key]
            self.misses += 1
            return False, None

    def peek(self, key: Hashable) -> tuple[bool, object]:
        with self.lock:
            if key in self.entries:
                self.entries.move_to_end(key)
                return True, self.entries[key]
            return False, None

    def put(self, key: Hashable, value: object) -> None:
        with self.lock:
            if key in self.entries:
                self.entries.move_to_end(key)
            self.entries[key] = value
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        with self.lock:
            total = self.hits + self.misses
            return {
                "size": len(self.entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }


class ShardedLRUCache:
    """``key -> value`` LRU map partitioned over independently locked shards.

    ``lookup`` distinguishes "present with value ``None``" from "absent"
    (the service caches *negative* compilation results — apps whose
    generator declines a configuration — so ``None`` is a legal value).
    Shard selection uses the builtin ``hash`` of the key: stable within a
    process, which is exactly the lifetime of the cache.
    """

    def __init__(self, shards: int = 8, capacity_per_shard: int = 512):
        if shards < 1:
            raise ValueError("ShardedLRUCache requires at least one shard")
        if capacity_per_shard < 1:
            raise ValueError("ShardedLRUCache requires a positive per-shard capacity")
        self._shards = tuple(_Shard(capacity_per_shard) for _ in range(shards))

    def _shard_for(self, key: Hashable) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        """Return ``(hit, value)``; a hit refreshes the entry's LRU position."""
        return self._shard_for(key).lookup(key)

    def peek(self, key: Hashable) -> tuple[bool, object]:
        """Like :meth:`lookup` but without touching the hit/miss counters.

        For callers that re-check a key they already counted one lookup for
        (the service's under-lock race re-check), so the ``hits + misses ==
        lookups`` accounting stays one-entry-per-request.
        """
        return self._shard_for(key).peek(key)

    def get(self, key: Hashable, default: object = None) -> object:
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: Hashable, value: object) -> None:
        self._shard_for(key).put(key, value)

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        shard = self._shard_for(key)
        with shard.lock:
            return key in shard.entries

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_stats(self) -> list[dict]:
        """Per-shard counters, in shard-index order."""
        return [shard.stats() for shard in self._shards]

    def stats(self) -> dict:
        """Aggregate counters plus the per-shard breakdown."""
        per_shard = self.shard_stats()

        def total(field: str) -> int:
            return sum(s[field] for s in per_shard)

        hits, misses = total("hits"), total("misses")
        lookups = hits + misses
        return {
            "shards": len(per_shard),
            "size": total("size"),
            "capacity": total("capacity"),
            "hits": hits,
            "misses": misses,
            "evictions": total("evictions"),
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "per_shard": per_shard,
        }
