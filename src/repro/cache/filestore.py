"""A durable key->dict store safe for concurrent multi-process writers.

:class:`~repro.cache.ResultCache` persists the whole store as one JSON file,
which is the right shape for a single-writer tuner but not for a compile
farm: N worker processes saving one shared file would last-writer-win each
other's entries, and a worker would only ever see the entries loaded when it
attached.  :class:`ShardedFileStore` instead keeps **one file per entry**,
sharded into subdirectories, with every write published by temp-file +
``os.replace``:

* writes from any number of processes never interleave — a reader sees the
  old complete entry or the new complete entry, never a torn one
  (``verify_integrity`` and the multi-process stress test assert exactly
  this), and
* a ``get`` always reads the current file, so a kernel compiled by one
  worker is visible to every other worker immediately — the property the
  farm's claim-based dedup relies on.

Counters (hits/misses/puts and the ``corrupt_entries`` tripwire) are
per-instance, i.e. per-process: exact for the process that owns the
instance, which is what the farm's per-worker ledgers aggregate.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Iterator, Mapping

__all__ = ["ShardedFileStore"]


class ShardedFileStore:
    """Directory-backed ``key -> dict`` store with atomic per-entry files."""

    def __init__(self, root: str | Path, shards: int = 16):
        if shards < 1:
            raise ValueError("ShardedFileStore requires at least one shard")
        self.root = Path(root)
        self.shards = shards
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: entry files that failed to parse — must stay 0 forever; a torn
        #: read here would mean ``os.replace`` atomicity was violated
        self.corrupt_entries = 0

    # -- paths -----------------------------------------------------------------

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()
        shard = int(digest[:8], 16) % self.shards
        return self.root / f"{shard:02x}" / (digest + ".json")

    def _entry_files(self) -> Iterator[Path]:
        for shard_dir in sorted(self.root.iterdir()):
            if shard_dir.is_dir():
                yield from sorted(shard_dir.glob("*.json"))

    # -- the store protocol ----------------------------------------------------

    def get(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            envelope = json.loads(text)
            value = envelope["value"]
        except (json.JSONDecodeError, TypeError, KeyError):
            with self._lock:
                self.corrupt_entries += 1
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return value

    def put(self, key: str, value: Mapping) -> None:
        """Atomically publish ``value`` under ``key`` (last full write wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # the original key rides inside the envelope: filenames are digests,
        # and items()/keys() must recover what callers actually stored
        payload = json.dumps({"key": key, "value": dict(value)}, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.puts += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def keys(self) -> list[str]:
        return [key for key, _ in self.items()]

    def items(self) -> list[tuple[str, dict]]:
        out: list[tuple[str, dict]] = []
        for path in self._entry_files():
            try:
                envelope = json.loads(path.read_text())
                out.append((envelope["key"], envelope["value"]))
            except (OSError, json.JSONDecodeError, TypeError, KeyError):
                with self._lock:
                    self.corrupt_entries += 1
        return out

    def prune(self, keep) -> int:
        """Drop entries failing ``keep(key, value)``; returns removals."""
        doomed = []
        for path in self._entry_files():
            try:
                envelope = json.loads(path.read_text())
                if not keep(envelope["key"], envelope["value"]):
                    doomed.append(path)
            except (OSError, json.JSONDecodeError, TypeError, KeyError):
                doomed.append(path)  # unreadable entries are dead weight
        for path in doomed:
            try:
                os.unlink(path)
            except OSError:
                pass
        return len(doomed)

    # -- integrity / observability ---------------------------------------------

    def verify_integrity(self) -> dict:
        """Re-scan every entry file; the chaos tests assert ``corrupt == 0``.

        Stray ``*.tmp`` files are legal debris (a writer died between
        ``mkstemp`` and ``os.replace``) and are counted separately — they
        are invisible to ``get`` and never corrupt anything.
        """
        entries = corrupt = 0
        for path in self._entry_files():
            entries += 1
            try:
                envelope = json.loads(path.read_text())
                envelope["key"], envelope["value"]
            except (OSError, json.JSONDecodeError, TypeError, KeyError):
                corrupt += 1
        stray_tmp = sum(
            1 for shard in self.root.iterdir() if shard.is_dir()
            for _ in shard.glob("*.tmp")
        )
        return {"entries": entries, "corrupt": corrupt, "stray_tmp": stray_tmp}

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt_entries": self.corrupt_entries,
            }
