"""Shared caching infrastructure for the tuner, the service and the farm.

Four pieces live here, composed by their users:

* :class:`ShardedLRUCache` — the in-memory tier: N independently locked LRU
  shards with per-shard hit/miss/eviction counters.  Keys are arbitrary
  hashable values; the compilation service keys on request fingerprints
  built from interned expression identities, the cheapest stable key a
  process can produce.
* :class:`ResultCache` — the persistent tier: a ``key -> dict`` JSON store
  with atomic writes (temp file + ``os.replace``) and a ``corrupt_reset``
  flag raised when an unreadable store was discarded on load.  Grown out of
  ``repro.tune.cache`` (which now re-exports it) so the autotuner's
  evaluation cache and the service's kernel store share one implementation.
* :class:`ShardedFileStore` — the multi-process durable tier: one atomic
  file per entry, sharded into subdirectories, so compile-farm workers in
  different processes share one store without last-writer-wins data loss
  and without ever observing a torn entry.
* :class:`ClaimRegistry` / :class:`Claim` — cross-process in-flight dedup:
  cache-keyed claim files with lease deadlines and dead-claimant detection,
  the primitive that makes "each distinct kernel compiles once" hold across
  worker processes (and survive a ``SIGKILL`` mid-compile).
"""

from .claims import Claim, ClaimRegistry
from .filestore import ShardedFileStore
from .persistent import ResultCache, stable_digest
from .sharded import ShardedLRUCache

__all__ = [
    "Claim",
    "ClaimRegistry",
    "ResultCache",
    "ShardedFileStore",
    "ShardedLRUCache",
    "stable_digest",
]
