"""Shared caching infrastructure for the tuner and the compilation service.

Two tiers live here, composed by their users:

* :class:`ShardedLRUCache` — the in-memory tier: N independently locked LRU
  shards with per-shard hit/miss/eviction counters.  Keys are arbitrary
  hashable values; the compilation service keys on request fingerprints
  built from interned expression identities, the cheapest stable key a
  process can produce.
* :class:`ResultCache` — the persistent tier: a ``key -> dict`` JSON store
  with atomic writes (temp file + ``os.replace``) and a ``corrupt_reset``
  flag raised when an unreadable store was discarded on load.  Grown out of
  ``repro.tune.cache`` (which now re-exports it) so the autotuner's
  evaluation cache and the service's kernel store share one implementation.
"""

from .persistent import ResultCache, stable_digest
from .sharded import ShardedLRUCache

__all__ = ["ResultCache", "ShardedLRUCache", "stable_digest"]
