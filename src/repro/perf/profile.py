"""Measured profiling: execute a kernel on its substrate, return its cost.

:func:`profile` is to performance what :func:`repro.check.run_check` is to
correctness — and it deliberately reuses the same machinery: the app's
case builder (:attr:`~repro.apps.registry.AppSpec.perf_case`, falling back
to ``check_case``) produces a small full-launch problem, the kernel is
resolved through :func:`repro.check.resolve_case_kernel` (so a
:class:`~repro.serve.CompileService` provides batching/dedup/caching when
one is passed), the case executes on the matching substrate, and the
recorded trace becomes a measured :class:`~repro.gpusim.KernelCost`
through the unified adapter protocol (:mod:`repro.perf.adapters`).

Two time figures come out of every profile:

* the **measured** :class:`~repro.gpusim.TimeBreakdown` of the case as
  executed, and
* the **extrapolated** breakdown at the app's full-size problem, obtained
  by scaling the cost's extensive counters (:meth:`KernelCost.scaled`) by
  the case's declared ``scale`` while the *intensive* measurements — the
  coalescing efficiency baked into the moved bytes, the bank-conflict
  factor, flops per byte — ride along unchanged.  This is what the
  two-stage tuner ranks by.

Each profile also records the **analytic** estimate of the same problem
(``AppSpec.evaluate`` at the case's target configuration) and the
disagreement ratio between the two, which is the model-sanity signal the
``perf-smoke`` CI tripwire watches.

Everything derives from ``(seed, app, config)`` through the same SHA-256
path as the verification subsystem, so a profile reproduces exactly.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from ..apps.registry import AppSpec, PerfCase, available_apps, get_app
from ..check.runner import resolve_case_kernel, sample_configs, stable_seed
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, TimeBreakdown, estimate_time
from ..obs.trace import span
from .adapters import trace_metrics, trace_to_cost

__all__ = ["KernelProfile", "profile", "profile_app", "profile_all"]


def _accepts_device(fn: Callable) -> bool:
    """Does this case builder / execute callable take a ``device`` kwarg?

    Case builders and executes are plain callables registered long before a
    device is chosen, so the device is threaded through as an *optional*
    keyword: callables that declare it record their traces at the device's
    warp width / sector granularity, older ones keep the CUDA defaults.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "device" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


@dataclass
class KernelProfile:
    """The structured outcome of one measured profile."""

    app: str
    backend: str = ""
    #: the configuration the profile was asked about (as sampled/submitted)
    config: dict = field(default_factory=dict)
    #: the resolved small full-launch configuration actually executed
    case_config: dict = field(default_factory=dict)
    #: the full-size configuration the analytic model was evaluated at
    target_config: dict = field(default_factory=dict)
    status: str = "skipped"  # "measured" | "failed" | "skipped"
    reason: str = ""
    seed: int = 0
    kernel: str = ""
    #: device-zoo name of the device model the profile ran against
    device: str = ""
    #: substrate execution engine mode the case executed under (see repro.vm)
    engine: str = ""
    #: measured cost of the case as executed (extensive counters at case size)
    measured_cost: KernelCost | None = None
    #: device-model breakdown of the case as executed
    measured: TimeBreakdown | None = None
    #: breakdown extrapolated to the full-size problem (what the tuner ranks by)
    extrapolated: TimeBreakdown | None = None
    #: the app's analytic estimate at ``target_config`` (seconds)
    analytic_seconds: float = 0.0
    #: ``max(measured, analytic) / min(measured, analytic)`` (>= 1)
    analytic_error: float = 1.0
    #: extrapolation bookkeeping (see :class:`~repro.apps.registry.PerfCase`)
    scale: float = 1.0
    launches: int = 1
    #: measured memory behaviour (coalescing efficiency, conflict factor, ...)
    metrics: dict = field(default_factory=dict)

    @property
    def measured_seconds(self) -> float:
        """The extrapolated full-size measured time (0.0 when not measured)."""
        return self.extrapolated.total if self.extrapolated is not None else 0.0

    @property
    def ok(self) -> bool:
        return self.status == "measured"

    @property
    def skipped(self) -> bool:
        return self.status == "skipped"

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "backend": self.backend,
            "config": dict(self.config),
            "case_config": dict(self.case_config),
            "target_config": dict(self.target_config),
            "status": self.status,
            "reason": self.reason,
            "seed": self.seed,
            "kernel": self.kernel,
            "device": self.device,
            "engine": self.engine,
            "measured": self.measured.as_dict() if self.measured is not None else None,
            "extrapolated": self.extrapolated.as_dict() if self.extrapolated is not None else None,
            "measured_ms": self.measured_seconds * 1e3,
            "analytic_ms": self.analytic_seconds * 1e3,
            "analytic_error": self.analytic_error,
            "bound": self.extrapolated.bound if self.extrapolated is not None else "",
            "scale": self.scale,
            "launches": self.launches,
            "metrics": dict(self.metrics),
        }

    def summary(self) -> str:
        """One log line: measured vs analytic and the reproducing seed."""
        if self.status != "measured":
            return f"{self.app} {self.config}: {self.status} ({self.reason})"
        return (
            f"{self.app} {self.config}: measured={self.measured_seconds * 1e3:.4g}ms "
            f"analytic={self.analytic_seconds * 1e3:.4g}ms "
            f"error={self.analytic_error:.2f}x bound={self.extrapolated.bound} "
            f"seed={self.seed}"
        )


def _resolve(app) -> AppSpec:
    return app if isinstance(app, AppSpec) else get_app(app)


def _analytic_seconds(spec: AppSpec, config: Mapping, device: DeviceSpec) -> float:
    """The app's analytic estimate (``evaluate`` may return seconds or a dict).

    The device is forwarded when the app's ``evaluate`` accepts it, so the
    measured-vs-analytic disagreement compares two models of the *same*
    device rather than the caller's device against the default A100.
    """
    if _accepts_device(spec.evaluate):
        result = spec.evaluate(dict(config), device=device)
    else:
        result = spec.evaluate(dict(config))
    if isinstance(result, Mapping):
        return float(result["time_seconds"])
    return float(result)


def profile(
    app,
    config: Mapping,
    *,
    device: DeviceSpec = A100_80GB,
    seed: int = 0,
    service=None,
    engine: str | None = None,
) -> KernelProfile:
    """Measure one ``(app, config)`` pair end to end.

    Builds the app's perf case (falling back to its check case), resolves
    the kernel (through ``service`` when given), executes on the matching
    substrate and converts the trace into a measured cost + breakdown.
    Never raises on a substrate or model failure — the outcome is the
    returned :class:`KernelProfile`.

    ``engine`` overrides the substrate execution engine for this profile
    (``"vectorized"`` — the default — ``"vectorized-strict"`` or
    ``"treewalk"``; see :mod:`repro.vm`); ``None`` keeps the ambient mode.
    """
    from ..vm.engine import engine_mode, use_engine

    spec = _resolve(app)
    resolved_engine = engine if engine is not None else engine_mode()
    report = KernelProfile(app=spec.name, backend=spec.backend, config=dict(config),
                           seed=seed, device=device.name, engine=resolved_engine)
    with span("perf.profile", "perf", app=spec.name, device=device.name,
              engine=resolved_engine) as root:
        builder = spec.perf_case or spec.check_case
        if builder is None:
            report.reason = "app registers neither perf_case nor check_case"
            root.add(status=report.status)
            return report
        rng = np.random.default_rng(
            stable_seed(seed, "perf", spec.name, {k: config[k] for k in sorted(config)})
        )
        try:
            if _accepts_device(builder):
                case = builder(dict(config), rng, device=device)
            else:
                case = builder(dict(config), rng)
        except Exception as exc:
            report.status = "failed"
            report.reason = f"case builder raised {type(exc).__name__}: {exc}"
            root.add(status=report.status)
            return report
        if case is None:
            report.reason = "configuration selects no executable kernel"
            root.add(status=report.status)
            return report
        report.case_config = dict(case.config)
        scale = float(getattr(case, "scale", 1.0))
        launches = int(getattr(case, "launches", 1))
        target_config = getattr(case, "target_config", None) or dict(case.config)
        report.target_config = dict(target_config)
        report.scale, report.launches = scale, launches
        dtype = getattr(case, "dtype", "fp32")
        tensor_core = getattr(case, "tensor_core", False)
        try:
            with span("perf.resolve", "perf", app=spec.name):
                kernel = resolve_case_kernel(spec, case, config, service=service)
            if kernel is not None:
                report.kernel = getattr(kernel, "name", "") or ""
            with use_engine(resolved_engine):
                with span("vm.execute", "vm", app=spec.name, engine=resolved_engine,
                          kernel=report.kernel or spec.name):
                    if _accepts_device(case.execute):
                        _, trace = case.execute(kernel, device=device)
                    else:
                        _, trace = case.execute(kernel)
            if trace is None:
                report.reason = "substrate records no trace for this app"
                root.add(status=report.status)
                return report
            with span("perf.adapt", "perf", app=spec.name):
                adapter_args: dict = {"name": report.kernel or spec.name}
                if isinstance(case, PerfCase):
                    adapter_args.update(dtype=dtype, tensor_core=tensor_core)
                cost = trace_to_cost(trace, device, **adapter_args)
                report.measured_cost = cost
                report.measured = estimate_time(cost, device)
                full_cost = replace(cost.scaled(scale), launches=launches)
                report.extrapolated = estimate_time(full_cost, device)
                report.metrics = trace_metrics(trace, device)
                report.analytic_seconds = _analytic_seconds(spec, target_config, device)
        except Exception as exc:
            report.status = "failed"
            report.reason = f"{type(exc).__name__}: {exc}"
            root.add(status=report.status)
            return report
        measured = report.extrapolated.total
        if measured > 0 and report.analytic_seconds > 0:
            high, low = max(measured, report.analytic_seconds), min(measured, report.analytic_seconds)
            report.analytic_error = high / low
        report.status = "measured"
        root.add(status=report.status)
    return report


def profile_app(
    app,
    samples: int = 3,
    *,
    device: DeviceSpec = A100_80GB,
    seed: int = 0,
    service=None,
    engine: str | None = None,
) -> list[KernelProfile]:
    """Profile ``samples`` randomly drawn valid configurations of one app.

    As for :func:`repro.check.check_app`, the first-enumerated (paper
    -preferred) configuration is prepended when the draw misses it, so a
    sweep can never measure zero kernels for an app whose baseline rows
    happen to dominate the sample.
    """
    spec = _resolve(app)
    configs = sample_configs(spec, samples, seed, "perf-configs")
    return [
        profile(spec, config, device=device, seed=seed, service=service, engine=engine)
        for config in configs
    ]


def profile_all(
    apps: Sequence[str] | None = None,
    samples: int = 3,
    *,
    device: DeviceSpec = A100_80GB,
    seed: int = 0,
    service=None,
    engine: str | None = None,
) -> dict[str, list[KernelProfile]]:
    """Sweep apps x sampled configs; profiles grouped by app name."""
    names = list(apps) if apps else available_apps()
    return {
        name: profile_app(name, samples, device=device, seed=seed, service=service, engine=engine)
        for name in names
    }
