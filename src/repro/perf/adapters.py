"""Unified trace -> :class:`~repro.gpusim.KernelCost` adapters.

All three execution substrates record traces (mini-Triton
:class:`~repro.minitriton.KernelTrace`, mini-CUDA
:class:`~repro.minicuda.CudaTrace`, MLIR interpreter
:class:`~repro.mlir.GpuLaunchResult`), but until this module only the
mini-CUDA trace knew how to become a :class:`~repro.gpusim.KernelCost` —
and it charged a hardcoded 32-byte sector while
:func:`repro.gpusim.memory.warp_transactions` took the sector size as a
parameter.  This module is the one protocol all three share:

* an **adapter** is ``adapt(trace, device, **overrides) -> KernelCost``,
  registered per trace type with :func:`register_adapter`;
* :func:`trace_to_cost` dispatches on the trace's type (walking its MRO, so
  trace subclasses inherit their base adapter);
* DRAM bytes are charged from the *transaction* counters — sectors actually
  moved at the granularity the trace was recorded at, falling back to
  ``device.dram_sector_bytes`` — never a literal 32, so poorly coalesced
  kernels pay for the full sectors they touch while the recording and the
  costing can never disagree about the sector size;
* :func:`trace_metrics` summarises the measured memory behaviour
  (coalescing efficiency, bank-conflict factor, useful vs moved bytes) for
  the profiling reports.
"""

from __future__ import annotations

from typing import Callable

from ..gpusim import A100_80GB, DeviceSpec, KernelCost
from ..minicuda.runtime import CudaTrace
from ..minitriton.language import KernelTrace
from ..mlir.interp import GpuLaunchResult

__all__ = [
    "register_adapter",
    "adapter_for",
    "trace_to_cost",
    "trace_metrics",
    "triton_trace_to_cost",
    "cuda_trace_to_cost",
    "mlir_trace_to_cost",
]


_ADAPTERS: dict[type, Callable] = {}


def register_adapter(trace_type: type):
    """Class decorator target: register ``fn`` as the adapter for a trace type."""

    def decorate(fn: Callable) -> Callable:
        _ADAPTERS[trace_type] = fn
        return fn

    return decorate


def adapter_for(trace) -> Callable:
    """The registered adapter for ``trace`` (MRO-aware, so subclasses inherit)."""
    for klass in type(trace).__mro__:
        adapter = _ADAPTERS.get(klass)
        if adapter is not None:
            return adapter
    raise TypeError(
        f"no trace->cost adapter registered for {type(trace).__name__}; "
        f"known trace types: {', '.join(sorted(t.__name__ for t in _ADAPTERS))}"
    )


def trace_to_cost(trace, device: DeviceSpec = A100_80GB, **overrides) -> KernelCost:
    """Convert any substrate trace into a :class:`~repro.gpusim.KernelCost`."""
    return adapter_for(trace)(trace, device, **overrides)


def _sector_bytes(trace, device: DeviceSpec) -> float:
    """The sector granularity the trace's transactions were recorded at.

    Traces stamp the size they counted with; a trace that predates the
    stamp (or an ad-hoc one built in a test) falls back to the device's
    DRAM sector size — the same parameter
    :func:`repro.gpusim.memory.warp_transactions` takes, so both layers
    always charge the same granularity.
    """
    return float(getattr(trace, "sector_bytes", 0) or device.dram_sector_bytes)


def _dram_traffic(trace, device: DeviceSpec) -> tuple[float, float]:
    """``(useful_bytes, moved_bytes)`` of the trace's global-memory traffic."""
    useful = float(trace.load_bytes + trace.store_bytes)
    transactions = float(trace.load_transactions + trace.store_transactions)
    moved = transactions * _sector_bytes(trace, device)
    return useful, moved


def trace_metrics(trace, device: DeviceSpec = A100_80GB) -> dict:
    """Measured memory-behaviour summary of one trace (JSON-friendly).

    ``coalescing_efficiency`` is useful bytes over sector bytes actually
    moved (1.0 = every transferred byte was requested; broadcast reuse of a
    sector can push it above 1); ``bank_conflict_factor`` is the average
    shared-memory serialisation degree (1.0 when the substrate records no
    shared traffic).
    """
    useful, moved = _dram_traffic(trace, device)
    return {
        "useful_dram_bytes": useful,
        "moved_dram_bytes": moved,
        "coalescing_efficiency": (useful / moved) if moved else 1.0,
        "bank_conflict_factor": float(getattr(trace, "bank_conflict_factor", 1.0)),
        "flops": float(trace.flops),
        # whether only a sample of the launch grid executed (the
        # ``--full-launch`` sweep asserts this stays False)
        "sampled": bool(getattr(trace, "sampled", False)),
    }


@register_adapter(KernelTrace)
def triton_trace_to_cost(
    trace: KernelTrace,
    device: DeviceSpec = A100_80GB,
    *,
    name: str = "kernel",
    dtype: str | None = None,
    tensor_core: bool | None = None,
    compute_efficiency: float = 0.85,
    dram_efficiency: float = 0.85,
    launches: int = 1,
    threads_per_block: float = 0.0,
    smem_per_block: float = 0.0,
) -> KernelCost:
    """Summarise a mini-Triton :class:`~repro.minitriton.KernelTrace`.

    One Triton program maps to one thread block; the language layer does
    not observe the block's thread shape, so ``threads_per_block`` is a
    caller-supplied hint (0 leaves the occupancy model neutral).  The
    arithmetic contract defaults to what the trace observed: kernels whose
    flops ran predominantly through ``tl.dot`` on FP16 operands are costed
    on the tensor cores.
    """
    if tensor_core is None:
        tensor_core = trace.flops > 0 and trace.tensor_core_flops >= 0.5 * trace.flops
    if dtype is None:
        dtype = "fp16" if tensor_core else "fp32"
    useful, moved = _dram_traffic(trace, device)
    blocks = float(trace.programs)
    return KernelCost(
        name=name,
        flops=float(trace.flops),
        dtype=dtype,
        tensor_core=tensor_core,
        dram_bytes=max(moved, useful),
        threads=blocks * threads_per_block,
        blocks=blocks,
        threads_per_block=float(threads_per_block),
        smem_per_block=float(smem_per_block),
        compute_efficiency=compute_efficiency,
        dram_efficiency=dram_efficiency,
        launches=launches,
    )


def _block_model_trace_to_cost(
    trace,
    device: DeviceSpec,
    *,
    name: str,
    dtype: str,
    tensor_core: bool,
    compute_efficiency: float,
    dram_efficiency: float,
    launches: int,
) -> KernelCost:
    """Shared cost mapping for the two block-execution-model traces.

    ``CudaTrace`` and ``GpuLaunchResult`` expose the same counters
    (the MLIR interpreter mirrors the mini-CUDA execution model):
    transaction-charged DRAM bytes, shared traffic carrying the measured
    average bank-conflict serialisation factor, and full launch geometry
    (blocks, threads per block, shared memory per block) for the
    occupancy model.
    """
    useful, moved = _dram_traffic(trace, device)
    return KernelCost(
        name=name,
        flops=float(trace.flops),
        dtype=dtype,
        tensor_core=tensor_core,
        dram_bytes=max(moved, useful),
        smem_bytes=float(trace.smem_bytes),
        bank_conflict_factor=float(trace.bank_conflict_factor),
        threads=float(trace.blocks * trace.threads_per_block),
        blocks=float(trace.blocks),
        threads_per_block=float(trace.threads_per_block),
        smem_per_block=float(trace.smem_per_block),
        compute_efficiency=compute_efficiency,
        dram_efficiency=dram_efficiency,
        launches=launches,
    )


@register_adapter(CudaTrace)
def cuda_trace_to_cost(
    trace: CudaTrace,
    device: DeviceSpec = A100_80GB,
    *,
    name: str = "kernel",
    dtype: str = "fp32",
    tensor_core: bool = False,
    compute_efficiency: float = 0.85,
    dram_efficiency: float = 0.85,
    launches: int | None = None,
) -> KernelCost:
    """Summarise a mini-CUDA :class:`~repro.minicuda.CudaTrace`.

    Merged multi-launch traces (NW's wavefront loop) record their launch
    count in ``trace.extras['launches']``, which is the default when the
    caller does not override it.
    """
    if launches is None:
        launches = int(trace.extras.get("launches", 1)) if trace.extras else 1
    return _block_model_trace_to_cost(
        trace, device,
        name=name, dtype=dtype, tensor_core=tensor_core,
        compute_efficiency=compute_efficiency, dram_efficiency=dram_efficiency,
        launches=launches,
    )


@register_adapter(GpuLaunchResult)
def mlir_trace_to_cost(
    trace: GpuLaunchResult,
    device: DeviceSpec = A100_80GB,
    *,
    name: str = "kernel",
    dtype: str = "fp32",
    tensor_core: bool = False,
    compute_efficiency: float = 0.85,
    dram_efficiency: float = 0.85,
    launches: int = 1,
) -> KernelCost:
    """Summarise an MLIR-interpreter :class:`~repro.mlir.GpuLaunchResult`."""
    return _block_model_trace_to_cost(
        trace, device,
        name=name, dtype=dtype, tensor_core=tensor_core,
        compute_efficiency=compute_efficiency, dram_efficiency=dram_efficiency,
        launches=launches,
    )
