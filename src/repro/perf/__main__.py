"""``python -m repro.perf`` — the measured-profiling sweep.

Draws randomized valid configurations from every app's search space (the
paper-preferred configuration always included), executes each kernel's perf
case on its substrate, converts the trace into a measured
:class:`~repro.gpusim.KernelCost` and compares the device-model time
against the app's analytic estimate::

    PYTHONPATH=src python -m repro.perf --apps all --samples 3 --seed 0

Writes a JSON artifact (default ``BENCH_perf.json``) with per-app measured
vs analytic times, bound resources, coalescing efficiencies and
bank-conflict factors — the seed of the performance trajectory, uploaded by
the ``perf-smoke`` CI job.  The sweep fails (exit 1) when any measured vs
analytic disagreement exceeds ``--max-error``: a model whose analytic and
measured answers differ by an order of magnitude is broken on one side or
the other, and the tripwire catches it before the tuner trusts either.
The bound is per-app: ``--max-error-for APP=BOUND`` overrides the global
``--max-error`` (the CI job pins matmul/transpose/nw at 10x and gives the
stencil its own wide bound, because the cache-less substrates honestly
over-charge the cube stencils' neighbour reuse — every one of the
125-point stencil's passes is billed as DRAM traffic where real
hardware's L2 absorbs them; see DESIGN.md, "Measured profiling").

``--full-launch`` hardens the sweep for the vectorized engine era: every
launch must run unsampled (the 125-point cube stencil, historically only
rankable through sampled launches, is profiled explicitly), and every
measured configuration is differentially verified through
:mod:`repro.check`.  ``--engine`` pins the substrate execution engine
(``treewalk`` reproduces the pre-vectorization interpreters).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..apps.registry import available_apps
from .profile import profile_all

__all__ = ["main", "run_sweep"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Measure generated kernels on their substrates and compare to the analytic model.",
    )
    parser.add_argument("--apps", default="all",
                        help="comma-separated app names, or 'all' (default)")
    parser.add_argument("--samples", type=int, default=3,
                        help="randomly sampled configurations per app (default: 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; every config draw and input buffer derives from it (default: 0)")
    parser.add_argument("--max-error", type=float, default=20.0, dest="max_error",
                        help="fail when measured vs analytic disagree by more than this factor (default: 20)")
    parser.add_argument("--max-error-for", action="append", default=[], metavar="APP=BOUND",
                        dest="max_error_for",
                        help="per-app override of --max-error (repeatable, e.g. --max-error-for matmul=10)")
    parser.add_argument("--engine", default=None, choices=("vectorized", "vectorized-strict", "treewalk"),
                        help="substrate execution engine (default: the ambient mode, normally vectorized)")
    parser.add_argument("--full-launch", action="store_true", dest="full_launch",
                        help="require unsampled launches and differentially verify every measured config "
                             "through repro.check (adds the 125-point cube stencil explicitly)")
    parser.add_argument("--json", default="BENCH_perf.json", metavar="PATH", dest="json_path",
                        help="write the report here (default: BENCH_perf.json; '-' disables)")
    return parser


def _per_app_bounds(args: argparse.Namespace) -> dict[str, float]:
    bounds: dict[str, float] = {}
    for item in getattr(args, "max_error_for", None) or []:
        app, _, bound = item.partition("=")
        if not bound:
            raise SystemExit(f"--max-error-for expects APP=BOUND, got {item!r}")
        bounds[app.strip()] = float(bound)
    return bounds


def run_sweep(args: argparse.Namespace) -> dict:
    apps = available_apps() if args.apps == "all" else [a.strip() for a in args.apps.split(",") if a.strip()]
    engine = getattr(args, "engine", None)
    full_launch = bool(getattr(args, "full_launch", False))
    bounds = _per_app_bounds(args)
    results = profile_all(apps, samples=args.samples, seed=args.seed, engine=engine)
    if full_launch and "stencil" in results:
        # the widest cube stencil was historically only rankable through
        # sampled launches; cover it explicitly now that it runs unsampled
        from .profile import profile

        for layout in ("brick", "array"):
            config = {"stencil": "cube-125pt", "layout": layout, "brick": 8}
            results["stencil"].append(
                profile("stencil", config, seed=args.seed, engine=engine)
            )
    report: dict = {
        "seed": args.seed,
        "samples": args.samples,
        "max_error": args.max_error,
        "max_error_for": dict(bounds),
        "engine": engine or "default",
        "full_launch": full_launch,
        "apps": {},
        "failures": [],
        "sampled_rows": [],
        "check_failures": [],
    }
    measured = failed = skipped = 0
    worst = 1.0
    errors_ok = True
    for name, profiles in results.items():
        rows = [p.as_dict() for p in profiles]
        good = [p for p in profiles if p.ok]
        bad = [p for p in profiles if p.status == "failed"]
        app_worst = max((p.analytic_error for p in good), default=1.0)
        app_bound = bounds.get(name, args.max_error)
        app_errors_ok = app_worst <= app_bound
        report["apps"][name] = {
            "configs": len(profiles),
            "measured": len(good),
            "failed": len(bad),
            "skipped": sum(1 for p in profiles if p.skipped),
            "max_analytic_error": app_worst,
            "max_error": app_bound,
            "errors_ok": app_errors_ok,
            "rows": rows,
        }
        report["failures"].extend(p.as_dict() for p in bad)
        measured += len(good)
        failed += len(bad)
        skipped += sum(1 for p in profiles if p.skipped)
        worst = max(worst, app_worst)
        errors_ok = errors_ok and app_errors_ok
        if full_launch:
            from ..check import run_check

            for p in good:
                if p.metrics.get("sampled"):
                    report["sampled_rows"].append({"app": name, "config": dict(p.config)})
                check = run_check(name, p.config, seed=args.seed)
                if check.status == "failed":
                    report["check_failures"].append(check.as_dict())
    report["measured"] = measured
    report["failed"] = failed
    report["skipped"] = skipped
    report["max_analytic_error"] = worst
    # the sweep is healthy when nothing errored, every app measured at least
    # one kernel, no measured/analytic pair tripped its app's sanity bound,
    # and (under --full-launch) every launch ran unsampled and every
    # measured configuration passed differential verification
    report["ok"] = (
        failed == 0
        and errors_ok
        and all(row["measured"] > 0 for row in report["apps"].values())
        and not report["sampled_rows"]
        and not report["check_failures"]
    )
    return report


def main(argv: list[str] | None = None) -> dict:
    args = _build_parser().parse_args(argv)
    report = run_sweep(args)
    for name, row in report["apps"].items():
        print(
            f"{name:>14}: {row['measured']}/{row['configs']} measured"
            f" ({row['skipped']} skipped, {row['failed']} failed)"
            f"  worst analytic error {row['max_analytic_error']:.2f}x"
        )
        for entry in row["rows"]:
            if entry["status"] != "measured":
                continue
            print(
                f"{'':>16}{entry['config']}: measured={entry['measured_ms']:.4g}ms "
                f"analytic={entry['analytic_ms']:.4g}ms error={entry['analytic_error']:.2f}x "
                f"bound={entry['bound']} "
                f"coalescing={entry['metrics']['coalescing_efficiency']:.2f} "
                f"conflicts={entry['metrics']['bank_conflict_factor']:.2f}"
            )
    for failure in report["failures"]:
        print(f"FAILED {failure['app']} {failure['config']}: {failure['reason']} "
              f"(seed={failure['seed']})")
    for row in report.get("sampled_rows", []):
        print(f"SAMPLED {row['app']} {row['config']}: launch did not run unsampled")
    for check in report.get("check_failures", []):
        print(f"CHECK FAILED {check['app']} {check['config']}: {check['reason']} "
              f"(seed={check['seed']})")
    print(
        f"seed={report['seed']} measured={report['measured']} skipped={report['skipped']} "
        f"failed={report['failed']} max_error={report['max_analytic_error']:.2f}x "
        f"ok={report['ok']}"
    )
    if args.json_path and args.json_path != "-":
        Path(args.json_path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


if __name__ == "__main__":
    sys.exit(0 if main()["ok"] else 1)
