"""``repro.perf`` — measured profiling: trace-driven kernel costs.

All three execution substrates (mini-Triton, mini-CUDA, the MLIR
interpreter) record traces of every launch; until this package only the
autotuner's *analytic* model consumed them.  ``repro.perf`` closes the
loop from execution back into tuning:

* :mod:`repro.perf.adapters` — the unified trace->cost protocol: one
  registered adapter per substrate trace type turns a trace into a
  measured :class:`~repro.gpusim.KernelCost`, charging DRAM at the sector
  granularity of the :class:`~repro.gpusim.DeviceSpec` (never a hardcoded
  32) and carrying the measured bank-conflict factor;
* :func:`profile` — execute one ``(app, config)`` pair on its substrate
  (reusing the :mod:`repro.check` case machinery and, optionally, a
  :class:`~repro.serve.CompileService`) and return a
  :class:`KernelProfile`: measured cost, measured + extrapolated
  :class:`~repro.gpusim.TimeBreakdown`, the analytic estimate of the same
  problem and the disagreement between the two;
* ``autotune(measure_top_k=...)`` (:mod:`repro.tune`) — two-stage tuning:
  pre-filter analytically, re-rank the top-k by measured cost;
* ``python -m repro.perf`` — the sweep CLI writing ``BENCH_perf.json``
  (see :mod:`repro.perf.__main__`).

Quickstart::

    from repro.perf import profile
    p = profile("transpose", {"variant": "smem", "skew": 1, "tile": 32,
                              "generator": "lego"})
    p.measured_seconds, p.analytic_seconds, p.analytic_error
"""

from .adapters import (
    adapter_for,
    cuda_trace_to_cost,
    mlir_trace_to_cost,
    register_adapter,
    trace_metrics,
    trace_to_cost,
    triton_trace_to_cost,
)
from .profile import KernelProfile, profile, profile_all, profile_app

__all__ = [
    "KernelProfile",
    "profile",
    "profile_app",
    "profile_all",
    "trace_to_cost",
    "trace_metrics",
    "register_adapter",
    "adapter_for",
    "triton_trace_to_cost",
    "cuda_trace_to_cost",
    "mlir_trace_to_cost",
]
