"""Declarative configuration search spaces for the layout autotuner.

A :class:`SearchSpace` is a named cartesian product of :class:`Choice`
axes — tile sizes, orderings, coarsening factors, swizzle/skew selections —
optionally filtered by a constraint predicate (e.g. "the CUDA block must
divide the LUD block").  Enumeration order is deterministic (the first axis
varies slowest) and doubles as the tie-break order of the tuner: apps list
the paper-preferred value of each axis first so that performance-model ties
resolve toward the configuration the paper reports.

Spaces are **streaming**: nothing ever materialises the full cartesian
product.  ``raw_size`` is a closed-form product, :meth:`SearchSpace.decode`
maps a linear index to its configuration in O(axes) via mixed-radix
decomposition, :meth:`size` counts valid configurations without building a
list (O(1) for unconstrained spaces, one memoised streaming pass
otherwise), and :meth:`sample` draws without replacement by drawing
*indices* — rejection-sampling them against the constraint, falling back to
a single reservoir pass only when the space is too dense with rejections.
A 10^6-point space therefore counts and samples in microseconds, which is
what lets the app spaces grow to 10^4+ valid points (see
:mod:`repro.tune.search`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import islice, product
from math import prod
from typing import Callable, Iterator, Mapping, Sequence

__all__ = ["Choice", "SearchSpace"]


@dataclass(frozen=True)
class Choice:
    """One tunable axis: a name and the ordered values it may take."""

    name: str
    values: tuple

    def __init__(self, name: str, values: Sequence):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"choice {name!r} has no values")


#: when rejection sampling has drawn this many times the requested count
#: without filling it, the constraint is too dense and a streaming pass
#: (which also settles "count covers the space") takes over
_REJECTION_OVERDRAW = 64


class SearchSpace:
    """A cartesian product of :class:`Choice` axes with an optional constraint."""

    def __init__(self, *choices: Choice, constraint: Callable[[Mapping], bool] | None = None):
        names = [c.name for c in choices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate choice names in search space: {names}")
        self.choices = tuple(choices)
        self.constraint = constraint
        self._size: int | None = None if constraint is not None else self.raw_size

    @classmethod
    def from_dict(cls, axes: Mapping[str, Sequence],
                  constraint: Callable[[Mapping], bool] | None = None) -> "SearchSpace":
        """Build a space from ``{name: values}`` (insertion order preserved)."""
        return cls(*(Choice(name, values) for name, values in axes.items()), constraint=constraint)

    @property
    def raw_size(self) -> int:
        """Cartesian-product size before the constraint (closed form, O(axes))."""
        return prod(len(c.values) for c in self.choices) if self.choices else 0

    def decode(self, index: int) -> dict:
        """The configuration at linear ``index`` of the (unconstrained) product.

        Mixed-radix decomposition in enumeration order — the first axis is
        the most significant digit — so ``decode(i)`` equals the ``i``-th
        element ``itertools.product`` would yield, without enumerating the
        ``i - 1`` before it.  The constraint is *not* applied.
        """
        raw = self.raw_size
        if not 0 <= index < raw:
            raise IndexError(f"index {index} out of range for a {raw}-point space")
        config = {}
        for choice in reversed(self.choices):
            index, digit = divmod(index, len(choice.values))
            config[choice.name] = choice.values[digit]
        return {c.name: config[c.name] for c in self.choices}

    def candidates(self) -> Iterator[dict]:
        """Every configuration satisfying the constraint, in deterministic order."""
        names = [c.name for c in self.choices]
        for combo in product(*(c.values for c in self.choices)):
            config = dict(zip(names, combo))
            if self.constraint is None or self.constraint(config):
                yield config

    def chunks(self, chunk_size: int) -> Iterator[list[dict]]:
        """Valid configurations in enumeration order, ``chunk_size`` at a time.

        The search strategies stream large spaces through this so that at
        most one chunk of configuration dicts is alive at once.
        """
        if chunk_size < 1:
            raise ValueError("chunks() needs a positive chunk size")
        it = self.candidates()
        while True:
            chunk = list(islice(it, chunk_size))
            if not chunk:
                return
            yield chunk

    def __iter__(self) -> Iterator[dict]:
        return self.candidates()

    def size(self) -> int:
        """Valid configurations under the constraint.

        Closed form for unconstrained spaces; one streaming count —
        memoised, never a list — otherwise (constraints are treated as pure
        functions of the configuration).
        """
        if self._size is None:
            self._size = sum(1 for _ in self.candidates())
        return self._size

    def __len__(self) -> int:
        return self.size()

    def _normalize_rng(self, rng: random.Random | int | None) -> random.Random:
        if rng is None or isinstance(rng, int):
            return random.Random(0 if rng is None else rng)
        return rng

    def _reservoir(self, count: int, rng: random.Random) -> list[dict]:
        """One streaming pass: the full enumeration when it fits ``count``,
        otherwise a uniform reservoir of ``count`` valid configurations
        (returned in enumeration order)."""
        reservoir: list[tuple[int, dict]] = []
        seen = 0
        for i, config in enumerate(self.candidates()):
            seen += 1
            if len(reservoir) < count:
                reservoir.append((i, config))
            else:
                j = rng.randrange(seen)
                if j < count:
                    reservoir[j] = (i, config)
        self._size = seen  # the pass counted the space for free
        if not reservoir:
            raise ValueError("cannot sample from an empty search space")
        if seen <= count:
            return [config for _, config in reservoir]
        return [config for _, config in sorted(reservoir)]

    def sample(
        self,
        count: int,
        rng: random.Random | int | None = None,
        stratify: str | None = None,
    ) -> list[dict]:
        """``count`` randomly drawn valid configurations, without replacement.

        Never materialises the space: unconstrained spaces draw distinct
        linear indices and :meth:`decode` them; constrained spaces
        rejection-sample indices against the constraint, degrading to a
        single streaming reservoir pass when rejections dominate (which also
        detects the ``count >= size`` case and returns the full enumeration
        in order, preserving the historical contract).  Results come back in
        enumeration order, so the paper-preferred configuration sorts first
        whenever the draw includes it.

        ``rng`` is an explicit :class:`random.Random` (or an int seed —
        never module-level state), so the verification subsystem's draws
        reproduce from a printed seed.  ``stratify`` names an axis whose
        values split ``count`` as evenly as possible (each stratum sampled
        from the corresponding :meth:`subspace`), guaranteeing coverage of
        e.g. every layout family even in a tiny sample.
        """
        if count < 1:
            raise ValueError("sample() needs a positive count")
        rng = self._normalize_rng(rng)
        if stratify is not None:
            return self._stratified(count, rng, stratify)
        raw = self.raw_size
        if raw == 0:
            raise ValueError("cannot sample from an empty search space")
        if self.constraint is None:
            if count >= raw:
                return list(self)
            indices = sorted(rng.sample(range(raw), count))
            return [self.decode(i) for i in indices]
        if self._size is not None and count >= self._size:
            return list(self)
        # rejection sampling on linear indices: uniform over valid configs
        chosen: dict[int, dict] = {}
        attempts = 0
        budget = max(_REJECTION_OVERDRAW * count, 1024)
        while len(chosen) < count and attempts < budget and len(chosen) < raw:
            attempts += 1
            index = rng.randrange(raw)
            if index in chosen:
                continue
            config = self.decode(index)
            if self.constraint(config):
                chosen[index] = config
        if len(chosen) == count:
            return [chosen[i] for i in sorted(chosen)]
        # dense rejections (or count covers the valid space): one streaming pass
        return self._reservoir(count, rng)

    def _stratified(self, count: int, rng: random.Random, axis: str) -> list[dict]:
        values = {c.name: c.values for c in self.choices}.get(axis)
        if values is None:
            raise ValueError(f"unknown stratify axis {axis!r}; space has "
                             f"{[c.name for c in self.choices]}")
        base, extra = divmod(count, len(values))
        samples: list[dict] = []
        for i, value in enumerate(values):
            share = base + (1 if i < extra else 0)
            if share == 0:
                continue
            stratum = self.subspace(**{axis: (value,)})
            try:
                samples.extend(stratum.sample(share, rng))
            except ValueError:
                continue  # a stratum emptied by the constraint contributes nothing
        if not samples:
            raise ValueError("cannot sample from an empty search space")
        return samples

    def subspace(self, **axes: Sequence) -> "SearchSpace":
        """A copy with some axes narrowed to the given values (same constraint).

        Used by the figure harnesses to restrict an app's full space to the
        exact sweep a paper figure reports.
        """
        narrowed = []
        unknown = set(axes) - {c.name for c in self.choices}
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}; space has "
                             f"{[c.name for c in self.choices]}")
        for choice in self.choices:
            if choice.name in axes:
                narrowed.append(Choice(choice.name, axes[choice.name]))
            else:
                narrowed.append(choice)
        return SearchSpace(*narrowed, constraint=self.constraint)

    def extended(self, *choices: Choice) -> "SearchSpace":
        """A copy with extra axes appended (same constraint).

        The figure harnesses use this to add a problem-size axis to an app's
        tiling space without re-declaring (and risking drift from) the app's
        own axes and constraints.
        """
        return SearchSpace(*self.choices, *choices, constraint=self.constraint)

    def __repr__(self) -> str:
        axes = ", ".join(f"{c.name}={list(c.values)!r}" for c in self.choices)
        return f"SearchSpace({axes})"
