"""Declarative configuration search spaces for the layout autotuner.

A :class:`SearchSpace` is a named cartesian product of :class:`Choice`
axes — tile sizes, orderings, coarsening factors, swizzle/skew selections —
optionally filtered by a constraint predicate (e.g. "the CUDA block must
divide the LUD block").  Enumeration order is deterministic (the first axis
varies slowest) and doubles as the tie-break order of the tuner: apps list
the paper-preferred value of each axis first so that performance-model ties
resolve toward the configuration the paper reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterator, Mapping, Sequence

__all__ = ["Choice", "SearchSpace"]


@dataclass(frozen=True)
class Choice:
    """One tunable axis: a name and the ordered values it may take."""

    name: str
    values: tuple

    def __init__(self, name: str, values: Sequence):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", tuple(values))
        if not self.values:
            raise ValueError(f"choice {name!r} has no values")


class SearchSpace:
    """A cartesian product of :class:`Choice` axes with an optional constraint."""

    def __init__(self, *choices: Choice, constraint: Callable[[Mapping], bool] | None = None):
        names = [c.name for c in choices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate choice names in search space: {names}")
        self.choices = tuple(choices)
        self.constraint = constraint

    @classmethod
    def from_dict(cls, axes: Mapping[str, Sequence],
                  constraint: Callable[[Mapping], bool] | None = None) -> "SearchSpace":
        """Build a space from ``{name: values}`` (insertion order preserved)."""
        return cls(*(Choice(name, values) for name, values in axes.items()), constraint=constraint)

    def candidates(self) -> Iterator[dict]:
        """Every configuration satisfying the constraint, in deterministic order."""
        names = [c.name for c in self.choices]
        for combo in product(*(c.values for c in self.choices)):
            config = dict(zip(names, combo))
            if self.constraint is None or self.constraint(config):
                yield config

    def __iter__(self) -> Iterator[dict]:
        return self.candidates()

    def __len__(self) -> int:
        return sum(1 for _ in self.candidates())

    def sample(self, count: int, rng: random.Random | int | None = None) -> list[dict]:
        """``count`` randomly drawn valid configurations, without replacement.

        Spaces are small enough to enumerate (the constraint must be applied
        anyway), so sampling materialises the candidate list and draws from
        it; when ``count`` covers the space the full enumeration is returned
        in order.  ``rng`` is an explicit :class:`random.Random` (or an int
        seed — never module-level state), so the verification subsystem's
        draws reproduce from a printed seed.
        """
        if count < 1:
            raise ValueError("sample() needs a positive count")
        if rng is None or isinstance(rng, int):
            rng = random.Random(0 if rng is None else rng)
        population = list(self)
        if not population:
            raise ValueError("cannot sample from an empty search space")
        if count >= len(population):
            return population
        return rng.sample(population, count)

    def subspace(self, **axes: Sequence) -> "SearchSpace":
        """A copy with some axes narrowed to the given values (same constraint).

        Used by the figure harnesses to restrict an app's full space to the
        exact sweep a paper figure reports.
        """
        narrowed = []
        unknown = set(axes) - {c.name for c in self.choices}
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}; space has "
                             f"{[c.name for c in self.choices]}")
        for choice in self.choices:
            if choice.name in axes:
                narrowed.append(Choice(choice.name, axes[choice.name]))
            else:
                narrowed.append(choice)
        return SearchSpace(*narrowed, constraint=self.constraint)

    def extended(self, *choices: Choice) -> "SearchSpace":
        """A copy with extra axes appended (same constraint).

        The figure harnesses use this to add a problem-size axis to an app's
        tiling space without re-declaring (and risking drift from) the app's
        own axes and constraints.
        """
        return SearchSpace(*self.choices, *choices, constraint=self.constraint)

    def __repr__(self) -> str:
        axes = ", ".join(f"{c.name}={list(c.values)!r}" for c in self.choices)
        return f"SearchSpace({axes})"
