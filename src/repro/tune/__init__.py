"""Layout autotuning: declarative search spaces + candidate ranking.

The paper's central claim is "change the layout, not the code"; its
evaluation is a hand-driven sweep over layout/tiling configurations.  This
package makes that sweep a first-class subsystem:

* :class:`SearchSpace` / :class:`Choice` — declarative configuration spaces
  (tile sizes, orderings, coarsening factors, skew/swizzle selections),
* :func:`autotune` / :func:`sweep` — generate every candidate through the
  unified backend registry, evaluate it on the analytic device model and
  rank by (estimated time, GPU-weighted index-op count); with
  ``measure_top_k=k`` the analytic top-k is re-ranked by *measured*
  substrate cost through :mod:`repro.perf` (two-stage tuning),
* :class:`ResultCache` — persistent evaluation cache keyed off the
  hash-consed lowered index expressions.

Quickstart::

    from repro import tune
    result = tune.autotune("lud")
    result.best.config      # {'block': 64, 'cuda_block': 16}
"""

from ..cache import ResultCache
from .space import Choice, SearchSpace
from .tuner import Candidate, TuneResult, autotune, sweep
from .model import CostModel, ProfileStore, candidate_features
from .tables import TuningTable, problem_signature
from .search import (
    SearchResult,
    evolutionary,
    measure_candidates,
    search,
    successive_halving,
)

__all__ = [
    "Choice",
    "SearchSpace",
    "ResultCache",
    "Candidate",
    "TuneResult",
    "autotune",
    "sweep",
    "SearchResult",
    "search",
    "successive_halving",
    "evolutionary",
    "measure_candidates",
    "CostModel",
    "ProfileStore",
    "candidate_features",
    "TuningTable",
    "problem_signature",
]
