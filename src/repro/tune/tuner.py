"""The layout autotuner: enumerate, generate, evaluate, rank.

The paper's evaluation (Figures 11-13, Table IV) is a hand-driven sweep over
layout and tiling configurations — every figure harness used to carry its own
loop.  This module turns that sweep into a subsystem:

1. an app's declarative :class:`~repro.tune.space.SearchSpace` is enumerated
   into candidate configurations;
2. each candidate's kernel is generated through the compilation service
   (:mod:`repro.serve`), which drives the unified backend registry
   (``get_backend`` — Triton, CUDA or MLIR, whichever the app targets) on a
   worker pool: candidates that differ only in evaluation-side axes collapse
   onto one compile request (``AppSpec.generate_params``), and independent
   sweeps in one process share a warm kernel cache;
3. each candidate is evaluated with the app's analytic performance model
   (:func:`repro.gpusim.estimate_time` under the hood) and ranked by
   ``(estimated time, GPU-weighted index-op count, enumeration order)`` —
   the op-count cost model breaks performance-model ties toward cheaper
   index arithmetic, and enumeration order (paper-preferred values first)
   breaks exact ties deterministically;
4. results land in a persistent :class:`~repro.tune.cache.ResultCache` keyed
   off the hash-consed lowered expressions (and the backend name), so
   re-running a sweep after an unrelated change costs nothing.

Evaluation can optionally fan out over a process pool (``parallel=N``) for
trace-heavy apps; generation runs through the (thread-pooled) service
because it is cache-key material that every worker must agree on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..cache import ResultCache
from ..obs.trace import span
from ..symbolic import CostWeights
from .space import SearchSpace

__all__ = ["Candidate", "TuneResult", "autotune", "evaluate_configs", "sweep"]


@dataclass
class Candidate:
    """One evaluated configuration."""

    config: dict
    time_seconds: float
    index_ops: int = 0
    order: int = 0
    has_kernel: bool = False
    cached: bool = False
    #: measured (substrate-traced) time when ``autotune(measure_top_k=...)``
    #: profiled this candidate; ``None`` means analytic-only
    measured_time_seconds: float | None = None
    metrics: dict = field(default_factory=dict)

    @property
    def milliseconds(self) -> float:
        return self.time_seconds * 1e3

    @property
    def measured(self) -> bool:
        return self.measured_time_seconds is not None

    def rank_key(self) -> tuple:
        # Two-stage ranking: measured candidates rank by measured time and
        # strictly ahead of analytic-only ones (the measured set *is* the
        # analytic top-k, so this is the re-rank, not a demotion of the
        # rest).  Within a tier, performance ties break toward cheaper
        # generated index arithmetic; candidates without a generated kernel
        # (external baselines, layouts that patch the original kernel) lose
        # ties to ones the backend actually generated.  Enumeration order
        # (apps list paper-preferred values first) settles exact ties
        # deterministically.
        ops = self.index_ops if self.has_kernel else float("inf")
        if self.measured_time_seconds is not None:
            return (0, self.measured_time_seconds, ops, self.order)
        return (1, self.time_seconds, ops, self.order)


@dataclass
class TuneResult:
    """Every candidate of one sweep, in enumeration order, plus bookkeeping."""

    app: str
    evaluations: list[Candidate]
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: differential-check reports of the top-ranked configs, when
    #: ``autotune(verify_top_k=...)`` requested verification
    verification: list = field(default_factory=list)
    #: :class:`~repro.perf.KernelProfile` of each candidate
    #: ``autotune(measure_top_k=...)`` profiled (skips included)
    profiles: list = field(default_factory=list)

    @property
    def ranked(self) -> list[Candidate]:
        return sorted(self.evaluations, key=Candidate.rank_key)

    @property
    def best(self) -> Candidate:
        return self.ranked[0]

    def __len__(self) -> int:
        return len(self.evaluations)

    def table(self) -> list[dict]:
        """Rows (configuration + time) in enumeration order, for the harnesses."""
        return [
            {**c.config, "time_ms": c.milliseconds, "index_ops": c.index_ops}
            for c in self.evaluations
        ]

    def summary(self) -> dict:
        """Compact JSON-friendly summary (used by the benchmark artifact)."""
        best = self.best
        summary = {
            "app": self.app,
            "candidates": len(self.evaluations),
            "best_config": best.config,
            "best_time_ms": best.milliseconds,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.profiles:
            measured = [c for c in self.evaluations if c.measured]
            summary["measured_candidates"] = len(measured)
            if best.measured:
                summary["best_measured_time_ms"] = best.measured_time_seconds * 1e3
            summary["max_analytic_error"] = max(
                (c.metrics.get("analytic_error", 1.0) for c in measured), default=1.0
            )
        return summary


def _normalize_result(result) -> dict:
    """An app's ``evaluate`` may return seconds or a dict of metrics."""
    if isinstance(result, Mapping):
        if "time_seconds" not in result:
            raise ValueError("evaluate() returned a mapping without 'time_seconds'")
        return dict(result)
    return {"time_seconds": float(result)}


def _accepts_device(fn) -> bool:
    """Does this evaluate callable take a ``device`` kwarg?

    The registered apps all do; ad-hoc test/notebook specs may not, and
    they keep evaluating device-free (their results are cached without a
    device component either — see :func:`_evaluate_one`).
    """
    import inspect

    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "device" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _evaluate_one(spec, config, device) -> dict:
    if device is not None and _accepts_device(spec.evaluate):
        return _normalize_result(spec.evaluate(config, device=device))
    return _normalize_result(spec.evaluate(config))


def _pool_evaluate(job: tuple) -> dict:
    """Process-pool worker: resolve the app by name and evaluate one config."""
    app_name, config, device = job
    from ..apps.registry import get_app

    return _evaluate_one(get_app(app_name), config, device)


def _service_backed(spec) -> bool:
    """Can the shared compile service resolve this exact spec by name?

    Ad-hoc :class:`~repro.apps.registry.AppSpec` objects (tests, notebooks)
    are not reachable through the registry — or worse, could shadow a
    registered name with a different generator — so they generate inline.
    """
    from ..apps.registry import _APP_MODULES, get_app

    if spec.name not in _APP_MODULES:
        return False
    try:
        return get_app(spec.name) is spec
    except ValueError:
        return False


def _generate_kernels(spec, configs: list[dict], service) -> list:
    """One kernel (or ``None``) per config, through the compile service.

    Registry-backed apps batch-submit one request per *projected* config
    (``AppSpec.generate_config``): candidates differing only in
    evaluation-side axes dedup onto a single compilation, and the service's
    shared cache keeps repeated sweeps warm.
    """
    if spec.generate is None:
        return [None] * len(configs)
    if not _service_backed(spec):
        return [spec.generate(config) for config in configs]
    from ..serve import CompileRequest, default_service

    service = service or default_service()
    requests = [
        CompileRequest(app=spec.name, config=spec.generate_config(config))
        for config in configs
    ]
    return service.submit_batch(requests)


def evaluate_configs(
    spec,
    configs: list[dict],
    *,
    cache: ResultCache,
    service=None,
    parallel: int | None = None,
    device=None,
) -> list["Candidate"]:
    """Analytically evaluate a list of configurations into ranked candidates.

    The shared stage behind :func:`autotune` (which evaluates a whole
    :class:`~repro.tune.space.SearchSpace`) and :func:`repro.tune.search`
    (which evaluates strategy-chosen pools of a space too large to
    enumerate).  Generation goes through the compilation service: it drives
    the unified backend, provides the expression fingerprint the cache keys
    off, and supplies the op-count half of the ranking.  Candidates that
    share a projected kernel share the rendered-expression work (memoised
    by kernel identity — on a 10^4-point space re-rendering per candidate
    would dwarf evaluation).  ``device`` is an optional
    :class:`~repro.gpusim.DeviceSpec` threaded into device-aware app
    evaluates and into every cache key.
    """
    gpu_weights = CostWeights.gpu_default()
    device_key = device.name if device is not None else ""

    keys: list[str] = []
    ops: list[int] = []
    kernels: list[bool] = []
    rendered_memo: dict[int, tuple] = {}
    with span("serve.compile", "serve", app=spec.name, configs=len(configs)):
        generated = _generate_kernels(spec, configs, service)
    for config, kernel in zip(configs, generated):
        expressions = None
        index_ops = 0
        # Ad-hoc specs may generate objects that are not GeneratedKernels
        # (plain source text, say); they degrade to config-only cache keys.
        renderer = getattr(kernel, "rendered_expressions", None)
        if renderer is not None:
            memo = rendered_memo.get(id(kernel))
            if memo is None:
                rendered = renderer()
                memo = (rendered, kernel.binding_ops(gpu_weights) if rendered else 0)
                rendered_memo[id(kernel)] = memo
            rendered, rendered_ops = memo
            if rendered:
                expressions = rendered
                index_ops = rendered_ops
        keys.append(ResultCache.key(spec.name, config, expressions,
                                    backend=spec.backend, device=device_key))
        ops.append(index_ops)
        kernels.append(kernel is not None)

    cached_results: list[dict | None] = [cache.get(key) for key in keys]
    missing = [i for i, entry in enumerate(cached_results) if entry is None]

    # Pool workers re-resolve the spec by name from a fresh process, which
    # only works for the module-backed apps; ad-hoc AppSpecs evaluate serially.
    from ..apps.registry import _APP_MODULES

    with span("tune.model", "tune", app=spec.name,
              configs=len(configs), cached=len(configs) - len(missing)):
        if missing and parallel and parallel > 1 and spec.name in _APP_MODULES:
            from concurrent.futures import ProcessPoolExecutor

            jobs = [(spec.name, configs[i], device) for i in missing]
            chunksize = max(1, len(jobs) // (parallel * 8))
            with ProcessPoolExecutor(max_workers=parallel) as pool:
                fresh = list(pool.map(_pool_evaluate, jobs, chunksize=chunksize))
        else:
            fresh = [_evaluate_one(spec, configs[i], device) for i in missing]

    for i, result in zip(missing, fresh):
        cache.put(keys[i], result)
        cached_results[i] = result

    freshly_evaluated = set(missing)
    evaluations = []
    for order, (config, entry, index_ops, has_kernel) in enumerate(
        zip(configs, cached_results, ops, kernels)
    ):
        assert entry is not None
        metrics = {k: v for k, v in entry.items() if k != "time_seconds"}
        evaluations.append(
            Candidate(
                config=config,
                time_seconds=entry["time_seconds"],
                index_ops=index_ops,
                order=order,
                has_kernel=has_kernel,
                cached=order not in freshly_evaluated,
                metrics=metrics,
            )
        )
    return evaluations


def autotune(
    app,
    space: SearchSpace | None = None,
    cache: ResultCache | None = None,
    cache_path=None,
    parallel: int | None = None,
    service=None,
    verify_top_k: int = 0,
    verify_seed: int = 0,
    measure_top_k: int = 0,
    measure_seed: int = 0,
    measure_workers: int = 0,
    device=None,
    engine: str | None = None,
) -> TuneResult:
    """Sweep an app's configuration space and rank every candidate.

    ``app`` is a registered app name (``"matmul"``, ``"lud"``, ...) or an
    :class:`~repro.apps.registry.AppSpec`; ``space`` defaults to the app's
    full declared space (narrow it with :meth:`SearchSpace.subspace`).
    ``cache``/``cache_path`` enable the persistent result cache, and
    ``parallel`` evaluates cache misses on a process pool of that many
    workers.  ``service`` overrides the shared
    :func:`repro.serve.default_service` used for candidate generation of
    registry-backed apps; ad-hoc specs the registry cannot resolve always
    generate inline (their ``generate`` callable is unreachable through a
    service compiler).  Returns a :class:`TuneResult`;
    ``result.best.config`` is the winning configuration.

    ``measure_top_k`` turns the sweep into **two-stage tuning**: the full
    space is still pre-filtered by the analytic model, then the ``k``
    best-ranked configurations are executed on their substrate through
    :func:`repro.perf.profile` (reusing ``service`` for generation) and
    re-ranked by their *measured* cost; each profiled candidate records its
    analytic-vs-measured disagreement in ``metrics["analytic_error"]`` and
    the full :class:`~repro.perf.KernelProfile` lands in
    :attr:`TuneResult.profiles`.  Candidates whose configuration selects
    nothing executable (external baselines) keep their analytic rank below
    every measured candidate.  ``measure_workers`` fans the measured stage
    out over a process pool (:func:`repro.tune.search.measure_candidates` —
    a candidate whose profile fails is demoted, never fatal); ``0`` keeps
    the stage in-process.  ``device`` selects the
    :class:`~repro.gpusim.DeviceSpec` *both* stages are costed against — a
    zoo key (``"h100"``) or a spec — and is part of the evaluation cache
    key, so one persistent store serves per-device sweeps.  ``engine``
    overrides the substrate execution engine the measurements run under
    (vectorized by default — pass ``"treewalk"`` to force the interpreters;
    see :mod:`repro.vm`).

    ``verify_top_k`` differentially checks the ``k`` best-ranked
    configurations through :mod:`repro.check` before returning — a sweep
    must not hand out a winner whose kernel computes the wrong answer — and
    raises :class:`repro.check.CheckFailure` on the first mismatch; the
    reports (including skips for evaluation-only baselines) land in
    :attr:`TuneResult.verification`.  With both stages requested,
    verification runs after measurement, so it checks the *measured*
    winners.  ``verify_seed`` / ``measure_seed`` make the stages' inputs
    reproducible.
    """
    from ..apps.registry import AppSpec, get_app
    from ..gpusim import get_device

    spec: AppSpec = app if isinstance(app, AppSpec) else get_app(app)
    space = spec.space if space is None else space
    # `cache or ...` would discard a caller-passed *empty* cache: ResultCache
    # defines __len__, so a fresh store is falsy and the warm-sweep contract
    # (pass the same cache twice, second sweep replays) would silently break
    cache = cache if cache is not None else ResultCache(cache_path)
    eval_device = get_device(device) if device is not None else None

    started = time.perf_counter()
    with span("tune.autotune", "tune", app=spec.name,
              measure_top_k=measure_top_k, verify_top_k=verify_top_k) as root:
        configs = list(space)
        if not configs:
            raise ValueError(f"search space for app {spec.name!r} is empty")
        root.add(candidates=len(configs))

        hits_before, misses_before = cache.hits, cache.misses
        # the exhaustive analytic sweep is autotune's pre-filter: it selects
        # the measured stage's survivors exactly as the sampled strategies
        # do for spaces too large to enumerate
        with span("search.prefilter", "search", app=spec.name, strategy="exhaustive"):
            evaluations = evaluate_configs(
                spec, configs, cache=cache, service=service,
                parallel=parallel, device=eval_device,
            )
        cache.save()
        result = TuneResult(
            app=spec.name,
            evaluations=evaluations,
            cache_hits=cache.hits - hits_before,
            cache_misses=cache.misses - misses_before,
        )
        if measure_top_k > 0:
            from ..gpusim import A100_80GB
            from .search import measure_candidates

            measure_device = eval_device or A100_80GB
            with span("search.measure", "search", app=spec.name, top_k=measure_top_k):
                result.profiles.extend(measure_candidates(
                    spec, result.ranked[:measure_top_k],
                    device=measure_device, seed=measure_seed, service=service,
                    engine=engine, workers=measure_workers,
                ))
        if verify_top_k > 0:
            from ..check import CheckFailure, run_check

            with span("check.verify", "check", app=spec.name, top_k=verify_top_k):
                for candidate in result.ranked[:verify_top_k]:
                    report = run_check(spec, candidate.config, seed=verify_seed, service=service)
                    result.verification.append(report)
                    if report.status == "failed":
                        raise CheckFailure(report)
        result.wall_seconds = time.perf_counter() - started
    return result


#: alias: the figure harnesses read better as "sweep the paper's grid"
sweep = autotune
