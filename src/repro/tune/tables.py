"""Per-device tuning tables: persisted search winners the service can warm from.

A search over a 10^4-point space is worth remembering: the winner for one
``app x device x problem scale`` keeps winning until the model or the app
changes.  :class:`TuningTable` stores those winners in the durable cache
tier (:class:`~repro.cache.ResultCache`) under namespaced raw-string keys
(``tuning-table/v1/<device>/<app>/<signature>``), so the same JSON store
that persists evaluations and profiles ships the tuned configurations too.

:func:`repro.serve.warm_from_table` walks a table and pre-compiles every
winner through the compilation service — a freshly started server answers
its first tuned-kernel request from a warm cache.
"""

from __future__ import annotations

from typing import Mapping

from ..cache import ResultCache

__all__ = ["PROBLEM_KEYS", "TuningTable", "problem_signature"]

#: configuration keys that name the *problem* rather than the tuning choice;
#: two searches at different problem scales get different table rows.  Note
#: ``variant`` is absent: the apps tune over it (matmul's nn/nt/tn/tt,
#: transpose's naive/smem), so it is a search *output* here, not an input.
PROBLEM_KEYS = ("n", "M", "N", "K", "groups", "stencil")


def problem_signature(config: Mapping) -> str:
    """A stable, readable signature of the problem scale inside ``config``.

    Only :data:`PROBLEM_KEYS` participate — tuning axes (tile sizes,
    layouts, unroll factors) are exactly what the table exists to remember,
    so they must not fragment its rows.  Configurations that carry no
    problem keys (an app tuned at its default scale) share the ``default``
    row.
    """
    parts = [f"{key}={config[key]}" for key in PROBLEM_KEYS if key in config]
    return ",".join(parts) if parts else "default"


class TuningTable:
    """``(app, device, problem) -> winning configuration`` in a ResultCache."""

    PREFIX = "tuning-table/v1"

    def __init__(self, cache: ResultCache):
        self.cache = cache

    def _key(self, device: str, app: str, signature: str) -> str:
        return f"{self.PREFIX}/{device}/{app}/{signature}"

    def put(self, app: str, device: str, config: Mapping, *,
            time_ms: float = 0.0, measured: bool = False,
            source: str = "search", version: str | None = None) -> str:
        """Record one winner; returns the row key.

        Rows are stamped with the package ``version`` that produced them
        (override only to write test fixtures): service/farm warming skips
        rows from a different release, so a stale table can never pre-fill
        caches with winners the current model would not pick.
        """
        from .. import __version__

        signature = problem_signature(config)
        key = self._key(device, app, signature)
        self.cache.put(key, {
            "app": app,
            "device": device,
            "signature": signature,
            "config": dict(config),
            "time_ms": float(time_ms),
            "measured": bool(measured),
            "source": source,
            "version": __version__ if version is None else version,
        })
        return key

    def best(self, app: str, device: str, config: Mapping | None = None) -> dict | None:
        """The stored winner for ``(app, device)`` at ``config``'s problem scale."""
        signature = problem_signature(config or {})
        entry = self.cache.get(self._key(device, app, signature))
        return dict(entry["config"]) if entry else None

    def entries(self, device: str | None = None, app: str | None = None) -> list[dict]:
        """All rows, optionally narrowed to one device (and one app)."""
        prefix = f"{self.PREFIX}/"
        if device is not None:
            prefix += f"{device}/"
            if app is not None:
                prefix += f"{app}/"
        return [entry for _, entry in self.cache.items(prefix)]

    def __len__(self) -> int:
        return len(self.entries())

    def save(self):
        return self.cache.save()
