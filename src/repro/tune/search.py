"""Search at scale: strategies that tune 10^4+-point spaces in bounded time.

:func:`repro.tune.autotune` enumerates a space exhaustively — the right
tool up to a few thousand candidates.  The extended app spaces are past
10^4 valid points, where exhaustive *measurement* is out of the question
and even exhaustive analytic evaluation is only sometimes affordable.
This module is the scalable engine on the same contracts:

1. **Candidate selection** — :func:`successive_halving` samples a seeded,
   deterministic pool from the streaming :class:`~repro.tune.space.SearchSpace`
   (never materialising the product) and ranks it with the analytic model;
   :func:`evolutionary` grows the pool generation by generation, mutating
   the fittest configurations one axis at a time.  Both always include the
   first-enumerated (paper-preferred) configuration, so a sampled search
   can never miss the paper's winner.  Spaces small enough to enumerate
   are scanned exhaustively — then the search winner provably equals the
   :func:`~repro.tune.autotune` winner.
2. **Learned pre-filter** — a :class:`~repro.tune.model.CostModel` trained
   on accumulated measured profiles re-scores the analytic leaders; the
   measured budget is split between the analytic and learned rankings
   (interleaved, deduplicated), so a bad model adds suspects but can never
   evict the analytic leader.
3. **Parallel measured re-rank** — :func:`measure_candidates` profiles the
   survivors on their substrate through :func:`repro.perf.profile`, on a
   process pool when ``workers > 1``, with per-candidate fault isolation:
   a failed profile demotes that candidate (it keeps its analytic rank and
   records the failure in its metrics) and never kills the sweep.
4. **Persistence** — winners land in a :class:`~repro.tune.tables.TuningTable`
   and profiles in a :class:`~repro.tune.model.ProfileStore`, both in the
   durable cache tier, keyed per device: searching the zoo
   (:data:`repro.gpusim.DEVICE_ZOO`) builds per-device tuning tables that
   :func:`repro.serve.warm_from_table` pre-compiles on service start.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..cache import ResultCache
from ..obs.trace import span
from .model import ProfileStore
from .space import SearchSpace
from .tables import TuningTable
from .tuner import Candidate, evaluate_configs

__all__ = [
    "SearchResult",
    "search",
    "successive_halving",
    "evolutionary",
    "measure_candidates",
]


def _resolve(app):
    from ..apps.registry import AppSpec, get_app

    return app if isinstance(app, AppSpec) else get_app(app)


def _search_rng(seed: int, label: str, app: str) -> random.Random:
    from ..check.runner import stable_seed

    return random.Random(stable_seed(seed, label, app))


def _config_key(config: dict) -> tuple:
    return tuple(sorted(config.items()))


def _pool_with_paper_first(space: SearchSpace, pool: list[dict]) -> list[dict]:
    """The sampled pool with the first-enumerated configuration prepended.

    The apps list paper-preferred values first, so the first valid
    configuration *is* the paper configuration; guaranteeing its presence
    means a sampled search degrades gracefully — it can do better than the
    paper's grid but never worse.
    """
    first = next(iter(space), None)
    if first is None:
        raise ValueError("cannot search an empty space")
    seen = {_config_key(first)}
    ordered = [first]
    for config in pool:
        key = _config_key(config)
        if key not in seen:
            seen.add(key)
            ordered.append(config)
    return ordered


def successive_halving(
    app,
    space: SearchSpace | None = None,
    *,
    budget: int = 1024,
    seed: int = 0,
    cache: ResultCache | None = None,
    service=None,
    device=None,
    parallel: int | None = None,
) -> list[Candidate]:
    """Seeded sampled pool, analytically ranked (the cheap rung of the ladder).

    ``budget`` configurations are drawn without replacement from the
    streaming space (plus the paper-preferred first configuration) and
    evaluated with the analytic model.  The "halving" is the fidelity
    ladder :func:`search` applies on top: the learned model re-scores a
    prefix of this ranking and the measured stage a prefix of that —
    geometrically fewer candidates per strictly more expensive scorer.
    Deterministic for a given ``(seed, app)``.
    """
    spec = _resolve(app)
    space = spec.space if space is None else space
    cache = cache if cache is not None else ResultCache()
    rng = _search_rng(seed, "search-halving", spec.name)
    if space.raw_size <= budget:
        pool = list(space)
    else:
        pool = _pool_with_paper_first(space, space.sample(budget, rng))
    evaluations = evaluate_configs(spec, pool, cache=cache, service=service,
                                   parallel=parallel, device=device)
    return sorted(evaluations, key=Candidate.rank_key)


def _mutate(space: SearchSpace, config: dict, rng: random.Random) -> dict | None:
    """One-axis mutation respecting the space's constraint (None if stuck)."""
    for _ in range(16):
        choice = rng.choice(space.choices)
        if len(choice.values) < 2:
            continue
        child = dict(config)
        child[choice.name] = rng.choice(choice.values)
        if child == config:
            continue
        if space.constraint is None or space.constraint(child):
            return child
    return None


def evolutionary(
    app,
    space: SearchSpace | None = None,
    *,
    budget: int = 1024,
    generations: int = 4,
    seed: int = 0,
    cache: ResultCache | None = None,
    service=None,
    device=None,
    parallel: int | None = None,
) -> list[Candidate]:
    """Beam/evolutionary pre-filter: mutate the analytically fittest configs.

    Spends ``budget`` analytic evaluations across ``generations``: the
    first generation is a seeded uniform sample (paper configuration
    included), each later generation mutates the current elite one axis at
    a time toward unexplored neighbours.  Deterministic for a given
    ``(seed, app)``; returns every evaluated candidate, ranked.
    """
    spec = _resolve(app)
    space = spec.space if space is None else space
    cache = cache if cache is not None else ResultCache()
    rng = _search_rng(seed, "search-evolution", spec.name)
    generations = max(1, generations)
    per_generation = max(2, budget // generations)

    if space.raw_size <= per_generation:
        pool = list(space)
    else:
        pool = _pool_with_paper_first(space, space.sample(per_generation, rng))
    evaluated = evaluate_configs(spec, pool, cache=cache, service=service,
                                 parallel=parallel, device=device)
    seen = {_config_key(c.config) for c in evaluated}

    for _ in range(1, generations):
        elite = sorted(evaluated, key=Candidate.rank_key)[:max(2, per_generation // 4)]
        children: list[dict] = []
        attempts = 0
        while len(children) < per_generation and attempts < 8 * per_generation:
            attempts += 1
            parent = rng.choice(elite).config
            child = _mutate(space, parent, rng)
            if child is None:
                continue
            key = _config_key(child)
            if key in seen:
                continue
            seen.add(key)
            children.append(child)
        if not children:
            break  # the neighbourhood of the elite is exhausted
        evaluated.extend(evaluate_configs(spec, children, cache=cache, service=service,
                                          parallel=parallel, device=device))
    return sorted(evaluated, key=Candidate.rank_key)


def _profile_job(job: tuple):
    """Process-pool worker: profile one ``(app, config)`` in a fresh process.

    The compilation service is not picklable, so workers resolve the app by
    name and generate through the per-process default path; the profile
    itself derives everything from ``(seed, app, config)`` and reproduces
    exactly.
    """
    app_name, config, device, seed, engine = job
    from ..apps.registry import get_app
    from ..perf import profile

    return profile(get_app(app_name), config, device=device, seed=seed, engine=engine)


def _attach_profile(candidate: Candidate, kernel_profile) -> None:
    """Fold a profile's outcome into its candidate (demote on failure)."""
    if kernel_profile.ok:
        candidate.measured_time_seconds = kernel_profile.measured_seconds
        candidate.metrics = {
            **candidate.metrics,
            "analytic_error": kernel_profile.analytic_error,
            "measured_bound": kernel_profile.extrapolated.bound,
            "coalescing_efficiency": kernel_profile.metrics.get("coalescing_efficiency", 1.0),
            "bank_conflict_factor": kernel_profile.metrics.get("bank_conflict_factor", 1.0),
        }
    else:
        # fault isolation: the candidate keeps its analytic rank (below every
        # measured candidate) and carries the failure for the report
        candidate.metrics = {
            **candidate.metrics,
            "profile_status": kernel_profile.status,
            "profile_reason": kernel_profile.reason,
        }


def measure_candidates(
    app,
    candidates: list[Candidate],
    *,
    device=None,
    seed: int = 0,
    service=None,
    engine: str | None = None,
    workers: int = 0,
) -> list:
    """Profile candidates on their substrate; parallel when ``workers > 1``.

    Returns one :class:`~repro.perf.KernelProfile` per candidate (in input
    order) and folds the measured times into the candidates themselves.
    **Per-candidate fault isolation**: :func:`repro.perf.profile` never
    raises, and a worker that dies anyway (pool crash, unpicklable result)
    is synthesised into a ``failed`` profile — one bad candidate is
    demoted, the sweep always completes.  Ad-hoc specs the registry cannot
    resolve by name measure in-process regardless of ``workers``.
    """
    from ..apps.registry import _APP_MODULES
    from ..gpusim import A100_80GB
    from ..perf import KernelProfile, profile

    spec = _resolve(app)
    device = device if device is not None else A100_80GB
    if not candidates:
        return []

    poolable = workers and workers > 1 and spec.name in _APP_MODULES
    profiles: list = [None] * len(candidates)
    if poolable:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_profile_job,
                            (spec.name, candidate.config, device, seed, engine)): i
                for i, candidate in enumerate(candidates)
            }
            for future, i in futures.items():
                try:
                    profiles[i] = future.result()
                except Exception as exc:  # noqa: BLE001 — isolation is the contract
                    profiles[i] = KernelProfile(
                        app=spec.name, backend=spec.backend,
                        config=dict(candidates[i].config), seed=seed,
                        status="failed",
                        reason=f"profiling worker died: {type(exc).__name__}: {exc}",
                    )
    else:
        for i, candidate in enumerate(candidates):
            profiles[i] = profile(spec, candidate.config, device=device,
                                  seed=seed, service=service, engine=engine)
    for candidate, kernel_profile in zip(candidates, profiles):
        _attach_profile(candidate, kernel_profile)
    return profiles


@dataclass
class SearchResult:
    """The outcome of one scalable search."""

    app: str
    device: str
    strategy: str
    #: valid configurations in the space (streaming count)
    space_size: int
    #: candidates the strategy actually evaluated analytically
    evaluated: int
    #: candidates re-ranked by measured substrate cost
    measured: int
    wall_seconds: float = 0.0
    #: the substrate execution engine the measured stage ran under
    #: (``repro.vm`` mode — makes the artifact self-describing across
    #: ``REPRO_VM`` settings)
    engine: str = ""
    #: per-stage wall seconds (``prefilter`` / ``model`` / ``measure``) —
    #: the structured replacement for reading only the lone ``wall_seconds``
    stage_seconds: dict = field(default_factory=dict)
    evaluations: list[Candidate] = field(default_factory=list)
    profiles: list = field(default_factory=list)
    #: a learned cost model participated in survivor selection
    model_used: bool = False
    #: training samples behind the model that was used (0 when none)
    model_samples: int = 0

    @property
    def ranked(self) -> list[Candidate]:
        return sorted(self.evaluations, key=Candidate.rank_key)

    @property
    def best(self) -> Candidate:
        return self.ranked[0]

    def summary(self) -> dict:
        best = self.best
        measured_ok = [p for p in self.profiles if getattr(p, "ok", False)]
        failed = [p for p in self.profiles if getattr(p, "status", "") == "failed"]
        return {
            "app": self.app,
            "device": self.device,
            "strategy": self.strategy,
            "engine": self.engine,
            "space_size": self.space_size,
            "candidates_considered": self.space_size,
            "candidates_evaluated": self.evaluated,
            "candidates_measured": self.measured,
            "profiles_failed": len(failed),
            "best_config": dict(best.config),
            "best_time_ms": best.milliseconds,
            "best_measured_time_ms": (
                best.measured_time_seconds * 1e3 if best.measured else None
            ),
            "model_used": self.model_used,
            "model_samples": self.model_samples,
            "wall_seconds": self.wall_seconds,
            "stage_seconds": dict(self.stage_seconds),
            "measured_ok": len(measured_ok),
        }


def _interleave(primary: list[Candidate], secondary: list[Candidate],
                count: int) -> list[Candidate]:
    """Merge two rankings, primary first at each rank, deduplicated by id."""
    merged: list[Candidate] = []
    seen: set[int] = set()
    for pair in zip(primary, secondary):
        for candidate in pair:
            if id(candidate) not in seen:
                seen.add(id(candidate))
                merged.append(candidate)
    for candidate in primary[len(secondary):] + secondary[len(primary):]:
        if id(candidate) not in seen:
            seen.add(id(candidate))
            merged.append(candidate)
    return merged[:count]


def search(
    app,
    *,
    device=None,
    space: SearchSpace | None = None,
    strategy: str = "auto",
    budget: int = 1024,
    measure_top_k: int = 8,
    seed: int = 0,
    cache: ResultCache | None = None,
    cache_path=None,
    service=None,
    engine: str | None = None,
    parallel: int | None = None,
    workers: int = 0,
    profile_store: ProfileStore | None = None,
    table: TuningTable | None = None,
    train: bool = True,
) -> SearchResult:
    """Search a (possibly 10^4+-point) space end to end on one device.

    The fidelity ladder: a strategy picks and analytically ranks a pool
    bounded by ``budget`` (``"auto"`` scans exhaustively whenever the valid
    space fits the budget — making the result provably the
    :func:`~repro.tune.autotune` winner — and falls back to
    ``"halving"`` otherwise; ``"evolution"`` is the mutating variant);
    a persisted learned cost model (when ``profile_store`` has one for
    this app/device) re-scores the analytic leaders; the union of both
    rankings is re-ranked by **measured** substrate cost
    (``measure_top_k`` profiles, ``workers``-wide process pool, fault
    isolated).  Measured profiles train/update the model for next time,
    and the winner is recorded in ``table`` keyed ``app x device x
    problem scale``.

    ``device`` accepts a zoo key (``"h100"``), a spec name, or a
    :class:`~repro.gpusim.DeviceSpec`; it is threaded through analytic
    evaluation, measurement, cache keys and persistence.
    """
    from ..gpusim import A100_80GB, get_device
    from ..vm.engine import engine_mode

    spec = _resolve(app)
    space = spec.space if space is None else space
    device_spec = get_device(device) if device is not None else A100_80GB
    cache = cache if cache is not None else ResultCache(cache_path)
    store = profile_store if profile_store is not None else ProfileStore(cache)
    resolved_engine = engine if engine is not None else engine_mode()

    started = time.perf_counter()
    stage_seconds: dict[str, float] = {}
    with span("tune.search", "tune", app=spec.name, device=device_spec.name,
              budget=budget, measure_top_k=measure_top_k) as root:
        space_size = len(space)
        if strategy == "auto":
            strategy = "exhaustive" if space_size <= budget else "halving"
        root.add(strategy=strategy)
        stage_started = time.perf_counter()
        with span("search.prefilter", "search", app=spec.name, strategy=strategy):
            if strategy == "exhaustive":
                evaluations = sorted(
                    evaluate_configs(spec, list(space), cache=cache, service=service,
                                     parallel=parallel, device=device_spec),
                    key=Candidate.rank_key,
                )
            elif strategy == "halving":
                evaluations = successive_halving(spec, space, budget=budget, seed=seed,
                                                 cache=cache, service=service,
                                                 device=device_spec, parallel=parallel)
            elif strategy in ("evolution", "evolutionary"):
                evaluations = evolutionary(spec, space, budget=budget, seed=seed,
                                           cache=cache, service=service,
                                           device=device_spec, parallel=parallel)
            else:
                raise ValueError(
                    f"unknown search strategy {strategy!r}; expected 'auto', "
                    f"'exhaustive', 'halving' or 'evolution'"
                )
        stage_seconds["prefilter"] = time.perf_counter() - stage_started

        # learned second filter: interleave the analytic ranking with the
        # model's, so the measured budget covers both (analytic leader first)
        stage_started = time.perf_counter()
        model = store.model(spec.name, device_spec.name)
        model_used = False
        survivors = evaluations[:measure_top_k]
        if model is not None and measure_top_k > 0 and evaluations:
            with span("search.model", "search", app=spec.name, samples=model.samples):
                window = evaluations[:max(4 * measure_top_k, 16)]
                scores = model.score_candidates(window)
                by_model = [c for _, _, c in
                            sorted(zip(scores, range(len(window)), window),
                                   key=lambda t: (t[0], t[1]))]
                survivors = _interleave(evaluations, by_model, max(measure_top_k, 1))
                model_used = True
        stage_seconds["model"] = time.perf_counter() - stage_started

        # Measured re-rank as a draining ladder: a demoted candidate (skipped —
        # e.g. its static shared memory would not launch — or failed) frees its
        # slot for the next-ranked one, so the sweep keeps walking the ranking
        # until ``measure_top_k`` candidates measured successfully or the
        # attempt cap runs out.  Skips are cheap (the case builder bails before
        # executing anything), so the cap is generous.
        stage_started = time.perf_counter()
        profiles = []
        if measure_top_k > 0:
            with span("search.measure", "search", app=spec.name, top_k=measure_top_k,
                      engine=resolved_engine):
                seen_ids = {id(c) for c in survivors}
                queue = survivors + [c for c in evaluations if id(c) not in seen_ids]
                attempt_cap = max(16 * measure_top_k, 64)
                successes, position = 0, 0
                while (successes < measure_top_k and position < len(queue)
                       and position < attempt_cap):
                    batch = queue[position:position + measure_top_k]
                    position += len(batch)
                    batch_profiles = measure_candidates(spec, batch, device=device_spec,
                                                        seed=seed, service=service,
                                                        engine=engine, workers=workers)
                    successes += sum(1 for p in batch_profiles if getattr(p, "ok", False))
                    profiles.extend(batch_profiles)
                    if train:
                        for candidate, kernel_profile in zip(batch, batch_profiles):
                            store.record(kernel_profile, candidate, device=device_spec.name)
                if train:
                    store.train(spec.name, device_spec.name)
        stage_seconds["measure"] = time.perf_counter() - stage_started

        result = SearchResult(
            app=spec.name,
            device=device_spec.name,
            strategy=strategy,
            engine=resolved_engine,
            space_size=space_size,
            evaluated=len(evaluations),
            measured=sum(1 for p in profiles if getattr(p, "ok", False)),
            evaluations=evaluations,
            profiles=profiles,
            model_used=model_used,
            model_samples=model.samples if model is not None else 0,
            stage_seconds=stage_seconds,
        )
        best = result.best
        if table is not None:
            table.put(spec.name, device_spec.name, best.config,
                      time_ms=(best.measured_time_seconds or best.time_seconds) * 1e3,
                      measured=best.measured, source=f"search:{strategy}")
        cache.save()
        result.wall_seconds = time.perf_counter() - started
    return result
