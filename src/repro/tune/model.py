"""Learned cost model: analytic trace features -> measured milliseconds.

The two-stage tuner's analytic model is cheap but coarse; its measured
profiles are faithful but cost real substrate execution.  This module adds
the middle tier: a **ridge regression** (pure NumPy, closed form — no
external ML dependency) trained on the accumulated
:class:`~repro.perf.KernelProfile` records, mapping the analytic features
every candidate already carries (flops, sector-granular DRAM bytes,
bank-conflict factor, occupancy, index-op count, ...) to the log of its
measured time.  :mod:`repro.tune.search` uses it as a cheap second filter
between analytic ranking and measurement: the model re-scores the analytic
survivors, and the measured budget is spent on the union of both rankings —
a badly-trained model can therefore never evict the analytic leader, only
add its own suspects.

Profiles and fitted models persist in the durable cache tier
(:class:`~repro.cache.ResultCache`) under namespaced string keys
(``profile-record/v1/...``, ``cost-model/v1/...``), so every measured sweep
makes the next search smarter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..cache import ResultCache, stable_digest

__all__ = ["FEATURES", "CostModel", "ProfileStore", "candidate_features", "feature_vector"]

#: the numeric features a model trains on, in canonical order.  They mirror
#: :func:`repro.gpusim.cost_features` plus the tuner's GPU-weighted index-op
#: count; extraction is shared by training and prediction (`feature_vector`),
#: so the two can never drift apart.
FEATURES = (
    "flops",
    "dram_bytes",
    "l2_bytes",
    "smem_bytes",
    "bank_conflict_factor",
    "occupancy",
    "blocks",
    "threads_per_block",
    "smem_per_block",
    "launches",
    "index_ops",
)

#: magnitude features get a log1p squash (they span 9+ orders of magnitude);
#: the bounded ratios stay linear
_LINEAR = {"bank_conflict_factor", "occupancy"}

MIN_SAMPLES = 8


def feature_vector(metrics: Mapping, index_ops: float = 0.0) -> np.ndarray:
    """The canonical feature vector of one candidate/profile record."""
    values = []
    for name in FEATURES:
        raw = float(index_ops if name == "index_ops" else metrics.get(name, 0.0) or 0.0)
        if not np.isfinite(raw):
            raw = 0.0
        values.append(raw if name in _LINEAR else float(np.log1p(max(raw, 0.0))))
    return np.asarray(values, dtype=np.float64)


def candidate_features(candidate) -> np.ndarray:
    """Feature vector of a :class:`~repro.tune.tuner.Candidate`."""
    ops = float(candidate.index_ops) if candidate.has_kernel else 0.0
    return feature_vector(candidate.metrics, index_ops=ops)


@dataclass
class CostModel:
    """Closed-form ridge regression over :data:`FEATURES`.

    The target is ``log10(measured microseconds)`` — times span orders of
    magnitude and ranking (not absolute prediction) is what the search
    needs.  Inputs are standardised feature columns; ``lambda_`` is the
    ridge penalty that keeps the solve well-posed when features are
    collinear (flops and blocks usually are).
    """

    app: str = ""
    device: str = ""
    weights: np.ndarray = field(default_factory=lambda: np.zeros(len(FEATURES)))
    mean: np.ndarray = field(default_factory=lambda: np.zeros(len(FEATURES)))
    std: np.ndarray = field(default_factory=lambda: np.ones(len(FEATURES)))
    intercept: float = 0.0
    samples: int = 0
    lambda_: float = 1e-2

    @classmethod
    def fit(cls, features: Sequence[np.ndarray], seconds: Sequence[float],
            app: str = "", device: str = "", lambda_: float = 1e-2) -> "CostModel":
        """Fit on ``(feature vector, measured seconds)`` pairs."""
        x = np.asarray(list(features), dtype=np.float64)
        y = np.log10(np.maximum(np.asarray(seconds, dtype=np.float64), 1e-12) * 1e6)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree in length")
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        xs = (x - mean) / std
        intercept = float(y.mean())
        gram = xs.T @ xs + lambda_ * x.shape[0] * np.eye(x.shape[1])
        weights = np.linalg.solve(gram, xs.T @ (y - intercept))
        return cls(app=app, device=device, weights=weights, mean=mean, std=std,
                   intercept=intercept, samples=int(x.shape[0]), lambda_=lambda_)

    def predict_seconds(self, features: np.ndarray) -> float:
        """Predicted measured time in seconds for one feature vector."""
        scaled = (np.asarray(features, dtype=np.float64) - self.mean) / self.std
        log_us = float(scaled @ self.weights) + self.intercept
        return 10.0 ** np.clip(log_us, -6.0, 12.0) * 1e-6

    def score_candidates(self, candidates) -> list[float]:
        """Predicted seconds for each candidate (order preserved)."""
        return [self.predict_seconds(candidate_features(c)) for c in candidates]

    def payload(self) -> dict:
        return {
            "app": self.app,
            "device": self.device,
            "features": list(FEATURES),
            "weights": [float(w) for w in self.weights],
            "mean": [float(m) for m in self.mean],
            "std": [float(s) for s in self.std],
            "intercept": self.intercept,
            "samples": self.samples,
            "lambda": self.lambda_,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CostModel | None":
        if list(payload.get("features", [])) != list(FEATURES):
            return None  # trained against a different feature recipe
        return cls(
            app=payload.get("app", ""),
            device=payload.get("device", ""),
            weights=np.asarray(payload["weights"], dtype=np.float64),
            mean=np.asarray(payload["mean"], dtype=np.float64),
            std=np.asarray(payload["std"], dtype=np.float64),
            intercept=float(payload["intercept"]),
            samples=int(payload.get("samples", 0)),
            lambda_=float(payload.get("lambda", 1e-2)),
        )


class ProfileStore:
    """Measured-profile records + fitted models in the durable cache tier.

    Keys are *namespaced raw strings* (not :meth:`ResultCache.key` digests),
    so they survive the version salt: a profile measured under release N is
    still valid training data under release N+1 — the substrate time of a
    configuration is a fact about the configuration, not about the model
    that predicted it.
    """

    PROFILE_PREFIX = "profile-record/v1"
    MODEL_PREFIX = "cost-model/v1"

    def __init__(self, cache: ResultCache):
        self.cache = cache

    def _profile_key(self, app: str, device: str, config: Mapping) -> str:
        digest = stable_digest({name: config[name] for name in sorted(config)})
        return f"{self.PROFILE_PREFIX}/{app}/{device}/{digest}"

    def record(self, profile, candidate=None, device: str = "") -> bool:
        """Persist one measured profile (with its candidate's features)."""
        if not getattr(profile, "ok", False):
            return False
        metrics = dict(getattr(profile, "metrics", {}) or {})
        index_ops = 0.0
        if candidate is not None:
            metrics = {**candidate.metrics, **metrics}
            index_ops = float(candidate.index_ops) if candidate.has_kernel else 0.0
        key = self._profile_key(profile.app, device, profile.config)
        self.cache.put(key, {
            "app": profile.app,
            "device": device,
            "config": dict(profile.config),
            "measured_seconds": profile.measured_seconds,
            "features": [float(v) for v in feature_vector(metrics, index_ops)],
        })
        return True

    def records(self, app: str, device: str) -> list[dict]:
        prefix = f"{self.PROFILE_PREFIX}/{app}/{device}/"
        return [entry for _, entry in self.cache.items(prefix)]

    def sample_count(self, app: str, device: str) -> int:
        return len(self.records(app, device))

    def train(self, app: str, device: str, lambda_: float = 1e-2) -> CostModel | None:
        """Fit (and persist) a model when enough profiles have accumulated."""
        rows = [r for r in self.records(app, device)
                if r.get("measured_seconds", 0) > 0 and r.get("features")]
        if len(rows) < MIN_SAMPLES:
            return None
        features = [np.asarray(r["features"], dtype=np.float64) for r in rows]
        seconds = [float(r["measured_seconds"]) for r in rows]
        model = CostModel.fit(features, seconds, app=app, device=device, lambda_=lambda_)
        self.cache.put(f"{self.MODEL_PREFIX}/{app}/{device}", model.payload())
        return model

    def model(self, app: str, device: str) -> CostModel | None:
        """The persisted model for ``(app, device)``, if one was trained."""
        entry = self.cache.get(f"{self.MODEL_PREFIX}/{app}/{device}")
        if entry is None:
            return None
        return CostModel.from_payload(entry)

    def save(self):
        return self.cache.save()
