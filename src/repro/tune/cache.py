"""Persistent evaluation cache for the layout autotuner.

Candidate evaluation has two costs: generating the kernel (cheap since the
hash-consed expression engine landed) and evaluating it (traces on the
mini-CUDA substrate can dominate).  The cache stores evaluation results
keyed by a digest of

* the app name and the candidate configuration, and
* the *lowered index expressions* of the generated kernel (their canonical
  printed form — the stable cross-process fingerprint of the hash-consed
  expression nodes).

Including the expressions means the cache self-invalidates whenever the
expression engine or a layout definition changes the generated kernel, while
staying valid across unrelated code changes.  The store is a single JSON
file, loaded eagerly and written back with :meth:`ResultCache.save`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Mapping

__all__ = ["ResultCache"]


class ResultCache:
    """A ``key -> result-dict`` map with optional JSON persistence."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if self.path is not None and self.path.exists():
            try:
                self._entries = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                self._entries = {}

    @staticmethod
    def key(app: str, config: Mapping, expressions: Mapping[str, str] | None = None) -> str:
        """Stable digest of one candidate evaluation.

        ``expressions`` maps binding names to the canonical printed form of
        the lowered (hash-consed) index expressions, so entries invalidate
        when the expression engine or a layout changes the generated kernel;
        candidates whose generated kernel is unavailable key off the
        configuration alone.  The package version salts every key so entries
        also invalidate across releases of the analytic performance model
        (which evaluation depends on but the expressions cannot capture).
        """
        from .. import __version__

        payload = {
            "version": __version__,
            "app": app,
            "config": {name: config[name] for name in sorted(config)},
            "expressions": {name: expressions[name] for name in sorted(expressions)} if expressions else None,
        }
        digest = hashlib.sha256(json.dumps(payload, sort_keys=True, default=str).encode())
        return digest.hexdigest()

    def get(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, result: Mapping) -> None:
        self._entries[key] = dict(result)
        self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def save(self) -> Path | None:
        """Write the store back to disk (no-op without a path or changes)."""
        if self.path is None or not self._dirty:
            return self.path
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._entries, sort_keys=True, indent=1))
        self._dirty = False
        return self.path
