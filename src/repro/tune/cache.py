"""Persistent evaluation cache for the layout autotuner.

The implementation moved to :mod:`repro.cache.persistent` when the
compilation service (:mod:`repro.serve`) started reusing the same JSON store
as the durable tier of its kernel cache; this module remains the autotuner's
historical import path.  See :class:`repro.cache.ResultCache` for the key
scheme (app + config + lowered-expression fingerprint + backend) and the
atomic-save durability contract.
"""

from __future__ import annotations

from ..cache.persistent import ResultCache

__all__ = ["ResultCache"]
