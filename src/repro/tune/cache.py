"""Deprecated import path for :class:`repro.cache.ResultCache`.

The implementation moved to :mod:`repro.cache.persistent` when the
compilation service (:mod:`repro.serve`) started reusing the same JSON store
as the durable tier of its kernel cache; this module remained the
autotuner's historical import path for two releases and is now a
:class:`DeprecationWarning` shim — nothing in the package imports it
anymore.  Import :class:`ResultCache` from :mod:`repro.cache` (or
:mod:`repro.tune`, which re-exports it) instead.
"""

from __future__ import annotations

import warnings

__all__ = ["ResultCache"]


def __getattr__(name: str):
    if name == "ResultCache":
        warnings.warn(
            "repro.tune.cache is deprecated; import ResultCache from repro.cache "
            "(or repro.tune) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..cache.persistent import ResultCache

        return ResultCache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
