"""LEGO: a layout expression language for code generation of hierarchical mapping.

This package is a from-scratch reproduction of the CGO 2026 paper
"LEGO: A Layout Expression Language for Code Generation of Hierarchical
Mapping" (Tavakkoli, Oancea, Hall).  It provides:

* :mod:`repro.core` — the LEGO layout algebra (``GroupBy`` / ``OrderBy`` /
  ``RegP`` / ``GenP`` / ``ExpandBy`` and the ``Row`` / ``Col`` / ``TileBy``
  sugar), the paper's primary contribution;
* :mod:`repro.symbolic` — the integer symbolic engine with range-aware
  division/modulo simplification (the SymPy + Z3 substitute);
* :mod:`repro.codegen` — template instantiation for Triton and CUDA and the
  MLIR emission path;
* :mod:`repro.minitriton`, :mod:`repro.minicuda`, :mod:`repro.mlir` — the
  execution substrates standing in for the Triton compiler, CUDA runtime and
  MLIR toolchain (see DESIGN.md for the substitution rationale);
* :mod:`repro.gpusim` — the analytic A100-class performance model;
* :mod:`repro.apps` — the paper's benchmark applications (matmul, grouped
  GEMM, softmax, LayerNorm, NW, LUD, stencils, transpose), each registered
  as a uniform ``AppSpec`` in :mod:`repro.apps.registry`;
* :mod:`repro.tune` — the layout autotuner: declarative search spaces,
  candidate generation through the backend registry, analytic-model
  ranking and a persistent result cache;
* :mod:`repro.serve` — the concurrent layout-compilation service: batch
  submission with in-flight deduplication over a sharded two-tier kernel
  cache, service metrics and a synthetic-traffic CLI
  (``python -m repro.serve``);
* :mod:`repro.cache` — the shared cache tiers (sharded in-memory LRU,
  atomic persistent JSON store) behind the service and the autotuner;
* :mod:`repro.check` — the differential verification subsystem: NumPy
  reference models per app, a runner that executes every generated kernel
  on its substrate and proves it numerically correct, property-based
  fuzzing of the symbolic layer and a sweep CLI
  (``python -m repro.check``);
* :mod:`repro.bench` — the harness that regenerates every table and figure
  of the evaluation section.

The most common entry points are re-exported here::

    from repro import GroupBy, OrderBy, RegP, GenP, Row, Col, TileBy
    layout = GroupBy([6, 4]).OrderBy(RegP([2, 2], [2, 1]), ...)
    layout.apply(4, 1)   # logical index -> physical position
    layout.inv(6)        # physical position -> logical index
"""

from .core import (
    Col,
    ExpandBy,
    GenP,
    GroupBy,
    InjectiveLayout,
    Layout,
    OrderBy,
    RegP,
    Row,
    StrideLayout,
    TileBy,
    TileOrderBy,
    antidiagonal,
    equivalent,
    flatten_index,
    hilbert2d,
    morton,
    reverse_permutation,
    strides_from_layout,
    unflatten_index,
    xor_swizzle,
)
from .symbolic import SymbolicEnv, Var, simplify, simplify_fixpoint, symbols
from .codegen import (
    CodegenContext,
    GeneratedKernel,
    available_backends,
    generate_cuda_kernel,
    generate_triton_kernel,
    get_backend,
)

__version__ = "1.6.0"

__all__ = [
    "__version__",
    # layout algebra
    "GroupBy",
    "OrderBy",
    "Layout",
    "RegP",
    "GenP",
    "ExpandBy",
    "InjectiveLayout",
    "Row",
    "Col",
    "TileBy",
    "TileOrderBy",
    "antidiagonal",
    "reverse_permutation",
    "morton",
    "xor_swizzle",
    "hilbert2d",
    "flatten_index",
    "unflatten_index",
    "StrideLayout",
    "strides_from_layout",
    "equivalent",
    # symbolic engine
    "Var",
    "symbols",
    "SymbolicEnv",
    "simplify",
    "simplify_fixpoint",
    # code generation
    "CodegenContext",
    "GeneratedKernel",
    "available_backends",
    "get_backend",
    "generate_triton_kernel",
    "generate_cuda_kernel",
]
