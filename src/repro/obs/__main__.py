"""``python -m repro.obs`` — instrumented autotune + per-stage attribution.

Runs a bounded two-stage matmul autotune (analytic pre-filter over a small
subspace, measured re-rank of the top-k) with tracing forced on, prints the
per-stage self-time attribution table reconstructed from the span tree, and
writes ``BENCH_obs.json`` — the artifact the ``obs-smoke`` CI job validates
and uploads.  Optionally (``--replay``) it also replays a short burst of
synthetic compile traffic so the serve-side spans and registry metrics show
up in the same report::

    PYTHONPATH=src python -m repro.obs --measure-top-k 3 --trace trace.json

The exported trace is Chrome trace-event JSON: open it directly in
``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from .metrics import REGISTRY
from .report import attribution, render_attribution, validate_chrome_trace
from .trace import TRACER, set_tracing

__all__ = ["main", "run_instrumented_autotune"]

#: the named stages the acceptance gate requires the span tree to cover
REQUIRED_STAGES = (
    "search.prefilter",   # analytic pre-filter sweep
    "tune.model",         # analytic cost-model evaluation
    "serve.compile",      # compile-service batch (client side)
    "vm.execute",         # substrate execution under the VM engine
    "search.measure",     # measured re-rank of the survivors
)

#: bounded matmul subspace (full space is ~26k points; this is 2^5*2*2 = 128)
_SUBSPACE_AXES = dict(
    variant=("nn",),
    BM=(128, 64),
    BN=(128, 64),
    BK=(64, 32),
    GM=(8,),
    num_warps=(8, 4),
    stages=(1, 2),
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Instrumented autotune with per-stage span attribution.",
    )
    parser.add_argument("--app", default="matmul",
                        help="app to autotune (default: matmul, on a bounded subspace)")
    parser.add_argument("--measure-top-k", type=int, default=3,
                        help="candidates to measure on the substrate (default: 3)")
    parser.add_argument("--engine", default=None,
                        help="substrate execution engine (vectorized | vectorized-strict | treewalk)")
    parser.add_argument("--replay", type=int, default=0, metavar="N",
                        help="also replay N synthetic compile requests through the service")
    parser.add_argument("--trace", default=None, metavar="PATH", dest="trace_path",
                        help="export the Chrome trace-event JSON to this file")
    parser.add_argument("--json", default="BENCH_obs.json", metavar="PATH", dest="json_path",
                        help="report output path (default: BENCH_obs.json)")
    return parser


def run_instrumented_autotune(app: str = "matmul", measure_top_k: int = 3,
                              engine: str | None = None) -> dict:
    """Autotune ``app`` with tracing on; return the attribution report.

    The returned dict is :func:`repro.obs.attribution` of the captured
    events (rooted at ``tune.autotune``) plus the tune summary, the stage
    coverage check and the Chrome-trace schema validation problems.
    """
    from ..apps.registry import get_app
    from ..tune.tuner import autotune

    spec = get_app(app)
    space = spec.space
    if app == "matmul":
        space = space.subspace(**_SUBSPACE_AXES)

    was_enabled = TRACER.enabled
    set_tracing(True)
    TRACER.clear()
    try:
        started = time.perf_counter()
        result = autotune(spec, space=space, measure_top_k=measure_top_k, engine=engine)
        wall = time.perf_counter() - started
        events = TRACER.events()
        trace = TRACER.chrome_trace()
    finally:
        set_tracing(was_enabled)

    report = attribution(events, root_name="tune.autotune")
    stages_present = set(report["stages"])
    missing = [s for s in REQUIRED_STAGES if s not in stages_present]
    best = result.best
    return {
        "app": spec.name,
        "space_size": len(space),
        "measure_top_k": measure_top_k,
        "wall_seconds": wall,
        "best": {
            "config": dict(best.config),
            "time_ms": (best.measured_time_seconds or best.time_seconds) * 1e3,
            "measured": best.measured,
        },
        "attribution": report,
        "required_stages": list(REQUIRED_STAGES),
        "missing_stages": missing,
        "coverage": report["coverage"],
        "coverage_ok": not missing and report["coverage"] >= 0.9,
        "schema_problems": validate_chrome_trace(trace),
        "events": len(events),
        "trace": trace,
    }


def _run_replay(requests: int) -> dict:
    """A short serve replay with the service registered on the registry."""
    from ..cache import ShardedLRUCache
    from ..serve.service import CompileService
    from ..serve.traffic import synthetic_requests

    trace = synthetic_requests(total=requests, duplicate_fraction=0.5, seed=0)
    with CompileService(workers=2, cache=ShardedLRUCache(shards=4)) as service:
        source = service.register_metrics()
        try:
            started = time.perf_counter()
            service.submit_batch(trace)
            elapsed = time.perf_counter() - started
            snapshot = REGISTRY.snapshot()
        finally:
            REGISTRY.unregister_source(source)
    return {"requests": requests, "wall_seconds": elapsed, "metrics": snapshot}


def main(argv: list[str] | None = None) -> dict:
    args = _build_parser().parse_args(argv)
    report = run_instrumented_autotune(
        args.app, measure_top_k=args.measure_top_k, engine=args.engine,
    )
    trace = report.pop("trace")

    print(render_attribution(report["attribution"]))
    print()
    coverage = report["coverage"]
    print(f"stage coverage: {coverage:.1%} of root wall time "
          f"({'ok' if report['coverage_ok'] else 'INSUFFICIENT'})")
    if report["missing_stages"]:
        print(f"missing stages: {', '.join(report['missing_stages'])}")
    if report["schema_problems"]:
        print(f"schema problems: {report['schema_problems']}")

    if args.replay > 0:
        report["replay"] = _run_replay(args.replay)
        print(f"replay: {args.replay} requests in "
              f"{report['replay']['wall_seconds'] * 1e3:.1f}ms")

    if args.trace_path:
        Path(args.trace_path).write_text(json.dumps(trace) + "\n")
        print(f"trace: {args.trace_path} ({report['events']} events)")

    if args.json_path:
        Path(args.json_path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report: {args.json_path}")
    return report


if __name__ == "__main__":
    main()
