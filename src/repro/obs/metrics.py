"""The metrics registry: counters, gauges, histograms and absorbed sources.

One process-wide :class:`MetricsRegistry` (:data:`REGISTRY`) unifies the
stack's previously ad-hoc accounting:

* **Owned metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  instruments created through :meth:`MetricsRegistry.counter` and friends
  (the vectorized-engine fallback counters, search-stage counters, ...).
* **Absorbed sources** — existing stat producers registered as callables
  that return a (possibly nested) dict: the symbolic engine's global
  :data:`~repro.symbolic.stats.CACHE_STATS` is registered by default, and a
  :class:`~repro.serve.CompileService` plugs its
  :class:`~repro.serve.metrics.ServiceStats` in with
  ``CompileService.register_metrics``.  Sources are read live at snapshot
  time, so the registry never holds stale copies.

Everything is visible through one **snapshot/delta API**
(:meth:`MetricsRegistry.snapshot` returns a flat dotted-key mapping;
:meth:`MetricsRegistry.delta` subtracts two snapshots, clamped at zero so a
counter reset mid-window can never surface a negative rate) and a
**Prometheus-style text exposition** (:meth:`MetricsRegistry.render_prometheus`,
served by ``python -m repro.serve --metrics``).

The ceil-based nearest-rank :func:`percentile` lives here as the single
shared implementation — :class:`~repro.serve.metrics.LatencyRecorder` and
the serve benchmark's tail-latency assertions both delegate to it.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Callable, Mapping

__all__ = [
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]


def percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample list.

    Uses the ceil-based nearest-rank definition: the q-quantile of n samples
    is the ``ceil(q * n)``-th smallest.  ``round(q * (n - 1))`` is *not*
    equivalent — Python rounds half-to-even, so p50 of an even window picked
    the lower or upper middle sample depending on whether the midpoint rank
    happened to be even (p50 of [1, 2] chose 1 while p50 of [1, 2, 3, 4]
    chose 3).  This is the single shared implementation; the serve-side
    latency recorder and the benchmark tail assertions both call it.
    """
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class Counter:
    """A monotonically increasing count (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for signed values")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect(self) -> dict[str, float]:
        return {self.name: self.value}


class Gauge:
    """A point-in-time value: settable, or computed by a callback at read time."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", fn: Callable[[], float] | None = None):
        self.name = name
        self.help = help
        self._fn = fn
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed; it cannot be set")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed; it cannot be set")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def collect(self) -> dict[str, float]:
        return {self.name: self.value}


class Histogram:
    """A bounded sample window with exact running count/sum (thread-safe).

    The same reservoir model as the serve latency recorder: the most recent
    ``max_samples`` observations back the percentiles, while ``count`` and
    ``sum`` stay exact forever, so the mean never loses precision to
    eviction.  Percentiles use the shared nearest-rank :func:`percentile`.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", max_samples: int = 10_000):
        if max_samples < 1:
            raise ValueError("Histogram requires a positive sample bound")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=max_samples)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def collect(self) -> dict[str, float]:
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._sum
        return {
            f"{self.name}.count": float(count),
            f"{self.name}.sum": total,
            f"{self.name}.mean": (total / count) if count else 0.0,
            f"{self.name}.p50": percentile(ordered, 0.50),
            f"{self.name}.p95": percentile(ordered, 0.95),
            f"{self.name}.p99": percentile(ordered, 0.99),
            f"{self.name}.max": ordered[-1] if ordered else 0.0,
        }


def _flatten(prefix: str, value, out: dict[str, float]) -> None:
    """Flatten a nested numeric mapping into dotted keys (non-numerics dropped)."""
    if isinstance(value, Mapping):
        for key, inner in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), inner, out)
    elif isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes become underscores)."""
    sanitized = _PROM_NAME.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


class MetricsRegistry:
    """Instruments plus absorbed stat sources behind one snapshot/delta API."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._sources: dict[str, Callable[[], Mapping]] = {}
        #: bumped by :meth:`on_reset`; snapshots carry it so delta() can tell
        #: that an underlying source was zeroed mid-window
        self._epoch = 0

    # -- instrument creation (create-or-get, type-checked) ---------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "", fn: Callable[[], float] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, fn=fn)

    def histogram(self, name: str, help: str = "", max_samples: int = 10_000) -> Histogram:
        return self._get_or_create(Histogram, name, help, max_samples=max_samples)

    # -- absorbed sources ------------------------------------------------------

    def register_source(self, name: str, fn: Callable[[], Mapping]) -> None:
        """Absorb an external stat producer (read live at snapshot time).

        ``fn`` returns a possibly nested mapping; numeric leaves surface in
        snapshots as ``<name>.<dotted.path>`` keys.  Re-registering a name
        replaces its callable (a restarted service takes over its slot).
        """
        with self._lock:
            self._sources[name] = fn

    def unregister_source(self, name: str) -> bool:
        with self._lock:
            return self._sources.pop(name, None) is not None

    def sources(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def on_reset(self, source: str = "") -> None:
        """Record that an absorbed source was zeroed (bumps the epoch).

        :func:`repro.symbolic.stats.reset_cache_statistics` routes through
        here: snapshot holders compare epochs through :meth:`delta`, so a
        reset between two snapshots yields clamped (never negative) deltas
        instead of nonsense differences.
        """
        with self._lock:
            self._epoch += 1
        self.counter(
            "repro.obs.source_resets",
            "times an absorbed stat source was reset mid-flight",
        ).inc()

    # -- snapshot / delta / exposition ----------------------------------------

    def snapshot(self) -> dict[str, float]:
        """A flat ``{dotted_name: value}`` view of every metric and source."""
        with self._lock:
            metrics = list(self._metrics.values())
            sources = list(self._sources.items())
            epoch = self._epoch
        out: dict[str, float] = {"__epoch__": float(epoch)}
        for metric in metrics:
            out.update(metric.collect())
        for name, fn in sources:
            try:
                produced = fn()
            except Exception:
                # a dead source (closed service) must not break snapshots
                continue
            _flatten(name, produced, out)
        return out

    @staticmethod
    def delta(before: Mapping[str, float], after: Mapping[str, float]) -> dict[str, float]:
        """Per-key increments between two snapshots, clamped at zero.

        When the epoch advanced between the snapshots (a source was reset
        through :meth:`on_reset`) the ``before`` values are stale baselines
        of zeroed counters, so each key's delta falls back to its ``after``
        value — the exact count since the reset — rather than going
        negative.  Keys that appear only in ``after`` count from zero.
        """
        reset_between = after.get("__epoch__", 0.0) != before.get("__epoch__", 0.0)
        out: dict[str, float] = {}
        for key, after_value in after.items():
            if key == "__epoch__":
                continue
            base = 0.0 if reset_between else float(before.get(key, 0.0))
            out[key] = max(0.0, after_value - base)
        return out

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition (format version 0.0.4).

        Owned counters and gauges expose their declared type; histograms
        expose as summaries (``quantile`` labels plus ``_count``/``_sum``);
        absorbed-source leaves expose as untyped gauges.
        """
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
            sources = list(self._sources.items())
        for metric in metrics:
            name = _prom_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Histogram):
                lines.append(f"# TYPE {name} summary")
                collected = metric.collect()
                for q in ("0.5", "0.95", "0.99"):
                    key = f"{metric.name}.p{q[2:].ljust(2, '0')}"
                    lines.append(f'{name}{{quantile="{q}"}} {collected[key]:g}')
                lines.append(f"{name}_count {collected[f'{metric.name}.count']:g}")
                lines.append(f"{name}_sum {collected[f'{metric.name}.sum']:g}")
            else:
                lines.append(f"# TYPE {name} {metric.kind}")
                lines.append(f"{name} {metric.value:g}")
        for source, fn in sources:
            try:
                produced = fn()
            except Exception:
                continue
            flat: dict[str, float] = {}
            _flatten(source, produced, flat)
            for key in sorted(flat):
                lines.append(f"# TYPE {_prom_name(key)} gauge")
                lines.append(f"{_prom_name(key)} {flat[key]:g}")
        return "\n".join(lines) + "\n"

    def clear(self) -> None:
        """Drop every owned metric and absorbed source (test isolation)."""
        with self._lock:
            self._metrics.clear()
            self._sources.clear()
            self._epoch = 0


def _default_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    # the symbolic engine's global cache counters are the first absorbed
    # source: every snapshot shows simplify/fixpoint/proof/range/print
    # hit/miss counts without the callers touching CACHE_STATS directly
    from ..symbolic.stats import cache_statistics

    registry.register_source("repro.symbolic.cache", cache_statistics)
    return registry


#: the process-wide registry every instrumentation point records into
REGISTRY = _default_registry()


def counter(name: str, help: str = "") -> Counter:
    """Create-or-get a counter on the process registry."""
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "", fn: Callable[[], float] | None = None) -> Gauge:
    """Create-or-get a gauge on the process registry."""
    return REGISTRY.gauge(name, help, fn=fn)


def histogram(name: str, help: str = "", max_samples: int = 10_000) -> Histogram:
    """Create-or-get a histogram on the process registry."""
    return REGISTRY.histogram(name, help, max_samples=max_samples)
