"""``repro.obs`` — the unified tracing & metrics layer.

The stack spans five subsystems (codegen -> serve -> check -> perf ->
tune.search); this package is where all of their telemetry converges:

* :mod:`repro.obs.trace` — the structured **span tracer**: context-manager
  spans (:func:`span`), thread-safe and nestable, ~zero-cost when disabled,
  enabled process-wide by the ``REPRO_TRACE`` environment variable and
  exported as Chrome trace-event / Perfetto-compatible JSON
  (:func:`export_trace`), so a whole ``autotune(measure_top_k=...)`` run or
  serve replay opens directly in a trace viewer.
* :mod:`repro.obs.metrics` — the **metrics registry**
  (:data:`REGISTRY`): counters, gauges and reservoir histograms, the
  shared ceil-based nearest-rank :func:`percentile`, absorbed stat sources
  (the symbolic cache counters by default; services register their
  :class:`~repro.serve.metrics.ServiceStats`), one snapshot/delta API and
  a Prometheus-style text exposition.
* :mod:`repro.obs.report` — **attribution**: per-thread span trees,
  per-stage self-time breakdown and Chrome-trace schema validation.

``python -m repro.obs`` runs an instrumented autotune plus a short serve
replay, prints the per-stage attribution report and writes
``BENCH_obs.json`` (the ``obs-smoke`` CI artifact).
"""

from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    percentile,
)
from .report import (
    SpanNode,
    attribution,
    render_attribution,
    span_trees,
    validate_chrome_trace,
)
from .trace import (
    TRACE_ENV,
    TRACER,
    Span,
    Tracer,
    chrome_trace,
    clear_trace,
    export_trace,
    instant,
    set_tracing,
    span,
    trace_enabled,
    trace_events,
    tracing,
)

def record_vm_fallback(substrate: str, kernel, exc: BaseException) -> None:
    """Record one vectorized-engine fallback to the tree-walk interpreter.

    Called by the substrate runtimes (minitriton / minicuda / mlir) at the
    point where a batched execution attempt failed and the launch restarts
    under the tree-walk engine: bumps the ``repro.vm.fallbacks`` counter and
    drops an instant event into the active trace so the fallback shows up in
    the timeline next to the re-executed launch.
    """
    counter("repro.vm.fallbacks").inc()
    instant(
        "vm.fallback",
        "vm",
        substrate=substrate,
        kernel=getattr(kernel, "name", "") or getattr(kernel, "__name__", ""),
        error=f"{type(exc).__name__}: {exc}",
    )


def record_farm_event(kind: str, **fields) -> None:
    """Record one farm lifecycle event (``shed`` / ``restart`` / ``redrive``).

    Called by the compile-farm supervisor (:mod:`repro.serve.farm`) at the
    points production debugging cares about: a capped lane shedding a
    request, a worker process dying and being replaced, and an orphaned
    in-flight request being re-driven to a fresh worker.  Each call bumps
    the ``repro.farm.<kind>s`` counter and — when tracing is enabled —
    drops a ``farm.<kind>`` instant into the timeline so the event lines up
    with the serve spans around it.
    """
    counter(f"repro.farm.{kind}s").inc()
    instant(f"farm.{kind}", "farm", **fields)


__all__ = [
    "record_farm_event",
    "record_vm_fallback",
    # tracing
    "TRACE_ENV",
    "TRACER",
    "Span",
    "Tracer",
    "span",
    "instant",
    "trace_enabled",
    "set_tracing",
    "tracing",
    "trace_events",
    "chrome_trace",
    "export_trace",
    "clear_trace",
    # metrics
    "REGISTRY",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "gauge",
    "histogram",
    "percentile",
    # reporting
    "SpanNode",
    "span_trees",
    "attribution",
    "render_attribution",
    "validate_chrome_trace",
]
