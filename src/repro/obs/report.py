"""Trace analysis: span trees, per-stage attribution, schema validation.

The tracer records flat ``ph="X"`` complete events; this module rebuilds
the per-thread span trees from timestamp containment (the same model the
Chrome viewer renders), computes **self time** per span (duration minus
the duration of its direct children) and aggregates by span name into the
per-stage attribution report ``python -m repro.obs`` prints.

Within one thread's tree the self times of a root and its descendants sum
*exactly* to the root's duration, so the interesting number is the root's
own self time — the **unattributed** remainder no named stage covers.  The
``obs-smoke`` gate asserts the named stages of an instrumented autotune
cover >= 90% of the run's wall time (and that the reconstructed tree's
self-time sum matches the wall clock, which catches containment bugs).

:func:`validate_chrome_trace` checks an exported trace object against the
Chrome trace-event schema (the subset every viewer requires), so CI fails
if an instrumentation change ever produces a trace a viewer cannot open.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SpanNode",
    "span_trees",
    "attribution",
    "render_attribution",
    "validate_chrome_trace",
]


@dataclass
class SpanNode:
    """One reconstructed span with its nested children."""

    event: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.get("name", "")

    @property
    def start(self) -> float:
        return float(self.event.get("ts", 0.0))

    @property
    def duration(self) -> float:
        return float(self.event.get("dur", 0.0))

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def self_time(self) -> float:
        """Duration not spent inside direct children (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def span_trees(events: list[dict]) -> dict[tuple, list[SpanNode]]:
    """Rebuild nesting per ``(pid, tid)`` from timestamp containment.

    Events are sorted by start time (longer span first on ties, so a parent
    precedes a child that began the same microsecond); a stack of open
    spans assigns each event to the innermost span containing it.  Returns
    the top-level spans of each thread.
    """
    by_thread: dict[tuple, list[dict]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        by_thread.setdefault((event.get("pid"), event.get("tid")), []).append(event)

    trees: dict[tuple, list[SpanNode]] = {}
    for thread_key, thread_events in by_thread.items():
        thread_events.sort(key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))))
        roots: list[SpanNode] = []
        stack: list[SpanNode] = []
        for event in thread_events:
            node = SpanNode(event)
            # pop spans that ended before this one starts (tiny tolerance:
            # perf_counter is monotonic but float µs round-trips may touch)
            while stack and node.start >= stack[-1].end - 1e-3:
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
        trees[thread_key] = roots
    return trees


def _find_root(trees: dict[tuple, list[SpanNode]], root_name: str | None) -> SpanNode | None:
    candidates = [root for roots in trees.values() for root in roots]
    if root_name is not None:
        candidates = [c for c in candidates if c.name == root_name]
    if not candidates:
        return None
    return max(candidates, key=lambda c: c.duration)


def attribution(events: list[dict], root_name: str | None = None) -> dict:
    """Per-stage self-time attribution of one traced run.

    ``root_name`` selects the run's root span (e.g. ``"tune.autotune"``);
    by default the longest top-level span wins.  Stage rows aggregate by
    span name over the *root's* tree — the tree whose self times are
    guaranteed to sum to the wall time — while ``other_threads`` summarises
    spans recorded on other threads (service workers), whose time overlaps
    the root wall clock and must not be double-counted into coverage.
    """
    trees = span_trees(events)
    root = _find_root(trees, root_name)
    if root is None:
        return {
            "root": root_name or "",
            "wall_ms": 0.0,
            "stages": {},
            "unattributed_ms": 0.0,
            "self_sum_ms": 0.0,
            "coverage": 0.0,
            "other_threads": {},
            "spans": 0,
        }

    stages: dict[str, dict] = {}
    self_sum = 0.0
    for node in root.walk():
        row = stages.setdefault(node.name, {"count": 0, "total_ms": 0.0, "self_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += node.duration / 1e3
        row["self_ms"] += node.self_time / 1e3
        self_sum += node.self_time / 1e3

    wall_ms = root.duration / 1e3
    unattributed_ms = stages.get(root.name, {}).get("self_ms", 0.0)
    for row in stages.values():
        row["share"] = (row["self_ms"] / wall_ms) if wall_ms > 0 else 0.0

    other: dict[str, dict] = {}
    root_ids = {id(node.event) for node in root.walk()}
    for roots in trees.values():
        for top in roots:
            for node in top.walk():
                if id(node.event) in root_ids:
                    continue
                row = other.setdefault(node.name, {"count": 0, "self_ms": 0.0})
                row["count"] += 1
                row["self_ms"] += node.self_time / 1e3

    return {
        "root": root.name,
        "wall_ms": wall_ms,
        "stages": dict(sorted(stages.items(), key=lambda kv: -kv[1]["self_ms"])),
        "unattributed_ms": unattributed_ms,
        "self_sum_ms": self_sum,
        #: fraction of the root's wall time inside *named child* spans
        "coverage": ((wall_ms - unattributed_ms) / wall_ms) if wall_ms > 0 else 0.0,
        "other_threads": dict(sorted(other.items(), key=lambda kv: -kv[1]["self_ms"])),
        "spans": len(root_ids),
    }


def render_attribution(report: dict) -> str:
    """The attribution report as an aligned text table (the CLI's output)."""
    lines = [
        f"root span: {report['root']}  wall={report['wall_ms']:.2f}ms  "
        f"spans={report['spans']}  coverage={report['coverage'] * 100:.1f}%"
    ]
    lines.append(f"{'stage':<28} {'count':>6} {'total_ms':>10} {'self_ms':>10} {'share':>7}")
    for name, row in report["stages"].items():
        lines.append(
            f"{name:<28} {row['count']:>6} {row['total_ms']:>10.3f} "
            f"{row['self_ms']:>10.3f} {row['share'] * 100:>6.1f}%"
        )
    if report["other_threads"]:
        lines.append("worker threads (overlapping the wall clock):")
        for name, row in report["other_threads"].items():
            lines.append(f"{'  ' + name:<28} {row['count']:>6} {'':>10} {row['self_ms']:>10.3f}")
    lines.append(
        f"unattributed: {report['unattributed_ms']:.3f}ms "
        f"({(1 - report['coverage']) * 100:.1f}% of wall)"
    )
    return "\n".join(lines)


#: event phases the exporter may legally produce
_VALID_PHASES = {"X", "i", "I", "M", "B", "E", "C"}


def validate_chrome_trace(trace: dict) -> list[str]:
    """Check a trace object against the Chrome trace-event schema.

    Returns a list of problems (empty means the trace is viewer-loadable):
    the container must be an object with a ``traceEvents`` array, and every
    event needs a string ``name``, a known ``ph``, integer ``pid``/``tid``
    and a non-negative numeric ``ts``; complete events (``ph="X"``) also
    need a non-negative ``dur``.  Problems carry the event index so a CI
    failure points at the offending emitter.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace object has no 'traceEvents' array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty 'name'")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for id_field in ("pid", "tid"):
            if not isinstance(event.get(id_field), int):
                problems.append(f"{where}: '{id_field}' must be an integer")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs a non-negative 'dur'")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object when present")
    return problems
