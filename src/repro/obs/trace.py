"""The structured span tracer: Chrome-trace-event telemetry for the stack.

Every subsystem brackets its stages with :func:`span` — pipeline lowering,
backend render, service compile/dedup/cache probes, search pre-filter /
cost-model / measured re-rank, substrate execution, differential checks —
and the resulting events form a nested span tree per thread that any
Chrome-trace / Perfetto viewer opens directly (``chrome://tracing``,
https://ui.perfetto.dev).

Design constraints, in priority order:

1. **~Zero cost when disabled.**  Tracing is off unless the ``REPRO_TRACE``
   environment variable enables it (or a test/CLI flips it with
   :func:`set_tracing` / :func:`tracing`).  A disabled :func:`span` call is
   one attribute read and the return of a shared no-op context manager —
   no allocation, no clock read, no lock.  The serve benchmark asserts the
   end-to-end replay overhead of the disabled instrumentation stays under
   2% (see ``benchmarks/bench_obs.py``).
2. **Thread-safe and nestable.**  Spans nest lexically per thread (the
   span tree is reconstructed from timestamp containment per ``tid``, the
   same model the Chrome viewer uses); the event buffer appends under one
   lock only when tracing is enabled.
3. **Self-describing export.**  :func:`chrome_trace` returns the standard
   ``{"traceEvents": [...]}`` JSON object: ``ph="X"`` complete events with
   microsecond ``ts``/``dur``, ``ph="i"`` instants for point occurrences
   (e.g. a vectorized-engine fallback), and ``ph="M"`` thread-name
   metadata.  :func:`repro.obs.report.validate_chrome_trace` checks an
   export against the schema the viewers require.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "instant",
    "trace_enabled",
    "set_tracing",
    "tracing",
    "trace_events",
    "chrome_trace",
    "export_trace",
    "clear_trace",
]

#: the environment variable that turns tracing on process-wide
TRACE_ENV = "REPRO_TRACE"

_FALSEY = ("", "0", "off", "false", "no")


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() not in _FALSEY


class _NullSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def add(self, **args) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One live span: a context manager that emits a complete event on exit."""

    __slots__ = ("_tracer", "name", "category", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def add(self, **args) -> "Span":
        """Attach result metadata (cache tier hit, candidate counts, ...)."""
        self.args.update(args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._emit(self.name, self.category, self._start, end, self.args)
        return False


class Tracer:
    """A process-wide buffer of trace events with a monotonic epoch.

    All timestamps are microseconds of ``time.perf_counter`` relative to the
    tracer's epoch (reset by :meth:`clear`), so spans recorded on different
    threads share one consistent clock and containment reconstructs nesting
    exactly.  The buffer is bounded: past ``max_events`` new events are
    dropped and counted (``dropped``) rather than growing without limit
    during an unexpectedly long traced run.
    """

    def __init__(self, enabled: bool | None = None, max_events: int = 1_000_000):
        self.enabled = _env_enabled() if enabled is None else enabled
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._thread_names: dict[int, str] = {}
        self._epoch = time.perf_counter()
        self._pid = os.getpid()
        self._max_events = max_events
        self.dropped = 0

    # -- recording ------------------------------------------------------------

    def span(self, name: str, category: str = "repro", **args) -> Span | _NullSpan:
        """A context manager timing one stage (the no-op singleton when off)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, category, args)

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a point event (e.g. a fallback) at the current time."""
        if not self.enabled:
            return
        now = time.perf_counter()
        tid = threading.get_ident()
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",  # instant scope: thread
            "ts": (now - self._epoch) * 1e6,
            "pid": self._pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._append(event, tid)

    def _emit(self, name: str, category: str, start: float, end: float, args: dict) -> None:
        tid = threading.get_ident()
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": (start - self._epoch) * 1e6,
            "dur": max(0.0, (end - start) * 1e6),
            "pid": self._pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._append(event, tid)

    def _append(self, event: dict, tid: int) -> None:
        with self._lock:
            if len(self._events) >= self._max_events:
                self.dropped += 1
                return
            if tid not in self._thread_names:
                self._thread_names[tid] = threading.current_thread().name
            self._events.append(event)

    # -- reading / export -----------------------------------------------------

    def events(self) -> list[dict]:
        """A copy of the recorded events (chronological per thread)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        """Drop all events and restart the epoch (tests, CLI runs)."""
        with self._lock:
            self._events.clear()
            self._thread_names.clear()
            self.dropped = 0
            self._epoch = time.perf_counter()

    def chrome_trace(self) -> dict:
        """The standard Chrome trace-event JSON object for this buffer."""
        with self._lock:
            events = list(self._events)
            names = dict(self._thread_names)
        metadata = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self._pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
            for tid, thread_name in sorted(names.items())
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "dropped": self.dropped},
        }

    def export(self, path) -> Path:
        """Write :meth:`chrome_trace` as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace()) + "\n")
        return path


#: the process-wide tracer every instrumentation point records into
TRACER = Tracer()


def span(name: str, category: str = "repro", **args) -> Span | _NullSpan:
    """Bracket one stage: ``with span("serve.compile", app=name): ...``.

    When tracing is disabled this returns a shared no-op context manager —
    the documented (and benchmark-asserted) overhead contract is "one
    attribute read per call site".
    """
    if not TRACER.enabled:
        return _NULL_SPAN
    return Span(TRACER, name, category, args)


def instant(name: str, category: str = "repro", **args) -> None:
    """Record a point event on the process tracer (no-op when disabled)."""
    TRACER.instant(name, category, **args)


def trace_enabled() -> bool:
    """Is the process tracer currently recording?"""
    return TRACER.enabled


def set_tracing(enabled: bool) -> None:
    """Turn the process tracer on or off (the CLI's programmatic override)."""
    TRACER.enabled = bool(enabled)


@contextmanager
def tracing(enabled: bool = True):
    """Run a block with tracing forced on (or off), restoring the prior state."""
    previous = TRACER.enabled
    TRACER.enabled = bool(enabled)
    try:
        yield TRACER
    finally:
        TRACER.enabled = previous


def trace_events() -> list[dict]:
    """The process tracer's recorded events."""
    return TRACER.events()


def chrome_trace() -> dict:
    """The process tracer's buffer as a Chrome trace-event JSON object."""
    return TRACER.chrome_trace()


def export_trace(path) -> Path:
    """Write the process tracer's buffer to ``path`` as Chrome-trace JSON."""
    return TRACER.export(path)


def clear_trace() -> None:
    """Reset the process tracer (drops events, restarts the epoch)."""
    TRACER.clear()
