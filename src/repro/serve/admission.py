"""Bounded admission control for the compile farm's priority lanes.

A farm that accepts unboundedly simply converts overload into unbounded
queueing delay — every request eventually "succeeds" with a latency nobody
would wait for.  Production serving sheds instead: each lane has a pending
cap, and a submission over the cap resolves *immediately* with a typed
:class:`Rejected` value (never an exception — shedding is an expected
outcome a replay loop counts, not an error it crashes on).

Two lanes exist:

* ``interactive`` — human-facing traffic, dispatched first, generous cap;
* ``sweep`` — bulk autotuner/batch traffic, dispatched only when no
  interactive work is pending, tighter cap so a sweep can never queue the
  farm into interactive-latency debt.

The controller is plain bounded counting under one lock; the *priority*
between lanes lives in the farm's dispatcher (interactive first), not here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "LANES",
    "LANE_INTERACTIVE",
    "LANE_SWEEP",
    "AdmissionController",
    "Rejected",
]

LANE_INTERACTIVE = "interactive"
LANE_SWEEP = "sweep"
LANES = (LANE_INTERACTIVE, LANE_SWEEP)

#: default pending caps: interactive absorbs bursts, sweep stays shallow
DEFAULT_LIMITS = {LANE_INTERACTIVE: 1024, LANE_SWEEP: 256}


@dataclass(frozen=True)
class Rejected:
    """The typed shed result a capped lane returns instead of stalling.

    Futures for shed submissions resolve with this value (not an exception):
    ``isinstance(result, Rejected)`` is the protocol for "the farm declined,
    retry later or degrade gracefully".
    """

    app: str
    lane: str
    reason: str
    queue_depth: int
    limit: int

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "lane": self.lane,
            "reason": self.reason,
            "queue_depth": self.queue_depth,
            "limit": self.limit,
        }


class AdmissionController:
    """Per-lane bounded admission with exact shed accounting.

    ``try_admit`` either reserves one pending slot (release it with
    ``release`` when the request resolves) or records a shed and returns the
    depth/limit pair the :class:`Rejected` result reports.
    """

    def __init__(self, limits: Mapping[str, int] | None = None):
        merged = dict(DEFAULT_LIMITS)
        if limits:
            merged.update(limits)
        for lane, limit in merged.items():
            if limit < 1:
                raise ValueError(f"lane {lane!r} needs a positive pending cap")
        self._limits = merged
        self._lock = threading.Lock()
        self._pending = {lane: 0 for lane in merged}
        self._admitted = {lane: 0 for lane in merged}
        self._sheds = {lane: 0 for lane in merged}

    def check_lane(self, lane: str) -> None:
        if lane not in self._limits:
            raise ValueError(
                f"unknown lane {lane!r}; configured lanes: {sorted(self._limits)}"
            )

    @property
    def lanes(self) -> tuple[str, ...]:
        return tuple(sorted(self._limits))

    def limit(self, lane: str) -> int:
        self.check_lane(lane)
        return self._limits[lane]

    def try_admit(self, lane: str) -> tuple[bool, int]:
        """Reserve a slot in ``lane``; returns ``(admitted, depth_seen)``."""
        self.check_lane(lane)
        with self._lock:
            depth = self._pending[lane]
            if depth >= self._limits[lane]:
                self._sheds[lane] += 1
                return False, depth
            self._pending[lane] = depth + 1
            self._admitted[lane] += 1
            return True, depth + 1

    def release(self, lane: str) -> None:
        with self._lock:
            if self._pending[lane] <= 0:
                raise AssertionError(f"release underflow on lane {lane!r}")
            self._pending[lane] -= 1

    def depth(self, lane: str) -> int:
        with self._lock:
            return self._pending[lane]

    def sheds(self, lane: str) -> int:
        with self._lock:
            return self._sheds[lane]

    def snapshot(self) -> dict:
        """Per-lane ``{limit, pending, admitted, sheds}`` under one lock."""
        with self._lock:
            return {
                lane: {
                    "limit": self._limits[lane],
                    "pending": self._pending[lane],
                    "admitted": self._admitted[lane],
                    "sheds": self._sheds[lane],
                }
                for lane in sorted(self._limits)
            }
