"""``repro.serve`` — the concurrent layout-compilation service.

The ROADMAP's north star is a system that absorbs compile traffic at
production scale; this package is the serving layer over the generation
pipeline the earlier PRs made fast (hash-consed IR) and uniform (backend
registry):

* :class:`CompileRequest` — the value object clients submit
  (``app``, ``config``, optional backend and cost weights),
* :class:`CompileService` — thread-pooled execution with in-flight request
  deduplication and a sharded two-tier kernel cache (in-memory LRU shards
  over interned-expression fingerprints; optional persistent JSON store),
* :class:`ServiceStats` — the metrics snapshot: per-shard hit rates,
  p50/p95/p99 latency, queue depth, dedup and compile counters,
* :func:`synthetic_requests` + ``python -m repro.serve`` — deterministic
  traffic replay from the application registry's search spaces.

Quickstart::

    from repro.serve import CompileRequest, CompileService
    with CompileService(workers=4) as service:
        kernel = service.compile(CompileRequest("matmul", {"variant": "nn"}))
        batch = service.submit_batch([...])
        service.stats().hit_rate

The autotuner (:func:`repro.tune.autotune`) routes candidate generation
through the shared :func:`default_service`, so sweeps get batching, dedup
and a warm cross-sweep kernel cache with no caller changes.
"""

from .metrics import LatencyRecorder, ServiceStats
from .service import (
    CompileRequest,
    CompileService,
    PersistedKernel,
    default_compiler,
    default_service,
    warm_from_table,
)
from .traffic import generating_apps, synthetic_requests

__all__ = [
    "CompileRequest",
    "CompileService",
    "PersistedKernel",
    "LatencyRecorder",
    "ServiceStats",
    "default_compiler",
    "default_service",
    "generating_apps",
    "synthetic_requests",
    "warm_from_table",
]
