"""``repro.serve`` — the concurrent layout-compilation service.

The ROADMAP's north star is a system that absorbs compile traffic at
production scale; this package is the serving layer over the generation
pipeline the earlier PRs made fast (hash-consed IR) and uniform (backend
registry):

* :class:`CompileRequest` — the value object clients submit
  (``app``, ``config``, optional backend and cost weights),
* :class:`CompileService` — thread-pooled execution with in-flight request
  deduplication and a sharded two-tier kernel cache (in-memory LRU shards
  over interned-expression fingerprints; optional persistent JSON store),
* :class:`ServiceStats` — the metrics snapshot: per-shard hit rates,
  p50/p95/p99 latency, queue depth, dedup and compile counters,
* :class:`CompileFarm` — the multi-process tier: N worker processes over a
  shared durable :class:`~repro.cache.ShardedFileStore`, priority lanes
  with bounded admission (over-cap submissions shed with a typed
  :class:`Rejected`), cross-process claim-file dedup, worker health
  checking with automatic restart and request re-drive, and per-lane
  p50/p95/p99/p99.9 latency in :class:`FarmStats`,
* :func:`synthetic_requests` / :func:`traffic_trace` + ``python -m
  repro.serve`` — deterministic traffic replay (uniform-duplicate traces,
  or Zipf-popular Poisson arrivals across configurable burst phases).

Quickstart::

    from repro.serve import CompileRequest, CompileService
    with CompileService(workers=4) as service:
        kernel = service.compile(CompileRequest("matmul", {"variant": "nn"}))
        batch = service.submit_batch([...])
        service.stats().hit_rate

The autotuner (:func:`repro.tune.autotune`) routes candidate generation
through the shared :func:`default_service`, so sweeps get batching, dedup
and a warm cross-sweep kernel cache with no caller changes.
"""

from .admission import (
    LANE_INTERACTIVE,
    LANE_SWEEP,
    LANES,
    AdmissionController,
    Rejected,
)
from .farm import CompileFarm, FarmCompileError
from .metrics import FarmStats, LaneStats, LatencyRecorder, ServiceStats
from .service import (
    CompileRequest,
    CompileService,
    PersistedKernel,
    default_compiler,
    default_service,
    table_requests,
    warm_from_table,
)
from .traffic import (
    DEFAULT_PHASES,
    BurstPhase,
    TimedRequest,
    generating_apps,
    synthetic_requests,
    trace_summary,
    traffic_trace,
    zipf_requests,
)

__all__ = [
    "AdmissionController",
    "BurstPhase",
    "CompileFarm",
    "CompileRequest",
    "CompileService",
    "DEFAULT_PHASES",
    "FarmCompileError",
    "FarmStats",
    "LANES",
    "LANE_INTERACTIVE",
    "LANE_SWEEP",
    "LaneStats",
    "LatencyRecorder",
    "PersistedKernel",
    "Rejected",
    "ServiceStats",
    "TimedRequest",
    "default_compiler",
    "default_service",
    "generating_apps",
    "synthetic_requests",
    "table_requests",
    "trace_summary",
    "traffic_trace",
    "warm_from_table",
    "zipf_requests",
]
