"""The multi-process compile farm: supervisor, worker processes, SLO plumbing.

:class:`CompileFarm` scales :class:`~repro.serve.service.CompileService`'s
single-process thread pool to the ROADMAP's million-user story: N worker
*processes* share one durable :class:`~repro.cache.ShardedFileStore`, a
supervisor admits, prioritises and dispatches requests, and the whole thing
survives ``SIGKILL``-ed workers without losing or double-compiling anything.

Architecture (every piece chosen for kill-safety):

* **Per-worker pipes, not shared queues.**  A worker killed while blocked on
  a shared ``multiprocessing.Queue`` dies holding the queue's semaphore and
  deadlocks every sibling.  Each worker instead owns a private task pipe
  (supervisor writes) and result pipe (supervisor reads): single reader,
  single writer, no shared locks — and a dead worker is detected *instantly*
  as EOF on its result pipe, not on a health-check poll.
* **Central lanes in the supervisor.**  Pending requests live in supervisor
  deques (one per priority lane); a worker is sent at most
  ``max_outstanding`` tickets at a time.  Priority is therefore exact —
  every dispatch decision sees the full backlog and picks ``interactive``
  first — and so is re-drive: the supervisor knows precisely which tickets
  a dead worker held and pushes them back onto the *front* of their lanes.
* **Admission control.**  Each lane has a pending cap
  (:class:`~repro.serve.admission.AdmissionController`); over-cap
  submissions resolve immediately with a typed
  :class:`~repro.serve.admission.Rejected` instead of stalling the client.
* **Three-tier dedup.**  The supervisor memory tier
  (:class:`~repro.cache.ShardedLRUCache` of resolved kernels) answers
  repeats in microseconds; identical in-flight requests coalesce onto one
  ticket; and across processes (including re-driven duplicates and other
  farms on the same store) workers take cache-keyed **claim files** with
  lease deadlines (:class:`~repro.cache.ClaimRegistry`), so each distinct
  kernel compiles exactly once — ``FarmStats.double_compiled`` is the
  tripwire that stays 0 even through a chaos kill.
* **Health & restart.**  EOF (or a liveness poll) on a worker marks it dead:
  its in-flight tickets are re-driven, a replacement process is spawned, and
  the ``restarts``/``redriven`` counters plus ``farm.restart`` /
  ``farm.redrive`` instants record it.  A ticket that kills ``max_redrives``
  workers in a row is failed with :class:`FarmCompileError` instead of
  crash-looping the farm.
* **Warming.**  ``warm_table=`` pre-compiles every (current-version) tuning
  -table winner through the farm at start, so the first interactive request
  for a tuned kernel is a memory hit.

Everything observable lands in :class:`~repro.serve.metrics.FarmStats`
(per-lane ledgers with p50/p95/p99/p99.9 latency), which
``register_metrics`` plugs into :data:`repro.obs.REGISTRY`.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import Future
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Iterable, Mapping

from ..cache import ClaimRegistry, ShardedFileStore, ShardedLRUCache
from ..obs import record_farm_event
from .admission import LANE_INTERACTIVE, LANE_SWEEP, AdmissionController, Rejected
from .metrics import FarmStats, LaneStats, LatencyRecorder
from .service import (
    CompileRequest,
    default_compiler,
    kernel_from_payload,
    kernel_payload,
    table_requests,
)

__all__ = ["CompileFarm", "FarmCompileError"]


class FarmCompileError(RuntimeError):
    """A farm request failed: compiler error, or the request kept killing
    workers past ``max_redrives``."""


# -- the worker process --------------------------------------------------------------

_HIT_OUTCOMES = ("memory_hit", "store_hit", "dedup_wait")


def _serve_one(request: CompileRequest, cache: ShardedLRUCache,
               store: ShardedFileStore, claims: ClaimRegistry, spec: dict):
    """Serve one request inside a worker: L1 memory, shared store, claim, compile.

    Returns ``(outcome, payload)`` where payload is the JSON-ready kernel
    envelope (:func:`~repro.serve.service.kernel_payload` shape).  The claim
    protocol is what holds the farm-wide exactly-once-compile invariant:

    1. an existing store entry answers immediately (``store_hit``);
    2. otherwise acquire the claim — a holder that died is broken via its
       recorded pid / lease deadline inside ``acquire``;
    3. claim held by a live sibling: poll the store until its result lands
       (``dedup_wait``) or the claim goes stale, then retry the acquire;
    4. claim won: re-check the store (the holder may have finished between
       our miss and our claim), then compile, ``put`` the payload, release.

    The ``put`` happens **before** the done-message is sent, so a worker
    killed after publishing never causes a recompile, and one killed before
    publishing never reported success — either way "compiled" is reported at
    most once per kernel, farm-wide.
    """
    local = request.local_key()
    hit, payload = cache.lookup(local)
    if hit:
        return "worker_memory_hit", payload
    stable = request.stable_key()
    payload = store.get(stable)
    if payload is not None:
        cache.put(local, payload)
        return "store_hit", payload
    poll = spec.get("claim_poll", 0.005)
    while True:
        claim = claims.acquire(stable)
        if claim is not None:
            with claim:
                payload = store.get(stable)
                if payload is not None:  # the previous holder just finished
                    cache.put(local, payload)
                    return "dedup_wait", payload
                delay = spec.get("compile_delay", 0.0)
                if delay:
                    # chaos/testing hook: a widened kill window mid-compile
                    time.sleep(delay)
                    claim.refresh()
                kernel = default_compiler(request)
                payload = kernel_payload(kernel)
                store.put(stable, payload)
            cache.put(local, payload)
            return "compiled", payload
        # a live sibling process holds the claim: wait for its result
        waited = time.perf_counter()
        while claims.held(stable):
            payload = store.get(stable)
            if payload is not None:
                cache.put(local, payload)
                return "dedup_wait", payload
            time.sleep(poll)
            if time.perf_counter() - waited > spec.get("claim_wait_limit", 60.0):
                raise FarmCompileError(
                    f"gave up waiting on a foreign claim for {request.app!r}"
                )
        # claim released or went stale without a result: retry the acquire


def _worker_main(worker_id: int, spec: dict, task_conn, result_conn) -> None:
    """One worker process: recv task -> serve -> send outcome, until sentinel.

    Module-level (spawn-picklable) and self-contained: the worker builds its
    own store/claims/cache handles from ``spec`` paths, so nothing but
    plain data crosses the process boundary.
    """
    store = ShardedFileStore(spec["store_dir"])
    claims = ClaimRegistry(
        spec["claims_dir"], ttl=spec.get("claim_ttl", 5.0), owner=f"worker-{worker_id}"
    )
    cache = ShardedLRUCache(shards=4, capacity_per_shard=spec.get("worker_cache", 512))
    result_conn.send(("ready", worker_id, os.getpid()))
    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        ticket_id, _lane, request = message
        started = time.perf_counter()
        try:
            outcome, payload = _serve_one(request, cache, store, claims, spec)
            result_conn.send(
                ("done", worker_id, ticket_id, outcome, payload,
                 time.perf_counter() - started)
            )
        except Exception as exc:  # noqa: BLE001 - errors are an outcome, not a crash
            result_conn.send(
                ("done", worker_id, ticket_id, "error",
                 f"{type(exc).__name__}: {exc}", time.perf_counter() - started)
            )
    result_conn.close()
    task_conn.close()


# -- supervisor-side bookkeeping ------------------------------------------------------


class _Ticket:
    __slots__ = ("id", "request", "lane", "stable", "future", "submitted_at",
                 "warm", "redrives", "resolved", "followers")

    def __init__(self, ticket_id, request, lane, stable, warm=False):
        self.id = ticket_id
        self.request = request
        self.lane = lane
        self.stable = stable
        self.future: Future = Future()
        self.submitted_at = time.perf_counter()
        self.warm = warm
        self.redrives = 0
        self.resolved = False
        self.followers: list["_Ticket"] = []


class _WorkerHandle:
    __slots__ = ("id", "process", "task_conn", "result_conn", "outstanding",
                 "alive", "pid")

    def __init__(self, worker_id, process, task_conn, result_conn):
        self.id = worker_id
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.outstanding: dict[int, _Ticket] = {}
        self.alive = True
        self.pid = process.pid


class _LaneLedger:
    """Supervisor-side counters for one lane (all mutated under the farm lock)."""

    __slots__ = ("submitted", "resolved", "errors", "outcomes", "latency")

    def __init__(self, latency_samples: int):
        self.submitted = 0
        self.resolved = 0
        self.errors = 0
        self.outcomes = collections.Counter()
        self.latency = LatencyRecorder(latency_samples)


class CompileFarm:
    """A supervised pool of compile worker processes with SLO-grade serving.

    ``store`` roots the shared durable tier (a directory); ``None`` creates
    a private temporary directory that is removed on :meth:`close`.
    ``admission`` maps lane names to pending caps (see
    :mod:`repro.serve.admission` for the defaults and shed semantics).
    ``mp_context`` defaults to ``"spawn"`` — the only start method that is
    safe regardless of which threads the parent holds at fork time.
    ``compile_delay`` artificially slows every fresh compile inside the
    workers (the chaos tests' kill window); leave it 0 in production.
    """

    def __init__(
        self,
        workers: int = 2,
        store: str | Path | None = None,
        admission: Mapping[str, int] | None = None,
        mp_context: str = "spawn",
        claim_ttl: float = 5.0,
        health_interval: float = 0.1,
        max_outstanding: int = 2,
        max_redrives: int = 3,
        restart_limit: int = 32,
        latency_samples: int = 20_000,
        cache: ShardedLRUCache | None = None,
        compile_delay: float = 0.0,
        warm_table=None,
        warm_apps: Iterable[str] | None = None,
    ):
        if workers < 1:
            raise ValueError("CompileFarm requires at least one worker process")
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be positive")
        self.workers = workers
        self._owns_store = store is None
        self._store_root = Path(store) if store is not None else Path(
            tempfile.mkdtemp(prefix="repro-farm-")
        )
        self._store_root.mkdir(parents=True, exist_ok=True)
        self._store = ShardedFileStore(self._store_root / "kernels")
        self._claims_dir = self._store_root / "claims"
        self._spec = {
            "store_dir": str(self._store_root / "kernels"),
            "claims_dir": str(self._claims_dir),
            "claim_ttl": claim_ttl,
            "compile_delay": compile_delay,
        }
        self._ctx = multiprocessing.get_context(mp_context)
        self._admission = AdmissionController(admission)
        self._max_outstanding = max_outstanding
        self._max_redrives = max_redrives
        self._restart_limit = restart_limit
        self._health_interval = health_interval
        self.cache = cache if cache is not None else ShardedLRUCache(
            shards=8, capacity_per_shard=2048
        )

        self._lock = threading.Lock()
        self._queues = {lane: collections.deque() for lane in self._admission.lanes}
        self._tickets: dict[int, _Ticket] = {}
        self._inflight: dict[str, int] = {}  # stable key -> leader ticket id
        self._lanes = {
            lane: _LaneLedger(latency_samples) for lane in self._admission.lanes
        }
        self._compile_counts: collections.Counter = collections.Counter()
        self._next_ticket = 0
        self._next_worker = 0
        self._submitted = 0
        self._resolved = 0
        self._errors = 0
        self._executions = 0
        self._redriven = 0
        self._restarts = 0
        self._warmed = 0
        self._closing = False
        self._stopping = False
        self._idle = threading.Condition(self._lock)

        self._workers: dict[int, _WorkerHandle] = {}
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_w, False)
        for _ in range(workers):
            self._spawn_worker()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-farm-supervisor", daemon=True
        )
        self._supervisor.start()
        if warm_table is not None:
            self.warm_from_table(warm_table, apps=warm_apps)

    # -- public API -----------------------------------------------------------

    def submit(self, request: CompileRequest, lane: str = LANE_INTERACTIVE) -> Future:
        """Enqueue one request on ``lane``; the future resolves to a kernel,
        ``None`` (generator declined), or a :class:`Rejected` shed marker."""
        self._admission.check_lane(lane)
        with self._lock:
            if self._closing:
                raise RuntimeError("CompileFarm is closed")
        hit, kernel = self.cache.lookup(request.local_key())
        if hit:
            future: Future = Future()
            with self._lock:
                ledger = self._lanes[lane]
                ledger.submitted += 1
                ledger.resolved += 1
                ledger.outcomes["memory_hit"] += 1
                self._submitted += 1
                self._resolved += 1
                ledger.latency.record(0.0)
            future.set_result(kernel)
            return future
        admitted, depth = self._admission.try_admit(lane)
        if not admitted:
            record_farm_event("shed", lane=lane, app=request.app, depth=depth)
            future = Future()
            with self._lock:
                ledger = self._lanes[lane]
                ledger.submitted += 1
                self._submitted += 1
            future.set_result(Rejected(
                app=request.app, lane=lane, reason="queue_full",
                queue_depth=depth, limit=self._admission.limit(lane),
            ))
            return future
        return self._enqueue(request, lane, warm=False)

    def compile(self, request: CompileRequest, lane: str = LANE_INTERACTIVE):
        """Synchronous :meth:`submit`."""
        return self.submit(request, lane).result()

    def submit_batch(self, requests: Iterable[CompileRequest],
                     lane: str = LANE_SWEEP) -> list:
        """Fan a batch over the farm; results in submission order."""
        futures = [self.submit(request, lane) for request in requests]
        return [future.result() for future in futures]

    def warm_from_table(self, table, apps: Iterable[str] | None = None) -> int:
        """Pre-compile every current-version tuning-table winner (sweep lane).

        Warm traffic bypasses admission (it is the farm's own startup work,
        not client load) and blocks until every winner is resident, so the
        first client request for a tuned kernel is a memory hit.  Rows
        stamped by a different package version warm nothing — the durable
        tier they would feed is unreachable under the current version salt
        anyway.  Returns the number of requests warmed.
        """
        requests = table_requests(table, apps=apps)
        futures = [self._enqueue(r, LANE_SWEEP, warm=True) for r in requests]
        for future in futures:
            future.result()
        with self._lock:
            self._warmed += len(futures)
        return len(futures)

    # -- chaos hooks (used by the kill tests and the burst benchmark) ----------

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [h.pid for h in self._workers.values() if h.alive]

    def kill_worker(self, index: int = 0, sig: int = signal.SIGKILL) -> int:
        """Chaos hook: signal the ``index``-th live worker (default SIGKILL).

        Returns the pid signalled.  The supervisor notices via pipe EOF,
        re-drives the worker's in-flight tickets and spawns a replacement —
        exactly the path the chaos suite asserts.
        """
        with self._lock:
            alive = [h for h in self._workers.values() if h.alive]
            if not alive:
                raise RuntimeError("no live workers to kill")
            target = alive[index % len(alive)]
            pid = target.pid
        os.kill(pid, sig)
        return pid

    # -- stats / lifecycle -----------------------------------------------------

    def stats(self) -> FarmStats:
        admission = self._admission.snapshot()
        with self._lock:
            lanes = []
            for lane in sorted(self._lanes):
                ledger = self._lanes[lane]
                gate = admission[lane]
                lanes.append(LaneStats(
                    lane=lane,
                    limit=gate["limit"],
                    submitted=ledger.submitted,
                    shed=gate["sheds"],
                    resolved=ledger.resolved,
                    pending=gate["pending"],
                    errors=ledger.errors,
                    memory_hits=ledger.outcomes["memory_hit"],
                    coalesced=ledger.outcomes["coalesced"],
                    compiled=ledger.outcomes["compiled"],
                    store_hits=ledger.outcomes["store_hit"],
                    worker_hits=ledger.outcomes["worker_memory_hit"],
                    dedup_waits=ledger.outcomes["dedup_wait"],
                    latency=ledger.latency.snapshot(),
                ))
            double = sum(1 for c in self._compile_counts.values() if c > 1)
            return FarmStats(
                workers=self.workers,
                alive=sum(1 for h in self._workers.values() if h.alive),
                submitted=self._submitted,
                shed=sum(g["sheds"] for g in admission.values()),
                resolved=self._resolved,
                errors=self._errors,
                compiled=sum(self._compile_counts.values()),
                executions=self._executions,
                redriven=self._redriven,
                restarts=self._restarts,
                warmed=self._warmed,
                double_compiled=double,
                store=self._store.stats() | {"entries": len(self._store)},
                lanes=tuple(lanes),
            )

    def register_metrics(self, name: str = "repro.farm", registry=None) -> str:
        """Absorb :meth:`stats` into the observability registry (like the
        service's ``register_metrics``); returns the source name."""
        from ..obs.metrics import REGISTRY

        target = registry if registry is not None else REGISTRY
        target.register_source(name, lambda: self.stats().as_dict())
        return name

    def drain(self, timeout: float = 60.0) -> bool:
        """Block until every admitted request has resolved (or timeout)."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._pending_locked():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.1))
        return True

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
        if drain:
            self.drain(timeout)
        with self._lock:
            self._stopping = True
        self._wakeup()
        self._supervisor.join(timeout=10.0)
        with self._lock:
            handles = list(self._workers.values())
        for handle in handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            for conn in (handle.task_conn, handle.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
        if self._owns_store:
            shutil.rmtree(self._store_root, ignore_errors=True)

    def __enter__(self) -> "CompileFarm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals: submission side -------------------------------------------

    def _pending_locked(self) -> int:
        return sum(1 for t in self._tickets.values() if not t.resolved)

    def _wakeup(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except (BlockingIOError, OSError):
            pass  # pipe full means a wakeup is already pending

    def _enqueue(self, request: CompileRequest, lane: str, warm: bool) -> Future:
        stable = request.stable_key()
        with self._lock:
            ledger = self._lanes[lane]
            ledger.submitted += 1
            self._submitted += 1
            self._next_ticket += 1
            ticket = _Ticket(self._next_ticket, request, lane, stable, warm=warm)
            self._tickets[ticket.id] = ticket
            leader_id = self._inflight.get(stable)
            if leader_id is not None and leader_id in self._tickets:
                # coalesce: ride the identical in-flight ticket's execution
                leader = self._tickets[leader_id]
                leader.followers.append(ticket)
                if lane == LANE_INTERACTIVE and leader.lane != LANE_INTERACTIVE:
                    # priority inversion guard: an interactive arrival must
                    # not wait at a sweep ticket's queue position, so a
                    # still-queued leader jumps to the interactive front
                    # (its ledger lane is unchanged; only dispatch order is)
                    try:
                        self._queues[leader.lane].remove(leader_id)
                    except ValueError:
                        pass  # already dispatched: it is in flight on a worker
                    else:
                        self._queues[LANE_INTERACTIVE].appendleft(leader_id)
            else:
                self._inflight[stable] = ticket.id
                self._queues[lane].append(ticket.id)
        self._wakeup()
        return ticket.future

    # -- internals: supervisor thread ------------------------------------------

    def _spawn_worker(self) -> None:
        """Start one worker process (called under no lock at init, under the
        farm lock from the supervisor on restart — Process.start is safe)."""
        worker_id = self._next_worker
        self._next_worker += 1
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, dict(self._spec), task_r, result_w),
            name=f"repro-farm-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        # close the child's ends in this process so EOF propagates on death
        task_r.close()
        result_w.close()
        self._workers[worker_id] = _WorkerHandle(worker_id, process, task_w, result_r)

    def _supervise(self) -> None:
        """The supervisor loop: results, deaths, restarts, dispatch.

        Each iteration is exception-isolated: a surprise in one worker's
        message handling must not take the supervisor thread down with every
        client future still pending — serving limps on and the next health
        tick retries.
        """
        while True:
            with self._lock:
                if self._stopping:
                    self._shutdown_workers_locked()
                    return
                waitables = [self._wake_r] + [
                    h.result_conn for h in self._workers.values() if h.alive
                ]
            try:
                try:
                    ready = connection_wait(waitables, timeout=self._health_interval)
                except OSError:
                    ready = []
                if self._wake_r in ready:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                with self._lock:
                    for conn_or_fd in ready:
                        if conn_or_fd == self._wake_r:
                            continue
                        self._drain_conn_locked(conn_or_fd)
                    self._reap_dead_locked()
                    self._dispatch_locked()
                    if not self._pending_locked():
                        self._idle.notify_all()
            except Exception:  # noqa: BLE001 - keep supervising, see docstring
                time.sleep(self._health_interval)

    def _drain_conn_locked(self, conn) -> None:
        handle = next(
            (h for h in self._workers.values() if h.result_conn is conn), None
        )
        if handle is None or not handle.alive:
            return
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError):
                self._on_worker_death_locked(handle)
                return
            kind = message[0]
            if kind == "ready":
                continue
            if kind == "done":
                self._on_done_locked(handle, *message[1:])

    def _reap_dead_locked(self) -> None:
        for handle in list(self._workers.values()):
            if handle.alive and not handle.process.is_alive():
                self._on_worker_death_locked(handle)

    def _on_worker_death_locked(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return
        handle.alive = False
        exitcode = handle.process.exitcode
        for conn in (handle.task_conn, handle.result_conn):
            try:
                conn.close()
            except OSError:
                pass
        self._restarts += 1
        record_farm_event("restart", worker=handle.id, exitcode=exitcode)
        # re-drive the dead worker's in-flight tickets to the lane *front*
        for ticket in list(handle.outstanding.values()):
            handle.outstanding.pop(ticket.id, None)
            if ticket.resolved:
                continue
            ticket.redrives += 1
            if ticket.redrives > self._max_redrives:
                self._resolve_locked(ticket, error=FarmCompileError(
                    f"request {ticket.request.app!r} killed "
                    f"{ticket.redrives} workers in a row"
                ))
                continue
            self._redriven += 1
            record_farm_event("redrive", ticket=ticket.id, app=ticket.request.app)
            self._queues[ticket.lane].appendleft(ticket.id)
        alive = sum(1 for h in self._workers.values() if h.alive)
        if not self._stopping and self._restarts <= self._restart_limit \
                and alive < self.workers:
            self._spawn_worker()
        elif alive == 0:
            # nothing left to run on: fail everything still queued
            for queue in self._queues.values():
                while queue:
                    ticket = self._tickets.get(queue.popleft())
                    if ticket is not None and not ticket.resolved:
                        self._resolve_locked(ticket, error=FarmCompileError(
                            "no live workers remain (restart limit reached)"
                        ))

    def _on_done_locked(self, handle, worker_id, ticket_id, outcome,
                        payload, seconds) -> None:
        handle.outstanding.pop(ticket_id, None)
        self._executions += 1
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            return
        if outcome == "compiled":
            # counted per *execution*, resolved or not: a second fresh
            # compile of the same kernel anywhere in the farm must trip
            # the double_compiled tripwire, never hide behind a redrive
            self._compile_counts[ticket.stable] += 1
        if ticket.resolved:
            return  # a re-driven duplicate finished after the first resolution
        if outcome == "error":
            self._resolve_locked(ticket, error=FarmCompileError(payload))
            return
        kernel = kernel_from_payload(payload)
        self.cache.put(ticket.request.local_key(), kernel)
        self._resolve_locked(ticket, value=kernel, outcome=outcome)

    def _resolve_locked(self, ticket: _Ticket, value=None, outcome: str = "",
                        error: BaseException | None = None) -> None:
        members = [(ticket, outcome or "compiled")] + [
            (f, "coalesced") for f in ticket.followers
        ]
        now = time.perf_counter()
        for member, member_outcome in members:
            if member.resolved:
                continue
            member.resolved = True
            ledger = self._lanes[member.lane]
            ledger.resolved += 1
            self._resolved += 1
            if error is not None:
                ledger.errors += 1
                self._errors += 1
            else:
                ledger.outcomes[member_outcome] += 1
            ledger.latency.record(now - member.submitted_at)
            if not member.warm:
                self._admission.release(member.lane)
            self._tickets.pop(member.id, None)
        if self._inflight.get(ticket.stable) == ticket.id:
            del self._inflight[ticket.stable]
        if error is not None:
            ticket.future.set_exception(error)
            for follower in ticket.followers:
                follower.future.set_exception(error)
        else:
            ticket.future.set_result(value)
            for follower in ticket.followers:
                follower.future.set_result(value)

    def _dispatch_locked(self) -> None:
        """Send queued tickets to workers with spare capacity, interactive
        lane strictly first — the "interactive never starves" guarantee."""
        lanes_in_priority = [LANE_INTERACTIVE] + [
            lane for lane in sorted(self._queues) if lane != LANE_INTERACTIVE
        ]
        while True:
            candidates = [
                h for h in self._workers.values()
                if h.alive and len(h.outstanding) < self._max_outstanding
            ]
            if not candidates:
                return
            ticket = None
            for lane in lanes_in_priority:
                queue = self._queues.get(lane)
                while queue:
                    candidate = self._tickets.get(queue.popleft())
                    if candidate is not None and not candidate.resolved:
                        ticket = candidate
                        break
                if ticket is not None:
                    break
            if ticket is None:
                return
            handle = min(candidates, key=lambda h: len(h.outstanding))
            try:
                handle.task_conn.send((ticket.id, ticket.lane, ticket.request))
            except (OSError, ValueError):
                self._queues[ticket.lane].appendleft(ticket.id)
                self._on_worker_death_locked(handle)
                continue
            handle.outstanding[ticket.id] = ticket

    def _shutdown_workers_locked(self) -> None:
        for handle in self._workers.values():
            if handle.alive:
                try:
                    handle.task_conn.send(None)
                except (OSError, ValueError):
                    pass
        # a timed-out drain may leave tickets unresolved: fail them loudly
        # rather than leaving their futures (and the clients behind them)
        # hanging forever
        for ticket in list(self._tickets.values()):
            if not ticket.resolved:
                self._resolve_locked(ticket, error=FarmCompileError(
                    "farm closed before the request resolved"
                ))
        self._idle.notify_all()
