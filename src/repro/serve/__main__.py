"""``python -m repro.serve`` — replay synthetic compile traffic.

Two modes share one CLI:

**Thread-service replay** (the default) drives the in-process
:class:`~repro.serve.service.CompileService` with a deterministic trace and
reports throughput plus the full ``ServiceStats`` snapshot as JSON::

    PYTHONPATH=src python -m repro.serve --requests 500 --workers 4 --passes 2

The second pass replays the identical trace against the now-warm cache,
which is the service's headline effect: warm throughput is dictionary-lookup
bound while the cold pass pays for each distinct compilation once.

**Farm replay** (``--farm``) spins up the multi-process
:class:`~repro.serve.farm.CompileFarm` and replays a timed burst trace
(Zipf popularity, Poisson arrivals, configurable phases) against it::

    PYTHONPATH=src python -m repro.serve --farm --workers 4 \\
        --phases steady:1.5:120:0.9,burst:1.5:480:0.7,cooldown:1:80:0.9

``--speed`` scales replay wall-time (2 = twice as fast; 0 = submit the
whole trace immediately — the deterministic mode the replay tests compare
across worker counts); ``--kill-worker-at T`` SIGKILLs a worker ``T``
trace-seconds in, exercising the restart/re-drive path mid-burst.  The
report's ``trace`` block is a pure function of the seed — identical between
``--workers 1`` and ``--workers 4``.

With ``--metrics`` the replay also prints the unified registry
(:data:`repro.obs.REGISTRY` — service stats plus the symbolic cache
counters) in Prometheus text exposition; set ``REPRO_TRACE=1`` (or pass
``--trace PATH``) to export the replay as Chrome trace-event JSON.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from ..obs import REGISTRY, export_trace, set_tracing, span, trace_enabled
from .admission import DEFAULT_LIMITS, LANE_INTERACTIVE, LANE_SWEEP
from .service import CompileService
from .traffic import (
    DEFAULT_PHASES,
    BurstPhase,
    generating_apps,
    synthetic_requests,
    trace_summary,
    traffic_trace,
)

__all__ = ["main", "parse_phases", "run_farm_replay", "run_replay"]


def parse_phases(text: str) -> tuple[BurstPhase, ...]:
    """Parse ``name:duration:rate[:interactive_fraction],...`` into phases."""
    phases = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"phase {chunk!r} is not name:duration:rate[:interactive_fraction]"
            )
        name, duration, rate = parts[0], float(parts[1]), float(parts[2])
        fraction = float(parts[3]) if len(parts) == 4 else 0.8
        phases.append(BurstPhase(name, duration=duration, rate=rate,
                                 interactive_fraction=fraction))
    if not phases:
        raise ValueError("no phases parsed")
    return tuple(phases)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Replay synthetic layout-compilation traffic against the service.",
    )
    parser.add_argument("--apps", default=None,
                        help="comma-separated app names (default: every app that generates kernels)")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per pass (default: 200)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool size (default: 4)")
    parser.add_argument("--duplicates", type=float, default=0.5,
                        help="fraction of the trace that re-requests earlier configs (default: 0.5)")
    parser.add_argument("--passes", type=int, default=2,
                        help="replays of the same trace; pass 2+ hits a warm cache (default: 2)")
    parser.add_argument("--seed", type=int, default=0, help="traffic RNG seed (default: 0)")
    parser.add_argument("--shards", type=int, default=8,
                        help="in-memory cache shards (default: 8)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persistent kernel-store JSON path (default: memory tier only)")
    parser.add_argument("--json", default=None, metavar="PATH", dest="json_path",
                        help="also write the report to this file")
    parser.add_argument("--metrics", action="store_true",
                        help="print the unified metrics registry in Prometheus text exposition")
    parser.add_argument("--trace", default=None, metavar="PATH", dest="trace_path",
                        help="export the replay as Chrome trace-event JSON to this file "
                             "(implies tracing on)")
    farm = parser.add_argument_group("farm replay (multi-process)")
    farm.add_argument("--farm", action="store_true",
                      help="replay a timed burst trace against the multi-process "
                           "CompileFarm (--workers then means processes)")
    farm.add_argument("--phases", default=None, metavar="SPEC",
                      help="burst phases as name:duration:rate[:interactive_fraction],... "
                           "(default: the canonical steady/burst/cooldown shape)")
    farm.add_argument("--unique", type=int, default=64,
                      help="distinct configurations in the Zipf working set (default: 64)")
    farm.add_argument("--zipf", type=float, default=1.1,
                      help="Zipf popularity exponent (default: 1.1)")
    farm.add_argument("--speed", type=float, default=1.0,
                      help="replay speed multiplier; 0 submits the whole trace "
                           "immediately (default: 1.0 = trace real-time)")
    farm.add_argument("--kill-worker-at", type=float, default=None, metavar="T",
                      help="SIGKILL one worker T trace-seconds into the replay "
                           "(chaos mode; default: no kill)")
    farm.add_argument("--limit-interactive", type=int,
                      default=DEFAULT_LIMITS[LANE_INTERACTIVE],
                      help="interactive lane pending cap (default: %(default)s)")
    farm.add_argument("--limit-sweep", type=int, default=DEFAULT_LIMITS[LANE_SWEEP],
                      help="sweep lane pending cap (default: %(default)s)")
    return parser


def run_replay(args: argparse.Namespace) -> dict:
    from ..cache import ShardedLRUCache

    apps = [a.strip() for a in args.apps.split(",") if a.strip()] if args.apps else generating_apps()
    requests = synthetic_requests(
        apps=apps, total=args.requests,
        duplicate_fraction=args.duplicates, seed=args.seed,
    )
    distinct = len({r.local_key() for r in requests})
    report: dict = {
        "apps": apps,
        "requests": len(requests),
        "distinct": distinct,
        "workers": args.workers,
        "duplicate_fraction": args.duplicates,
        # the trace derives entirely from this seed (no module-level RNG
        # state anywhere in the path), so a replayed run is bit-identical
        "seed": args.seed,
        "passes": [],
    }
    with CompileService(
        workers=args.workers,
        cache=ShardedLRUCache(shards=args.shards, capacity_per_shard=max(64, distinct)),
        store=args.store,
    ) as service:
        source = service.register_metrics()
        try:
            with span("serve.replay", "serve", requests=len(requests),
                      passes=max(1, args.passes), workers=args.workers):
                for index in range(max(1, args.passes)):
                    with span("serve.pass", "serve", index=index + 1):
                        started = time.perf_counter()
                        service.submit_batch(requests)
                        elapsed = time.perf_counter() - started
                    report["passes"].append({
                        "pass": index + 1,
                        "wall_seconds": elapsed,
                        "requests_per_second": len(requests) / elapsed if elapsed > 0 else float("inf"),
                    })
                service.flush()
            report["stats"] = service.stats().as_dict()
            report["metrics"] = REGISTRY.snapshot()
        finally:
            REGISTRY.unregister_source(source)
    return report


def run_farm_replay(args: argparse.Namespace) -> dict:
    """Replay a timed burst trace against a :class:`CompileFarm`.

    The ``trace`` block of the report (request/lane/phase counts and the
    sha256 sequence digest) is a pure function of ``--seed``/``--phases``/
    ``--unique``/``--zipf`` — the replay tests assert it is identical across
    worker counts.  Everything under ``farm`` is the measured outcome.
    """
    from .farm import CompileFarm
    from .admission import Rejected

    apps = [a.strip() for a in args.apps.split(",") if a.strip()] if args.apps else generating_apps()
    phases = parse_phases(args.phases) if args.phases else DEFAULT_PHASES
    trace = traffic_trace(apps=apps, phases=phases, unique=args.unique,
                          zipf_alpha=args.zipf, seed=args.seed)
    report: dict = {
        "mode": "farm",
        "apps": apps,
        "workers": args.workers,
        "seed": args.seed,
        "speed": args.speed,
        "phases": [
            {"name": p.name, "duration": p.duration, "rate": p.rate,
             "interactive_fraction": p.interactive_fraction} for p in phases
        ],
        "trace": trace_summary(trace),
    }
    limits = {LANE_INTERACTIVE: args.limit_interactive, LANE_SWEEP: args.limit_sweep}
    with CompileFarm(workers=args.workers, store=args.store,
                     admission=limits) as farm:
        source = farm.register_metrics()
        try:
            with span("serve.farm_replay", "serve", requests=len(trace),
                      workers=args.workers):
                started = time.perf_counter()
                futures = []
                killed_pid = None
                for timed in trace:
                    if args.speed > 0:
                        lag = timed.at / args.speed - (time.perf_counter() - started)
                        if lag > 0:
                            time.sleep(lag)
                    if (args.kill_worker_at is not None and killed_pid is None
                            and timed.at >= args.kill_worker_at):
                        killed_pid = farm.kill_worker(0)
                    futures.append(farm.submit(timed.request, lane=timed.lane))
                outcomes = [f.result(timeout=300.0) for f in futures]
                elapsed = time.perf_counter() - started
            shed = sum(1 for o in outcomes if isinstance(o, Rejected))
            report["replay"] = {
                "wall_seconds": elapsed,
                "requests_per_second": len(trace) / elapsed if elapsed > 0 else float("inf"),
                "shed": shed,
                "served": len(outcomes) - shed,
                "killed_pid": killed_pid,
            }
            report["farm"] = farm.stats().as_dict()
            report["metrics"] = REGISTRY.snapshot()
        finally:
            REGISTRY.unregister_source(source)
    return report


def main(argv: list[str] | None = None) -> dict:
    args = _build_parser().parse_args(argv)
    if args.trace_path:
        set_tracing(True)
    report = run_farm_replay(args) if args.farm else run_replay(args)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.metrics:
        print(REGISTRY.render_prometheus())
    if args.json_path:
        Path(args.json_path).write_text(text + "\n")
    if args.trace_path and trace_enabled():
        print(f"trace: {export_trace(args.trace_path)}")
    return report


if __name__ == "__main__":
    main()
