"""``python -m repro.serve`` — replay synthetic compile traffic.

Drives the compilation service with a deterministic trace drawn from the
application registry's search spaces and reports throughput plus the full
:class:`~repro.serve.metrics.ServiceStats` snapshot as JSON::

    PYTHONPATH=src python -m repro.serve --requests 500 --workers 4 --passes 2

The second pass replays the identical trace against the now-warm cache,
which is the service's headline effect: warm throughput is dictionary-lookup
bound while the cold pass pays for each distinct compilation once.

With ``--metrics`` the replay also prints the unified registry
(:data:`repro.obs.REGISTRY` — service stats plus the symbolic cache
counters) in Prometheus text exposition; set ``REPRO_TRACE=1`` (or pass
``--trace PATH``) to export the replay as Chrome trace-event JSON.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from ..obs import REGISTRY, export_trace, set_tracing, span, trace_enabled
from .service import CompileService
from .traffic import generating_apps, synthetic_requests

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Replay synthetic layout-compilation traffic against the service.",
    )
    parser.add_argument("--apps", default=None,
                        help="comma-separated app names (default: every app that generates kernels)")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per pass (default: 200)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool size (default: 4)")
    parser.add_argument("--duplicates", type=float, default=0.5,
                        help="fraction of the trace that re-requests earlier configs (default: 0.5)")
    parser.add_argument("--passes", type=int, default=2,
                        help="replays of the same trace; pass 2+ hits a warm cache (default: 2)")
    parser.add_argument("--seed", type=int, default=0, help="traffic RNG seed (default: 0)")
    parser.add_argument("--shards", type=int, default=8,
                        help="in-memory cache shards (default: 8)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persistent kernel-store JSON path (default: memory tier only)")
    parser.add_argument("--json", default=None, metavar="PATH", dest="json_path",
                        help="also write the report to this file")
    parser.add_argument("--metrics", action="store_true",
                        help="print the unified metrics registry in Prometheus text exposition")
    parser.add_argument("--trace", default=None, metavar="PATH", dest="trace_path",
                        help="export the replay as Chrome trace-event JSON to this file "
                             "(implies tracing on)")
    return parser


def run_replay(args: argparse.Namespace) -> dict:
    from ..cache import ShardedLRUCache

    apps = [a.strip() for a in args.apps.split(",") if a.strip()] if args.apps else generating_apps()
    requests = synthetic_requests(
        apps=apps, total=args.requests,
        duplicate_fraction=args.duplicates, seed=args.seed,
    )
    distinct = len({r.local_key() for r in requests})
    report: dict = {
        "apps": apps,
        "requests": len(requests),
        "distinct": distinct,
        "workers": args.workers,
        "duplicate_fraction": args.duplicates,
        # the trace derives entirely from this seed (no module-level RNG
        # state anywhere in the path), so a replayed run is bit-identical
        "seed": args.seed,
        "passes": [],
    }
    with CompileService(
        workers=args.workers,
        cache=ShardedLRUCache(shards=args.shards, capacity_per_shard=max(64, distinct)),
        store=args.store,
    ) as service:
        source = service.register_metrics()
        try:
            with span("serve.replay", "serve", requests=len(requests),
                      passes=max(1, args.passes), workers=args.workers):
                for index in range(max(1, args.passes)):
                    with span("serve.pass", "serve", index=index + 1):
                        started = time.perf_counter()
                        service.submit_batch(requests)
                        elapsed = time.perf_counter() - started
                    report["passes"].append({
                        "pass": index + 1,
                        "wall_seconds": elapsed,
                        "requests_per_second": len(requests) / elapsed if elapsed > 0 else float("inf"),
                    })
                service.flush()
            report["stats"] = service.stats().as_dict()
            report["metrics"] = REGISTRY.snapshot()
        finally:
            REGISTRY.unregister_source(source)
    return report


def main(argv: list[str] | None = None) -> dict:
    args = _build_parser().parse_args(argv)
    if args.trace_path:
        set_tracing(True)
    report = run_replay(args)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.metrics:
        print(REGISTRY.render_prometheus())
    if args.json_path:
        Path(args.json_path).write_text(text + "\n")
    if args.trace_path and trace_enabled():
        print(f"trace: {export_trace(args.trace_path)}")
    return report


if __name__ == "__main__":
    main()
