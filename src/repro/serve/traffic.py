"""Synthetic compile traffic drawn from the application registry.

A realistic serving workload is not a uniform sweep: a few hot
configurations dominate while a long tail of distinct ones trickles in.
:func:`synthetic_requests` models that by drawing a unique working set from
the apps' declared search spaces and then re-drawing a duplicate fraction
from it — the same shape the CLI replays and the serve benchmark measures.

Seed discipline: the trace is a pure function of the explicit ``seed``
argument — a private :class:`random.Random` instance, never module-level RNG
state — the same end-to-end contract the verification subsystem
(:mod:`repro.check`) follows, so every report that prints its seed replays
bit-identically.
"""

from __future__ import annotations

import random
from typing import Sequence

from .service import CompileRequest

__all__ = ["generating_apps", "synthetic_requests"]


def generating_apps() -> list[str]:
    """Registered apps whose spec can generate kernels (serviceable apps)."""
    from ..apps.registry import available_apps, get_app

    return [name for name in available_apps() if get_app(name).generate is not None]


def synthetic_requests(
    apps: Sequence[str] | None = None,
    total: int = 1000,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
) -> list[CompileRequest]:
    """Build a deterministic traffic trace of ``total`` compile requests.

    Roughly ``total * (1 - duplicate_fraction)`` requests are unique
    configurations taken round-robin from the apps' search spaces (cycling
    when a space is smaller than its share); the rest are duplicates drawn
    uniformly from the unique working set.  The trace is shuffled, so
    duplicates interleave with first sightings the way concurrent clients
    would produce them.  Configurations are projected onto the axes each
    app's generator actually reads (``AppSpec.generate_config``) — the same
    projection a well-behaved client (the autotuner) applies — so requests
    that would compile the identical kernel share one cache identity.
    """
    from ..apps.registry import get_app

    if total < 1:
        raise ValueError("synthetic_requests needs a positive request count")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValueError("duplicate_fraction must lie in [0, 1)")
    names = list(apps) if apps else generating_apps()
    if not names:
        raise ValueError("no apps with kernel generators available")

    unique_count = max(1, int(round(total * (1.0 - duplicate_fraction))))
    # Streaming cap: each app contributes at most ceil(unique/apps) distinct
    # configurations, so stream its (possibly 10^4+-point) space just far
    # enough instead of materialising the whole product.  Pools hold
    # *projected* configurations deduplicated by kernel identity: a unique
    # request should be a unique kernel, not an evaluation-axis variant of
    # the previous one.
    share = -(-unique_count // len(names))

    def _pool(name: str) -> list[dict]:
        spec = get_app(name)
        seen: set[tuple] = set()
        configs: list[dict] = []
        for config in spec.space:
            projected = spec.generate_config(config)
            key = tuple(sorted(projected.items()))
            if key in seen:
                continue
            seen.add(key)
            configs.append(projected)
            if len(configs) >= share:
                break
        return configs

    pools = {name: _pool(name) for name in names}
    for name, pool in pools.items():
        if not pool:
            raise ValueError(f"app {name!r} has an empty search space")

    rng = random.Random(seed)
    unique: list[CompileRequest] = []
    cursors = {name: 0 for name in names}
    for i in range(unique_count):
        name = names[i % len(names)]
        pool = pools[name]
        config = pool[cursors[name] % len(pool)]
        cursors[name] += 1
        unique.append(CompileRequest(app=name, config=config))

    requests = list(unique)
    while len(requests) < total:
        requests.append(rng.choice(unique))
    rng.shuffle(requests)
    return requests
