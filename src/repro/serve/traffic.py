"""Synthetic compile traffic drawn from the application registry.

A realistic serving workload is not a uniform sweep: a few hot
configurations dominate while a long tail of distinct ones trickles in.
:func:`synthetic_requests` models that by drawing a unique working set from
the apps' declared search spaces and then re-drawing a duplicate fraction
from it — the same shape the CLI replays and the serve benchmark measures.

Seed discipline: the trace is a pure function of the explicit ``seed``
argument — a private :class:`random.Random` instance, never module-level RNG
state — the same end-to-end contract the verification subsystem
(:mod:`repro.check`) follows, so every report that prints its seed replays
bit-identically.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Sequence

from .admission import LANE_INTERACTIVE, LANE_SWEEP
from .service import CompileRequest

__all__ = [
    "BurstPhase",
    "DEFAULT_PHASES",
    "TimedRequest",
    "generating_apps",
    "synthetic_requests",
    "trace_summary",
    "traffic_trace",
    "zipf_requests",
]


def generating_apps() -> list[str]:
    """Registered apps whose spec can generate kernels (serviceable apps)."""
    from ..apps.registry import available_apps, get_app

    return [name for name in available_apps() if get_app(name).generate is not None]


def _unique_pools(names: Sequence[str], unique_count: int) -> dict[str, list[dict]]:
    """Per-app pools of distinct projected configurations.

    Streaming cap: each app contributes at most ``ceil(unique/apps)``
    distinct configurations, so its (possibly 10^4+-point) space is streamed
    just far enough instead of materialising the whole product.  Pools hold
    *projected* configurations deduplicated by kernel identity: a unique
    request should be a unique kernel, not an evaluation-axis variant of the
    previous one.
    """
    from ..apps.registry import get_app

    share = -(-unique_count // len(names))

    def _pool(name: str) -> list[dict]:
        spec = get_app(name)
        seen: set[tuple] = set()
        configs: list[dict] = []
        for config in spec.space:
            projected = spec.generate_config(config)
            key = tuple(sorted(projected.items()))
            if key in seen:
                continue
            seen.add(key)
            configs.append(projected)
            if len(configs) >= share:
                break
        return configs

    pools = {name: _pool(name) for name in names}
    for name, pool in pools.items():
        if not pool:
            raise ValueError(f"app {name!r} has an empty search space")
    return pools


def synthetic_requests(
    apps: Sequence[str] | None = None,
    total: int = 1000,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
) -> list[CompileRequest]:
    """Build a deterministic traffic trace of ``total`` compile requests.

    Roughly ``total * (1 - duplicate_fraction)`` requests are unique
    configurations taken round-robin from the apps' search spaces (cycling
    when a space is smaller than its share); the rest are duplicates drawn
    uniformly from the unique working set.  The trace is shuffled, so
    duplicates interleave with first sightings the way concurrent clients
    would produce them.  Configurations are projected onto the axes each
    app's generator actually reads (``AppSpec.generate_config``) — the same
    projection a well-behaved client (the autotuner) applies — so requests
    that would compile the identical kernel share one cache identity.
    """
    if total < 1:
        raise ValueError("synthetic_requests needs a positive request count")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValueError("duplicate_fraction must lie in [0, 1)")
    names = list(apps) if apps else generating_apps()
    if not names:
        raise ValueError("no apps with kernel generators available")

    unique_count = max(1, int(round(total * (1.0 - duplicate_fraction))))
    pools = _unique_pools(names, unique_count)
    rng = random.Random(seed)
    unique: list[CompileRequest] = []
    cursors = {name: 0 for name in names}
    for i in range(unique_count):
        name = names[i % len(names)]
        pool = pools[name]
        config = pool[cursors[name] % len(pool)]
        cursors[name] += 1
        unique.append(CompileRequest(app=name, config=config))

    requests = list(unique)
    while len(requests) < total:
        requests.append(rng.choice(unique))
    rng.shuffle(requests)
    return requests


# -- realistic farm traffic: Zipf popularity, Poisson arrivals, burst phases --------


@dataclass(frozen=True)
class BurstPhase:
    """One phase of a replay: ``duration`` seconds of Poisson arrivals at
    ``rate`` requests/second, ``interactive_fraction`` of them on the
    interactive lane (the rest are sweep traffic)."""

    name: str
    duration: float
    rate: float
    interactive_fraction: float = 0.8

    def __post_init__(self):
        if self.duration <= 0 or self.rate <= 0:
            raise ValueError("BurstPhase needs positive duration and rate")
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError("interactive_fraction must lie in [0, 1]")


#: the canonical replay shape: steady serving, a 4x burst, a cool-down
DEFAULT_PHASES = (
    BurstPhase("steady", duration=1.5, rate=120.0, interactive_fraction=0.9),
    BurstPhase("burst", duration=1.5, rate=480.0, interactive_fraction=0.7),
    BurstPhase("cooldown", duration=1.0, rate=80.0, interactive_fraction=0.9),
)


@dataclass(frozen=True)
class TimedRequest:
    """One arrival in a traffic trace: when, on which lane, in which phase."""

    at: float
    lane: str
    phase: str
    request: CompileRequest


def zipf_requests(
    apps: Sequence[str] | None = None,
    total: int = 1000,
    unique: int = 64,
    alpha: float = 1.1,
    seed: int = 0,
) -> list[CompileRequest]:
    """``total`` requests over a ``unique``-config working set, Zipf-popular.

    Serving traffic is head-heavy: rank ``r`` in the working set is drawn
    with probability proportional to ``1 / r**alpha``, so a few hot
    configurations dominate (what a warm cache feeds on) while the long tail
    keeps trickling in cold compiles.  Popularity ranks are a seeded shuffle
    of the working set, so the hot head is not biased toward any one app.
    Deterministic: the trace is a pure function of the arguments.
    """
    if total < 1 or unique < 1:
        raise ValueError("zipf_requests needs positive total and unique counts")
    if alpha <= 0:
        raise ValueError("the Zipf exponent must be positive")
    names = list(apps) if apps else generating_apps()
    if not names:
        raise ValueError("no apps with kernel generators available")
    pools = _unique_pools(names, unique)
    working_set: list[CompileRequest] = []
    cursors = {name: 0 for name in names}
    for i in range(unique):
        name = names[i % len(names)]
        pool = pools[name]
        config = pool[cursors[name] % len(pool)]
        cursors[name] += 1
        working_set.append(CompileRequest(app=name, config=config))

    rng = random.Random(seed)
    rng.shuffle(working_set)  # rank 1 is not always the first app's config
    weights = [1.0 / (rank ** alpha) for rank in range(1, len(working_set) + 1)]
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    return [
        working_set[bisect.bisect_left(cumulative, rng.random() * acc)]
        for _ in range(total)
    ]


def traffic_trace(
    apps: Sequence[str] | None = None,
    phases: Sequence[BurstPhase] = DEFAULT_PHASES,
    unique: int = 64,
    zipf_alpha: float = 1.1,
    seed: int = 0,
) -> list[TimedRequest]:
    """A timed arrival trace: Poisson arrivals per phase over Zipf requests.

    Within each :class:`BurstPhase`, inter-arrival gaps are exponential with
    the phase's mean rate (a Poisson process — bursts inside the burst); each
    arrival draws its lane from the phase's ``interactive_fraction`` and its
    request from one shared Zipf stream, so the hot working-set head is hot
    on *both* lanes (which is what makes cross-lane caching matter).
    Deterministic end to end: one seeded :class:`random.Random` drives
    arrivals, lanes and popularity, so the same seed replays bit-identically
    regardless of how many workers later serve it.
    """
    if not phases:
        raise ValueError("traffic_trace needs at least one phase")
    names = list(apps) if apps else generating_apps()
    arrival_rng = random.Random(seed)
    # request popularity is seeded separately so adding a phase does not
    # reshuffle which configurations are hot
    total_estimate = sum(int(p.duration * p.rate) for p in phases) * 2 + 16
    popularity = zipf_requests(
        apps=names, total=total_estimate, unique=unique,
        alpha=zipf_alpha, seed=seed + 1,
    )
    trace: list[TimedRequest] = []
    clock = 0.0
    draw = 0
    for phase in phases:
        phase_end = clock + phase.duration
        t = clock
        while True:
            t += arrival_rng.expovariate(phase.rate)
            if t >= phase_end:
                break
            lane = (
                LANE_INTERACTIVE
                if arrival_rng.random() < phase.interactive_fraction
                else LANE_SWEEP
            )
            request = popularity[draw % len(popularity)]
            draw += 1
            trace.append(TimedRequest(at=t, lane=lane, phase=phase.name, request=request))
        clock = phase_end
    return trace


def trace_summary(trace: Sequence[TimedRequest]) -> dict:
    """The deterministic fingerprint of one trace.

    Every field here is a pure function of the generator's arguments — the
    replay test asserts this summary is byte-identical between a 1-worker
    and a 4-worker run of the same seed, which is what makes a farm replay
    reproducible evidence rather than a one-off.
    """
    digest = hashlib.sha256()
    per_phase: dict[str, int] = {}
    lanes: dict[str, int] = {}
    for timed in trace:
        per_phase[timed.phase] = per_phase.get(timed.phase, 0) + 1
        lanes[timed.lane] = lanes.get(timed.lane, 0) + 1
        digest.update(json.dumps(
            [round(timed.at, 9), timed.lane, timed.phase, timed.request.app,
             {k: timed.request.config[k] for k in sorted(timed.request.config)}],
            sort_keys=True, default=str,
        ).encode())
    return {
        "requests": len(trace),
        "distinct": len({t.request.local_key() for t in trace}),
        "lanes": dict(sorted(lanes.items())),
        "phases": dict(sorted(per_phase.items())),
        "digest": digest.hexdigest(),
    }
