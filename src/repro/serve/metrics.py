"""Service observability: latency accounting and the ``ServiceStats`` snapshot.

The service records one latency sample per completed request (cache hits
included — a hit's microseconds are part of the distribution a traffic
replay should see) into a bounded reservoir, and exposes everything as an
immutable :class:`ServiceStats` snapshot whose counter invariants are exact
at quiescence (see :meth:`repro.serve.CompileService.stats` for what a
mid-traffic snapshot can and cannot tear).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..obs.metrics import percentile

__all__ = ["FarmStats", "LaneStats", "LatencyRecorder", "ServiceStats"]


class LatencyRecorder:
    """Bounded, thread-safe reservoir of per-request latencies (seconds).

    Keeps the most recent ``max_samples`` values (enough for stable
    percentiles over a replay window) plus exact running count/sum, so the
    mean never loses precision to the eviction of old samples.
    """

    def __init__(self, max_samples: int = 10_000):
        if max_samples < 1:
            raise ValueError("LatencyRecorder requires a positive sample bound")
        self._lock = threading.Lock()
        # deque(maxlen=...) evicts in O(1); a list would memmove the whole
        # window under the lock on every hot-path record once full
        self._samples: deque[float] = deque(maxlen=max_samples)
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            self._total += seconds
            self._samples.append(seconds)

    @property
    def count(self) -> int:
        return self._count

    # The ceil-based nearest-rank implementation now lives in
    # ``repro.obs.metrics.percentile`` (one shared definition for the serve
    # and perf sides); this delegating staticmethod keeps the call sites the
    # p50/p95/p99 regression tests pin.
    _percentile = staticmethod(percentile)

    def snapshot(self) -> dict:
        """Consistent ``{count, mean_ms, p50/p95/p99/p999_ms, max_ms}`` view.

        ``p999_ms`` is the farm's SLO percentile: over a bounded reservoir it
        is exact for replay windows up to ``max_samples`` requests, which is
        why the burst benchmark sizes its trace under the reservoir.
        """
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._total
        return {
            "count": count,
            "mean_ms": (total / count) * 1e3 if count else 0.0,
            "p50_ms": self._percentile(ordered, 0.50) * 1e3,
            "p95_ms": self._percentile(ordered, 0.95) * 1e3,
            "p99_ms": self._percentile(ordered, 0.99) * 1e3,
            "p999_ms": self._percentile(ordered, 0.999) * 1e3,
            "max_ms": (ordered[-1] * 1e3) if ordered else 0.0,
        }


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of one :class:`~repro.serve.CompileService`.

    Once the service is quiescent (every submitted future resolved), the
    request-path counters satisfy two exact invariants (asserted by the
    concurrency tests):

    * ``submitted == memory_hits + memory_misses`` — every submission does
      exactly one lookup in the in-memory tier, and
    * ``memory_misses == deduped + compiled + persistent_hits + errors`` —
      every miss either piggybacked on an in-flight compile, compiled fresh,
      was restored from the durable tier, or failed.
    """

    submitted: int = 0
    completed: int = 0
    compiled: int = 0
    deduped: int = 0
    errors: int = 0
    memory_hits: int = 0
    memory_misses: int = 0
    persistent_hits: int = 0
    queue_depth: int = 0
    workers: int = 0
    store_entries: int = 0
    latency: dict = field(default_factory=dict)
    shards: tuple = ()

    @property
    def hit_rate(self) -> float:
        lookups = self.memory_hits + self.memory_misses
        return (self.memory_hits / lookups) if lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI and the benchmark artifact emit this)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "compiled": self.compiled,
            "deduped": self.deduped,
            "errors": self.errors,
            "memory_hits": self.memory_hits,
            "memory_misses": self.memory_misses,
            "memory_hit_rate": self.hit_rate,
            "persistent_hits": self.persistent_hits,
            "queue_depth": self.queue_depth,
            "workers": self.workers,
            "store_entries": self.store_entries,
            "latency": dict(self.latency),
            "shards": [dict(s) for s in self.shards],
        }


@dataclass(frozen=True)
class LaneStats:
    """One priority lane's ledger inside a :class:`FarmStats` snapshot.

    At quiescence ``submitted == shed + resolved`` and ``resolved ==
    memory_hits + coalesced + compiled + store_hits + worker_hits +
    dedup_waits + errors`` — every admitted request resolves through exactly
    one of those outcomes (asserted by the farm tests).
    """

    lane: str = ""
    limit: int = 0
    submitted: int = 0
    shed: int = 0
    resolved: int = 0
    pending: int = 0
    errors: int = 0
    #: supervisor memory tier answered without touching a worker
    memory_hits: int = 0
    #: piggybacked on an identical in-flight ticket (supervisor-side dedup)
    coalesced: int = 0
    #: a worker compiled the kernel fresh (claims make this exactly-once)
    compiled: int = 0
    #: a worker answered from the shared durable store
    store_hits: int = 0
    #: a worker answered from its own process-local memory tier
    worker_hits: int = 0
    #: a worker waited out another process's claim, then read the store
    dedup_waits: int = 0
    latency: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of resolutions served without a fresh compilation."""
        served = self.resolved - self.errors
        hits = (self.memory_hits + self.coalesced + self.store_hits
                + self.worker_hits + self.dedup_waits)
        return (hits / served) if served else 0.0

    def as_dict(self) -> dict:
        return {
            "lane": self.lane,
            "limit": self.limit,
            "submitted": self.submitted,
            "shed": self.shed,
            "resolved": self.resolved,
            "pending": self.pending,
            "errors": self.errors,
            "memory_hits": self.memory_hits,
            "coalesced": self.coalesced,
            "compiled": self.compiled,
            "store_hits": self.store_hits,
            "worker_hits": self.worker_hits,
            "dedup_waits": self.dedup_waits,
            "hit_rate": self.hit_rate,
            "latency": dict(self.latency),
        }


@dataclass(frozen=True)
class FarmStats:
    """Snapshot of one :class:`~repro.serve.farm.CompileFarm`.

    The farm-wide invariants (exact at quiescence, chaos included):

    * ``submitted == shed + resolved`` — no request is ever lost: it is
      either shed at admission (resolving with a typed ``Rejected``) or
      resolved exactly once, surviving worker kills via re-drive;
    * ``double_compiled == 0`` — no distinct kernel reports more than one
      fresh compilation across every worker process (claim files +
      store-before-done ordering);
    * ``executions >= resolved`` — a re-driven ticket may execute on more
      than one worker, but only the first outcome resolves it.
    """

    workers: int = 0
    alive: int = 0
    submitted: int = 0
    shed: int = 0
    resolved: int = 0
    errors: int = 0
    compiled: int = 0
    executions: int = 0
    redriven: int = 0
    restarts: int = 0
    warmed: int = 0
    double_compiled: int = 0
    store: dict = field(default_factory=dict)
    lanes: tuple = ()

    def lane(self, name: str) -> LaneStats:
        for lane in self.lanes:
            if lane.lane == name:
                return lane
        raise KeyError(name)

    @property
    def lost(self) -> int:
        """Admitted-but-unresolved requests; 0 at quiescence, or a bug."""
        return self.submitted - self.shed - self.resolved

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "alive": self.alive,
            "submitted": self.submitted,
            "shed": self.shed,
            "resolved": self.resolved,
            "lost": self.lost,
            "errors": self.errors,
            "compiled": self.compiled,
            "executions": self.executions,
            "redriven": self.redriven,
            "restarts": self.restarts,
            "warmed": self.warmed,
            "double_compiled": self.double_compiled,
            "store": dict(self.store),
            "lanes": {lane.lane: lane.as_dict() for lane in self.lanes},
        }
