"""The unified code-generation backend protocol and registry.

Before this module existed the Triton, CUDA and MLIR generators each
reimplemented the same lower-render-validate sequence with drifting behaviour
(the MLIR path, for example, raised a bare ``KeyError`` for an unbound SSA
name while the template paths raised a named ``ValueError``).  Everything
now flows through one abstraction:

* :class:`GeneratedKernel` — the common result type: source text plus the
  lowered bindings and generation metadata.  The per-backend kernel classes
  (``TritonKernel``, ``CudaKernel``, ``MlirKernel``) subclass it, so existing
  call sites keep their familiar fields while new code (the autotuner) can
  treat every backend uniformly.
* :class:`Backend` — the protocol: ``generate(name, template, context)``
  returns a :class:`GeneratedKernel`.
* :class:`TemplateBackend` — the shared lower-render-validate implementation
  used by the Triton and CUDA template paths (they differ only in printer
  and result class).
* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` — the registry.  The MLIR backend registers
  lazily so the MLIR substrate stays optional at import time.
* :func:`validate_bound` / :func:`raise_unbound` — the shared unbound-name
  validation used by every backend (template placeholders for Triton/CUDA,
  SSA values for MLIR).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from importlib import import_module
from typing import Iterable, Mapping, Sequence

from ..symbolic import CostWeights, PythonPrinter, operation_count
from .context import CodegenContext, LoweredBinding
from .template import extract_placeholders, render_template

__all__ = [
    "GeneratedKernel",
    "Backend",
    "TemplateBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "raise_unbound",
    "validate_bound",
]


@dataclass
class GeneratedKernel:
    """A generated kernel, independent of the backend that produced it."""

    name: str
    source: str
    bindings: dict[str, LoweredBinding] = field(default_factory=dict)
    backend: str = ""
    generation_seconds: float = 0.0
    #: verdicts of the context's ``require_in_bounds`` obligations: binding
    #: name -> True when the access was proven in-bounds statically.  Launch
    #: code consults this to drop runtime bounds guards.
    proven_bounds: dict[str, bool] = field(default_factory=dict)

    def binding_ops(self, weights: CostWeights | None = None) -> int:
        """Total arithmetic operations across the generated index expressions."""
        return operation_count([b.expr for b in self.bindings.values()], weights)

    def rendered_expressions(self) -> dict[str, str]:
        """Canonical printed form of each lowered index expression.

        This is the cross-process-stable fingerprint of the kernel's index
        arithmetic: the autotuner keys its evaluation cache on it, and the
        compilation service persists it so a kernel restored from the durable
        cache tier keeps the same fingerprint as a freshly generated one.
        """
        return {name: str(binding.expr) for name, binding in self.bindings.items()}

    def evaluate_bindings(self, env: Mapping[str, int]) -> dict[str, int]:
        """Evaluate every lowered index expression under integer bindings.

        This is how the verification subsystem (:mod:`repro.check`) executes
        a kernel's generated index arithmetic numerically without a substrate
        — e.g. proving that a coarsened thread layout enumerates each element
        of its block exactly once.  Only meaningful on freshly generated
        kernels: cache-restored :class:`~repro.serve.service.PersistedKernel`
        objects carry no live expression nodes and return ``{}``.
        """
        return {name: binding.expr.evaluate(dict(env)) for name, binding in self.bindings.items()}


def raise_unbound(kernel_name: str, missing: Sequence[str], what: str = "placeholders") -> None:
    """Raise the shared unbound-name error every backend uses.

    ``what`` names the kind of binding that is missing: ``"placeholders"``
    for the Triton/CUDA template paths, ``"SSA values"`` for MLIR emission.
    """
    raise ValueError(
        f"kernel {kernel_name!r} has unbound {what}: {', '.join(missing)}"
    )


def validate_bound(kernel_name: str, required: Iterable[str], provided: Mapping[str, object] | set,
                   what: str = "placeholders") -> None:
    """Check that every required name is provided, else :func:`raise_unbound`."""
    missing = [name for name in required if name not in provided]
    if missing:
        raise_unbound(kernel_name, missing, what)


class Backend(abc.ABC):
    """One code-generation target (Triton, CUDA, MLIR, ...)."""

    #: registry key (``get_backend(name)``)
    name: str = "?"

    @abc.abstractmethod
    def generate(
        self,
        name: str,
        template,
        context: CodegenContext,
        extra_bindings: Mapping[str, object] | None = None,
        *,
        cost_weights: CostWeights | None = None,
        **options,
    ) -> GeneratedKernel:
        """Lower ``context``, instantiate ``template`` and return the kernel.

        ``cost_weights`` optionally overrides the operation-count weights used
        for expanded-vs-unexpanded variant selection (see
        :meth:`CodegenContext.lower`).  Backend-specific ``options`` carry
        metadata such as Triton ``constants`` or CUDA ``launch_bounds``.
        """


class TemplateBackend(Backend):
    """Shared lower-render-validate path for template-driven backends.

    Subclasses set :attr:`printer_cls` (how expressions print),
    :attr:`kernel_cls` (the result dataclass) and implement
    :meth:`kernel_kwargs` to map backend options onto result fields.
    """

    printer_cls = PythonPrinter
    kernel_cls = GeneratedKernel

    def kernel_kwargs(self, options: dict) -> dict:
        if options:
            raise TypeError(f"{self.name} backend got unexpected options: {sorted(options)}")
        return {}

    def generate(
        self,
        name: str,
        template: str,
        context: CodegenContext,
        extra_bindings: Mapping[str, object] | None = None,
        *,
        cost_weights: CostWeights | None = None,
        **options,
    ) -> GeneratedKernel:
        from ..obs.trace import span

        lowered = context.lower(cost_weights=cost_weights)
        with span("codegen.render", "codegen", kernel=name, backend=self.name):
            printer = self.printer_cls()
            rendered: dict[str, object] = {
                binding_name: binding.render(printer) for binding_name, binding in lowered.items()
            }
            if extra_bindings:
                for key, value in extra_bindings.items():
                    rendered.setdefault(key, value)
            validate_bound(name, extract_placeholders(template), rendered)
            source = render_template(template, rendered)
        return self.kernel_cls(
            name=name,
            source=source,
            bindings=lowered,
            backend=self.name,
            generation_seconds=context.generation_seconds or 0.0,
            proven_bounds=dict(context.proven_bounds),
            **self.kernel_kwargs(dict(options)),
        )


_REGISTRY: dict[str, Backend] = {}

#: backends registered on first use so optional substrates stay import-light
_LAZY_BACKENDS = {"mlir": "repro.codegen.mlir"}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    instance = cls()
    if instance.name in ("?", ""):
        raise ValueError(f"backend class {cls.__name__} must set a registry name")
    _REGISTRY[instance.name] = instance
    return cls


def get_backend(name: str) -> Backend:
    """Look up a backend by name, importing lazily-registered ones on demand."""
    if name not in _REGISTRY and name in _LAZY_BACKENDS:
        import_module(_LAZY_BACKENDS[name])
    try:
        return _REGISTRY[name]
    except KeyError:
        known = sorted(set(_REGISTRY) | set(_LAZY_BACKENDS))
        raise ValueError(f"unknown backend {name!r}; available backends: {', '.join(known)}") from None


def available_backends() -> list[str]:
    """Names of every registered (or lazily registrable) backend."""
    return sorted(set(_REGISTRY) | set(_LAZY_BACKENDS))
