"""Static guard elimination: prove launch predicates, count the wins.

Generated kernels historically carried their bounds predication at runtime —
``where_blocks`` masks on NW's anti-diagonal waves, ``compact_threads``
interior masks in the stencils — because nothing could prove the masks
always-true for a given launch shape.  The stride-aware range analysis
(:mod:`repro.symbolic.indexrange`) can: apps build the mask's predicate
symbolically over declared index ranges and call
:func:`prove_guard_redundant`; a ``True`` verdict licenses launching the
unguarded kernel variant.

Every verdict is observable through :mod:`repro.obs`:

* ``repro.symbolic.guards_eliminated`` — predicates proven always-true
  (a guard was dropped from a launch),
* ``repro.symbolic.proofs_static`` — obligations discharged statically
  (guard proofs, access-in-bounds obligations, bijectivity proofs),
* ``repro.symbolic.proofs_fallback`` — obligations that stayed dynamic
  (the guard remains, or a runtime check runs instead).

The proof itself runs inside a ``symbolic.range`` span so trace timelines
attribute the analysis cost.
"""

from __future__ import annotations

from typing import Optional

from ..symbolic import Expr, ExprLike, SymbolicEnv, as_expr, prove, prove_in_bounds

__all__ = [
    "prove_guard_redundant",
    "discharge_in_bounds",
    "note_static_proof",
    "note_fallback",
]


def _counter(name: str):
    # create-or-get on every call: the registry may be cleared between tests,
    # so a cached Counter object could silently detach from exposition
    from ..obs.metrics import counter

    return counter(name, _HELP[name])


_HELP = {
    "repro.symbolic.guards_eliminated": (
        "bounds guards/predication removed from kernel launches after an always-true proof"
    ),
    "repro.symbolic.proofs_static": (
        "guard/bounds/bijectivity obligations discharged statically by the range analysis"
    ),
    "repro.symbolic.proofs_fallback": (
        "obligations the range analysis could not discharge (dynamic guard or runtime check kept)"
    ),
}


def note_static_proof(amount: int = 1) -> None:
    """Record obligations discharged statically (outside the helpers here)."""
    _counter("repro.symbolic.proofs_static").inc(amount)


def note_fallback(amount: int = 1) -> None:
    """Record obligations that stayed dynamic."""
    _counter("repro.symbolic.proofs_fallback").inc(amount)


def prove_guard_redundant(
    predicate: ExprLike, env: SymbolicEnv, *, kernel: str = ""
) -> bool:
    """Is the guard ``predicate`` provably true for every launch point?

    ``predicate`` is a boolean expression (``Cmp``/``BoolAnd``/... nodes)
    over variables whose ranges are declared on ``env``.  Returns ``True``
    only on a proof — ``False`` means *unknown*, and the caller must keep
    the dynamic guard.  Verdicts update the guard-elimination counters and
    the proof runs inside a ``symbolic.range`` span.
    """
    from ..obs.trace import span

    predicate = as_expr(predicate)
    with span("symbolic.range", "symbolic", kernel=kernel, query="guard"):
        proven = prove(predicate, env)
    if proven:
        _counter("repro.symbolic.guards_eliminated").inc()
        _counter("repro.symbolic.proofs_static").inc()
    else:
        _counter("repro.symbolic.proofs_fallback").inc()
    return proven


def discharge_in_bounds(
    expr: ExprLike,
    lo: ExprLike,
    hi: ExprLike,
    env: SymbolicEnv,
    *,
    kernel: str = "",
) -> bool:
    """Discharge the access obligation ``lo <= expr <= hi`` statically.

    The backend proof-obligation API (``CodegenContext.require_in_bounds``)
    funnels here; apps may also call it directly.  Counts toward
    ``proofs_static`` / ``proofs_fallback`` but not ``guards_eliminated`` —
    an in-bounds fact enables guard removal, it is not itself a guard.
    """
    from ..obs.trace import span

    with span("symbolic.range", "symbolic", kernel=kernel, query="in_bounds"):
        proven = prove_in_bounds(expr, lo, hi, env)
    if proven:
        _counter("repro.symbolic.proofs_static").inc()
    else:
        _counter("repro.symbolic.proofs_fallback").inc()
    return proven
