"""Minimal ``{{ placeholder }}`` template engine (Jinja2 substitute).

The paper's Triton/CUDA integration takes a user-supplied kernel template
containing Jinja2-style placeholders and replaces each placeholder with the
index expression LEGO derives for it.  Only placeholder substitution is used,
so this reproduction implements exactly that:

* ``{{ name }}`` — substitute the rendered value bound to ``name``;
* ``{{ name | indent(n) }}`` — substitute with every line after the first
  indented by ``n`` spaces (useful for multi-line MLIR snippets);
* unknown placeholders raise :class:`TemplateError` (typos in templates must
  not silently generate broken kernels).

``extract_placeholders`` is used by the generators to validate that a
template and a set of bindings agree before rendering.
"""

from __future__ import annotations

import re
from typing import Mapping

__all__ = ["TemplateError", "render_template", "extract_placeholders"]

_PLACEHOLDER_RE = re.compile(r"\{\{\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?:\|\s*(?P<filter>[^}]+?)\s*)?\}\}")
_INDENT_RE = re.compile(r"indent\(\s*(\d+)\s*\)")


class TemplateError(ValueError):
    """Raised for unknown placeholders or malformed filters."""


def extract_placeholders(template: str) -> list[str]:
    """All placeholder names appearing in ``template`` (in order, with duplicates removed)."""
    seen: list[str] = []
    for match in _PLACEHOLDER_RE.finditer(template):
        name = match.group("name")
        if name not in seen:
            seen.append(name)
    return seen


def _apply_filter(value: str, filter_text: str) -> str:
    filter_text = filter_text.strip()
    indent_match = _INDENT_RE.fullmatch(filter_text)
    if indent_match:
        pad = " " * int(indent_match.group(1))
        lines = value.splitlines()
        if not lines:
            return value
        return ("\n" + pad).join(lines)
    raise TemplateError(f"unknown template filter: {filter_text!r}")


def render_template(template: str, bindings: Mapping[str, object], strict: bool = True) -> str:
    """Substitute every ``{{ name }}`` placeholder in ``template``.

    Values are converted with ``str``.  With ``strict`` (the default), a
    placeholder without a binding raises :class:`TemplateError`; bindings
    that never appear in the template are always allowed.
    """

    def _replace(match: re.Match) -> str:
        name = match.group("name")
        if name not in bindings:
            if strict:
                raise TemplateError(f"no binding provided for template placeholder {{{{ {name} }}}}")
            return match.group(0)
        value = str(bindings[name])
        filter_text = match.group("filter")
        if filter_text:
            value = _apply_filter(value, filter_text)
        return value

    return _PLACEHOLDER_RE.sub(_replace, template)
