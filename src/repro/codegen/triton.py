"""Triton template instantiation (Section IV-A of the paper).

The user supplies a Triton kernel template with ``{{ placeholder }}`` markers
for every index expression, plus layouts for data and computation; LEGO lowers
the layouts to simplified symbolic expressions and substitutes them into the
template.  The result is an ordinary Triton kernel (Figure 10 of the paper).

In this reproduction the generated kernels are strings of *mini-Triton*
source: syntactically the same ``tl.*`` calls as real Triton, executed by the
NumPy-backed interpreter in :mod:`repro.minitriton` (the substitution for a
GPU + the Triton compiler documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..symbolic import TritonPrinter
from .context import CodegenContext, LoweredBinding
from .template import extract_placeholders, render_template

__all__ = ["TritonKernel", "generate_triton_kernel"]


@dataclass
class TritonKernel:
    """A generated Triton kernel: source text plus lowering metadata."""

    name: str
    source: str
    bindings: dict[str, LoweredBinding]
    constants: dict[str, int] = field(default_factory=dict)
    generation_seconds: float = 0.0

    def binding_ops(self) -> int:
        """Total arithmetic operations across the generated index expressions."""
        from ..symbolic import operation_count

        return operation_count([b.expr for b in self.bindings.values()])


def generate_triton_kernel(
    name: str,
    template: str,
    context: CodegenContext,
    extra_bindings: Mapping[str, object] | None = None,
    constants: Mapping[str, int] | None = None,
) -> TritonKernel:
    """Instantiate ``template`` with the expressions lowered from ``context``.

    ``extra_bindings`` are substituted verbatim (strings or stringifiable
    values) — useful for names that are not index expressions, such as data
    types.  Every placeholder in the template must be covered by either the
    context bindings or ``extra_bindings``.
    """
    lowered = context.lower()
    printer = TritonPrinter()
    rendered: dict[str, object] = {
        binding_name: binding.render(printer) for binding_name, binding in lowered.items()
    }
    if extra_bindings:
        for key, value in extra_bindings.items():
            rendered.setdefault(key, value)
    missing = [p for p in extract_placeholders(template) if p not in rendered]
    if missing:
        raise ValueError(
            f"template for kernel {name!r} has unbound placeholders: {', '.join(missing)}"
        )
    source = render_template(template, rendered)
    return TritonKernel(
        name=name,
        source=source,
        bindings=lowered,
        constants=dict(constants or {}),
        generation_seconds=context.generation_seconds or 0.0,
    )
