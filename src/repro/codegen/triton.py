"""Triton template instantiation (Section IV-A of the paper).

The user supplies a Triton kernel template with ``{{ placeholder }}`` markers
for every index expression, plus layouts for data and computation; LEGO lowers
the layouts to simplified symbolic expressions and substitutes them into the
template.  The result is an ordinary Triton kernel (Figure 10 of the paper).

In this reproduction the generated kernels are strings of *mini-Triton*
source: syntactically the same ``tl.*`` calls as real Triton, executed by the
NumPy-backed interpreter in :mod:`repro.minitriton` (the substitution for a
GPU + the Triton compiler documented in DESIGN.md).

The actual lower-render-validate sequence lives in the shared
:class:`~repro.codegen.backend.TemplateBackend`; this module contributes the
Triton printer, the :class:`TritonKernel` result type and the registry entry
(``get_backend("triton")``).  :func:`generate_triton_kernel` is kept as a
thin wrapper over the registry for existing call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..symbolic import TritonPrinter
from .backend import GeneratedKernel, TemplateBackend, register_backend
from .context import CodegenContext

__all__ = ["TritonKernel", "TritonBackend", "generate_triton_kernel"]


@dataclass
class TritonKernel(GeneratedKernel):
    """A generated Triton kernel: source text plus lowering metadata."""

    constants: dict[str, int] = field(default_factory=dict)


@register_backend
class TritonBackend(TemplateBackend):
    """Template instantiation printed with Triton syntax (``//``, ``tl.arange``)."""

    name = "triton"
    printer_cls = TritonPrinter
    kernel_cls = TritonKernel

    def kernel_kwargs(self, options: dict) -> dict:
        constants = options.pop("constants", None)
        super().kernel_kwargs(options)
        return {"constants": dict(constants or {})}


def generate_triton_kernel(
    name: str,
    template: str,
    context: CodegenContext,
    extra_bindings: Mapping[str, object] | None = None,
    constants: Mapping[str, int] | None = None,
) -> TritonKernel:
    """Instantiate ``template`` with the expressions lowered from ``context``.

    ``extra_bindings`` are substituted verbatim (strings or stringifiable
    values) — useful for names that are not index expressions, such as data
    types.  Every placeholder in the template must be covered by either the
    context bindings or ``extra_bindings``.

    Thin wrapper over ``get_backend("triton").generate`` kept for existing
    call sites.
    """
    from .backend import get_backend

    return get_backend("triton").generate(
        name, template, context, extra_bindings, constants=constants
    )
