"""CUDA template instantiation and layout wrapper emission.

Two integration styles from the paper's CUDA experiments:

* **template instantiation** — exactly like the Triton path but printed with
  C syntax (``/`` and ``%``); used when the kernel's index arithmetic is
  generated wholesale (LUD thread coarsening, transpose, bricks);
* **accessor wrapper** — for NW the paper keeps the original Rodinia kernel
  and only redirects its logical ``buff[i][j]`` accesses through a small
  wrapper class whose ``operator()`` evaluates the LEGO layout's ``apply``;
  :func:`generate_accessor_wrapper` emits that class, including the verbatim
  device function for a ``GenP`` (e.g. Figure 7's anti-diagonal).

The emitted CUDA source is used as a textual artifact (documentation,
inspection, golden tests); functional and performance evaluation run on the
Python CUDA execution model in :mod:`repro.minicuda`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.blocks import GroupBy
from ..core.perms import GenP
from ..symbolic import CPrinter
from .backend import GeneratedKernel, TemplateBackend, get_backend, register_backend
from .context import CodegenContext

__all__ = ["CudaKernel", "CudaBackend", "generate_cuda_kernel", "generate_accessor_wrapper"]


@dataclass
class CudaKernel(GeneratedKernel):
    """A generated CUDA kernel: source text plus lowering metadata."""

    launch_bounds: dict[str, int] = field(default_factory=dict)


@register_backend
class CudaBackend(TemplateBackend):
    """Template instantiation printed with C syntax (``/`` and ``%``)."""

    name = "cuda"
    printer_cls = CPrinter
    kernel_cls = CudaKernel

    def kernel_kwargs(self, options: dict) -> dict:
        launch_bounds = options.pop("launch_bounds", None)
        super().kernel_kwargs(options)
        return {"launch_bounds": dict(launch_bounds or {})}


def generate_cuda_kernel(
    name: str,
    template: str,
    context: CodegenContext,
    extra_bindings: Mapping[str, object] | None = None,
    launch_bounds: Mapping[str, int] | None = None,
) -> CudaKernel:
    """Instantiate a CUDA kernel template with LEGO-lowered index expressions.

    Thin wrapper over ``get_backend("cuda").generate`` kept for existing
    call sites.
    """
    return get_backend("cuda").generate(
        name, template, context, extra_bindings, launch_bounds=launch_bounds
    )


_WRAPPER_TEMPLATE = """\
{device_functions}
// LEGO-generated accessor: redirects logical {rank}-D accesses of `{name}`
// through the layout's apply() bijection.  Only the declaration and the
// accesses below change relative to the original kernel.
struct {struct_name} {{
    {scalar_type}* data;

    __device__ __forceinline__ {scalar_type}& operator()({args}) {{
        return data[{offset}];
    }}
}};
"""


def generate_accessor_wrapper(
    name: str,
    layout: GroupBy,
    scalar_type: str = "float",
    index_names: tuple[str, ...] | None = None,
) -> str:
    """Emit a CUDA wrapper struct that applies ``layout`` on every access.

    The wrapper overloads ``operator()`` so existing kernels only need their
    buffer declaration and accesses re-typed (the paper: "the definition of a
    small wrapper class for arrays and the modification of only two lines of
    the original code").  ``GenP`` blocks that carry ``c_source`` contribute
    their device function verbatim.
    """
    rank = layout.rank
    if index_names is None:
        index_names = tuple(f"i{k}" for k in range(rank))
    if len(index_names) != rank:
        raise ValueError(f"layout has rank {rank} but {len(index_names)} index names were given")

    context = CodegenContext(name=f"{name}_accessor")
    index_vars = []
    for axis, index_name in enumerate(index_names):
        extent = layout.dims()[axis]
        if isinstance(extent, int):
            index_vars.append(context.index(index_name, extent))
        else:
            index_vars.append(context.nonneg(index_name)[0])

    device_functions = []
    offset_text: str
    if _layout_uses_genp(layout):
        # GenP layouts are evaluated through their device function; emit the
        # function plus a call with the layout's tile geometry.
        genp = _first_genp(layout)
        if genp.c_source:
            device_functions.append(genp.c_source)
        offset_text = _genp_call_expression(layout, genp, index_names)
    else:
        context.bind("offset", layout.apply(*index_vars))
        lowered = context.lower()["offset"]
        offset_text = lowered.render(CPrinter())

    args = ", ".join(f"int {index_name}" for index_name in index_names)
    return _WRAPPER_TEMPLATE.format(
        device_functions="".join(device_functions),
        rank=rank,
        name=name,
        struct_name=f"Lego{name.capitalize()}",
        scalar_type=scalar_type,
        args=args,
        offset=offset_text,
    )


def _layout_uses_genp(layout: GroupBy) -> bool:
    return any(isinstance(p, GenP) for ob in layout.order_bys for p in ob.perms)


def _first_genp(layout: GroupBy) -> GenP:
    for order_by in layout.order_bys:
        for perm in order_by.perms:
            if isinstance(perm, GenP):
                return perm
    raise ValueError("layout has no GenP block")


def _genp_call_expression(layout: GroupBy, genp: GenP, index_names: tuple[str, ...]) -> str:
    """A C expression calling the GenP device function on the logical indices.

    Supported for the accessor pattern used by the paper's NW benchmark: a
    square tile reordered by a single GenP over the whole logical space.
    """
    dims = genp.dims()
    if len(dims) != len(index_names):
        raise ValueError(
            "accessor emission for GenP layouts requires the GenP to cover the whole logical view"
        )
    size_text = str(dims[0])
    fn_name = genp.c_source.split("(")[0].split()[-1] if genp.c_source else genp.name
    return f"{fn_name}({size_text}, {', '.join(index_names)})"
