"""Code generation: templates, contexts and the unified backend registry.

* :func:`render_template` — the ``{{ }}`` placeholder engine,
* :class:`CodegenContext` — symbols, assumptions and named layout bindings,
* :class:`GeneratedKernel` / :class:`Backend` / :func:`get_backend` /
  :func:`register_backend` — the backend protocol and registry shared by the
  Triton, CUDA and MLIR generators (one lower-render-validate path, one
  result type),
* :func:`generate_triton_kernel` / :func:`generate_cuda_kernel` — thin
  wrappers over the registry kept for existing call sites,
* :func:`generate_accessor_wrapper` — CUDA accessor-struct emission for
  layouts applied per-access (the NW integration style),
* :func:`prove_guard_redundant` / :func:`discharge_in_bounds` — static guard
  elimination on top of the stride-aware range analysis; obligations are
  registered via :meth:`CodegenContext.require_in_bounds` and surfaced as
  ``GeneratedKernel.proven_bounds``,
* :class:`GenerationReport`, :func:`time_generation`,
  :func:`compare_expansion_strategies` — the latency / op-count reporting used
  by Tables III and IV.

The MLIR backend lives in :mod:`repro.codegen.mlir` and registers lazily
(``get_backend("mlir")`` imports it on first use) to keep the MLIR substrate
optional at import time.
"""

from .template import TemplateError, extract_placeholders, render_template
from .context import CodegenContext, LoweredBinding, lower_expression
from .guards import (
    discharge_in_bounds,
    note_fallback,
    note_static_proof,
    prove_guard_redundant,
)
from .backend import (
    Backend,
    GeneratedKernel,
    TemplateBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .triton import TritonKernel, generate_triton_kernel
from .cuda import CudaKernel, generate_accessor_wrapper, generate_cuda_kernel
from .pipeline import GenerationReport, compare_expansion_strategies, time_generation

__all__ = [
    "TemplateError",
    "extract_placeholders",
    "render_template",
    "CodegenContext",
    "LoweredBinding",
    "lower_expression",
    "prove_guard_redundant",
    "discharge_in_bounds",
    "note_static_proof",
    "note_fallback",
    "Backend",
    "GeneratedKernel",
    "TemplateBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "TritonKernel",
    "generate_triton_kernel",
    "CudaKernel",
    "generate_cuda_kernel",
    "generate_accessor_wrapper",
    "GenerationReport",
    "compare_expansion_strategies",
    "time_generation",
]
