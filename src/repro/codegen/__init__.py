"""Code generation: templates, contexts and backend generators.

* :func:`render_template` — the ``{{ }}`` placeholder engine,
* :class:`CodegenContext` — symbols, assumptions and named layout bindings,
* :func:`generate_triton_kernel` / :func:`generate_cuda_kernel` — backend
  template instantiation,
* :func:`generate_accessor_wrapper` — CUDA accessor-struct emission for
  layouts applied per-access (the NW integration style),
* :class:`GenerationReport`, :func:`time_generation`,
  :func:`compare_expansion_strategies` — the latency / op-count reporting used
  by Tables III and IV.

The MLIR backend lives in :mod:`repro.codegen.mlir` and is re-exported lazily
to keep the MLIR substrate optional at import time.
"""

from .template import TemplateError, extract_placeholders, render_template
from .context import CodegenContext, LoweredBinding, lower_expression
from .triton import TritonKernel, generate_triton_kernel
from .cuda import CudaKernel, generate_accessor_wrapper, generate_cuda_kernel
from .pipeline import GenerationReport, compare_expansion_strategies, time_generation

__all__ = [
    "TemplateError",
    "extract_placeholders",
    "render_template",
    "CodegenContext",
    "LoweredBinding",
    "lower_expression",
    "TritonKernel",
    "generate_triton_kernel",
    "CudaKernel",
    "generate_cuda_kernel",
    "generate_accessor_wrapper",
    "GenerationReport",
    "compare_expansion_strategies",
    "time_generation",
]
