"""The code-generation context: layouts -> named, simplified index expressions.

A :class:`CodegenContext` collects

* the kernel's symbols and their assumptions (sizes are positive, indices are
  bounded by their extents, user constraints such as ``BK | K``),
* named bindings — each binding is a layout slice (``DL_a[pid_m, k, :, :]``),
  a layout inverse (``CL.inv(pid)``), or a plain symbolic expression,

and lowers every binding to simplified source text for a chosen printer.  The
lowering of each binding follows Section IV-A of the paper: both the
unexpanded and the pre-expanded forms are simplified and the variant with the
lower operation count wins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.slicing import LayoutSlice
from ..symbolic import (
    CACHE_STATS,
    CostWeights,
    Expr,
    PythonPrinter,
    SymbolicEnv,
    Var,
    as_expr,
    expand,
    operation_count,
    simplify_fixpoint,
)

__all__ = ["LoweredBinding", "CodegenContext", "lower_expression"]


@dataclass
class LoweredBinding:
    """One named index expression after simplification."""

    name: str
    expr: Expr
    variant: str  # "unexpanded" | "expanded"
    ops: int
    raw_ops: int
    substitutions: dict[str, str] = field(default_factory=dict)

    def render(self, printer: PythonPrinter | None = None, extra_substitutions: Mapping[str, str] | None = None) -> str:
        printer = printer or PythonPrinter()
        subs = dict(self.substitutions)
        if extra_substitutions:
            subs.update(extra_substitutions)
        merged = type(printer)(substitutions={**printer.substitutions, **subs})
        return merged.doprint(self.expr)


def lower_expression(
    expr: Expr,
    env: SymbolicEnv,
    pre_expand: str = "auto",
    weights: CostWeights | None = None,
) -> tuple[Expr, str, int]:
    """Simplify ``expr`` under ``env`` choosing the expansion strategy.

    ``pre_expand`` is ``"auto"`` (generate both variants, keep the cheaper —
    the paper's cost model), ``"never"`` or ``"always"``.  Returns
    ``(simplified, variant, op_count)``.
    """
    weights = weights or CostWeights()
    candidates: list[tuple[str, Expr]] = []
    if pre_expand in ("auto", "never"):
        candidates.append(("unexpanded", simplify_fixpoint(expr, env)))
    if pre_expand in ("auto", "always"):
        candidates.append(("expanded", simplify_fixpoint(expand(expr), env)))
    # Ties on total op count are broken towards the variant with fewer integer
    # divisions/modulos, which are the expensive operations on GPUs.
    divmod_weights = CostWeights(add=0, mul=0, floordiv=1, mod=1, minmax=0, cmp=0, boolean=0)
    best_variant, best_expr, best_cost = None, None, None
    for variant, simplified in candidates:
        cost = (operation_count(simplified, weights), operation_count(simplified, divmod_weights))
        if best_cost is None or cost < best_cost:
            best_variant, best_expr, best_cost = variant, simplified, cost
    assert best_expr is not None and best_variant is not None and best_cost is not None
    return best_expr, best_variant, best_cost[0]


class CodegenContext:
    """Collects symbols, assumptions and named bindings for one kernel."""

    def __init__(self, name: str = "kernel", pre_expand: str = "auto", weights: CostWeights | None = None):
        self.name = name
        self.env = SymbolicEnv()
        self.pre_expand = pre_expand
        self.weights = weights or CostWeights()
        self._bindings: dict[str, object] = {}
        self._substitutions: dict[str, str] = {}
        self.generation_seconds: float | None = None
        #: cache-counter increments observed during the last :meth:`lower`
        self.last_cache_stats: dict[str, object] = {}
        self._lowered: dict[str, LoweredBinding] | None = None
        self._lowered_key: tuple | None = None
        #: access-in-bounds obligations: binding name -> (lo, hi), inclusive
        self._obligations: dict[str, tuple[Expr, Expr]] = {}
        #: obligation verdicts from the last :meth:`lower`: name -> bool
        self.proven_bounds: dict[str, bool] = {}

    # -- symbol declarations -----------------------------------------------------

    def size(self, *names) -> tuple[Var, ...]:
        """Declare positive size symbols and return them as variables."""
        out = []
        for name in names:
            var = name if isinstance(name, Var) else Var(str(name))
            self.env.declare_size(var)
            out.append(var)
        return tuple(out)

    def index(self, name, extent) -> Var:
        """Declare an index symbol with range ``[0, extent - 1]``."""
        return self.env.declare_index(name, extent)

    def nonneg(self, *names) -> tuple[Var, ...]:
        out = []
        for name in names:
            var = name if isinstance(name, Var) else Var(str(name))
            self.env.declare_nonneg(var)
            out.append(var)
        return tuple(out)

    def divisible(self, dividend, divisor) -> None:
        """Record the user constraint that ``divisor`` divides ``dividend``."""
        self.env.declare_divisible(dividend, divisor)

    def substitute(self, **renders: str) -> None:
        """Override how particular variables render in the generated source."""
        self._substitutions.update(renders)

    # -- bindings -----------------------------------------------------------------

    def bind(self, name: str, value) -> None:
        """Bind a name to an expression, a layout slice or a sequence of expressions."""
        self._bindings[name] = value

    def bind_many(self, **values) -> None:
        for name, value in values.items():
            self.bind(name, value)

    def require_in_bounds(self, name: str, lo, hi) -> None:
        """Register the obligation ``lo <= binding <= hi`` (inclusive).

        Obligations are discharged during :meth:`lower`: each is handed to the
        stride-aware prover and the verdict recorded in :attr:`proven_bounds`.
        Backends surface the verdicts on the generated kernel so launch code
        can drop bounds guards for statically proven accesses.
        """
        self._obligations[name] = (as_expr(lo), as_expr(hi))

    def bind_inverse(self, names: Sequence[str], layout, flat_expr) -> None:
        """Bind the components of ``layout.inv(flat_expr)`` to ``names``."""
        coords = layout.inv(as_expr(flat_expr))
        if len(coords) != len(names):
            raise ValueError(
                f"layout.inv produced {len(coords)} coordinates but {len(names)} names were given"
            )
        for name, coord in zip(names, coords):
            self.bind(name, as_expr(coord))

    # -- lowering -----------------------------------------------------------------

    def _lowering_key(self, weights: CostWeights) -> tuple:
        """Identity key of the inputs that determine the lowering result."""
        binding_ids = []
        for name, value in self._bindings.items():
            if isinstance(value, Expr):
                binding_ids.append((name, value._id))
            elif isinstance(value, LayoutSlice):
                # slices are mutable: include the offset expression identity
                # so reassigning it invalidates the cached lowering
                binding_ids.append((name, id(value), value.offset._id))
            else:
                binding_ids.append((name, id(value)))
        return (
            tuple(binding_ids),
            tuple((name, lo._id, hi._id) for name, (lo, hi) in self._obligations.items()),
            tuple(sorted(self._substitutions.items())),
            self.pre_expand,
            weights,
            self.env.fingerprint,
        )

    def lower(self, cost_weights: CostWeights | None = None) -> dict[str, LoweredBinding]:
        """Simplify every binding; records the wall-clock generation time.

        ``cost_weights`` optionally overrides the context's operation-count
        weights for this lowering — pass :meth:`CostWeights.gpu_default` to
        make the expanded-vs-unexpanded variant selection use GPU-realistic
        division/modulo costs instead of the paper's flat counts.

        The result is cached: as long as no binding, substitution,
        environment fact or weighting changed since the previous call, the
        previously lowered bindings are returned without re-simplifying
        anything (``render`` and ``total_ops`` both call ``lower``).
        """
        weights = cost_weights or self.weights
        if self._lowered is not None and self._lowered_key == self._lowering_key(weights):
            return self._lowered
        from ..obs.trace import span

        started = time.perf_counter()
        stats_before = CACHE_STATS.snapshot()
        lowered: dict[str, LoweredBinding] = {}
        with span("codegen.lower", "codegen", kernel=self.name, bindings=len(self._bindings)):
            for name, value in self._bindings.items():
                lowered[name] = self._lower_one(name, value, weights)
            if self._obligations:
                self.proven_bounds = self._discharge_obligations(lowered)
        self.generation_seconds = time.perf_counter() - started
        self.last_cache_stats = CACHE_STATS.delta(stats_before, CACHE_STATS.snapshot())
        self._lowered = lowered
        # Key computed after lowering: contribute_env may have added facts on
        # the first pass, and the key must reflect the settled environment.
        self._lowered_key = self._lowering_key(weights)
        return lowered

    def _discharge_obligations(self, lowered: Mapping[str, LoweredBinding]) -> dict[str, bool]:
        """Discharge every registered in-bounds obligation against ``lowered``."""
        from .guards import discharge_in_bounds

        verdicts: dict[str, bool] = {}
        for name, (lo, hi) in self._obligations.items():
            binding = lowered.get(name)
            if binding is None:
                raise KeyError(f"in-bounds obligation on unbound name {name!r}")
            verdicts[name] = discharge_in_bounds(
                binding.expr, lo, hi, self.env, kernel=self.name
            )
        return verdicts

    def _lower_one(self, name: str, value, weights: CostWeights | None = None) -> LoweredBinding:
        weights = weights or self.weights
        substitutions = dict(self._substitutions)
        if isinstance(value, LayoutSlice):
            value.contribute_env(self.env)
            substitutions.update(value.substitutions())
            expr = value.offset
        else:
            expr = as_expr(value)
        raw_ops = operation_count(expr, weights)
        simplified, variant, ops = lower_expression(expr, self.env, self.pre_expand, weights)
        return LoweredBinding(
            name=name,
            expr=simplified,
            variant=variant,
            ops=ops,
            raw_ops=raw_ops,
            substitutions=substitutions,
        )

    def render(self, printer: PythonPrinter | None = None) -> dict[str, str]:
        """Lower all bindings and render them to source text."""
        printer = printer or PythonPrinter()
        return {name: binding.render(printer) for name, binding in self.lower().items()}

    def total_ops(self) -> int:
        """Total operation count across all lowered bindings (Table IV metric)."""
        lowered = self.lower()
        return operation_count([b.expr for b in lowered.values()], self.weights)
