"""End-to-end MLIR code generation (Section IV-B of the paper).

LEGO layouts are lowered to symbolic index expressions, simplified under
their range assumptions, and then emitted as ``arith`` operations inside a
``gpu.func`` built with the :mod:`repro.mlir` builder.  The demonstration
application is the paper's 2-D transpose (Table V):

* ``naive`` — every thread reads ``in[i, j]`` and writes ``out[j, i]``
  directly from/to global memory; the write is uncoalesced;
* ``smem`` — the tile is staged through workgroup (shared) memory so that
  both the global read and the global write are coalesced; the shared tile
  uses a LEGO *skewed* layout (a ``GenP``) that removes bank conflicts on the
  transposed read.

Both variants are generated from the same kernel structure; only the layouts
differ — the paper's "change the layout, not the code" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import GenP, GroupBy, Row
from ..mlir.dialects import arith, build_gpu_module, gpu, memref
from ..mlir.ir import Module, OpBuilder, Value
from ..mlir.printer import print_module
from ..mlir.types import F32, INDEX, MemRefType
from ..mlir.verifier import verify_module
from ..symbolic import Const, Expr, FloorDiv, Max, Min, Mod, Mul, SymbolicEnv, Var, as_expr, simplify_fixpoint
from ..symbolic.expr import Add

__all__ = ["MlirKernel", "lower_expr_to_ops", "skewed_tile_layout", "generate_transpose_module"]


@dataclass
class MlirKernel:
    """A generated MLIR module plus its metadata."""

    name: str
    module: Module
    text: str
    kernel_names: tuple[str, ...]
    generation_seconds: float = 0.0


def lower_expr_to_ops(builder: OpBuilder, expr: Expr, values: dict[str, Value]) -> Value:
    """Emit ``arith`` operations computing ``expr`` and return the result value.

    ``values`` maps variable names to already-available SSA values (thread
    ids, block ids, loop induction variables, ...).  Constants are
    deduplicated through the builder's constant cache.
    """
    expr = as_expr(expr)
    if isinstance(expr, Const):
        return arith.constant(builder, expr.value, INDEX)
    if isinstance(expr, Var):
        try:
            return values[expr.name]
        except KeyError as exc:
            raise KeyError(f"no SSA value bound for symbolic variable {expr.name!r}") from exc

    def binary(fold, args):
        result = lower_expr_to_ops(builder, args[0], values)
        for arg in args[1:]:
            result = fold(builder, result, lower_expr_to_ops(builder, arg, values))
        return result

    if isinstance(expr, Add):
        return binary(arith.addi, expr.args)
    if isinstance(expr, Mul):
        return binary(arith.muli, expr.args)
    if isinstance(expr, FloorDiv):
        return arith.divsi(
            builder,
            lower_expr_to_ops(builder, expr.numerator, values),
            lower_expr_to_ops(builder, expr.denominator, values),
        )
    if isinstance(expr, Mod):
        return arith.remsi(
            builder,
            lower_expr_to_ops(builder, expr.value_expr, values),
            lower_expr_to_ops(builder, expr.modulus, values),
        )
    if isinstance(expr, Min):
        return binary(arith.minsi, expr.args)
    if isinstance(expr, Max):
        return binary(arith.maxsi, expr.args)
    raise NotImplementedError(f"cannot lower expression node {type(expr).__name__} to MLIR")


def skewed_tile_layout(tile: int) -> GroupBy:
    """A bank-conflict-free shared-memory layout for a ``tile x tile`` buffer.

    The skew ``(i, j) -> i * tile + (i + j) % tile`` is a bijection on the
    tile that places the elements of each *column* in distinct banks, so the
    transposed read out of shared memory is conflict-free.  The permutation
    functions are polymorphic: called with integers they evaluate concretely,
    called with symbolic variables they produce the index expression that the
    MLIR backend lowers.
    """

    def skew(i, j):
        return i * tile + (i + j) % tile

    def skew_inv(flat):
        i = flat // tile
        j = (flat % tile - i) % tile
        return (i, j)

    perm = GenP([tile, tile], skew, skew_inv, name=f"skew{tile}")
    return GroupBy([tile, tile]).OrderBy(perm)


def _simplified(expr, env: SymbolicEnv) -> Expr:
    return simplify_fixpoint(as_expr(expr), env)


def generate_transpose_module(n: int, tile: int = 32, variant: str = "smem") -> MlirKernel:
    """Build the MLIR module for a 2-D ``n x n`` transpose kernel.

    ``variant`` is ``"naive"`` (direct global-to-global copy with uncoalesced
    writes) or ``"smem"`` (staged through a skewed shared-memory tile so both
    global accesses are coalesced).  The index expressions for the global and
    shared buffers are derived from LEGO layouts and simplified before
    emission.
    """
    import time

    if n % tile != 0:
        raise ValueError(f"transpose size {n} must be a multiple of the tile {tile}")
    if variant not in ("naive", "smem"):
        raise ValueError(f"unknown transpose variant {variant!r}")

    started = time.perf_counter()

    # -- layouts ---------------------------------------------------------------
    data_layout = GroupBy([n, n]).OrderBy(Row(n, n))
    smem_layout = skewed_tile_layout(tile)

    # -- symbolic index expressions --------------------------------------------
    tx, ty, bx, by = Var("tx"), Var("ty"), Var("bx"), Var("by")
    env = SymbolicEnv()
    env.declare_index(tx, tile)
    env.declare_index(ty, tile)
    env.declare_index(bx, n // tile)
    env.declare_index(by, n // tile)

    row = by * tile + ty
    col = bx * tile + tx
    in_offset = _simplified(data_layout.apply(row, col), env)
    if variant == "naive":
        out_offset = _simplified(data_layout.apply(col, row), env)
    else:
        # coalesced write: the block writes the transposed tile row-by-row
        out_row = bx * tile + ty
        out_col = by * tile + tx
        out_offset = _simplified(data_layout.apply(out_row, out_col), env)
        smem_write = _simplified(smem_layout.apply(ty, tx), env)
        smem_read = _simplified(smem_layout.apply(tx, ty), env)

    # -- module construction ------------------------------------------------------
    module = build_gpu_module(f"transpose_{variant}_{n}")
    buffer_type = MemRefType((n * n,), F32, memory_space=0)
    kernel = gpu.func(module, f"transpose_{variant}", [buffer_type, buffer_type])
    builder = OpBuilder(kernel.body)

    values = {
        "tx": gpu.thread_id(builder, "x"),
        "ty": gpu.thread_id(builder, "y"),
        "bx": gpu.block_id(builder, "x"),
        "by": gpu.block_id(builder, "y"),
    }
    in_buffer, out_buffer = kernel.argument(0), kernel.argument(1)

    if variant == "naive":
        in_index = lower_expr_to_ops(builder, in_offset, values)
        out_index = lower_expr_to_ops(builder, out_offset, values)
        element = memref.load(builder, in_buffer, [in_index])
        memref.store(builder, element, out_buffer, [out_index])
    else:
        smem_type = MemRefType((tile * tile,), F32, memory_space=3)
        tile_buffer = memref.alloc(builder, smem_type)
        in_index = lower_expr_to_ops(builder, in_offset, values)
        smem_write_index = lower_expr_to_ops(builder, smem_write, values)
        element = memref.load(builder, in_buffer, [in_index])
        memref.store(builder, element, tile_buffer, [smem_write_index])
        gpu.barrier(builder)
        smem_read_index = lower_expr_to_ops(builder, smem_read, values)
        out_index = lower_expr_to_ops(builder, out_offset, values)
        staged = memref.load(builder, tile_buffer, [smem_read_index])
        memref.store(builder, staged, out_buffer, [out_index])
    gpu.return_(builder)

    verify_module(module)
    text = print_module(module)
    elapsed = time.perf_counter() - started
    return MlirKernel(
        name=f"transpose_{variant}",
        module=module,
        text=text,
        kernel_names=(f"transpose_{variant}",),
        generation_seconds=elapsed,
    )
