"""End-to-end MLIR code generation (Section IV-B of the paper).

LEGO layouts are lowered to symbolic index expressions, simplified under
their range assumptions, and then emitted as ``arith`` operations inside a
``gpu.func`` built with the :mod:`repro.mlir` builder.  The demonstration
application is the paper's 2-D transpose (Table V):

* ``naive`` — every thread reads ``in[i, j]`` and writes ``out[j, i]``
  directly from/to global memory; the write is uncoalesced;
* ``smem`` — the tile is staged through workgroup (shared) memory so that
  both the global read and the global write are coalesced; the shared tile
  uses a LEGO *skewed* layout (a ``GenP``) that removes bank conflicts on the
  transposed read.

Both variants are generated from the same kernel structure; only the layouts
differ — the paper's "change the layout, not the code" claim.

The MLIR path is a :class:`~repro.codegen.backend.Backend` like Triton and
CUDA: a "template" here is a *module builder* callable that receives the
lowered index expressions and returns the constructed module, and unbound
names raise the same named ``ValueError`` as the template backends (via the
shared validation helper) instead of a bare ``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..core import GenP, GroupBy, Row
from ..mlir.dialects import arith, build_gpu_module, gpu, memref
from ..mlir.ir import Module, OpBuilder, Value
from ..mlir.printer import print_module
from ..mlir.types import F32, INDEX, MemRefType
from ..mlir.verifier import verify_module
from ..symbolic import Const, CostWeights, Expr, FloorDiv, Max, Min, Mod, Mul, Var, as_expr
from ..symbolic.expr import Add
from .backend import Backend, GeneratedKernel, register_backend, validate_bound
from .context import CodegenContext

__all__ = [
    "MlirKernel",
    "MlirBackend",
    "lower_expr_to_ops",
    "skewed_tile_layout",
    "generate_transpose_module",
]


@dataclass
class MlirKernel(GeneratedKernel):
    """A generated MLIR module plus its metadata."""

    module: Module | None = None
    kernel_names: tuple[str, ...] = ()

    @property
    def text(self) -> str:
        """The printed module text (alias of :attr:`source`)."""
        return self.source


def lower_expr_to_ops(
    builder: OpBuilder,
    expr: Expr,
    values: dict[str, Value],
    kernel_name: str = "kernel",
) -> Value:
    """Emit ``arith`` operations computing ``expr`` and return the result value.

    ``values`` maps variable names to already-available SSA values (thread
    ids, block ids, loop induction variables, ...).  Constants are
    deduplicated through the builder's constant cache.  Symbolic variables
    without an SSA value raise the same named ``ValueError`` (kernel name +
    missing-name list) as unbound template placeholders on the Triton/CUDA
    paths.
    """
    expr = as_expr(expr)
    validate_bound(kernel_name, sorted(expr.free_vars()), values, what="SSA values")
    return _lower_validated(builder, expr, values)


def _lower_validated(builder: OpBuilder, expr: Expr, values: dict[str, Value]) -> Value:
    if isinstance(expr, Const):
        return arith.constant(builder, expr.value, INDEX)
    if isinstance(expr, Var):
        return values[expr.name]

    def binary(fold, args):
        result = _lower_validated(builder, args[0], values)
        for arg in args[1:]:
            result = fold(builder, result, _lower_validated(builder, arg, values))
        return result

    if isinstance(expr, Add):
        return binary(arith.addi, expr.args)
    if isinstance(expr, Mul):
        return binary(arith.muli, expr.args)
    if isinstance(expr, FloorDiv):
        return arith.divsi(
            builder,
            _lower_validated(builder, expr.numerator, values),
            _lower_validated(builder, expr.denominator, values),
        )
    if isinstance(expr, Mod):
        return arith.remsi(
            builder,
            _lower_validated(builder, expr.value_expr, values),
            _lower_validated(builder, expr.modulus, values),
        )
    if isinstance(expr, Min):
        return binary(arith.minsi, expr.args)
    if isinstance(expr, Max):
        return binary(arith.maxsi, expr.args)
    raise NotImplementedError(f"cannot lower expression node {type(expr).__name__} to MLIR")


@register_backend
class MlirBackend(Backend):
    """MLIR emission through the unified backend protocol.

    The ``template`` is a module-builder callable
    ``build(exprs: dict[str, Expr]) -> (Module, Sequence[str])`` receiving
    the lowered (simplified) index expression of every context binding; the
    backend lowers, validates required names, runs the builder, verifies the
    module and returns an :class:`MlirKernel` with the printed text.
    """

    name = "mlir"

    def generate(
        self,
        name: str,
        template: Callable[[dict[str, Expr]], tuple[Module, Sequence[str]]],
        context: CodegenContext,
        extra_bindings: Mapping[str, object] | None = None,
        *,
        cost_weights: CostWeights | None = None,
        requires: Sequence[str] | None = None,
        **options,
    ) -> MlirKernel:
        if options:
            raise TypeError(f"mlir backend got unexpected options: {sorted(options)}")
        lowered = context.lower(cost_weights=cost_weights)
        exprs: dict[str, Expr] = {bname: binding.expr for bname, binding in lowered.items()}
        if extra_bindings:
            for key, value in extra_bindings.items():
                exprs.setdefault(key, as_expr(value))
        if requires:
            validate_bound(name, requires, exprs)
        module, kernel_names = template(exprs)
        verify_module(module)
        return MlirKernel(
            name=name,
            source=print_module(module),
            bindings=lowered,
            backend=self.name,
            generation_seconds=context.generation_seconds or 0.0,
            proven_bounds=dict(context.proven_bounds),
            module=module,
            kernel_names=tuple(kernel_names),
        )


def skewed_tile_layout(tile: int) -> GroupBy:
    """A bank-conflict-free shared-memory layout for a ``tile x tile`` buffer.

    The skew ``(i, j) -> i * tile + (i + j) % tile`` is a bijection on the
    tile that places the elements of each *column* in distinct banks, so the
    transposed read out of shared memory is conflict-free.  The permutation
    functions are polymorphic: called with integers they evaluate concretely,
    called with symbolic variables they produce the index expression that the
    MLIR backend lowers.
    """

    def skew(i, j):
        return i * tile + (i + j) % tile

    def skew_inv(flat):
        i = flat // tile
        j = (flat % tile - i) % tile
        return (i, j)

    perm = GenP([tile, tile], skew, skew_inv, name=f"skew{tile}")
    return GroupBy([tile, tile]).OrderBy(perm)


def generate_transpose_module(n: int, tile: int = 32, variant: str = "smem",
                              skew: bool = True) -> MlirKernel:
    """Build the MLIR module for a 2-D ``n x n`` transpose kernel.

    ``variant`` is ``"naive"`` (direct global-to-global copy with uncoalesced
    writes) or ``"smem"`` (staged through a shared-memory tile so both global
    accesses are coalesced).  With ``skew`` (the default) the shared tile
    uses the bank-conflict-free skewed layout; without it the tile is plain
    row-major, which serialises the transposed read — the configuration knob
    the layout autotuner sweeps.  The index expressions for the global and
    shared buffers are derived from LEGO layouts and simplified before
    emission, then generation flows through ``get_backend("mlir")``.
    """
    if n % tile != 0:
        raise ValueError(f"transpose size {n} must be a multiple of the tile {tile}")
    if variant not in ("naive", "smem"):
        raise ValueError(f"unknown transpose variant {variant!r}")

    # -- layouts ---------------------------------------------------------------
    data_layout = GroupBy([n, n]).OrderBy(Row(n, n))
    smem_layout = skewed_tile_layout(tile) if skew else GroupBy([tile, tile]).OrderBy(Row(tile, tile))

    # -- symbolic index expressions --------------------------------------------
    tx, ty, bx, by = Var("tx"), Var("ty"), Var("bx"), Var("by")
    # pre_expand="never" keeps the single simplify_fixpoint pass the MLIR
    # path has always used (and the golden files pin).
    ctx = CodegenContext(name=f"transpose_{variant}", pre_expand="never")
    ctx.index(tx, tile)
    ctx.index(ty, tile)
    ctx.index(bx, n // tile)
    ctx.index(by, n // tile)

    row = by * tile + ty
    col = bx * tile + tx
    ctx.bind("in_offset", data_layout.apply(row, col))
    required = ["in_offset", "out_offset"]
    if variant == "naive":
        ctx.bind("out_offset", data_layout.apply(col, row))
    else:
        # coalesced write: the block writes the transposed tile row-by-row
        out_row = bx * tile + ty
        out_col = by * tile + tx
        ctx.bind("out_offset", data_layout.apply(out_row, out_col))
        ctx.bind("smem_write", smem_layout.apply(ty, tx))
        ctx.bind("smem_read", smem_layout.apply(tx, ty))
        required += ["smem_write", "smem_read"]

    # -- module construction ------------------------------------------------------
    kernel_name = f"transpose_{variant}"

    def build(exprs: dict[str, Expr]) -> tuple[Module, tuple[str, ...]]:
        module = build_gpu_module(f"transpose_{variant}_{n}")
        buffer_type = MemRefType((n * n,), F32, memory_space=0)
        kernel = gpu.func(module, kernel_name, [buffer_type, buffer_type])
        builder = OpBuilder(kernel.body)

        values = {
            "tx": gpu.thread_id(builder, "x"),
            "ty": gpu.thread_id(builder, "y"),
            "bx": gpu.block_id(builder, "x"),
            "by": gpu.block_id(builder, "y"),
        }
        in_buffer, out_buffer = kernel.argument(0), kernel.argument(1)

        if variant == "naive":
            in_index = lower_expr_to_ops(builder, exprs["in_offset"], values, kernel_name)
            out_index = lower_expr_to_ops(builder, exprs["out_offset"], values, kernel_name)
            element = memref.load(builder, in_buffer, [in_index])
            memref.store(builder, element, out_buffer, [out_index])
        else:
            smem_type = MemRefType((tile * tile,), F32, memory_space=3)
            tile_buffer = memref.alloc(builder, smem_type)
            in_index = lower_expr_to_ops(builder, exprs["in_offset"], values, kernel_name)
            smem_write_index = lower_expr_to_ops(builder, exprs["smem_write"], values, kernel_name)
            element = memref.load(builder, in_buffer, [in_index])
            memref.store(builder, element, tile_buffer, [smem_write_index])
            gpu.barrier(builder)
            smem_read_index = lower_expr_to_ops(builder, exprs["smem_read"], values, kernel_name)
            out_index = lower_expr_to_ops(builder, exprs["out_offset"], values, kernel_name)
            staged = memref.load(builder, tile_buffer, [smem_read_index])
            memref.store(builder, staged, out_buffer, [out_index])
        gpu.return_(builder)
        return module, (kernel_name,)

    from .backend import get_backend

    return get_backend("mlir").generate(kernel_name, build, ctx, requires=required)
