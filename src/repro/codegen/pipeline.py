"""End-to-end code-generation pipeline helpers.

Gathers the pieces the evaluation section reports on:

* :class:`GenerationReport` — per-kernel generation/simplification latency
  (Table III) and index-expression operation counts before/after optimisation
  (Table IV);
* :func:`time_generation` — run a generator callable and capture its report;
* :func:`compare_expansion_strategies` — the Section IV-A ablation: simplify
  with and without pre-expansion and report both op counts (NW prefers the
  unexpanded form, LUD the expanded one).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..symbolic import (
    CACHE_STATS,
    CostWeights,
    Expr,
    SymbolicEnv,
    expand,
    operation_count,
    simplify_fixpoint,
)

__all__ = ["GenerationReport", "time_generation", "compare_expansion_strategies"]


@dataclass
class GenerationReport:
    """Latency, op-count and cache-effectiveness summary for one generated kernel."""

    name: str
    generation_seconds: float
    original_ops: int
    optimized_ops: int
    details: dict[str, object] = field(default_factory=dict)
    #: cache-counter increments observed while the kernel was generated
    #: (simplify/fixpoint/proof/range/print hits, misses and hit rates plus
    #: per-rule application counts; see ``repro.symbolic.cache_statistics``)
    cache_stats: dict[str, object] = field(default_factory=dict)

    @property
    def reduction(self) -> float:
        """Fractional reduction in index arithmetic (1.0 = everything removed)."""
        if self.original_ops == 0:
            return 0.0
        return 1.0 - self.optimized_ops / self.original_ops

    def cache_hit_rate(self, kind: str = "proof") -> float | None:
        """Hit rate of one memo layer (``simplify``/``fixpoint``/``proof``/``range``/``print``)."""
        value = self.cache_stats.get(f"{kind}_hit_rate")
        return value if isinstance(value, float) else None

    def row(self) -> tuple[str, float, int, int]:
        return (self.name, self.generation_seconds, self.original_ops, self.optimized_ops)


def time_generation(
    name: str,
    generator: Callable[[], object],
    require_bindings: bool = False,
) -> tuple[object, GenerationReport]:
    """Run ``generator`` and wrap its result in a :class:`GenerationReport`.

    The generator result may expose ``bindings`` (a mapping of
    :class:`repro.codegen.context.LoweredBinding`) — in that case the op
    counts are extracted automatically.  A result *without* usable bindings
    cannot report op counts; that raises when ``require_bindings`` is set and
    warns otherwise (the zeros in the report are "unknown", not "optimal").
    The report also carries the cache-counter increments observed during the
    run, so callers can see how much work the memo layers absorbed.
    """
    stats_before = CACHE_STATS.snapshot()
    started = time.perf_counter()
    result = generator()
    elapsed = time.perf_counter() - started
    stats_delta = CACHE_STATS.delta(stats_before, CACHE_STATS.snapshot())

    original_ops = 0
    optimized_ops = 0
    bindings = getattr(result, "bindings", None)
    if isinstance(bindings, Mapping):
        exprs = []
        for binding in bindings.values():
            original_ops += binding.raw_ops
            exprs.append(binding.expr)
        optimized_ops = operation_count(exprs)
    elif require_bindings:
        raise TypeError(
            f"time_generation({name!r}): generator result of type "
            f"{type(result).__name__} exposes no 'bindings' mapping, so op counts "
            "cannot be extracted"
        )
    else:
        warnings.warn(
            f"time_generation({name!r}): generator result exposes no 'bindings' "
            "mapping; reported op counts are 0 (unknown), not measured",
            stacklevel=2,
        )
    details: dict[str, object] = {}
    backend = getattr(result, "backend", "")
    if backend:
        details["backend"] = backend
    report = GenerationReport(
        name=name,
        generation_seconds=elapsed,
        original_ops=original_ops,
        optimized_ops=optimized_ops,
        details=details,
        cache_stats=stats_delta,
    )
    return result, report


def compare_expansion_strategies(
    expr: Expr,
    env: SymbolicEnv,
    weights: CostWeights | None = None,
) -> dict[str, int]:
    """Section IV-A ablation: op counts of the unexpanded vs expanded pipeline."""
    weights = weights or CostWeights()
    unexpanded = simplify_fixpoint(expr, env)
    expanded = simplify_fixpoint(expand(expr), env)
    return {
        "unexpanded": operation_count(unexpanded, weights),
        "expanded": operation_count(expanded, weights),
    }
