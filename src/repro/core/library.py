"""Library of reusable ``GenP`` permutations.

The paper's evaluation uses the anti-diagonal permutation (Figure 7, NW
benchmark) and mentions that LEGO "provides a foundation for other
commonly-used bijective layouts".  This module collects those building
blocks:

* :func:`antidiagonal` — Figure 7's anti-diagonal order of an ``n x n`` tile
  (used to remove shared-memory bank conflicts in NW),
* :func:`reverse_permutation` — reverse every dimension of a tile (the
  worked example of Figure 2),
* :func:`morton` — 2-D/3-D Morton (Z-order) curve for power-of-two tiles,
* :func:`xor_swizzle` — the XOR shared-memory swizzle used to avoid bank
  conflicts in staged tiles,
* :func:`hilbert2d` — 2-D Hilbert curve for power-of-two tiles.

Each factory returns a ready-to-use :class:`repro.core.perms.GenP`.  The C
source attached to :func:`antidiagonal` is emitted verbatim by the CUDA
backend (mirroring the paper's wrapper-class integration).
"""

from __future__ import annotations

import math
from itertools import product as iproduct

from .perms import GenP

__all__ = [
    "antidiagonal",
    "antidiag_index",
    "antidiag_index_inv",
    "reverse_permutation",
    "morton",
    "xor_swizzle",
    "hilbert2d",
]


# ---------------------------------------------------------------------------
# anti-diagonal (Figure 7)
# ---------------------------------------------------------------------------


def antidiag_index(n: int, i: int, j: int) -> int:
    """Position of ``(i, j)`` in the anti-diagonal order of an ``n x n`` tile.

    Direct transcription of the paper's Figure 7 (integer arithmetic).
    """
    antidg = i + j + 1
    if antidg <= n:
        return i + (antidg * (antidg - 1)) // 2
    antidg = 2 * n - antidg
    gauss = (antidg * (antidg - 1)) // 2
    return n * n - n + i - gauss


def antidiag_index_inv(n: int, x0: int) -> tuple[int, int]:
    """Inverse of :func:`antidiag_index` (Figure 7, right)."""
    S = n * (n + 1) // 2
    x = x0 if x0 < S else n * n - 1 - x0
    antidg = math.isqrt(2 * x)
    if x >= (antidg * (antidg + 1)) // 2:
        antidg += 1
    i = x - (antidg * (antidg - 1)) // 2
    j = antidg - i - 1
    if x0 < S:
        return (i, j)
    return (n - 1 - i, n - 1 - j)


_ANTIDIAG_C_SOURCE = """\
__device__ __forceinline__ int antidiag(int n, int i, int j) {
    int antidg = i + j + 1;
    if (antidg <= n) {
        return i + (antidg * (antidg - 1)) / 2;
    }
    antidg = 2 * n - antidg;
    int gauss = (antidg * (antidg - 1)) / 2;
    return n * n - n + i - gauss;
}
"""


def antidiagonal(n: int) -> GenP:
    """Anti-diagonal permutation of an ``n x n`` tile (paper Figure 7).

    Elements are laid out in the order in which they appear on the tile's
    ``2n - 1`` anti-diagonals; within an anti-diagonal they are ordered by
    row.  Consecutive elements of an anti-diagonal therefore land in distinct
    shared-memory banks, which is what removes the NW benchmark's conflicts.
    """

    def fwd(i, j):
        return antidiag_index(n, i, j)

    def inv(flat):
        return antidiag_index_inv(n, flat)

    return GenP([n, n], fwd, inv, name=f"antidiag{n}", c_source=_ANTIDIAG_C_SOURCE)


# ---------------------------------------------------------------------------
# per-dimension reversal (Figure 2's inner permutation)
# ---------------------------------------------------------------------------


def reverse_permutation(*shape) -> GenP:
    """Reverse every dimension of a tile.

    The worked example of Figure 2 reverses both dimensions of the inner
    ``3 x 2`` tiles: ``p(i, j) = (n1 - 1 - i) * n2 + (n2 - 1 - j)``.
    """
    if len(shape) == 1 and isinstance(shape[0], (list, tuple)):
        shape = tuple(shape[0])
    dims = tuple(int(d) for d in shape)

    def fwd(*coords):
        flat = 0
        for coord, size in zip(coords, dims):
            flat = flat * size + (size - 1 - coord)
        return flat

    def inv(flat):
        coords = []
        rest = flat
        for size in reversed(dims):
            coords.append(size - 1 - rest % size)
            rest //= size
        return tuple(reversed(coords))

    return GenP(dims, fwd, inv, name="reverse" + "x".join(map(str, dims)))


# ---------------------------------------------------------------------------
# Morton (Z-order) curves
# ---------------------------------------------------------------------------


def _interleave_bits(coords: tuple[int, ...], bits: int) -> int:
    out = 0
    rank = len(coords)
    for bit in range(bits):
        for axis in range(rank):
            out |= ((coords[axis] >> bit) & 1) << (bit * rank + (rank - 1 - axis))
    return out


def _deinterleave_bits(value: int, rank: int, bits: int) -> tuple[int, ...]:
    coords = [0] * rank
    for bit in range(bits):
        for axis in range(rank):
            coords[axis] |= ((value >> (bit * rank + (rank - 1 - axis))) & 1) << bit
    return tuple(coords)


def morton(side: int, rank: int = 2) -> GenP:
    """Morton (Z-order) permutation of a ``side^rank`` tile.

    ``side`` must be a power of two.  Morton order is the classic
    locality-preserving alternative to row-major cited in the paper's
    related work (Wise et al.).
    """
    if side <= 0 or side & (side - 1):
        raise ValueError(f"Morton order requires a power-of-two side, got {side}")
    bits = side.bit_length() - 1

    def fwd(*coords):
        return _interleave_bits(tuple(coords), bits)

    def inv(flat):
        return _deinterleave_bits(flat, rank, bits)

    return GenP([side] * rank, fwd, inv, name=f"morton{rank}d_{side}")


# ---------------------------------------------------------------------------
# XOR swizzle
# ---------------------------------------------------------------------------


def xor_swizzle(rows: int, cols: int) -> GenP:
    """XOR swizzle of a ``rows x cols`` tile: ``(i, j) -> i * cols + (j ^ (i % cols))``.

    The standard shared-memory swizzle: staging a tile through shared memory
    with the column index XOR-ed by the row removes bank conflicts on both
    the row-wise write and the column-wise read.  ``cols`` must be a power of
    two so the XOR stays in range.
    """
    if cols <= 0 or cols & (cols - 1):
        raise ValueError(f"xor_swizzle requires a power-of-two column count, got {cols}")

    def fwd(i, j):
        return i * cols + (j ^ (i % cols))

    def inv(flat):
        i = flat // cols
        j = (flat % cols) ^ (i % cols)
        return (i, j)

    return GenP([rows, cols], fwd, inv, name=f"xor_swizzle{rows}x{cols}")


# ---------------------------------------------------------------------------
# Hilbert curve (2-D)
# ---------------------------------------------------------------------------


def _hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    rx = ry = 0
    x = y = 0
    t = d
    s = 1
    while s < order:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def _hilbert_xy2d(order: int, x: int, y: int) -> int:
    d = 0
    s = order // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def hilbert2d(side: int) -> GenP:
    """Hilbert-curve permutation of a ``side x side`` tile (power-of-two side)."""
    if side <= 0 or side & (side - 1):
        raise ValueError(f"hilbert2d requires a power-of-two side, got {side}")

    def fwd(i, j):
        return _hilbert_xy2d(side, i, j)

    def inv(flat):
        return _hilbert_d2xy(side, flat)

    return GenP([side, side], fwd, inv, name=f"hilbert2d_{side}")
