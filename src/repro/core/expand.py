"""``ExpandBy``: partial-tile support beyond bijective layouts (Figure 9).

When the tile size does not evenly divide the problem size, the bijective
layout ``G`` is defined over an *expanded* space whose sizes are rounded up
to a multiple of the tile; ``ExpandBy`` performs the widening / narrowing
conversions between the original physical space and the expanded one:

* ``apply`` projects a logical index through ``G`` to a flat index in the
  expanded layout, unflattens it, accepts it only if the coordinates fall
  within the original extents and reports the flat position in the original
  space (otherwise ``-1`` — the out-of-bounds marker used for masking);
* ``inv`` lifts an original flat index into the expanded space and inverts
  through ``G``.

``apply_masked`` is the symbolic variant used by code generation: it returns
the (unguarded) original-space offset together with the bounds predicate, so
backends can emit a masked load/store (Triton ``mask=``, CUDA ``if``).
"""

from __future__ import annotations

from typing import Sequence

from ..symbolic import BoolAnd, Cmp, Expr
from .bijection import flatten_index, product, unflatten_index
from .blocks import GroupBy

__all__ = ["ExpandBy", "expanded_shape"]


def expanded_shape(shape: Sequence[int], tile: Sequence[int]) -> tuple[int, ...]:
    """Round every dimension of ``shape`` up to a multiple of ``tile``."""
    if len(shape) != len(tile):
        raise ValueError("shape and tile must have the same rank")
    out = []
    for size, t in zip(shape, tile):
        if t <= 0:
            raise ValueError(f"tile sizes must be positive, got {t}")
        out.append(((size + t - 1) // t) * t)
    return tuple(out)


class ExpandBy:
    """Partial-tile adapter around a bijective layout (paper Figure 9)."""

    def __init__(self, original: Sequence, expanded: Sequence, layout: GroupBy):
        self._original = tuple(original)
        self._expanded = tuple(expanded)
        self._layout = layout
        if len(self._original) != len(self._expanded):
            raise ValueError("original and expanded shapes must have the same rank")
        for orig, exp in zip(self._original, self._expanded):
            if isinstance(orig, int) and isinstance(exp, int) and exp < orig:
                raise ValueError(
                    f"expanded extent {exp} is smaller than the original extent {orig}"
                )
        if all(isinstance(d, int) for d in self._expanded) and isinstance(layout.size(), int):
            if product(self._expanded) != layout.size():
                raise ValueError(
                    "the expanded space must have exactly as many elements as the layout: "
                    f"{product(self._expanded)} != {layout.size()}"
                )

    @property
    def layout(self) -> GroupBy:
        return self._layout

    def original_dims(self) -> tuple:
        return self._original

    def expanded_dims(self) -> tuple:
        return self._expanded

    def original_size(self):
        return product(self._original)

    # -- concrete interface -----------------------------------------------------

    def apply(self, *index):
        """Logical index -> original-space flat position, or ``-1`` if padded."""
        if len(index) == 1 and isinstance(index[0], (list, tuple)):
            index = tuple(index[0])
        flat_expanded = self._layout.apply(*index)
        coords = unflatten_index(flat_expanded, self._expanded)
        for coord, extent in zip(coords, self._original):
            if isinstance(coord, int) and isinstance(extent, int):
                if coord >= extent:
                    return -1
            else:
                raise TypeError(
                    "ExpandBy.apply with symbolic coordinates cannot return -1; "
                    "use apply_masked for symbolic lowering"
                )
        return flatten_index(coords, self._original)

    def inv(self, flat):
        """Original-space flat position -> logical index."""
        coords = unflatten_index(flat, self._original)
        flat_expanded = flatten_index(coords, self._expanded)
        return self._layout.inv(flat_expanded)

    # -- symbolic interface -----------------------------------------------------

    def apply_masked(self, *index) -> tuple[object, object]:
        """Symbolic variant of :meth:`apply`.

        Returns ``(offset, in_bounds)`` where ``offset`` is the original-space
        flat position (meaningful only where ``in_bounds`` holds) and
        ``in_bounds`` is the conjunction of per-dimension bound checks.
        """
        if len(index) == 1 and isinstance(index[0], (list, tuple)):
            index = tuple(index[0])
        flat_expanded = self._layout.apply(*index)
        coords = unflatten_index(flat_expanded, self._expanded)
        guards = []
        for coord, extent in zip(coords, self._original):
            if isinstance(coord, int) and isinstance(extent, int):
                if coord >= extent:
                    guards.append(Cmp("<", coord, extent))
            else:
                guards.append(Cmp("<", coord, extent))
        offset = flatten_index(coords, self._original)
        if not guards:
            in_bounds: object = Cmp("<=", 0, 0)
        elif len(guards) == 1:
            in_bounds = guards[0]
        else:
            in_bounds = BoolAnd(*guards)
        return offset, in_bounds

    def __repr__(self) -> str:
        return (
            f"ExpandBy({list(self._original)}, {list(self._expanded)}, {self._layout!r})"
        )
