"""Syntactic sugar: ``Row``, ``Col``, ``TileBy``, ``TileOrderBy``.

Section III-B of the paper defines convenience constructors on top of the
core grammar.  ``Row`` and ``Col`` are row-/column-major orderings of a tile;
``TileBy`` builds the familiar hierarchical (blocked) tiling in one call;
``TileOrderBy`` additionally reorders each level with its own permutation.

Note on ``Col``: the paper's sugar table writes ``Col([n1..nd]) ==
RegP([nd..n1],[d..1])`` (tile shape *and* permutation both reversed), which
would make the block's logical space the reversed shape.  This reproduction
keeps the logical tile shape in logical order and only reverses the
permutation — ``Col([n1..nd]) == RegP([n1..nd],[d..1])`` — which is the
interpretation consistent with the paper's uses (``Col(K, N)`` for a
column-major ``K x N`` operand, and the grouped thread-block layout of
Figure 1 whose lowering must reproduce Figure 10).  The worked examples in
the test-suite check this against the paper's generated code.
"""

from __future__ import annotations

from typing import Sequence

from .blocks import GroupBy, OrderBy
from .perms import Perm, RegP

__all__ = ["Row", "Col", "TileBy", "TileOrderBy", "interleave_sigma"]


def _shape_from_args(args) -> tuple:
    """Accept ``Row(M, K)`` and ``Row([M, K])`` alike."""
    if len(args) == 1 and isinstance(args[0], (list, tuple)):
        return tuple(args[0])
    return tuple(args)


def Row(*shape) -> RegP:  # noqa: N802 - paper spelling
    """Row-major ordering of a tile: the identity permutation of dimensions."""
    dims = _shape_from_args(shape)
    return RegP(dims, list(range(1, len(dims) + 1)))


def Col(*shape) -> RegP:  # noqa: N802 - paper spelling
    """Column-major ordering of a tile: reverse the dimension order."""
    dims = _shape_from_args(shape)
    return RegP(dims, list(range(len(dims), 0, -1)))


def interleave_sigma(rank: int, levels: int) -> list[int]:
    """The ``sigma_{d x q}`` permutation of the paper's ``TileBy`` sugar.

    For ``d``-dimensional tiles on ``q`` levels, the logical dimension order
    is ``(level_1 dims..., level_2 dims..., ...)``; the permutation gathers
    them by dimension: ``A[k][h] = k + 1 + d*h`` flattened row-by-row, e.g.
    ``sigma_{2x3} = [1,3,5,2,4,6]`` and ``sigma_{3x2} = [1,4,2,5,3,6]``.
    """
    sigma: list[int] = []
    for k in range(rank):
        for h in range(levels):
            sigma.append(k + 1 + rank * h)
    return sigma


def TileBy(*levels) -> GroupBy:  # noqa: N802 - paper spelling
    """Hierarchical tiling of ``d`` dimensions on ``q`` levels.

    ``TileBy([M//BM, K//BK], [BM, BK])`` is the 4-D logical space of block
    coordinates and intra-block coordinates whose physical order interleaves
    the levels per dimension, i.e. the classic blocked layout.  Returns a
    :class:`GroupBy` so further ``.OrderBy`` calls can be chained.
    """
    if not levels:
        raise ValueError("TileBy requires at least one tile level")
    level_shapes = [tuple(level) if isinstance(level, (list, tuple)) else (level,) for level in levels]
    rank = len(level_shapes[0])
    for level in level_shapes:
        if len(level) != rank:
            raise ValueError(
                "all TileBy levels must share the same dimensionality; "
                f"got {[len(l) for l in level_shapes]}"
            )
    flat_shape: list = []
    for level in level_shapes:
        flat_shape.extend(level)
    sigma = interleave_sigma(rank, len(level_shapes))
    return GroupBy(flat_shape).OrderBy(RegP(flat_shape, sigma))


def TileOrderBy(*perms: Perm) -> GroupBy:  # noqa: N802 - paper spelling
    """Hierarchical-tiling reordering with a per-level permutation.

    Each argument is a permutation block describing one tile level; the
    resulting layout first reorders every level by its own permutation and
    then interleaves the levels per dimension exactly like :func:`TileBy`.
    """
    if not perms:
        raise ValueError("TileOrderBy requires at least one permutation block")
    rank = perms[0].rank
    for perm in perms:
        if perm.rank != rank:
            raise ValueError("all TileOrderBy levels must share the same dimensionality")
    flat_shape: list = []
    permuted_shape: list = []
    for perm in perms:
        flat_shape.extend(perm.dims())
        if isinstance(perm, RegP):
            permuted_shape.extend(perm.permuted_dims())
        else:
            permuted_shape.extend(perm.dims())
    sigma = interleave_sigma(rank, len(perms))
    layout = GroupBy(flat_shape).OrderBy(OrderBy(*perms))
    return layout.OrderBy(RegP(permuted_shape, sigma))
