"""Canonical bijections between multi-dimensional and flat index spaces.

The "mathematical glue" of the LEGO algebra (Section III-A of the paper) is
the pair of canonical bijections

* ``B``      — flatten a multi-dimensional index to a flat index, and
* ``B^{-1}`` — unflatten a flat index back to multi-dimensional coordinates,

for a given sequence of dimension sizes (row-major / lexicographic order,
innermost dimension fastest).  Every LEGO block composes its reorderings
through these bijections.

The helpers here are *generic over the index type*: coordinates and sizes may
be Python ints (concrete evaluation) or symbolic expressions from
:mod:`repro.symbolic` (lowering to code) — anything supporting ``+ * // %``.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["flatten_index", "unflatten_index", "product", "validate_index"]

T = TypeVar("T")


def product(sizes: Sequence) -> object:
    """Product of a sequence of sizes (ints or symbolic expressions)."""
    result = None
    for size in sizes:
        result = size if result is None else result * size
    return 1 if result is None else result


def flatten_index(index: Sequence, dims: Sequence) -> object:
    """The canonical bijection ``B``: multi-dimensional index -> flat index.

    ``B(i_1, ..., i_q) = i_1 * (n_2 * ... * n_q) + ... + i_{q-1} * n_q + i_q``.

    Works for concrete integers and symbolic expressions alike.
    """
    if len(index) != len(dims):
        raise ValueError(
            f"index has {len(index)} coordinates but the space has {len(dims)} dimensions"
        )
    if not dims:
        return 0
    flat = index[0]
    for coord, size in zip(index[1:], dims[1:]):
        flat = flat * size + coord
    return flat


def unflatten_index(flat, dims: Sequence) -> tuple:
    """The canonical bijection ``B^{-1}``: flat index -> multi-dimensional index.

    Implemented exactly as in Figure 4 of the paper: peel dimensions from the
    innermost outwards with ``%`` and ``//``.  Works for concrete integers and
    symbolic expressions alike (symbolic results are *not* simplified here;
    the code-generation pipeline simplifies them under its range assumptions).
    """
    if not dims:
        return ()
    coords = []
    rest = flat
    for size in reversed(dims[1:]):
        coords.append(rest % size)
        rest = rest // size
    coords.append(rest)
    return tuple(reversed(coords))


def validate_index(index: Sequence, dims: Sequence) -> None:
    """Raise ``IndexError`` when a *concrete* index is out of bounds.

    Symbolic coordinates are skipped — their validity is established by the
    range assumptions used during simplification.
    """
    if len(index) != len(dims):
        raise ValueError(
            f"index has {len(index)} coordinates but the space has {len(dims)} dimensions"
        )
    for axis, (coord, size) in enumerate(zip(index, dims)):
        if isinstance(coord, int) and isinstance(size, int):
            if coord < 0 or coord >= size:
                raise IndexError(
                    f"coordinate {coord} out of range for axis {axis} of extent {size}"
                )
