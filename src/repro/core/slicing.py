"""Slice-style indexing of layouts: ``DL[pid_m, k, :, :]``.

The LEGO/Triton integration introduces "specialized slicing syntax analogous
to NumPy's slice notation": indexing a layout with a mix of fixed coordinates
and ``:`` produces the symbolic memory offset of the selected tile, where
every ``:`` dimension becomes an *index atom* spanning that dimension.  The
Triton backend renders atoms as ``tl.arange(0, extent)`` with the broadcast
suffix determined by the atom's position among the sliced dimensions
(``[:, None]`` / ``[None, :]`` ...), and the CUDA backend renders them as the
loop/thread indices supplied by the caller.

``slice_layout`` is invoked by ``GroupBy.__getitem__`` and returns a
:class:`LayoutSlice` holding the raw (unsimplified) offset expression, the
atoms with their ranges, and the environment contributions needed by the
code-generation pipeline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from ..symbolic import Expr, PythonPrinter, SymbolicEnv, Var, as_expr
from .blocks import GroupBy

__all__ = ["IndexAtom", "LayoutSlice", "slice_layout"]


_printer = PythonPrinter()


def _sanitize(text: str) -> str:
    return re.sub(r"[^0-9a-zA-Z_]+", "_", text).strip("_")


@dataclass(frozen=True)
class IndexAtom:
    """A symbolic index spanning one sliced dimension of a layout."""

    var: Var
    extent: object  # int or Expr
    axis: int  # axis in the layout's logical shape
    position: int  # position among the sliced dimensions (broadcast order)
    total: int  # total number of sliced dimensions

    @property
    def name(self) -> str:
        return self.var.name

    def broadcast_suffix(self) -> str:
        """The NumPy/Triton broadcast suffix, e.g. ``[:, None]``."""
        if self.total <= 1:
            return ""
        parts = ["None"] * self.total
        parts[self.position] = ":"
        return "[" + ", ".join(parts) + "]"

    def triton_render(self) -> str:
        extent_text = _printer.doprint(as_expr(self.extent))
        base = f"tl.arange(0, {extent_text})"
        suffix = self.broadcast_suffix()
        if suffix:
            return f"(({base}){suffix})"
        return f"({base})"


@dataclass
class LayoutSlice:
    """The result of slicing a layout: a symbolic tile offset plus its atoms."""

    layout: GroupBy
    offset: Expr
    atoms: tuple[IndexAtom, ...]
    fixed: dict[int, object] = field(default_factory=dict)

    def atom_shape(self) -> tuple:
        """The extents of the sliced dimensions, in slicing order."""
        return tuple(atom.extent for atom in self.atoms)

    def contribute_env(self, env: SymbolicEnv) -> SymbolicEnv:
        """Register the atoms' index ranges into an assumption environment."""
        for atom in self.atoms:
            env.declare_index(atom.var, atom.extent)
        return env

    def default_env(self) -> SymbolicEnv:
        env = SymbolicEnv()
        return self.contribute_env(env)

    def substitutions(self, renders: dict[str, str] | None = None) -> dict[str, str]:
        """Variable-name -> source-text substitutions for printers.

        By default every atom renders as its Triton ``tl.arange`` expression;
        callers may override renderings per atom name (the CUDA backend maps
        atoms to thread indices this way).
        """
        out = {atom.name: atom.triton_render() for atom in self.atoms}
        if renders:
            out.update(renders)
        return out


def slice_layout(layout: GroupBy, items: Sequence) -> LayoutSlice:
    """Build the :class:`LayoutSlice` for ``layout[items...]``.

    Each element of ``items`` is one of:

    * an integer or symbolic expression — a fixed coordinate,
    * a string — shorthand for a named symbolic variable,
    * ``:`` (``slice(None)``) — the full dimension, producing an index atom,
    * ``slice(None, extent)`` — a prefix of the dimension of length ``extent``
      (the atom's extent is overridden; used for partial tiles).
    """
    shape = layout.dims()
    if len(items) != len(shape):
        raise ValueError(
            f"layout has {len(shape)} logical dimensions but {len(items)} indices were given"
        )
    sliced_axes = [axis for axis, item in enumerate(items) if isinstance(item, slice)]
    total = len(sliced_axes)

    coords: list = []
    atoms: list[IndexAtom] = []
    fixed: dict[int, object] = {}
    for axis, item in enumerate(items):
        extent = shape[axis]
        if isinstance(item, slice):
            if item.start not in (None, 0) or item.step not in (None, 1):
                raise ValueError("only ':' and ':stop' slices are supported")
            if item.stop is not None:
                extent = item.stop
            position = sliced_axes.index(axis)
            extent_text = _sanitize(_printer.doprint(as_expr(extent)))
            var = Var(
                f"_sl{axis}_{extent_text}",
                meta={"range": (0, as_expr(extent) - 1)},
            )
            atom = IndexAtom(var=var, extent=extent, axis=axis, position=position, total=total)
            atoms.append(atom)
            coords.append(var)
        elif isinstance(item, str):
            var = Var(item)
            fixed[axis] = var
            coords.append(var)
        else:
            value = item if isinstance(item, int) else as_expr(item)
            fixed[axis] = value
            coords.append(value)

    offset = layout.apply(*coords)
    return LayoutSlice(layout=layout, offset=as_expr(offset), atoms=tuple(atoms), fixed=fixed)
