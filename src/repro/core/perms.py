"""Permutation blocks: ``RegP`` (regular) and ``GenP`` (general).

These are the leaves of the LEGO grammar (Figure 3 of the paper).  Both
expose the three-method interface used by the containing ``OrderBy``:

* ``apply(index) -> flat``  — logical tile coordinates to the reordered flat
  position within the tile,
* ``inv(flat) -> index``    — the reverse mapping,
* ``dims() -> shape``       — the logical tile shape.

``RegP`` permutes *dimensions* of the tile by a statically known permutation
``sigma`` (1-indexed, "gather" convention: the ``j``-th physical dimension is
the ``sigma[j]``-th logical dimension).  ``GenP`` reorders *elements* of the
tile by a pair of user-supplied functions implementing a bijection between
the tile's coordinates and its flat space.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .bijection import flatten_index, product, unflatten_index, validate_index

__all__ = ["Perm", "RegP", "GenP", "identity_permutation", "invert_permutation", "apply_permutation"]


def identity_permutation(rank: int) -> tuple[int, ...]:
    """The identity permutation ``[1, 2, ..., rank]`` (1-indexed)."""
    return tuple(range(1, rank + 1))


def invert_permutation(sigma: Sequence[int]) -> tuple[int, ...]:
    """Invert a 1-indexed permutation.

    Following the paper: "``sigma^{-1}`` is obtained by scattering
    ``[1, ..., d]`` at the positions of ``sigma``".
    """
    inverse = [0] * len(sigma)
    for position, target in enumerate(sigma, start=1):
        inverse[target - 1] = position
    return tuple(inverse)


def apply_permutation(seq: Sequence, sigma: Sequence[int]) -> tuple:
    """Gather ``seq`` by a 1-indexed permutation: ``out[j] = seq[sigma[j] - 1]``."""
    return tuple(seq[s - 1] for s in sigma)


def _check_permutation(sigma: Sequence[int], rank: int) -> tuple[int, ...]:
    sigma = tuple(int(s) for s in sigma)
    if sorted(sigma) != list(range(1, rank + 1)):
        raise ValueError(
            f"{list(sigma)} is not a permutation of [1..{rank}] "
            f"(tile has {rank} dimensions)"
        )
    return sigma


class Perm:
    """Base class of permutation blocks (the ``Prm`` nonterminal)."""

    def apply(self, index: Sequence):
        """Map logical tile coordinates to the reordered flat position."""
        raise NotImplementedError

    def inv(self, flat):
        """Map a reordered flat position back to logical tile coordinates."""
        raise NotImplementedError

    def dims(self) -> tuple:
        """The logical shape of the tile this permutation reorders."""
        raise NotImplementedError

    @property
    def rank(self) -> int:
        return len(self.dims())

    def size(self):
        """Number of elements in the tile."""
        return product(self.dims())


class RegP(Perm):
    """Regular permutation of tile *dimensions* by a constant permutation.

    ``RegP(tile, sigma).apply(i) = B_{sigma(tile)}(sigma(i))`` and
    ``inv(flat) = sigma^{-1}(B^{-1}_{sigma(tile)}(flat))`` — Figure 4 of the
    paper.  ``sigma`` is 1-indexed.
    """

    def __init__(self, tile: Sequence, sigma: Sequence[int] | None = None):
        self._tile = tuple(tile)
        if not self._tile:
            raise ValueError("RegP requires a non-empty tile shape")
        if sigma is None:
            sigma = identity_permutation(len(self._tile))
        self._sigma = _check_permutation(sigma, len(self._tile))
        self._sigma_inv = invert_permutation(self._sigma)

    @property
    def sigma(self) -> tuple[int, ...]:
        return self._sigma

    def dims(self) -> tuple:
        return self._tile

    def permuted_dims(self) -> tuple:
        """The tile shape in physical (permuted) order."""
        return apply_permutation(self._tile, self._sigma)

    def apply(self, index: Sequence):
        index = tuple(index)
        validate_index(index, self._tile)
        permuted_index = apply_permutation(index, self._sigma)
        return flatten_index(permuted_index, self.permuted_dims())

    def inv(self, flat):
        permuted_index = unflatten_index(flat, self.permuted_dims())
        return apply_permutation(permuted_index, self._sigma_inv)

    def __repr__(self) -> str:
        return f"RegP({list(self._tile)}, {list(self._sigma)})"


class GenP(Perm):
    """General (user-defined) permutation of tile *elements*.

    ``fn`` maps tile coordinates to a flat position inside the tile and
    ``fn_inv`` maps the flat position back; the user is responsible for these
    being mutually inverse bijections (the paper leaves this as a user
    obligation; :meth:`check_bijective` verifies it exhaustively for concrete
    tiles and is used by the test-suite and by ``Layout.verify()``).

    ``fn``/``fn_inv`` receive the coordinates / flat position as positional
    arguments.  The optional ``name`` is used for display and codegen; the
    optional ``c_source`` carries a C implementation emitted verbatim by the
    CUDA backend (as for the paper's Figure 7 anti-diagonal functions).
    """

    def __init__(
        self,
        tile: Sequence,
        fn: Callable,
        fn_inv: Callable,
        name: str | None = None,
        c_source: str | None = None,
    ):
        self._tile = tuple(tile)
        if not self._tile:
            raise ValueError("GenP requires a non-empty tile shape")
        self._fn = fn
        self._fn_inv = fn_inv
        self.name = name or getattr(fn, "__name__", "genp")
        self.c_source = c_source

    def dims(self) -> tuple:
        return self._tile

    def apply(self, index: Sequence):
        index = tuple(index)
        validate_index(index, self._tile)
        return self._fn(*index)

    def inv(self, flat):
        result = self._fn_inv(flat)
        if not isinstance(result, tuple):
            result = (result,)
        return result

    def check_bijective(self) -> bool:
        """Exhaustively verify that ``fn``/``fn_inv`` form a bijection.

        Only valid for fully concrete tile shapes.
        """
        dims = self.dims()
        if not all(isinstance(d, int) for d in dims):
            raise TypeError("check_bijective requires a concrete tile shape")
        total = 1
        for d in dims:
            total *= d
        seen: set[int] = set()
        from itertools import product as iproduct

        for coords in iproduct(*(range(d) for d in dims)):
            flat = self.apply(coords)
            if not isinstance(flat, int) or flat < 0 or flat >= total:
                return False
            if flat in seen:
                return False
            seen.add(flat)
            if tuple(self.inv(flat)) != coords:
                return False
        return len(seen) == total

    def __repr__(self) -> str:
        return f"GenP({list(self._tile)}, {self.name})"
