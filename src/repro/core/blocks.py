"""``OrderBy`` and ``GroupBy`` blocks — the heart of the LEGO algebra.

``GroupBy`` gives the logical view of an index space; a chain of ``OrderBy``
blocks reorders its elements (Figures 3–5 of the paper).  The user-facing
interface is:

* ``apply(index)`` — logical multi-dimensional index → flat physical position,
* ``inv(flat)``    — flat physical position → logical multi-dimensional index,
* ``dims()``       — the logical shape,
* ``OrderBy(...)`` — append another reordering (dot-chaining, Section III-B's
  "syntactic sugar": reorderings listed left-to-right are applied in that
  order, the last one being closest to physical memory).

Both directions accept concrete integers and symbolic expressions
(:mod:`repro.symbolic`); symbolic results are simplified by the
code-generation pipeline, not here.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Iterable, Sequence

from .bijection import flatten_index, product, unflatten_index, validate_index
from .perms import GenP, Perm, RegP

__all__ = ["OrderBy", "GroupBy"]


def _flatten_shape(parts: Iterable) -> tuple:
    """Accept ``[6, 4]`` or ``[2, 2], [3, 2]`` (several levels) and flatten."""
    flat: list = []
    for part in parts:
        if isinstance(part, (list, tuple)):
            flat.extend(part)
        else:
            flat.append(part)
    return tuple(flat)


def _as_perm(item) -> Perm:
    if isinstance(item, Perm):
        return item
    raise TypeError(
        f"OrderBy levels must be RegP/GenP permutation blocks, got {type(item).__name__}"
    )


class OrderBy:
    """A tiling hierarchy whose levels are reordered by permutations.

    ``OrderBy(P_1, ..., P_q)`` defines a ``q``-level hierarchy; ``P_1`` is the
    outermost level.  ``apply`` consumes a multi-index over the concatenation
    of the levels' tile shapes and produces a flat position; ``inv`` is the
    reverse (Figure 4 semantics).
    """

    def __init__(self, *perms: Perm):
        if not perms:
            raise ValueError("OrderBy requires at least one permutation block")
        self._perms = tuple(_as_perm(p) for p in perms)

    @property
    def perms(self) -> tuple[Perm, ...]:
        return self._perms

    def dims(self) -> tuple:
        out: list = []
        for perm in self._perms:
            out.extend(perm.dims())
        return tuple(out)

    def size(self):
        return product(self.dims())

    def apply(self, index: Sequence):
        index = tuple(index)
        dims = self.dims()
        if len(index) != len(dims):
            raise ValueError(
                f"OrderBy.apply expected {len(dims)} coordinates, got {len(index)}"
            )
        flat = 0
        offset = 0
        for perm in self._perms:
            rank = perm.rank
            current = index[offset : offset + rank]
            offset += rank
            current_flat = perm.apply(current)
            flat = current_flat + flat * perm.size()
        return flat

    def inv(self, flat):
        coords: tuple = ()
        rest = flat
        for perm in reversed(self._perms):
            size = perm.size()
            current_flat = rest % size
            rest = rest // size
            coords = tuple(perm.inv(current_flat)) + coords
        return coords

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self._perms)
        return f"OrderBy({inner})"


class GroupBy:
    """The top-level LEGO layout block.

    ``GroupBy(shape)`` defines the logical view; ``.OrderBy(...)`` appends
    reordering transformations.  Reorderings chain left-to-right in
    *application* order (the paper's dot notation): the first ``OrderBy``
    reshapes/reorders the logical view, the last one determines the physical
    order.

    The constructor also accepts several shape lists (one per tile level),
    which are concatenated — ``GroupBy([R, R], [T, T])`` is the 4-D logical
    space of an ``R x R`` grid of ``T x T`` tiles.
    """

    def __init__(self, *shape_parts, order_bys: Sequence[OrderBy] = ()):
        self._shape = _flatten_shape(shape_parts)
        if not self._shape:
            raise ValueError("GroupBy requires a non-empty logical shape")
        self._order_bys = tuple(order_bys)
        self._validate_sizes()

    # -- construction ----------------------------------------------------------

    def OrderBy(self, *perms) -> "GroupBy":  # noqa: N802 - paper spelling
        """Append a reordering transformation (dot-chaining)."""
        if len(perms) == 1 and isinstance(perms[0], OrderBy):
            order_by = perms[0]
        else:
            order_by = OrderBy(*perms)
        return GroupBy(self._shape, order_bys=self._order_bys + (order_by,))

    # lowercase alias for PEP 8-minded callers
    order_by = OrderBy

    def _validate_sizes(self) -> None:
        """Dynamically verify the size agreement required for bijectivity.

        Only enforced when all shapes involved are concrete integers (the
        paper notes the check "can be cheaply verified dynamically"); symbolic
        layouts defer the obligation to their range assumptions.
        """
        if not all(isinstance(d, int) for d in self._shape):
            return
        logical_size = product(self._shape)
        for order_by in self._order_bys:
            dims = order_by.dims()
            if not all(isinstance(d, int) for d in dims):
                continue
            if product(dims) != logical_size:
                raise ValueError(
                    f"OrderBy space {list(dims)} has {product(dims)} elements but the "
                    f"logical view {list(self._shape)} has {logical_size}"
                )

    # -- queries ---------------------------------------------------------------

    @property
    def order_bys(self) -> tuple[OrderBy, ...]:
        return self._order_bys

    def dims(self) -> tuple:
        return self._shape

    @property
    def rank(self) -> int:
        return len(self._shape)

    def size(self):
        return product(self._shape)

    # -- the bijection ----------------------------------------------------------

    def apply(self, *index):
        """Logical multi-dimensional index → flat physical position (Figure 5)."""
        if len(index) == 1 and isinstance(index[0], (list, tuple)):
            index = tuple(index[0])
        validate_index(index, self._shape)
        flat = flatten_index(index, self._shape)
        for order_by in self._order_bys:
            coords = unflatten_index(flat, order_by.dims())
            flat = order_by.apply(coords)
        return flat

    def inv(self, flat):
        """Flat physical position → logical multi-dimensional index (Figure 5)."""
        for order_by in reversed(self._order_bys):
            coords = order_by.inv(flat)
            flat = flatten_index(coords, order_by.dims())
        return unflatten_index(flat, self._shape)

    # -- indexing / slicing ------------------------------------------------------

    def __getitem__(self, item):
        """Slice-style indexing producing a symbolic offset expression.

        ``DL[pid_m, k, :, :]`` returns a :class:`repro.core.slicing.LayoutSlice`
        whose ``offset`` is the symbolic address of the selected tile, with
        ``:`` dimensions turned into index atoms (rendered as ``tl.arange``
        by the Triton backend).  See :mod:`repro.core.slicing`.
        """
        from .slicing import slice_layout

        if not isinstance(item, tuple):
            item = (item,)
        return slice_layout(self, item)

    # -- verification and visualisation helpers ----------------------------------

    def is_concrete(self) -> bool:
        return all(isinstance(d, int) for d in self._shape)

    def iter_logical_indices(self):
        """Iterate all logical indices (concrete layouts only)."""
        if not self.is_concrete():
            raise TypeError("iter_logical_indices requires a concrete layout")
        return iproduct(*(range(d) for d in self._shape))

    def verify(self) -> bool:
        """Exhaustively check bijectivity of a concrete layout.

        Checks that ``apply`` hits every flat position exactly once and that
        ``inv`` is its inverse — the correctness property of Section III-B.
        """
        if not self.is_concrete():
            raise TypeError("verify requires a concrete layout")
        total = self.size()
        seen: set[int] = set()
        for coords in self.iter_logical_indices():
            flat = self.apply(coords)
            if not isinstance(flat, int) or flat < 0 or flat >= total:
                return False
            if flat in seen:
                return False
            seen.add(flat)
            if tuple(self.inv(flat)) != tuple(coords):
                return False
        return len(seen) == total

    def permutation_vector(self):
        """Return ``perm`` with ``perm[logical_flat] = physical_flat`` (concrete only)."""
        import numpy as np

        if not self.is_concrete():
            raise TypeError("permutation_vector requires a concrete layout")
        out = np.empty(self.size(), dtype=np.int64)
        for coords in self.iter_logical_indices():
            out[flatten_index(coords, self._shape)] = self.apply(coords)
        return out

    def physical_table(self):
        """Return ``table`` with ``table[physical_flat] = logical_flat`` (concrete only).

        This is the presentation used by Figures 2 and 6 of the paper: the
        value stored at each physical position is the logical flat index of
        the element living there.
        """
        import numpy as np

        perm = self.permutation_vector()
        table = np.empty_like(perm)
        table[perm] = np.arange(len(perm))
        return table

    def physical_matrix(self, rows: int, cols: int):
        """The :meth:`physical_table` reshaped to ``rows x cols`` for display."""
        return self.physical_table().reshape(rows, cols)

    def __repr__(self) -> str:
        chain = "".join(f".OrderBy({', '.join(repr(p) for p in ob.perms)})" for ob in self._order_bys)
        return f"GroupBy({list(self._shape)}){chain}"
