"""Injective (non-bijective) layouts: broadcasting and even mappings.

Section III-D of the paper: "to accommodate injective layouts such as
broadcasting ``(i, j) -> i`` or ``(i, j) -> j`` and even-mapping ``i -> 2i``,
we restrict the language to exporting only ``apply`` (not ``inv``) and to
using exactly one ``GroupBy`` followed by an ``OrderBy`` of the same shape,
where that ``OrderBy`` contains a single ``GenP`` that may be injective."

:class:`InjectiveLayout` enforces exactly that restriction; the module also
provides factories for the three mappings the paper names.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .bijection import product, validate_index

__all__ = [
    "InjectiveLayout",
    "broadcast_rows",
    "broadcast_cols",
    "even_mapping",
]


class InjectiveLayout:
    """A layout exporting only ``apply``: one ``GroupBy`` + one injective ``GenP``.

    ``shape`` is the logical view and ``fn`` maps its coordinates to a flat
    physical position; ``fn`` need not be surjective, so ``inv`` is not
    available (calling it raises ``TypeError``).
    """

    def __init__(self, shape: Sequence, fn: Callable, name: str | None = None):
        self._shape = tuple(shape)
        if not self._shape:
            raise ValueError("InjectiveLayout requires a non-empty logical shape")
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "injective")

    def dims(self) -> tuple:
        return self._shape

    def size(self):
        return product(self._shape)

    def apply(self, *index):
        if len(index) == 1 and isinstance(index[0], (list, tuple)):
            index = tuple(index[0])
        validate_index(index, self._shape)
        return self._fn(*index)

    def inv(self, flat):  # pragma: no cover - deliberate error path
        raise TypeError(
            "injective layouts export only apply(); inv() is undefined "
            "(the mapping is not surjective)"
        )

    def check_injective(self) -> bool:
        """Exhaustively verify injectivity for a concrete logical shape."""
        from itertools import product as iproduct

        if not all(isinstance(d, int) for d in self._shape):
            raise TypeError("check_injective requires a concrete logical shape")
        seen: dict[object, tuple] = {}
        for coords in iproduct(*(range(d) for d in self._shape)):
            value = self.apply(coords)
            if value in seen and seen[value] != coords:
                return False
            seen[value] = coords
        return True

    def __repr__(self) -> str:
        return f"InjectiveLayout({list(self._shape)}, {self.name})"


def broadcast_rows(rows, cols) -> InjectiveLayout:
    """The broadcast ``(i, j) -> i``: every column reads the same row vector."""
    return InjectiveLayout((rows, cols), lambda i, j: i, name="broadcast_rows")


def broadcast_cols(rows, cols) -> InjectiveLayout:
    """The broadcast ``(i, j) -> j``: every row reads the same column vector."""
    return InjectiveLayout((rows, cols), lambda i, j: j, name="broadcast_cols")


def even_mapping(extent) -> InjectiveLayout:
    """The even mapping ``i -> 2i`` (stride-2 injection)."""
    return InjectiveLayout((extent,), lambda i: 2 * i, name="even_mapping")
