"""CuTe / Graphene-style shape-and-stride layouts (the comparison baseline).

Section III-C of the paper compares LEGO against the CuTe/Graphene shape
algebra, in which a layout is a list of ``(extent, stride)`` modes and the
memory offset of a coordinate is the dot product of coordinates and strides.
Table I lists the side-by-side specifications.  This module implements that
algebra so the reproduction can

* state the Table I comparison programmatically (``benchmarks/bench_table1``),
* machine-check that each pair of specifications describes the same mapping
  (:func:`equivalent`), and
* demonstrate the paper's expressiveness claim: :func:`strides_from_layout`
  recovers a stride-based description of any *affine* LEGO layout and proves
  (by failing) that the anti-diagonal layout admits none.
"""

from __future__ import annotations

from itertools import product as iproduct
from typing import Sequence

from .blocks import GroupBy

__all__ = ["StrideLayout", "strides_from_layout", "equivalent"]


def _flatten_modes(shape, stride) -> list[tuple[int, int]]:
    """Flatten possibly nested (CuTe-style) shape/stride tuples into modes."""
    modes: list[tuple[int, int]] = []
    if isinstance(shape, (list, tuple)):
        if not isinstance(stride, (list, tuple)) or len(shape) != len(stride):
            raise ValueError("shape and stride must have identical nesting structure")
        for s, d in zip(shape, stride):
            modes.extend(_flatten_modes(s, d))
    else:
        modes.append((int(shape), int(stride)))
    return modes


class StrideLayout:
    """A CuTe/Graphene layout: per-mode extents and strides.

    ``shape`` / ``stride`` may be nested tuples (CuTe's hierarchical modes);
    they are flattened left-to-right.  ``apply(coords)`` maps a logical
    coordinate (one per flattened mode, in the same left-to-right order) to a
    memory offset.
    """

    def __init__(self, shape, stride):
        self._modes = _flatten_modes(shape, stride)
        self.shape = tuple(extent for extent, _ in self._modes)
        self.stride = tuple(stride for _, stride in self._modes)

    @property
    def rank(self) -> int:
        return len(self._modes)

    def size(self) -> int:
        total = 1
        for extent, _ in self._modes:
            total *= extent
        return total

    def apply(self, *coords):
        if len(coords) == 1 and isinstance(coords[0], (list, tuple)):
            coords = tuple(coords[0])
        if len(coords) != self.rank:
            raise ValueError(f"expected {self.rank} coordinates, got {len(coords)}")
        offset = 0
        for coord, (extent, stride) in zip(coords, self._modes):
            if isinstance(coord, int) and (coord < 0 or coord >= extent):
                raise IndexError(f"coordinate {coord} out of range for extent {extent}")
            offset = offset + coord * stride
        return offset

    # -- convenience constructors ------------------------------------------------

    @staticmethod
    def row_major(*shape) -> "StrideLayout":
        if len(shape) == 1 and isinstance(shape[0], (list, tuple)):
            shape = tuple(shape[0])
        strides = []
        running = 1
        for extent in reversed(shape):
            strides.append(running)
            running *= extent
        return StrideLayout(tuple(shape), tuple(reversed(strides)))

    @staticmethod
    def column_major(*shape) -> "StrideLayout":
        if len(shape) == 1 and isinstance(shape[0], (list, tuple)):
            shape = tuple(shape[0])
        strides = []
        running = 1
        for extent in shape:
            strides.append(running)
            running *= extent
        return StrideLayout(tuple(shape), tuple(strides))

    def __repr__(self) -> str:
        return f"StrideLayout(shape={self.shape}, stride={self.stride})"


def strides_from_layout(layout: GroupBy) -> StrideLayout | None:
    """Recover a stride-based description of a concrete LEGO layout, if affine.

    Probes the layout at the origin and at a unit step along each logical
    dimension to propose strides, then verifies the affine formula over the
    whole space.  Returns ``None`` when the layout is not affine (e.g. the
    anti-diagonal layout of Figure 6), which is exactly the paper's
    "extended layout support" claim in machine-checkable form.
    """
    if not layout.is_concrete():
        raise TypeError("strides_from_layout requires a concrete layout")
    shape = layout.dims()
    origin = tuple(0 for _ in shape)
    base = layout.apply(*origin)
    strides = []
    for axis, extent in enumerate(shape):
        if extent == 1:
            strides.append(0)
            continue
        probe = list(origin)
        probe[axis] = 1
        strides.append(layout.apply(*probe) - base)
    candidate = StrideLayout(shape, tuple(strides))
    for coords in iproduct(*(range(d) for d in shape)):
        expected = layout.apply(*coords)
        got = base + candidate.apply(*coords)
        if expected != got:
            return None
    if base != 0:
        return None
    return candidate


def equivalent(layout: GroupBy, stride_layout: StrideLayout, coordinate_map=None) -> bool:
    """Check that a LEGO layout and a stride layout describe the same mapping.

    ``coordinate_map`` translates a LEGO logical coordinate into the stride
    layout's mode coordinates; by default the identity is used (both layouts
    must then have the same logical rank and shape).
    """
    if not layout.is_concrete():
        raise TypeError("equivalent requires a concrete layout")
    shape = layout.dims()
    for coords in iproduct(*(range(d) for d in shape)):
        mapped = coordinate_map(coords) if coordinate_map is not None else coords
        if layout.apply(*coords) != stride_layout.apply(*mapped):
            return False
    return True
