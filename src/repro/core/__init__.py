"""The LEGO layout algebra — the paper's primary contribution.

Public surface:

* grammar blocks — :class:`GroupBy`, :class:`OrderBy`, :class:`RegP`,
  :class:`GenP`, :class:`ExpandBy`, :class:`InjectiveLayout`;
* sugar — :func:`Row`, :func:`Col`, :func:`TileBy`, :func:`TileOrderBy`;
* permutation library — :func:`antidiagonal`, :func:`reverse_permutation`,
  :func:`morton`, :func:`xor_swizzle`, :func:`hilbert2d`;
* slicing — ``layout[pid, k, :, :]`` produces a :class:`LayoutSlice` with the
  symbolic tile offset used by the code generators;
* canonical bijections — :func:`flatten_index`, :func:`unflatten_index`;
* CuTe/Graphene comparison baseline — :class:`StrideLayout`,
  :func:`strides_from_layout`, :func:`equivalent`.

``Layout`` is an alias of :class:`GroupBy`, the user-facing layout object.
"""

from .bijection import flatten_index, product, unflatten_index, validate_index
from .perms import GenP, Perm, RegP, apply_permutation, identity_permutation, invert_permutation
from .blocks import GroupBy, OrderBy
from .sugar import Col, Row, TileBy, TileOrderBy, interleave_sigma
from .expand import ExpandBy, expanded_shape
from .injective import InjectiveLayout, broadcast_cols, broadcast_rows, even_mapping
from .library import (
    antidiag_index,
    antidiag_index_inv,
    antidiagonal,
    hilbert2d,
    morton,
    reverse_permutation,
    xor_swizzle,
)
from .slicing import IndexAtom, LayoutSlice, slice_layout
from .cute import StrideLayout, equivalent, strides_from_layout

#: the user-facing layout object (a ``GroupBy`` with a chain of reorderings)
Layout = GroupBy

__all__ = [
    "flatten_index",
    "unflatten_index",
    "validate_index",
    "product",
    "GenP",
    "Perm",
    "RegP",
    "apply_permutation",
    "identity_permutation",
    "invert_permutation",
    "GroupBy",
    "OrderBy",
    "Layout",
    "Row",
    "Col",
    "TileBy",
    "TileOrderBy",
    "interleave_sigma",
    "ExpandBy",
    "expanded_shape",
    "InjectiveLayout",
    "broadcast_rows",
    "broadcast_cols",
    "even_mapping",
    "antidiagonal",
    "antidiag_index",
    "antidiag_index_inv",
    "reverse_permutation",
    "morton",
    "xor_swizzle",
    "hilbert2d",
    "IndexAtom",
    "LayoutSlice",
    "slice_layout",
    "StrideLayout",
    "strides_from_layout",
    "equivalent",
]
