"""Benchmark harness: regenerate every table and figure of the evaluation.

:mod:`repro.bench.figures` exposes one function per experiment (``table1``
... ``table5``, ``fig11`` ... ``fig13``), each returning plain Python data
(lists of dict rows) so it can be asserted on in tests, rendered by the
pytest-benchmark harnesses in ``benchmarks/``, or pretty-printed by
:func:`repro.bench.harness.format_table`.
"""

from .harness import ExperimentResult, format_series, format_table
from . import figures, roofline

__all__ = ["ExperimentResult", "format_table", "format_series", "figures", "roofline"]
