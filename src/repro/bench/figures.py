"""One entry point per table/figure of the paper's evaluation section.

Every function returns an :class:`~repro.bench.harness.ExperimentResult`
whose rows reproduce the corresponding table/figure series.  Absolute times
come from the analytic device model (DESIGN.md documents the substitution);
the assertions in ``tests/test_experiments.py`` and the narrative in
EXPERIMENTS.md focus on the *shape* the paper reports — who wins, by what
factor, and where the crossovers fall.
"""

from __future__ import annotations

import time

from ..apps import grouped_gemm, layernorm, lud, matmul, nw, softmax, stencil, transpose
from ..core import Col, GenP, GroupBy, RegP, Row, TileBy, antidiagonal, equivalent, StrideLayout
from ..symbolic import SymbolicEnv, Var, brute_force_check, simplify_fixpoint, symbols
from ..symbolic.expr import FloorDiv, Mod
from .harness import ExperimentResult

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig11",
    "fig12a",
    "fig12b",
    "fig12c",
    "fig13",
    "all_experiments",
]


# ---------------------------------------------------------------------------
# Table I — LEGO vs CuTe/Graphene layout specifications
# ---------------------------------------------------------------------------


def table1() -> ExperimentResult:
    """Machine-check that each LEGO layout matches its CuTe/Graphene strides."""
    rows = []

    # Figure 1 data layout: (M/BM, K/BK, BM, BK) tiles of a row-major matrix
    m, k, bm, bk = 8, 6, 4, 3
    lego_fig1 = TileBy([m // bm, k // bk], [bm, bk]).OrderBy(Row(m, k))
    cute_fig1 = StrideLayout((m // bm, k // bk, bm, bk), (k * bm, bk, k, 1))
    rows.append({"figure": "1", "lego_matches_cute": equivalent(lego_fig1, cute_fig1)})

    # Figure 6 (middle): 6x6 tiled as a 2x2 grid of 3x3 blocks.  The strides
    # describe the *reordered* (tile-contiguous) buffer LEGO produces: 18
    # between block rows, 9 between block columns, 3 between rows in a block.
    lego_fig6 = GroupBy([6, 6]).OrderBy(RegP([2, 3, 2, 3], [1, 3, 2, 4]))
    cute_fig6 = StrideLayout(((2, 2), (3, 3)), ((18, 9), (3, 1)))
    rows.append(
        {
            "figure": "6mid",
            "lego_matches_cute": equivalent(
                lego_fig6, cute_fig6, coordinate_map=lambda c: (c[0] // 3, c[1] // 3, c[0] % 3, c[1] % 3)
            ),
        }
    )

    # Figure 8: the 5-D bit layout that is non-contiguous in two dimensions
    lego_fig8 = GroupBy([2, 2, 2, 2, 2]).OrderBy(RegP([2, 2, 2, 2, 2], [5, 2, 4, 3, 1]))
    cute_fig8 = StrideLayout((2, 2, 2, 2, 2), (1, 8, 2, 4, 16))
    rows.append({"figure": "8", "lego_matches_cute": equivalent(lego_fig8, cute_fig8)})

    # Figure 12b: the coarsened LUD thread layout
    r, t = 2, 4
    lego_12b = GroupBy([r, r], [t, t]).OrderBy(Row(r * t, r * t))
    cute_12b = StrideLayout((r, r, t, t), (r * t * t, t * t, t, 1))
    rows.append({"figure": "12b", "lego_matches_cute": equivalent(lego_12b, cute_12b)})

    # Figure 12c: the 3-D brick layout, checked from the grid's logical view
    n, b = 8, 4
    lego_12c = stencil.brick_layout(n, b)
    nb = n // b
    cute_12c = StrideLayout(
        (nb, nb, nb, b, b, b),
        (nb * nb * b ** 3, nb * b ** 3, b ** 3, b * b, b, 1),
    )
    rows.append(
        {
            "figure": "12c",
            "lego_matches_cute": equivalent(
                lego_12c,
                cute_12c,
                coordinate_map=lambda c: (c[0] // b, c[1] // b, c[2] // b, c[0] % b, c[1] % b, c[2] % b),
            ),
        }
    )

    # The anti-diagonal layout admits *no* stride-based description.
    from ..core import strides_from_layout

    antidiag = GroupBy([6, 6]).OrderBy(antidiagonal(6))
    rows.append({"figure": "6 antidiag", "lego_matches_cute": strides_from_layout(antidiag) is None})

    return ExperimentResult(
        experiment="Table I",
        description="LEGO vs CuTe/Graphene layout equivalence (and the non-strided anti-diagonal)",
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table II — division/modulo simplification rules
# ---------------------------------------------------------------------------


def table2() -> ExperimentResult:
    """Apply each Table II rewrite and validate it against the brute-force oracle."""
    d, q, r, x, a, n, y = symbols("d q r x a n y")
    env = SymbolicEnv()
    env.declare_size(d, a)
    env.declare_index(q, 64)
    env.declare_index(r, d)
    env.declare_index(x, a)
    env.declare_nonneg(n, y)

    cases = [
        ("(d*q + r) % d", Mod(d * q + r, d), r),
        ("(d*q + r) / d", FloorDiv(d * q + r, d), q),
        ("(x % d) / d", FloorDiv(Mod(x, d), d), 0),
        ("x / a", FloorDiv(x, a), 0),
        ("x % a", Mod(x, a), x),
        ("(n + y) / 1", FloorDiv(n + y, 1), n + y),
        ("a*(x/a) + x%a", a * FloorDiv(x, a) + Mod(x, a), x),
    ]
    domains = {"d": range(1, 5), "q": range(0, 4), "r": range(0, 4), "x": range(0, 4),
               "a": range(1, 5), "n": range(0, 4), "y": range(0, 4)}
    rows = []
    for pattern, expr, expected in cases:
        simplified = simplify_fixpoint(expr, env)
        expected_expr = simplify_fixpoint(expected, env)
        # the oracle only evaluates assignments consistent with the ranges
        restricted = {k: v for k, v in domains.items() if k in (expr.free_vars() | expected_expr.free_vars())}
        restricted_valid = _restrict_table2_domain(pattern, restricted)
        oracle = brute_force_check(expr, restricted_valid, equivalent_to=expected_expr)
        rows.append(
            {
                "pattern": pattern,
                "simplified": str(simplified),
                "matches_expected": simplified == expected_expr,
                "oracle_agrees": oracle,
            }
        )
    return ExperimentResult(
        experiment="Table II",
        description="Integer division and modulo simplification rules (range-proved)",
        rows=rows,
    )


def _restrict_table2_domain(pattern: str, domains: dict) -> dict:
    """Restrict brute-force domains to assignments satisfying the side conditions."""
    restricted = dict(domains)
    if pattern in ("(d*q + r) % d", "(d*q + r) / d"):
        # r ranges over [0, d); enumerating r < d only is handled by evaluating
        # with the smallest d = max(r)+1 guaranteed -- keep d >= 4 so r in [0,4) is valid
        restricted["d"] = range(4, 6)
    if pattern in ("x / a", "x % a"):
        restricted["a"] = range(4, 6)
    return restricted


# ---------------------------------------------------------------------------
# Table III — per-application code generation latency
# ---------------------------------------------------------------------------


def table3() -> ExperimentResult:
    """Wall-clock generation + simplification time for every application."""
    rows = []

    def timed(name, fn):
        started = time.perf_counter()
        fn()
        rows.append({"benchmark": name, "generation_seconds": time.perf_counter() - started})

    timed("Layernorm FWD + BWD", lambda: (layernorm.generate_layernorm_forward(),
                                           layernorm.generate_layernorm_backward()))
    timed("Grouped GEMM", grouped_gemm.generate_grouped_gemm_kernel)
    timed("Softmax", softmax.generate_softmax_kernel)
    timed("Matmul (each variant)", lambda: matmul.generate_matmul_kernel("nn"))
    timed("LUD", lambda: lud.generate_lud_internal_kernel(lud.LudConfig(1024, 64, 16)))
    timed("NW", lambda: nw.generate_nw_wrapper(16))
    timed("Bricks (Cube/Star)", lambda: stencil.brick_layout(512, 8))
    timed("Transpose (Naive/SMEM)", lambda: (transpose.generate_transpose(transpose.TransposeConfig(2048, 32), "naive"),
                                             transpose.generate_transpose(transpose.TransposeConfig(2048, 32), "smem")))
    return ExperimentResult(
        experiment="Table III",
        description="Per-application code generation and simplification latency",
        rows=rows,
        notes="Paper reports 0.05 s - 18 s on an Apple M2 Max; the ordering (softmax fastest, "
        "matmul/LUD ~1 s) is the comparable quantity here.",
    )


# ---------------------------------------------------------------------------
# Table IV — arithmetic operations before/after optimisation
# ---------------------------------------------------------------------------


def table4() -> ExperimentResult:
    """User-written index arithmetic: reference kernels vs LEGO specifications."""
    rows = [
        {"operator": "LayerNorm (FWD)", "original_ops": 6, "optimized_ops": 1},
        {"operator": "LayerNorm (BWD)", "original_ops": 4, "optimized_ops": 0},
        {"operator": "Softmax", "original_ops": 4, "optimized_ops": 0},
        {"operator": "Grouped GEMM", "original_ops": 20, "optimized_ops": 6},
        {
            "operator": "Matmul",
            "original_ops": matmul.reference_index_ops(),
            "optimized_ops": matmul.lego_spec_index_ops(),
        },
    ]
    return ExperimentResult(
        experiment="Table IV",
        description="Arithmetic ops the user must write, before and after LEGO",
        rows=rows,
        notes="Matmul row is measured from the kernel sources in this repository; the "
        "remaining rows restate the paper's counts for the corresponding Triton tutorials, "
        "whose LEGO specifications in repro.apps carry the same (near-zero) index arithmetic.",
    )


# ---------------------------------------------------------------------------
# Figure 11 — Triton benchmark suite
# ---------------------------------------------------------------------------


def fig11(sizes=(2048, 4096, 8192)) -> ExperimentResult:
    """LEGO vs Triton vs PyTorch/cuBLAS across the five Triton benchmarks."""
    rows = []
    for n in sizes:
        cfg = matmul.MatmulConfig(n, n, n)
        flops = 2.0 * n ** 3
        rows.append(
            {
                "size": n,
                "benchmark": "matmul_fp16",
                "lego_tflops": flops / matmul.matmul_performance(cfg, "lego") / 1e12,
                "triton_tflops": flops / matmul.matmul_performance(cfg, "triton") / 1e12,
                "cublas_tflops": flops / matmul.matmul_performance(cfg, "cublas") / 1e12,
            }
        )
        gcfg = grouped_gemm.GroupedGemmConfig(groups=8, M=n // 4, N=n // 4, K=n // 4)
        gflops = 8 * 2.0 * (n // 4) ** 3
        rows.append(
            {
                "size": n,
                "benchmark": "grouped_gemm",
                "lego_tflops": gflops / grouped_gemm.grouped_gemm_performance(gcfg, "lego") / 1e12,
                "triton_tflops": gflops / grouped_gemm.grouped_gemm_performance(gcfg, "triton") / 1e12,
                "cublas_tflops": gflops / grouped_gemm.grouped_gemm_performance(gcfg, "cublas") / 1e12,
            }
        )
        scfg = softmax.SoftmaxConfig(M=n, N=n)
        sbytes = 2.0 * 4.0 * n * n
        rows.append(
            {
                "size": n,
                "benchmark": "softmax",
                "lego_gbs": sbytes / softmax.softmax_performance(scfg, "lego") / 1e9,
                "triton_gbs": sbytes / softmax.softmax_performance(scfg, "triton") / 1e9,
                "pytorch_gbs": sbytes / softmax.softmax_performance(scfg, "pytorch") / 1e9,
            }
        )
        lcfg = layernorm.LayerNormConfig(M=n, N=n)
        for direction in ("forward", "backward"):
            passes = 3.0 if direction == "forward" else 4.0
            lbytes = passes * 4.0 * n * n
            rows.append(
                {
                    "size": n,
                    "benchmark": f"layernorm_{direction}",
                    "lego_gbs": lbytes / layernorm.layernorm_performance(lcfg, "lego", direction) / 1e9,
                    "triton_gbs": lbytes / layernorm.layernorm_performance(lcfg, "triton", direction) / 1e9,
                    "pytorch_gbs": lbytes / layernorm.layernorm_performance(lcfg, "pytorch", direction) / 1e9,
                }
            )
    return ExperimentResult(
        experiment="Figure 11",
        description="Triton benchmark suite: LEGO vs Triton vs PyTorch/cuBLAS",
        rows=rows,
        notes="LEGO tracks Triton everywhere; cuBLAS leads matmul at 2k and the gap closes by 8k; "
        "the fused kernels beat eager PyTorch on the normalisation benchmarks.",
    )


# ---------------------------------------------------------------------------
# Figure 12 — CUDA benchmarks
# ---------------------------------------------------------------------------


def fig12a(sizes=(2048, 4096, 8192, 16384)) -> ExperimentResult:
    """NW: row-major vs anti-diagonal shared-memory layout."""
    rows = [nw.nw_speedup(n, block=16, trace_n=128) for n in sizes]
    return ExperimentResult(
        experiment="Figure 12a",
        description="Needleman-Wunsch speedup from the anti-diagonal shared-memory layout",
        rows=rows,
        notes="Paper reports 1.4x-2.1x, growing with problem size.",
    )


def fig12b(n: int = 2048) -> ExperimentResult:
    """LUD: block size / thread-coarsening sweep, driven by the autotuner.

    The figure's hand-rolled configuration loop is now one instance of the
    reusable search: the registered LUD app's space narrowed to the exact
    grid the paper sweeps (LUD blocks 16/32/64, CUDA block fixed at 16x16).
    """
    from ..apps.registry import get_app
    from ..tune import Choice, sweep

    spec = get_app("lud")
    space = spec.space.subspace(
        block=(16, 32, 64), cuda_block=(16,),
        # pin the scaled-up space's satellite axes at their neutral values —
        # the figure sweeps the paper's grid, not the full tuning space
        smem_layout=("row",), panel_layout=("row",),
        unroll=(1,), prefetch=(0,), vector=(1,),
    ).extended(Choice("n", (n,)))
    result = sweep(spec, space=space)
    rows = [
        {
            "lud_block": c.config["block"],
            "cuda_block": c.config["cuda_block"],
            "coarsening": c.config["block"] // c.config["cuda_block"],
            "time_ms": c.milliseconds,
        }
        for c in result.evaluations
    ]
    return ExperimentResult(
        experiment="Figure 12b",
        description="LUD thread-coarsening-as-layout sweep (autotuned)",
        rows=rows,
        notes="Best configuration: LUD block 64, CUDA block 16x16, coarsening factor 4.",
    )


def fig12c(n: int = 512, brick: int = 8) -> ExperimentResult:
    """Stencils: array vs brick data layout, driven by the autotuner.

    One two-candidate layout sweep per stencil shape; the brick layout wins
    every one of them, which is the figure's result.
    """
    from ..apps.registry import get_app
    from ..tune import Choice, sweep

    app = get_app("stencil")
    rows = []
    for spec in stencil.STENCILS:
        space = app.space.subspace(
            layout=("array", "brick"), brick=(brick,), stencil=(spec.name,),
            brick_y=(brick,), brick_z=(brick,),
            coarsen=(1,), vector=(1,), unroll=(1,),
        ).extended(Choice("n", (n,)))
        result = sweep(app, space=space)
        times = {c.config["layout"]: c.time_seconds for c in result.evaluations}
        rows.append(
            {
                "stencil": spec.name,
                "points": spec.points,
                "n": n,
                "time_array": times["array"],
                "time_brick": times["brick"],
                "speedup": times["array"] / times["brick"],
            }
        )
    return ExperimentResult(
        experiment="Figure 12c",
        description="3-D stencils: brick layout speedup over the row-major array (autotuned)",
        rows=rows,
        notes="Paper reports 3.4x-3.9x across stencil types.",
    )


# ---------------------------------------------------------------------------
# Figure 13 — rooflines
# ---------------------------------------------------------------------------


def fig13(n_lud: int = 2048, n_stencil: int = 512) -> ExperimentResult:
    """Roofline points for the LUD and stencil configurations."""
    from .roofline import lud_roofline, stencil_roofline

    rows = lud_roofline(n_lud) + stencil_roofline(n_stencil)
    return ExperimentResult(
        experiment="Figure 13",
        description="Roofline placement of LUD and stencil variants",
        rows=rows,
        notes="Optimised layouts move each kernel up and toward its bound: higher achieved "
        "GFLOP/s at the same or higher arithmetic intensity.",
    )


# ---------------------------------------------------------------------------
# Table V — MLIR transpose
# ---------------------------------------------------------------------------


def table5(sizes=(2048, 4096, 8192)) -> ExperimentResult:
    """2-D transpose throughput: CUDA SDK vs LEGO-MLIR, naive vs staged."""
    rows = transpose.transpose_table(sizes)
    return ExperimentResult(
        experiment="Table V",
        description="MLIR transpose throughput (GB/s), naive vs shared-memory staged",
        rows=rows,
        notes="The staged variant is several times faster than the naive one and LEGO-MLIR "
        "holds a slight edge over the CUDA SDK baseline, as in the paper.",
    )


def all_experiments() -> list[ExperimentResult]:
    """Run every reproduced experiment (used by EXPERIMENTS.md regeneration)."""
    return [table1(), table2(), table3(), table4(), fig11(), fig12a(), fig12b(), fig12c(), fig13(), table5()]
