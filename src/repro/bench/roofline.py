"""Roofline series for Figure 13 (LUD and stencil variants)."""

from __future__ import annotations

from ..apps import lud, stencil
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, roofline_point

__all__ = ["lud_roofline", "stencil_roofline"]


def lud_roofline(n: int = 2048, device: DeviceSpec = A100_80GB) -> list[dict]:
    """Roofline points for the LUD configurations of Figure 12b."""
    rows = []
    for cfg in lud.lud_configurations(n):
        seconds = lud.lud_performance(cfg, device)
        flops = 2.0 / 3.0 * n ** 3
        # DRAM traffic falls with the block size: each internal-kernel block
        # re-reads two panels per step, i.e. ~3 * n^2 * (n / B) elements total.
        dram_bytes = 4.0 * 3.0 * n * n * (n / cfg.block)
        point = roofline_point(
            KernelCost(
                name=f"lud_b{cfg.block}",
                flops=flops,
                dram_bytes=dram_bytes,
                blocks=float((n // cfg.block) ** 2),
                threads_per_block=float(cfg.cuda_block ** 2),
                threads=float((n // cfg.block) ** 2 * cfg.cuda_block ** 2),
            ),
            device,
        )
        rows.append(
            {
                "kernel": f"LUD block {cfg.block} (coarsen {cfg.coarsening})",
                "arithmetic_intensity": point["arithmetic_intensity"],
                "achieved_gflops": flops / seconds / 1e9,
                "memory_roof_gflops": point["memory_roof_gflops"],
                "bound": point["bound"],
            }
        )
    return rows


def stencil_roofline(n: int = 512, brick: int = 8, device: DeviceSpec = A100_80GB) -> list[dict]:
    """Roofline points for every stencil in both layouts."""
    rows = []
    for spec in stencil.STENCILS:
        for layout in ("array", "brick"):
            seconds = stencil.stencil_performance(spec, n, layout, brick, device)
            cells = float(n) ** 3
            flops = cells * min(spec.points, 32)
            read_passes = 1.0 if layout == "brick" else 1.0 + 0.012 * (spec.points - 1)
            dram_bytes = cells * 4.0 * (read_passes + 1.0)
            rows.append(
                {
                    "kernel": f"{spec.name} ({layout})",
                    "arithmetic_intensity": flops / dram_bytes,
                    "achieved_gflops": flops / seconds / 1e9,
                    "memory_roof_gflops": flops / dram_bytes * device.dram_bandwidth_gbs,
                    "bound": "dram",
                }
            )
    return rows
