"""Small helpers shared by the per-figure/table reproduction entry points."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = ["ExperimentResult", "format_table", "format_series"]


@dataclass
class ExperimentResult:
    """One reproduced experiment: an identifier, rows of data, and notes."""

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list:
        return [row[name] for row in self.rows]

    def to_text(self) -> str:
        header = f"== {self.experiment}: {self.description}"
        body = format_table(self.rows)
        note = f"\n{self.notes}" if self.notes else ""
        return f"{header}\n{body}{note}"


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for rendered_row in rendered:
        lines.append("  ".join(rendered_row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable, ys: Iterable) -> str:
    """Render an (x, y) series as one text line per point."""
    pairs = ", ".join(f"{x}: {_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
