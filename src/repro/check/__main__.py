"""``python -m repro.check`` — the differential verification sweep.

Draws randomized valid configurations from every app's search space,
generates each kernel, executes it at small full-launch sizes on its
substrate and asserts the result against the app's NumPy reference model;
then fuzzes the symbolic layer.  Everything derives from the one ``--seed``,
so any printed failure reproduces exactly::

    PYTHONPATH=src python -m repro.check --apps all --samples 3 --seed 0

Writes a JSON artifact (default ``BENCH_check.json``) with per-app verified
counts and maximum observed errors — the executable counterpart of the
golden-kernel text suite, uploaded by the ``check-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..apps.registry import available_apps
from .fuzz import fuzz_symbolic
from .runner import check_all

__all__ = ["main", "run_sweep"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Differentially verify generated kernels against NumPy reference models.",
    )
    parser.add_argument("--apps", default="all",
                        help="comma-separated app names, or 'all' (default)")
    parser.add_argument("--samples", type=int, default=3,
                        help="randomly sampled configurations per app (default: 3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; every config draw and input buffer derives from it (default: 0)")
    parser.add_argument("--fuzz", type=int, default=150,
                        help="symbolic-layer fuzz trials (default: 150; 0 disables)")
    parser.add_argument("--json", default="BENCH_check.json", metavar="PATH", dest="json_path",
                        help="write the report here (default: BENCH_check.json; '-' disables)")
    return parser


def run_sweep(args: argparse.Namespace) -> dict:
    apps = available_apps() if args.apps == "all" else [a.strip() for a in args.apps.split(",") if a.strip()]
    results = check_all(apps, samples=args.samples, seed=args.seed)
    report: dict = {
        "seed": args.seed,
        "samples": args.samples,
        "apps": {},
        "failures": [],
    }
    verified = failed = skipped = 0
    for name, reports in results.items():
        passed = [r for r in reports if r.passed]
        bad = [r for r in reports if r.status == "failed"]
        skips = [r for r in reports if r.skipped]
        report["apps"][name] = {
            "configs": len(reports),
            "verified": len(passed),
            "failed": len(bad),
            "skipped": len(skips),
            "max_abs_error": max((r.max_abs_error for r in passed), default=0.0),
            "max_rel_error": max((r.max_rel_error for r in passed), default=0.0),
        }
        report["failures"].extend(r.as_dict() for r in bad)
        verified += len(passed)
        failed += len(bad)
        skipped += len(skips)
    if args.fuzz > 0:
        fuzz = fuzz_symbolic(trials=args.fuzz, seed=args.seed)
        report["fuzz"] = fuzz.as_dict()
        failed += len(fuzz.failures)
    # totals are assigned after the fuzz run so the artifact's `failed`
    # counts every failure source the `ok` verdict is based on
    report["verified"] = verified
    report["failed"] = failed
    report["skipped"] = skipped
    report["ok"] = failed == 0
    return report


def main(argv: list[str] | None = None) -> dict:
    args = _build_parser().parse_args(argv)
    report = run_sweep(args)
    for name, row in report["apps"].items():
        print(
            f"{name:>14}: {row['verified']}/{row['configs']} verified"
            f" ({row['skipped']} skipped, {row['failed']} failed)"
            f"  max_abs={row['max_abs_error']:.3g} max_rel={row['max_rel_error']:.3g}"
        )
    for failure in report["failures"]:
        print(f"FAILED {failure['app']} {failure['config']}: {failure['reason']} "
              f"(seed={failure['seed']})")
    if "fuzz" in report:
        fuzz = report["fuzz"]
        print(f"{'fuzz':>14}: {fuzz['trials']} trials x {len(fuzz['checked'])} properties, "
              f"{len(fuzz['failures'])} failures")
        for failure in fuzz["failures"]:
            print(f"FUZZ FAILED [{failure['property']}] {failure['expression']} "
                  f"{failure['bindings']}: {failure['detail']} (seed={failure['seed']})")
    print(f"seed={report['seed']} verified={report['verified']} "
          f"skipped={report['skipped']} failed={report['failed']} ok={report['ok']}")
    if args.json_path and args.json_path != "-":
        Path(args.json_path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


if __name__ == "__main__":
    sys.exit(0 if main()["ok"] else 1)
