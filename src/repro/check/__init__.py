"""Differential verification: execute every generated kernel, prove it right.

The subsystem that turns the repository's golden-*text* safety net into an
executable one:

* :mod:`repro.check.runner` — the differential runner: generate a kernel for
  an ``(app, config)`` pair, execute it at small full-launch sizes on its
  substrate (mini-Triton, mini-CUDA or the MLIR interpreter) and assert the
  result against the app's NumPy reference model
  (:attr:`~repro.apps.registry.AppSpec.reference`) within per-dtype
  tolerances, returning a structured :class:`CheckReport`;
* :mod:`repro.check.fuzz` — property-based fuzzing of the symbolic layer:
  random expression trees with random integer bindings assert that
  ``simplify`` / ``simplify_fixpoint`` / the Python printer / the full
  lowering path all preserve concrete evaluation;
* :func:`differential_verifier` — the hook ``CompileService(verify=...)``
  runs on the first compilation of each distinct kernel, and
  ``autotune(verify_top_k=...)`` runs on a sweep's winning configurations;
* ``python -m repro.check`` — the CLI sweep over apps x sampled configs
  (see :mod:`repro.check.__main__`).

Everything is seed-deterministic end to end: any failure reproduces from the
seed printed in its report.
"""

from .fuzz import FuzzFailure, FuzzReport, fuzz_symbolic, fuzz_trial, random_expr
from .runner import (
    TOLERANCES,
    CheckFailure,
    CheckReport,
    Tolerance,
    check_all,
    check_app,
    check_kernel,
    differential_verifier,
    resolve_case_kernel,
    run_check,
    sample_configs,
    stable_seed,
    tolerance_for,
)

__all__ = [
    "CheckFailure",
    "CheckReport",
    "Tolerance",
    "TOLERANCES",
    "tolerance_for",
    "stable_seed",
    "sample_configs",
    "resolve_case_kernel",
    "run_check",
    "check_kernel",
    "check_app",
    "check_all",
    "differential_verifier",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_symbolic",
    "fuzz_trial",
    "random_expr",
]
