"""Property-based fuzzing of the symbolic layer (the Table II substrate).

The paper's rewrite rules are pinned by targeted property tests; this module
complements them with randomized coverage: random :class:`~repro.symbolic.Expr`
trees over a small variable set, random integer bindings, and four properties
checked per trial —

* ``simplify(e, env)`` evaluates exactly like ``e`` under the bindings,
* ``simplify_fixpoint(e, env)`` likewise (the rules are sound to a fixpoint),
* the :class:`~repro.symbolic.PythonPrinter` round-trips: evaluating the
  printed text as Python reproduces the expression's value,
* the full lowering path (``lower_expression``: expand-vs-not variant
  selection plus simplification) preserves the value.

Floor-division and modulo denominators are wrapped in ``Max(.., 1)`` so every
generated tree is total over the sampled bindings — the same discipline the
layout algebra itself follows for its extents.

Seed discipline (the satellite contract): every trial derives its RNG from an
explicit integer seed recorded on any failure, with no module-level RNG state
anywhere, so ``fuzz_trial(reported_seed)`` replays one failure exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..codegen.context import lower_expression
from ..symbolic import (
    Const,
    Expr,
    Max,
    Min,
    PythonPrinter,
    SymbolicEnv,
    Var,
    simplify,
    simplify_fixpoint,
)
from .runner import stable_seed

__all__ = [
    "FUZZ_VARS",
    "FuzzFailure",
    "FuzzReport",
    "random_expr",
    "fuzz_trial",
    "fuzz_symbolic",
]

#: the variable alphabet of generated expressions
FUZZ_VARS = ("i", "j", "k", "m", "n")

#: bindings (and declared ranges) are drawn from this inclusive interval
VALUE_RANGE = (0, 12)

#: the properties one trial asserts, in evaluation order
PROPERTIES = ("simplify", "fixpoint", "printer", "lowering")


@dataclass(frozen=True)
class FuzzFailure:
    """One violated property, with everything needed to replay it."""

    trial: int
    seed: int
    property: str
    expression: str
    bindings: dict
    detail: str

    def as_dict(self) -> dict:
        return {
            "trial": self.trial,
            "seed": self.seed,
            "property": self.property,
            "expression": self.expression,
            "bindings": dict(self.bindings),
            "detail": self.detail,
        }


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    trials: int
    seed: int
    checked: dict = field(default_factory=dict)  # property -> assertions run
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "checked": dict(self.checked),
            "failures": [f.as_dict() for f in self.failures],
        }


def random_expr(rng: random.Random, depth: int = 4) -> Expr:
    """A random expression tree over :data:`FUZZ_VARS`.

    Division and modulo denominators are ``Max(sub, 1)`` — provably positive
    under range analysis, so the tree evaluates (and simplifies) without
    division-by-zero for any binding in :data:`VALUE_RANGE`.
    """
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.6:
            return Var(rng.choice(FUZZ_VARS))
        return Const(rng.randint(-3, 9))
    op = rng.choice(("add", "add", "mul", "mul", "sub", "div", "mod", "min", "max"))
    lhs = random_expr(rng, depth - 1)
    rhs = random_expr(rng, depth - 1)
    if op == "add":
        return lhs + rhs
    if op == "sub":
        return lhs - rhs
    if op == "mul":
        return lhs * rhs
    if op == "min":
        return Min(lhs, rhs)
    if op == "max":
        return Max(lhs, rhs)
    denominator = Max(rhs, 1)
    return lhs // denominator if op == "div" else lhs % denominator


def _draw_trial(trial_seed: int, depth: int) -> tuple[Expr, dict]:
    """The one place a trial's expression and bindings are derived from its
    seed — replay and reporting must never re-implement this sequence."""
    rng = random.Random(trial_seed)
    expr = random_expr(rng, depth)
    bindings = {name: rng.randint(*VALUE_RANGE) for name in FUZZ_VARS}
    return expr, bindings


def fuzz_trial(trial_seed: int, depth: int = 4) -> list[tuple[str, str]]:
    """Run one trial from its seed; returns ``(property, detail)`` violations.

    This is the replay entry point: feed it the ``seed`` printed on a
    :class:`FuzzFailure` and it rebuilds the identical expression, bindings
    and environment.
    """
    expr, bindings = _draw_trial(trial_seed, depth)
    env = SymbolicEnv()
    for name in FUZZ_VARS:
        env.declare_range(name, *VALUE_RANGE)
    expected = expr.evaluate(bindings)
    violations: list[tuple[str, str]] = []

    def check(prop: str, fn) -> None:
        try:
            got = fn()
        except Exception as exc:  # a crash is as much a soundness bug as a wrong value
            violations.append((prop, f"raised {type(exc).__name__}: {exc}"))
            return
        if got != expected:
            violations.append((prop, f"evaluated to {got}, expression gives {expected}"))

    check("simplify", lambda: simplify(expr, env).evaluate(bindings))
    check("fixpoint", lambda: simplify_fixpoint(expr, env).evaluate(bindings))
    check(
        "printer",
        lambda: eval(  # noqa: S307 - text printed from our own IR
            PythonPrinter().doprint(expr),
            {"__builtins__": {}, "min": min, "max": max},
            dict(bindings),
        ),
    )
    check("lowering", lambda: lower_expression(expr, env)[0].evaluate(bindings))
    if violations:
        # annotate with the replay material once, not per property
        printed = str(expr)
        violations = [
            (prop, f"{detail} [expr: {printed}; bindings: {bindings}]")
            for prop, detail in violations
        ]
    return violations


def fuzz_symbolic(trials: int = 200, seed: int = 0, depth: int = 4) -> FuzzReport:
    """Run ``trials`` randomized soundness trials of the symbolic layer."""
    report = FuzzReport(trials=trials, seed=seed, checked={prop: 0 for prop in PROPERTIES})
    for trial in range(trials):
        trial_seed = stable_seed(seed, "fuzz", trial)
        violations = fuzz_trial(trial_seed, depth)
        for prop in PROPERTIES:
            report.checked[prop] += 1
        if violations:
            expr, bindings = _draw_trial(trial_seed, depth)
        for prop, detail in violations:
            report.failures.append(
                FuzzFailure(
                    trial=trial,
                    seed=trial_seed,
                    property=prop,
                    expression=str(expr),
                    bindings=bindings,
                    detail=detail,
                )
            )
    return report
