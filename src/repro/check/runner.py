"""The differential runner: execute a generated kernel, prove it correct.

The golden-kernel tests pin correctness by byte-identical kernel *text*; a
rewrite-engine or backend bug that changes semantics while the goldens stay
untouched (a new simplify rule, a cost-weight variant flip) would ship
silently.  This module converts that textual safety net into an executable
one: every registered application carries a NumPy **reference model** and a
**check case** builder (:class:`~repro.apps.registry.AppSpec.reference` /
``check_case``), and :func:`run_check`

1. builds a small *full-launch* check case from a configuration (kernel
   -determining axes intact, problem sizes shrunk),
2. generates the kernel through the app's generator — or the compilation
   service when one is passed — regenerating at the check size when the
   downsizing changed a kernel-determining axis,
3. executes it on the matching substrate (Triton -> ``minitriton.launch``,
   CUDA -> ``minicuda``, MLIR -> ``mlir.interp``), refusing traces from
   sampled launches (partial grids must never be numerically compared),
4. asserts the output matches the reference within per-dtype tolerances and
   returns a structured :class:`CheckReport`.

Every check derives its inputs from ``(seed, app, configuration)`` through
SHA-256 — *never* from interpreter hash randomisation or module-level RNG
state — so any reported failure reproduces from the printed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..apps.registry import AppSpec, available_apps, get_app
from ..cache import stable_digest

__all__ = [
    "CheckFailure",
    "CheckReport",
    "Tolerance",
    "TOLERANCES",
    "tolerance_for",
    "stable_seed",
    "sample_configs",
    "resolve_case_kernel",
    "run_check",
    "check_kernel",
    "check_app",
    "check_all",
    "differential_verifier",
]


@dataclass(frozen=True)
class Tolerance:
    """Element-wise comparison bounds for one dtype family."""

    rtol: float
    atol: float
    #: integer outputs compare exactly; the error fields must be zero
    exact: bool = False


#: per-dtype comparison tolerances.  FP16 kernels accumulate in FP32 and the
#: reference models mirror that dtype path, so the bounds only need to absorb
#: reduction-order differences, not precision loss.
TOLERANCES: dict[str, Tolerance] = {
    "float16": Tolerance(rtol=1e-2, atol=1e-2),
    "float32": Tolerance(rtol=1e-4, atol=1e-5),
    "float64": Tolerance(rtol=1e-8, atol=1e-9),
}


def tolerance_for(dtype: np.dtype) -> Tolerance:
    """The comparison tolerance for one output dtype (integers: exact)."""
    dtype = np.dtype(dtype)
    if dtype.kind in "iub":
        return Tolerance(rtol=0.0, atol=0.0, exact=True)
    try:
        return TOLERANCES[dtype.name]
    except KeyError:
        raise ValueError(f"no differential-check tolerance registered for dtype {dtype.name!r}") from None


def stable_seed(*parts) -> int:
    """A process-stable 60-bit seed derived from JSON-serialisable parts.

    ``random.Random(obj)`` and ``hash(str)`` are randomised per interpreter;
    this routes through the project's canonical :func:`repro.cache.stable_digest`
    instead, so a printed seed reproduces the exact inputs anywhere.
    """
    return int(stable_digest({"seed_parts": parts})[:15], 16)


@dataclass
class CheckReport:
    """The structured outcome of one differential check."""

    app: str
    backend: str = ""
    #: the configuration the check was asked about (as sampled/submitted)
    config: dict = field(default_factory=dict)
    #: the resolved small full-launch configuration actually executed
    check_config: dict = field(default_factory=dict)
    status: str = "skipped"  # "passed" | "failed" | "skipped"
    reason: str = ""
    dtype: str = ""
    elements: int = 0
    max_abs_error: float = 0.0
    max_rel_error: float = 0.0
    rtol: float = 0.0
    atol: float = 0.0
    seed: int = 0
    kernel: str = ""
    #: extensive counters of the substrate trace (empty when none was produced)
    trace: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.status == "passed"

    @property
    def skipped(self) -> bool:
        return self.status == "skipped"

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "backend": self.backend,
            "config": dict(self.config),
            "check_config": dict(self.check_config),
            "status": self.status,
            "reason": self.reason,
            "dtype": self.dtype,
            "elements": self.elements,
            "max_abs_error": self.max_abs_error,
            "max_rel_error": self.max_rel_error,
            "rtol": self.rtol,
            "atol": self.atol,
            "seed": self.seed,
            "kernel": self.kernel,
            "trace": dict(self.trace),
        }

    def summary(self) -> str:
        """One log line: outcome, errors and the reproducing seed."""
        if self.status == "skipped":
            return f"{self.app} {self.config}: skipped ({self.reason})"
        detail = (
            f"max_abs={self.max_abs_error:.3g} max_rel={self.max_rel_error:.3g} "
            f"elements={self.elements} dtype={self.dtype} seed={self.seed}"
        )
        if self.status == "failed" and self.reason:
            detail = f"{self.reason}; {detail}"
        return f"{self.app} {self.config}: {self.status.upper()} ({detail})"


class CheckFailure(AssertionError):
    """A differential check failed; carries the :class:`CheckReport`."""

    def __init__(self, report: CheckReport):
        super().__init__(report.summary())
        self.report = report


#: trace attributes copied into the report, when the substrate provides them
_TRACE_COUNTERS = (
    "programs",
    "blocks",
    "executed_blocks",
    "load_elements",
    "store_elements",
    "load_bytes",
    "store_bytes",
    "flops",
)


def _trace_counters(trace) -> dict:
    counters = {}
    for name in _TRACE_COUNTERS:
        value = getattr(trace, name, None)
        if value is not None:
            counters[name] = float(value)
    return counters


def _resolve(app) -> AppSpec:
    return app if isinstance(app, AppSpec) else get_app(app)


def sample_configs(spec: AppSpec, samples: int, seed: int, label: str) -> list[dict]:
    """``samples`` random valid configs, the paper-preferred one always included.

    Random sampling alone could land every pick on evaluation-only baseline
    rows (e.g. the eager-framework implementations), and a sweep that
    executes zero kernels for an app verifies/measures nothing — so the
    first-enumerated configuration (apps list paper-preferred values first)
    is *prepended* when absent, never swapped in for a sampled config, so
    the randomized coverage stays at ``samples``.  ``label`` keeps the
    verification and profiling subsystems' draws independent under one seed.
    """
    configs = spec.space.sample(samples, random.Random(stable_seed(seed, spec.name, label)))
    preferred = next(iter(spec.space), None)
    if preferred is not None and preferred not in configs:
        configs = [preferred, *configs]
    return configs


def resolve_case_kernel(spec: AppSpec, case, config: Mapping, *, kernel=None, service=None):
    """Resolve the kernel a case executes with (shared with :mod:`repro.perf`).

    ``kernel`` is an already-compiled candidate (the service's
    first-compilation hook passes one); it is used directly when the case
    preserves its kernel-determining axes and regenerated otherwise — e.g.
    an MLIR module with the problem size baked into its memref types cannot
    execute a downsized case.  Fresh generation goes through ``service``
    when one is given (batching/dedup/caching), else inline through the
    app's generator; MLIR kernels restored from a durable cache tier carry
    only printed text, so a live twin is regenerated for the interpreter.
    """
    use = kernel
    if use is not None and spec.generate_config(case.config) != spec.generate_config(dict(config)):
        # the downsized case changed a kernel-determining axis: the supplied
        # kernel cannot execute it, regenerate a twin at the case size
        use = None
    if use is None and spec.generate is not None:
        if service is not None:
            from ..serve import CompileRequest

            use = service.compile(
                CompileRequest(app=spec.name, config=spec.generate_config(case.config))
            )
        else:
            use = spec.generate(case.config)
    if use is not None and spec.backend == "mlir" and getattr(use, "module", None) is None:
        # a kernel restored from the service's durable tier carries only its
        # printed text — no live module the interpreter can execute
        use = spec.generate(case.config) if spec.generate is not None else use
    return use


def _compare(report: CheckReport, actual, reference) -> CheckReport:
    actual = np.asarray(actual)
    reference = np.asarray(reference)
    if actual.shape != reference.shape:
        report.status = "failed"
        report.reason = f"shape mismatch: kernel {actual.shape} vs reference {reference.shape}"
        return report
    tolerance = tolerance_for(actual.dtype)
    report.dtype = actual.dtype.name
    report.elements = int(actual.size)
    report.rtol, report.atol = tolerance.rtol, tolerance.atol
    a64 = actual.astype(np.float64)
    r64 = reference.astype(np.float64)
    if actual.size:
        difference = np.abs(a64 - r64)
        report.max_abs_error = float(difference.max())
        denominator = np.maximum(np.abs(r64), np.finfo(np.float64).tiny)
        report.max_rel_error = float((difference / denominator).max())
    if tolerance.exact:
        ok = bool(np.array_equal(actual, reference))
    else:
        ok = bool(np.allclose(a64, r64, rtol=tolerance.rtol, atol=tolerance.atol))
    if ok:
        report.status = "passed"
    else:
        report.status = "failed"
        report.reason = "output disagrees with the reference model"
    return report


def _check(spec: AppSpec, config: Mapping, *, seed: int, kernel, service) -> CheckReport:
    from ..obs.trace import span

    with span("check.run", "check", app=spec.name, seed=seed) as root:
        report = _check_inner(spec, config, seed=seed, kernel=kernel, service=service)
        root.add(status=report.status)
    return report


def _check_inner(spec: AppSpec, config: Mapping, *, seed: int, kernel, service) -> CheckReport:
    report = CheckReport(app=spec.name, backend=spec.backend, config=dict(config), seed=seed)
    if spec.check_case is None or spec.reference is None:
        report.reason = "app registers no reference model / check case"
        return report
    rng = np.random.default_rng(stable_seed(seed, spec.name, {k: config[k] for k in sorted(config)}))
    try:
        case = spec.check_case(config, rng)
    except Exception as exc:  # a config the check builder cannot honour is a failure
        report.status = "failed"
        report.reason = f"check_case raised {type(exc).__name__}: {exc}"
        return report
    if case is None:
        report.reason = "configuration selects no executable kernel"
        return report
    report.check_config = dict(case.config)
    try:
        use = resolve_case_kernel(spec, case, config, kernel=kernel, service=service)
        if use is not None:
            report.kernel = getattr(use, "name", "") or ""
        output, trace = case.execute(use)
        if trace is not None:
            if getattr(trace, "sampled", False):
                raise ValueError(
                    "substrate trace reports a sampled launch; differential checks "
                    "must execute the full grid (partial results are not comparable)"
                )
            report.trace = _trace_counters(trace)
        reference = spec.reference(case.config, case.inputs)
    except Exception as exc:
        report.status = "failed"
        report.reason = f"{type(exc).__name__}: {exc}"
        return report
    return _compare(report, output, reference)


def run_check(app, config: Mapping, *, seed: int = 0, service=None) -> CheckReport:
    """Differentially check one ``(app, config)`` pair end to end.

    Generates the kernel (through ``service`` when given, else inline),
    executes the app's check case on its substrate and compares against the
    NumPy reference model.  Never raises on a mismatch — the outcome is the
    returned :class:`CheckReport` (use :func:`differential_verifier` for the
    raising form the compilation service hooks into).
    """
    return _check(_resolve(app), config, seed=seed, kernel=None, service=service)


def check_kernel(app, config: Mapping, kernel, *, seed: int = 0) -> CheckReport:
    """Differentially check an already-compiled kernel for ``config``.

    Used by the service's first-compilation hook: the freshly compiled
    kernel is executed directly when the check case preserves its
    kernel-determining axes, and a downsized twin is regenerated through the
    same generator otherwise.
    """
    return _check(_resolve(app), config, seed=seed, kernel=kernel, service=None)


def check_app(app, samples: int = 3, *, seed: int = 0, service=None) -> list[CheckReport]:
    """Check ``samples`` randomly drawn valid configurations of one app
    (:func:`sample_configs` keeps the paper-preferred one in the draw)."""
    spec = _resolve(app)
    configs = sample_configs(spec, samples, seed, "configs")
    return [_check(spec, config, seed=seed, kernel=None, service=service) for config in configs]


def check_all(
    apps: Sequence[str] | None = None,
    samples: int = 3,
    *,
    seed: int = 0,
    service=None,
) -> dict[str, list[CheckReport]]:
    """Sweep apps x sampled configs; returns reports grouped by app name."""
    names = list(apps) if apps else available_apps()
    return {name: check_app(name, samples, seed=seed, service=service) for name in names}


def differential_verifier(seed: int = 0):
    """A ``CompileService(verify=...)`` hook enforcing differential checks.

    Runs on the *first* compilation of each distinct kernel (cache hits and
    durable-tier restores were verified when first compiled); raises
    :class:`CheckFailure` so the offending request's future — and every
    deduplicated follower — surfaces the failure instead of a wrong kernel.
    Apps without a registered reference model pass through unchecked.
    """

    def verify(request, kernel) -> None:
        report = check_kernel(request.app, request.config, kernel, seed=seed)
        if report.status == "failed":
            raise CheckFailure(report)

    return verify
