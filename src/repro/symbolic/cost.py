"""Operation-count cost model for generated index expressions.

Section IV-A of the paper: expanding index expressions before simplification
sometimes exposes more simplification opportunities (LUD) and sometimes only
adds operations (NW).  LEGO therefore generates both variants, counts the
arithmetic operations in each, and emits the cheaper one.  Table IV reports
the op counts of user-specified index arithmetic before and after LEGO.

This module provides:

* :func:`operation_count` — count +, *, //, %, min/max and comparisons in one
  expression or a collection of expressions (duplicate sub-expressions that a
  backend compiler would CSE can optionally be counted once);
* :func:`choose_cheapest` — pick the lowest-cost variant from candidates;
* :class:`CostWeights` — optional per-operation weights (integer division and
  modulo are substantially more expensive than add/mul on GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .expr import Add, BoolAnd, BoolNot, BoolOr, Cmp, Const, Expr, FloorDiv, Max, Min, Mod, Mul, Var

__all__ = ["CostWeights", "operation_count", "choose_cheapest"]


@dataclass(frozen=True)
class CostWeights:
    """Per-operation weights used by :func:`operation_count`.

    The defaults weigh every operation equally, matching the paper's simple
    "count operations" model; ``gpu_default`` reflects the relative cost of
    integer division/modulo on NVIDIA hardware and is used by the ablation
    benchmark.
    """

    add: int = 1
    mul: int = 1
    floordiv: int = 1
    mod: int = 1
    minmax: int = 1
    cmp: int = 1
    boolean: int = 1

    @staticmethod
    def gpu_default() -> "CostWeights":
        return CostWeights(add=1, mul=1, floordiv=8, mod=8, minmax=2, cmp=1, boolean=1)


def _node_cost(node: Expr, weights: CostWeights) -> int:
    if isinstance(node, Add):
        return (len(node.args) - 1) * weights.add
    if isinstance(node, Mul):
        return (len(node.args) - 1) * weights.mul
    if isinstance(node, FloorDiv):
        return weights.floordiv
    if isinstance(node, Mod):
        return weights.mod
    if isinstance(node, (Min, Max)):
        return (len(node.args) - 1) * weights.minmax
    if isinstance(node, Cmp):
        return weights.cmp
    if isinstance(node, (BoolAnd, BoolOr)):
        return (len(node.args) - 1) * weights.boolean
    if isinstance(node, BoolNot):
        return weights.boolean
    return 0


def operation_count(
    exprs: Expr | Iterable[Expr],
    weights: CostWeights | None = None,
    share_common: bool = True,
) -> int:
    """Count the arithmetic operations needed to evaluate ``exprs``.

    When ``share_common`` is true (the default), syntactically identical
    sub-expressions are counted once across the whole collection — the Triton
    and CUDA compilers CSE these, and the paper's op counts (Table IV) reflect
    the user-visible arithmetic rather than a fully duplicated tree.
    """
    weights = weights or CostWeights()
    if isinstance(exprs, Expr):
        exprs = [exprs]
    total = 0
    seen: set[Expr] = set()
    for expr in exprs:
        for node in expr.walk():
            if share_common:
                if node in seen:
                    continue
                seen.add(node)
            total += _node_cost(node, weights)
    return total


def choose_cheapest(
    candidates: Sequence[tuple[str, Expr | Sequence[Expr]]],
    weights: CostWeights | None = None,
) -> tuple[str, Expr | Sequence[Expr], int]:
    """Pick the candidate with the lowest operation count.

    ``candidates`` is a sequence of ``(label, expression-or-expressions)``
    pairs; returns ``(label, expressions, cost)`` of the winner.  Ties go to
    the earlier candidate, so callers should list the unexpanded variant
    first (matching the paper's preference when expansion does not help).
    """
    if not candidates:
        raise ValueError("choose_cheapest requires at least one candidate")
    weights = weights or CostWeights()
    best: tuple[str, Expr | Sequence[Expr], int] | None = None
    for label, exprs in candidates:
        group = [exprs] if isinstance(exprs, Expr) else list(exprs)
        cost = operation_count(group, weights)
        if best is None or cost < best[2]:
            best = (label, exprs, cost)
    assert best is not None
    return best
