"""Symbolic interval ranges and the assumption environment.

Layout lowering produces index expressions whose validity conditions involve
*symbolic* bounds: an index atom produced by ``tl.arange(0, BK)`` lies in
``[0, BK - 1]`` where ``BK`` is a compile-time-constant *symbol*, not a
number.  The paper propagates such ranges through the layout and discharges
the side conditions of its simplification rules (Table II) with Z3.  This
module provides the reproduction's equivalent machinery:

* :class:`SymInterval` — an interval whose bounds are symbolic expressions
  (or ``None`` for unbounded ends),
* :class:`SymbolicEnv` — the assumption environment: per-variable ranges,
  divisibility facts (``BK`` divides ``K``) and helper constructors for the
  common "size symbol" (positive) and "index symbol" (``0 <= i < extent``)
  declarations,
* :meth:`SymbolicEnv.range_of` — sound symbolic interval for an arbitrary
  expression.

The structural non-negativity / positivity checks that make symbolic bound
comparisons possible live in :mod:`repro.symbolic.prover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from .expr import (
    Add,
    Const,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    as_expr,
)
from .stats import CACHE_STATS

__all__ = ["EnvCaches", "SymInterval", "SymbolicEnv"]


def _opt_expr(value) -> Optional[Expr]:
    if value is None:
        return None
    return as_expr(value)


@dataclass(frozen=True)
class SymInterval:
    """An integer interval whose endpoints may be symbolic expressions."""

    lo: Optional[Expr] = None
    hi: Optional[Expr] = None

    def __post_init__(self):
        object.__setattr__(self, "lo", _opt_expr(self.lo))
        object.__setattr__(self, "hi", _opt_expr(self.hi))

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def point(value: ExprLike) -> "SymInterval":
        e = as_expr(value)
        return SymInterval(e, e)

    @staticmethod
    def index(extent: ExprLike) -> "SymInterval":
        """Range of an index into a dimension of symbolic size ``extent``."""
        return SymInterval(Const(0), as_expr(extent) - 1)

    @staticmethod
    def positive() -> "SymInterval":
        return SymInterval(Const(1), None)

    @staticmethod
    def nonneg() -> "SymInterval":
        return SymInterval(Const(0), None)

    @staticmethod
    def top() -> "SymInterval":
        return SymInterval(None, None)

    # -- queries --------------------------------------------------------------

    def constant_bounds(self) -> tuple[Optional[int], Optional[int]]:
        """Return the bounds as plain ints where they are literal constants."""
        lo = self.lo.value if isinstance(self.lo, Const) else None
        hi = self.hi.value if isinstance(self.hi, Const) else None
        return lo, hi

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


class EnvCaches:
    """Every env-scoped memo family behind **one** invalidation epoch.

    The environment used to carry four parallel cache dicts, each cleared by
    hand when a fact changed; adding the index-range family would have made
    it five ways to forget one.  This object owns them all: ``invalidate()``
    bumps the single ``epoch`` (the number that feeds
    :attr:`SymbolicEnv.fingerprint`) and drops every family at once, so a
    cache entry in *any* family is always consistent with the facts in force
    when it was written.

    Families (all identity-keyed on ``Expr.expr_id``):

    * ``simplify`` — one-pass rewriter results (:mod:`.simplify`),
    * ``fixpoint`` — ``simplify_fixpoint`` chains,
    * ``proof`` — prover verdicts, keyed ``(kind tag, expr ids...)``,
    * ``range`` — :class:`SymInterval` results of :meth:`SymbolicEnv.range_of`,
    * ``indexrange`` — :class:`~repro.symbolic.indexrange.IndexRange`
      results of the stride-aware constant-bounds analysis.
    """

    __slots__ = ("epoch", "simplify", "fixpoint", "proof", "range", "indexrange")

    def __init__(self):
        self.epoch = 0
        self.simplify: dict[int, Expr] = {}
        self.fixpoint: dict[int, Expr] = {}
        self.proof: dict[tuple, bool] = {}
        self.range: dict[int, SymInterval] = {}
        self.indexrange: dict[int, object] = {}

    def families(self) -> tuple[dict, ...]:
        return (self.simplify, self.fixpoint, self.proof, self.range, self.indexrange)

    def invalidate(self) -> None:
        """A fact changed: bump the shared epoch, drop every family."""
        self.epoch += 1
        for family in self.families():
            family.clear()

    def copied(self) -> "EnvCaches":
        """A snapshot carrying the same epoch and entries (for env copies)."""
        new = EnvCaches()
        new.epoch = self.epoch
        new.simplify = dict(self.simplify)
        new.fixpoint = dict(self.fixpoint)
        new.proof = dict(self.proof)
        new.range = dict(self.range)
        new.indexrange = dict(self.indexrange)
        return new


class SymbolicEnv:
    """Assumption environment for symbolic simplification.

    The environment records, for each variable name:

    * a :class:`SymInterval` range (possibly with symbolic bounds), and

    separately a set of divisibility facts ``divisor | dividend`` supplied by
    the user (the paper's "users can provide their own constraints" hook) —
    these license rewrites such as ``(K // BK) * BK -> K``.

    Environments are mutated in place by the ``declare_*`` helpers; the
    layout-lowering context builds one environment per kernel.

    **Thread confinement.**  Unlike the intern table (which is lock-striped
    and shared by every thread), an environment and its memo caches are NOT
    internally synchronised: an instance must only be used by one thread at
    a time.  This is by construction in the concurrent compilation service —
    every compile request builds its own :class:`~repro.codegen.context.
    CodegenContext` and therefore its own environment inside one worker
    thread — and is the documented contract for any other caller.  Use
    :meth:`copy` to hand independent snapshots to multiple threads.
    """

    def __init__(self):
        self._ranges: dict[str, SymInterval] = {}
        self._divisibility: set[tuple[Expr, Expr]] = set()
        self._positive_exprs: set[Expr] = set()
        self._le_facts: list[tuple[Expr, Expr]] = []
        self._max_depth = 16
        # -- memoisation state (identity-keyed on Expr.expr_id) ---------------
        # Every declared fact can change what simplifies/proves, so any
        # mutation bumps the shared cache epoch and drops every family at
        # once (see :class:`EnvCaches`); an entry is therefore always
        # consistent with the facts in force when it was written.
        self.caches = EnvCaches()
        self._range_cutoff_events = 0

    # Back-compat aliases for the pre-unification attribute names; new code
    # should go through :attr:`caches` directly.
    @property
    def _simplify_cache(self) -> dict[int, Expr]:
        return self.caches.simplify

    @property
    def _fixpoint_cache(self) -> dict[int, Expr]:
        return self.caches.fixpoint

    @property
    def _proof_cache(self) -> dict[tuple, bool]:
        return self.caches.proof

    @property
    def _range_cache(self) -> dict[int, SymInterval]:
        return self.caches.range

    @property
    def _version(self) -> int:
        return self.caches.epoch

    @property
    def fingerprint(self) -> tuple[int, int]:
        """Identity + cache-epoch pair distinguishing assumption states."""
        return (id(self), self.caches.epoch)

    def _invalidate(self) -> None:
        """A fact changed: bump the shared epoch and drop every memo table."""
        self.caches.invalidate()

    # -- declarations ---------------------------------------------------------

    def declare_size(self, *names_or_vars) -> None:
        """Declare positive "size" symbols (tile sizes, problem sizes, ...)."""
        for item in names_or_vars:
            name = item.name if isinstance(item, Var) else str(item)
            if self._ranges.get(name) != SymInterval.positive():
                self._ranges[name] = SymInterval.positive()
                self._invalidate()

    def declare_index(self, name_or_var, extent: ExprLike) -> Var:
        """Declare an index symbol with range ``[0, extent - 1]``.

        Declaring an index over ``extent`` implicitly asserts the index space
        is non-empty, so the extent itself is recorded as a positive fact
        (needed e.g. for ``K // BK`` extents, whose positivity cannot be
        derived from ``K >= 1`` and ``BK >= 1`` alone).
        """
        if isinstance(name_or_var, Var):
            var = name_or_var
        else:
            var = Var(str(name_or_var))
        interval = SymInterval.index(extent)
        if self._ranges.get(var.name) != interval:
            self._ranges[var.name] = interval
            self._invalidate()
        extent_expr = as_expr(extent)
        if not isinstance(extent_expr, (Const, Var)) and extent_expr not in self._positive_exprs:
            self._positive_exprs.add(extent_expr)
            self._invalidate()
        return var

    def declare_positive(self, *exprs: ExprLike) -> None:
        """Record that each (possibly compound) expression is ``>= 1``."""
        for expr in exprs:
            expr = as_expr(expr)
            if isinstance(expr, Var):
                if expr.name not in self._ranges:
                    self._ranges[expr.name] = SymInterval.positive()
                    self._invalidate()
            elif expr not in self._positive_exprs:
                self._positive_exprs.add(expr)
                self._invalidate()

    def declare_le(self, lhs: ExprLike, rhs: ExprLike) -> None:
        """Record the user constraint ``lhs <= rhs`` (a relational fact).

        This is the paper's "users can provide their own constraints" hook;
        the prover uses these facts to cancel terms that pure interval
        reasoning cannot bound (e.g. ``min(GM, nt_m) * max(1, nt_m // GM) <=
        nt_m`` for the grouped thread-block layout of Figure 1).
        """
        fact = (as_expr(lhs), as_expr(rhs))
        if fact not in self._le_facts:
            self._le_facts.append(fact)
            self._invalidate()

    def is_declared_positive(self, expr: ExprLike) -> bool:
        """Was ``expr`` declared positive (directly or as an index extent)?"""
        return as_expr(expr) in self._positive_exprs

    def le_facts(self) -> tuple[tuple[Expr, Expr], ...]:
        """The declared relational ``lhs <= rhs`` facts."""
        return tuple(self._le_facts)

    def declare_range(self, name_or_var, lo, hi) -> Var:
        """Declare an arbitrary (possibly symbolic) range for a variable."""
        if isinstance(name_or_var, Var):
            var = name_or_var
        else:
            var = Var(str(name_or_var))
        interval = SymInterval(_opt_expr(lo), _opt_expr(hi))
        if self._ranges.get(var.name) != interval:
            self._ranges[var.name] = interval
            self._invalidate()
        return var

    def declare_nonneg(self, *names_or_vars) -> None:
        for item in names_or_vars:
            name = item.name if isinstance(item, Var) else str(item)
            if self._ranges.get(name) != SymInterval.nonneg():
                self._ranges[name] = SymInterval.nonneg()
                self._invalidate()

    def declare_divisible(self, dividend: ExprLike, divisor: ExprLike) -> None:
        """Record the fact ``divisor | dividend`` (divisor divides dividend)."""
        fact = (as_expr(dividend), as_expr(divisor))
        if fact not in self._divisibility:
            self._divisibility.add(fact)
            self._invalidate()

    def copy(self) -> "SymbolicEnv":
        new = SymbolicEnv()
        new._ranges = dict(self._ranges)
        new._divisibility = set(self._divisibility)
        new._positive_exprs = set(self._positive_exprs)
        new._le_facts = list(self._le_facts)
        # The copy holds exactly the same facts, so the memoised results are
        # still valid and carry over (they are invalidated independently).
        new.caches = self.caches.copied()
        return new

    def merged_with(self, other: "SymbolicEnv | None") -> "SymbolicEnv":
        if other is None:
            return self
        new = self.copy()
        new._ranges.update(other._ranges)
        new._divisibility.update(other._divisibility)
        new._positive_exprs.update(other._positive_exprs)
        for fact in other._le_facts:
            if fact not in new._le_facts:
                new._le_facts.append(fact)
        new._invalidate()
        return new

    # -- lookups --------------------------------------------------------------

    def range_of_var(self, name: str) -> SymInterval:
        bound = self._ranges.get(name)
        if bound is not None:
            return bound
        return SymInterval.top()

    def variables(self) -> Mapping[str, SymInterval]:
        return dict(self._ranges)

    def divisibility_facts(self) -> Iterable[tuple[Expr, Expr]]:
        return tuple(self._divisibility)

    def divides(self, divisor: Expr, dividend: Expr) -> bool:
        """Can we show that ``divisor`` evenly divides ``dividend``?"""
        divisor = as_expr(divisor)
        dividend = as_expr(dividend)
        if divisor == dividend:
            return True
        if isinstance(divisor, Const) and divisor.value in (1, -1):
            return True
        if isinstance(dividend, Const) and dividend.value == 0:
            return True
        if isinstance(divisor, Const) and isinstance(dividend, Const):
            return divisor.value != 0 and dividend.value % divisor.value == 0
        if (dividend, divisor) in self._divisibility:
            return True
        if isinstance(dividend, Mul):
            # d | (a * b * ...) when d divides one of the factors or d appears
            # literally among the factors.
            for factor in dividend.args:
                if factor == divisor or self.divides(divisor, factor):
                    return True
        if isinstance(dividend, Add):
            return all(self.divides(divisor, term) for term in dividend.args)
        return False

    # -- range analysis -------------------------------------------------------

    def range_of(self, expr: Expr, _depth: int = 0) -> SymInterval:
        """Compute a sound symbolic interval for ``expr`` (memoised).

        Results are cached per expression identity; a result computed under a
        depth cutoff (which conservatively widens to ``top``) is *not* cached
        so that a later shallow query is not poisoned by a deep one.
        """
        cached = self._range_cache.get(expr._id)
        if cached is not None:
            CACHE_STATS.range_hits += 1
            return cached
        cutoffs_before = self._range_cutoff_events
        result = self._range_of_dispatch(expr, _depth)
        if self._positive_exprs and expr in self._positive_exprs:
            lo = result.lo
            if lo is None or (isinstance(lo, Const) and lo.value < 1):
                result = SymInterval(Const(1), result.hi)
        if self._range_cutoff_events == cutoffs_before:
            CACHE_STATS.range_misses += 1
            self._range_cache[expr._id] = result
        return result

    def _range_of_dispatch(self, expr: Expr, _depth: int = 0) -> SymInterval:
        from .prover import is_nonneg, is_positive

        if _depth > self._max_depth:
            self._range_cutoff_events += 1
            return SymInterval.top()
        depth = _depth + 1

        if isinstance(expr, Const):
            return SymInterval.point(expr)
        if isinstance(expr, Var):
            bound = self._ranges.get(expr.name)
            if bound is not None:
                return bound
            meta_range = expr.meta.get("range")
            if isinstance(meta_range, tuple) and len(meta_range) == 2:
                return SymInterval(_opt_expr(meta_range[0]), _opt_expr(meta_range[1]))
            return SymInterval.top()
        if isinstance(expr, Add):
            # Every term is its own (trivial) bound, so a sum always has
            # symbolic bounds; tighter per-term bounds are used when known.
            lo: Optional[Expr] = Const(0)
            hi: Optional[Expr] = Const(0)
            for arg in expr.args:
                r = self.range_of(arg, depth)
                lo = lo + (r.lo if r.lo is not None else arg)
                hi = hi + (r.hi if r.hi is not None else arg)
            return SymInterval(lo, hi)
        if isinstance(expr, Mul):
            return self._range_of_mul(expr, depth)
        if isinstance(expr, FloorDiv):
            return self._range_of_floordiv(expr, depth)
        if isinstance(expr, Mod):
            return self._range_of_mod(expr, depth)
        if isinstance(expr, Min):
            return self._range_of_min(expr, depth)
        if isinstance(expr, Max):
            return self._range_of_max(expr, depth)
        # comparisons / boolean nodes take values in {0, 1}
        return SymInterval(Const(0), Const(1))

    def _range_of_mul(self, expr: Mul, depth: int) -> SymInterval:
        from .prover import is_nonneg

        # Pull out a literal constant coefficient to handle negation cleanly.
        const_coeff = 1
        rest: list[Expr] = []
        for arg in expr.args:
            if isinstance(arg, Const):
                const_coeff *= arg.value
            else:
                rest.append(arg)
        if not rest:
            return SymInterval.point(Const(const_coeff))
        rest_ranges = [self.range_of(a, depth) for a in rest]
        if not all(is_nonneg(a, self) for a in rest):
            return SymInterval.top()
        # All non-constant factors are non-negative, so the product is
        # monotone in each factor and every factor is its own trivial upper
        # bound when no tighter bound is known.
        lo: Optional[Expr] = Const(1)
        hi: Optional[Expr] = Const(1)
        for factor, r in zip(rest, rest_ranges):
            lo = None if (lo is None or r.lo is None) else Mul(lo, r.lo)
            hi = Mul(hi, r.hi if r.hi is not None else factor)
        if lo is None:
            lo = Const(0)
        if const_coeff >= 0:
            return SymInterval(
                Mul(const_coeff, lo),
                None if hi is None else Mul(const_coeff, hi),
            )
        # negative coefficient flips the interval
        return SymInterval(
            None if hi is None else Mul(const_coeff, hi),
            Mul(const_coeff, lo),
        )

    def _range_of_floordiv(self, expr: FloorDiv, depth: int) -> SymInterval:
        from .prover import is_nonneg, is_positive
        from .simplify import simplify

        num, den = expr.numerator, expr.denominator
        if is_nonneg(num, self) and is_positive(den, self):
            num_range = self.range_of(num, depth)
            hi: Optional[Expr] = None
            if num_range.hi is not None:
                # x <= hi  and  d >= 1  imply  x // d <= hi // d
                hi = simplify(FloorDiv(num_range.hi, den), self, _depth=depth)
            lo: Expr = Const(0)
            if num_range.lo is not None:
                den_range = self.range_of(den, depth)
                if den_range.hi is not None:
                    lo = simplify(FloorDiv(num_range.lo, den_range.hi), self, _depth=depth)
            return SymInterval(lo, hi)
        return SymInterval.top()

    def _range_of_mod(self, expr: Mod, depth: int) -> SymInterval:
        from .prover import is_nonneg, is_positive, prove_le

        value, modulus = expr.value_expr, expr.modulus
        if is_positive(modulus, self):
            value_range = self.range_of(value, depth)
            hi: Expr = modulus - 1
            if (
                value_range.hi is not None
                and is_nonneg(value, self)
                and prove_le(value_range.hi, modulus - 1, self)
            ):
                # the value never wraps: the mod is the identity on its range
                return SymInterval(value_range.lo or Const(0), value_range.hi)
            return SymInterval(Const(0), hi)
        return SymInterval.top()

    def _range_of_min(self, expr: Min, depth: int) -> SymInterval:
        from .prover import is_nonneg

        arg_ranges = [self.range_of(a, depth) for a in expr.args]
        # Upper bound: Min(args) <= Min of per-argument upper bounds; an
        # argument without a known bound is its own (trivial) upper bound, so
        # e.g. Min(GM, nt_m) with unbounded size symbols stays bounded by the
        # Min expression itself — which the relational prover can then use.
        hi_parts = [r.hi if r.hi is not None else arg for arg, r in zip(expr.args, arg_ranges)]
        hi: Optional[Expr] = Min(*hi_parts) if hi_parts else None
        lo: Optional[Expr] = None
        const_los = [r.lo for r in arg_ranges]
        if all(isinstance(b, Const) for b in const_los if b is not None) and all(
            b is not None for b in const_los
        ):
            lo = Const(min(b.value for b in const_los))  # type: ignore[union-attr]
        elif all(is_nonneg(a, self) for a in expr.args):
            lo = Const(0)
        return SymInterval(lo, hi)

    def _range_of_max(self, expr: Max, depth: int) -> SymInterval:
        arg_ranges = [self.range_of(a, depth) for a in expr.args]
        lo: Optional[Expr] = None
        for r in arg_ranges:
            if r.lo is not None:
                lo = r.lo if lo is None else Max(lo, r.lo)
        # Symmetric to Min: Max(args) <= Max of per-argument upper bounds,
        # falling back to the argument itself when its bound is unknown.
        hi_parts = [r.hi if r.hi is not None else arg for arg, r in zip(expr.args, arg_ranges)]
        hi: Optional[Expr] = Max(*hi_parts) if hi_parts else None
        const_his = [r.hi for r in arg_ranges]
        if all(b is not None and isinstance(b, Const) for b in const_his):
            hi = Const(max(b.value for b in const_his))  # type: ignore[union-attr]
        return SymInterval(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{k}: {v}" for k, v in sorted(self._ranges.items())]
        divs = [f"{d} | {x}" for (x, d) in self._divisibility]
        return "SymbolicEnv(" + "; ".join(parts + divs) + ")"
