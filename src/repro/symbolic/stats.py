"""Cache-hit accounting for the symbolic engine.

The hash-consed IR (:mod:`repro.symbolic.expr`) enables identity-keyed memo
tables throughout the stack: the rewrite engine, the fixpoint driver, the
prover and the range analysis all keep per-environment caches, and the code
printers keep per-instance caches.  This module centralises their hit/miss
counters so the code-generation pipeline can report cache effectiveness
(:class:`repro.codegen.pipeline.GenerationReport`) and the cache benchmark
can assert hit rates.

Counters are process-global and monotonically increasing; callers that want
a delta snapshot the counters before and after (see
:func:`CacheCounters.snapshot` and :func:`CacheCounters.delta`).

Concurrency: the counters are diagnostics, not control flow, so increments
are deliberately unlocked — under free-threaded contention an increment can
occasionally be lost, which keeps the symbolic hot path free of a global
lock.  Exact accounting under threads lives where it is load-bearing: the
compilation service's sharded kernel cache and :class:`~repro.serve.
ServiceStats` count under their own locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheCounters", "CACHE_STATS", "cache_statistics", "reset_cache_statistics"]


@dataclass
class CacheCounters:
    """Global hit/miss counters for every memoisation layer."""

    simplify_hits: int = 0
    simplify_misses: int = 0
    fixpoint_hits: int = 0
    fixpoint_misses: int = 0
    proof_hits: int = 0
    proof_misses: int = 0
    range_hits: int = 0
    range_misses: int = 0
    print_hits: int = 0
    print_misses: int = 0
    rule_applications: dict[str, int] = field(default_factory=dict)
    #: bumped by every :meth:`reset`; snapshots carry it so :meth:`delta`
    #: can tell that the counters were zeroed between two snapshots
    epoch: int = 0

    def count_rule(self, name: str) -> None:
        self.rule_applications[name] = self.rule_applications.get(name, 0) + 1

    def snapshot(self) -> dict[str, object]:
        """A plain-dict copy of the current counter values."""
        from .expr import intern_table_size

        return {
            "epoch": self.epoch,
            "simplify_hits": self.simplify_hits,
            "simplify_misses": self.simplify_misses,
            "fixpoint_hits": self.fixpoint_hits,
            "fixpoint_misses": self.fixpoint_misses,
            "proof_hits": self.proof_hits,
            "proof_misses": self.proof_misses,
            "range_hits": self.range_hits,
            "range_misses": self.range_misses,
            "print_hits": self.print_hits,
            "print_misses": self.print_misses,
            "rule_applications": dict(self.rule_applications),
            "interned_nodes": intern_table_size(),
        }

    @staticmethod
    def delta(before: dict[str, object], after: dict[str, object]) -> dict[str, object]:
        """Counter increments between two :meth:`snapshot` results.

        Reset-safe: when :meth:`reset` ran between the two snapshots (their
        ``epoch`` values differ) the ``before`` values are baselines of
        counters that have since been zeroed, so every counter's delta falls
        back to its ``after`` value — the exact count since the reset — and
        a third-party snapshot holder (a serve replay, a search sweep) can
        never observe a negative delta.  Remaining negatives from malformed
        inputs are clamped to zero for the same reason.
        """
        reset_between = after.get("epoch", 0) != before.get("epoch", 0)
        out: dict[str, object] = {}
        for key, after_value in after.items():
            if key == "epoch":
                continue
            before_value = 0 if reset_between else before.get(key, 0)
            if isinstance(after_value, dict):
                before_rules = before_value if isinstance(before_value, dict) else {}
                out[key] = {
                    name: max(0, count - before_rules.get(name, 0))
                    for name, count in after_value.items()
                    if count != before_rules.get(name, 0)
                }
            else:
                before_number = before_value if isinstance(before_value, (int, float)) else 0
                difference = after_value - before_number
                # the intern table is never reset, so its size may legally
                # shrink between snapshots only if the table itself could
                # evict; counters are monotonic within an epoch — clamp both
                out[key] = max(0, difference) if key != "interned_nodes" else difference
        for kind in ("simplify", "fixpoint", "proof", "range", "print"):
            hits = out.get(f"{kind}_hits", 0)
            total = hits + out.get(f"{kind}_misses", 0)
            out[f"{kind}_hit_rate"] = (hits / total) if total else 0.0
        return out

    def reset(self) -> None:
        self.simplify_hits = 0
        self.simplify_misses = 0
        self.fixpoint_hits = 0
        self.fixpoint_misses = 0
        self.proof_hits = 0
        self.proof_misses = 0
        self.range_hits = 0
        self.range_misses = 0
        self.print_hits = 0
        self.print_misses = 0
        self.rule_applications.clear()
        self.epoch += 1


#: the process-global counter instance used by every cache layer
CACHE_STATS = CacheCounters()


def cache_statistics() -> dict[str, object]:
    """Snapshot of the global cache counters (plus the intern-table size)."""
    return CACHE_STATS.snapshot()


def reset_cache_statistics() -> None:
    """Zero all global cache counters (the intern table is left alone).

    The reset is routed through the observability registry: the counters'
    epoch is bumped (so any snapshot taken before the reset deltas cleanly
    — see :meth:`CacheCounters.delta`) and the registry records the reset,
    keeping every absorbed-source consumer (serve replays, search sweeps)
    free of spurious negative rates mid-window.
    """
    CACHE_STATS.reset()
    from ..obs.metrics import REGISTRY

    REGISTRY.on_reset("repro.symbolic.cache")
