"""Side-condition prover for the division/modulo simplification rules.

The paper discharges the side conditions of Table II (non-negativity and
upper-bound checks over index ranges derived from the layout specification)
with the Z3 SMT solver.  This reproduction replaces Z3 with a purpose-built
prover that is complete for the queries layout lowering actually generates:

* **structural sign analysis** — sums/products/min/max/div/mod of expressions
  whose signs are known from the assumption environment,
* **bound propagation** — to prove ``a < b`` the prover compares ``b`` against
  the symbolic upper bound of ``a`` (and symmetrically), relying on the
  expression canonicaliser to cancel common terms such as ``BK - (BK - 1)``,
* **exhaustive checking** — :func:`brute_force_check` enumerates small
  concrete domains and is used by the test suite as an oracle that the
  symbolic reasoning is sound.

All functions return ``True`` only when the property is proven; ``False``
means "unknown", never "disproven".

Every public query is memoised on the environment's proof cache, keyed by
``(query kind, expression identity)`` — expressions are hash-consed, so the
same side condition asked again by a later simplification pass (the engine's
former hot spot) is a dictionary lookup.  The cache is dropped whenever a new
fact is declared on the environment.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Callable, Iterable, Mapping, Optional

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    as_expr,
)
from .stats import CACHE_STATS
from .symranges import SymbolicEnv

__all__ = [
    "is_nonneg",
    "is_positive",
    "is_nonzero",
    "prove_le",
    "prove_lt",
    "prove_in_bounds",
    "prove_nonneg",
    "prove_positive",
    "prove",
    "brute_force_check",
    "record_proof_queries",
]


# ---------------------------------------------------------------------------
# query recording (prover-completeness regression tests)
# ---------------------------------------------------------------------------

#: when a list, every public ``prove_*`` verdict is appended as
#: ``(kind, printed query, proven)`` — including cache hits, so a recorded
#: sweep sees the query mix the callers actually issue.
_QUERY_LOG: Optional[list] = None


@contextmanager
def record_proof_queries():
    """Collect every ``prove_*`` verdict fired while the context is active.

    Yields the live list of ``(kind, query, proven)`` tuples.  Used by the
    completeness regression test to compare the proven-rate of an 8-app
    generation sweep against a recorded baseline.  Nesting restores the
    previous recorder on exit.
    """
    global _QUERY_LOG
    previous = _QUERY_LOG
    log: list[tuple[str, str, bool]] = []
    _QUERY_LOG = log
    try:
        yield log
    finally:
        _QUERY_LOG = previous


def _record_query(kind: str, query: Callable[[], str], result: bool) -> bool:
    if _QUERY_LOG is not None:
        _QUERY_LOG.append((kind, query(), result))
    return result


def _var_lo_const(var: Var, env: SymbolicEnv) -> Optional[int]:
    lo = env.range_of_var(var.name).lo
    if isinstance(lo, Const):
        return lo.value
    return None


# proof-cache key tags (paired with expression ids)
_NONNEG, _POSITIVE, _NONZERO, _LE, _PROVE_NONNEG, _PROVE_POSITIVE = range(6)


def is_nonneg(expr: ExprLike, env: SymbolicEnv) -> bool:
    """Structurally prove ``expr >= 0`` under the environment's assumptions."""
    expr = as_expr(expr)
    if isinstance(expr, Const):
        return expr.value >= 0
    cache = env.caches.proof
    key = (_NONNEG, expr._id)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS.proof_hits += 1
        return hit
    result = _is_nonneg_impl(expr, env)
    CACHE_STATS.proof_misses += 1
    cache[key] = result
    return result


def _is_nonneg_impl(expr: Expr, env: SymbolicEnv) -> bool:
    if isinstance(expr, Var):
        lo = _var_lo_const(expr, env)
        return lo is not None and lo >= 0
    if isinstance(expr, Add):
        return all(is_nonneg(a, env) for a in expr.args)
    if isinstance(expr, Mul):
        negatives = 0
        for a in expr.args:
            if is_nonneg(a, env):
                continue
            if _is_nonpos(a, env):
                negatives += 1
            else:
                return False
        return negatives % 2 == 0
    if isinstance(expr, FloorDiv):
        return is_nonneg(expr.numerator, env) and is_positive(expr.denominator, env)
    if isinstance(expr, Mod):
        return is_positive(expr.modulus, env)
    if isinstance(expr, Min):
        return all(is_nonneg(a, env) for a in expr.args)
    if isinstance(expr, Max):
        return any(is_nonneg(a, env) for a in expr.args)
    if isinstance(expr, (Cmp, BoolAnd, BoolOr, BoolNot)):
        return True  # boolean values are 0 or 1
    return False


def _is_nonpos(expr: Expr, env: SymbolicEnv) -> bool:
    """Prove ``expr <= 0`` (used only for sign bookkeeping of products)."""
    if isinstance(expr, Const):
        return expr.value <= 0
    if isinstance(expr, Mul):
        # A product with an explicit negative constant and otherwise
        # non-negative factors is non-positive.
        consts = [a for a in expr.args if isinstance(a, Const)]
        rest = [a for a in expr.args if not isinstance(a, Const)]
        sign = 1
        for c in consts:
            if c.value < 0:
                sign = -sign
            elif c.value == 0:
                return True
        if sign < 0 and all(is_nonneg(a, env) for a in rest):
            return True
    return False


def is_positive(expr: ExprLike, env: SymbolicEnv) -> bool:
    """Structurally prove ``expr > 0`` under the environment's assumptions."""
    expr = as_expr(expr)
    if isinstance(expr, Const):
        return expr.value > 0
    cache = env.caches.proof
    key = (_POSITIVE, expr._id)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS.proof_hits += 1
        return hit
    result = _is_positive_impl(expr, env)
    CACHE_STATS.proof_misses += 1
    cache[key] = result
    return result


def _is_positive_impl(expr: Expr, env: SymbolicEnv) -> bool:
    if env.is_declared_positive(expr):
        return True
    if isinstance(expr, Var):
        lo = _var_lo_const(expr, env)
        if lo is not None and lo > 0:
            return True
        lo_expr = env.range_of_var(expr.name).lo
        return lo_expr is not None and is_positive(lo_expr, env) if lo_expr is not expr else False
    if isinstance(expr, Add):
        if all(is_nonneg(a, env) for a in expr.args) and any(
            is_positive(a, env) for a in expr.args
        ):
            return True
        return False
    if isinstance(expr, Mul):
        return all(is_positive(a, env) for a in expr.args)
    if isinstance(expr, Min):
        return all(is_positive(a, env) for a in expr.args)
    if isinstance(expr, Max):
        return any(is_positive(a, env) for a in expr.args) and all(
            is_positive(a, env) or is_nonneg(a, env) for a in expr.args
        ) or any(is_positive(a, env) for a in expr.args)
    if isinstance(expr, FloorDiv):
        # x // d >= 1 requires x >= d; prove via bound comparison.
        return prove_le(expr.denominator, expr.numerator, env) and is_positive(
            expr.denominator, env
        )
    return False


def is_nonzero(expr: ExprLike, env: SymbolicEnv) -> bool:
    """Prove ``expr != 0``."""
    expr = as_expr(expr)
    if isinstance(expr, Const):
        return expr.value != 0
    cache = env.caches.proof
    key = (_NONZERO, expr._id)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS.proof_hits += 1
        return hit
    result = is_positive(expr, env) or is_positive(as_expr(Mul(-1, expr)), env)
    CACHE_STATS.proof_misses += 1
    cache[key] = result
    return result


def prove_nonneg(expr: ExprLike, env: SymbolicEnv) -> bool:
    """Prove ``expr >= 0`` using structure first, then range bounds."""
    expr = as_expr(expr)
    cache = env.caches.proof
    key = (_PROVE_NONNEG, expr._id)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS.proof_hits += 1
        return _record_query("nonneg", lambda: f"0 <= {expr}", hit)
    result = _prove_nonneg_impl(expr, env)
    CACHE_STATS.proof_misses += 1
    cache[key] = result
    return _record_query("nonneg", lambda: f"0 <= {expr}", result)


def _prove_nonneg_impl(expr: Expr, env: SymbolicEnv) -> bool:
    if is_nonneg(expr, env):
        return True
    if _indexrange_nonneg(expr, env):
        return True
    lo = env.range_of(expr).lo
    if lo is not None and lo is not expr and is_nonneg(lo, env):
        return True
    return False


def prove_positive(expr: ExprLike, env: SymbolicEnv) -> bool:
    """Prove ``expr > 0`` using structure first, then range bounds."""
    expr = as_expr(expr)
    cache = env.caches.proof
    key = (_PROVE_POSITIVE, expr._id)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS.proof_hits += 1
        return _record_query("positive", lambda: f"0 < {expr}", hit)
    result = _prove_positive_impl(expr, env)
    CACHE_STATS.proof_misses += 1
    cache[key] = result
    return _record_query("positive", lambda: f"0 < {expr}", result)


def _prove_positive_impl(expr: Expr, env: SymbolicEnv) -> bool:
    if is_positive(expr, env):
        return True
    lo = env.range_of(expr).lo
    if lo is not None and lo is not expr and is_positive(lo, env):
        return True
    return False


def prove_le(lhs: ExprLike, rhs: ExprLike, env: SymbolicEnv) -> bool:
    """Prove ``lhs <= rhs``."""
    lhs = as_expr(lhs)
    rhs = as_expr(rhs)
    if lhs == rhs:
        return _record_query("le", lambda: f"{lhs} <= {rhs}", True)
    cache = env.caches.proof
    key = (_LE, lhs._id, rhs._id)
    hit = cache.get(key)
    if hit is not None:
        CACHE_STATS.proof_hits += 1
        return _record_query("le", lambda: f"{lhs} <= {rhs}", hit)
    result = _prove_le_impl(lhs, rhs, env)
    CACHE_STATS.proof_misses += 1
    cache[key] = result
    return _record_query("le", lambda: f"{lhs} <= {rhs}", result)


def _prove_le_impl(lhs: Expr, rhs: Expr, env: SymbolicEnv) -> bool:
    # Direct difference: canonicalisation cancels shared terms.
    if _difference_nonneg(rhs - lhs, env):
        return True
    # Compare through symbolic bounds: lhs <= hi(lhs) and lo(rhs) <= rhs.
    lhs_range = env.range_of(lhs)
    rhs_range = env.range_of(rhs)
    upper_candidates: list[Expr] = []
    if lhs_range.hi is not None and lhs_range.hi != lhs:
        upper_candidates.append(lhs_range.hi)
    lower_candidates: list[Expr] = [rhs]
    if rhs_range.lo is not None and rhs_range.lo != rhs:
        lower_candidates.append(rhs_range.lo)
    for upper in upper_candidates:
        for lower in lower_candidates:
            if _difference_nonneg(lower - upper, env):
                return True
    # Finally, lhs itself vs the lower bound of rhs.
    if rhs_range.lo is not None and rhs_range.lo != rhs:
        if _difference_nonneg(rhs_range.lo - lhs, env):
            return True
    return False


def _difference_nonneg(diff: Expr, env: SymbolicEnv) -> bool:
    """Prove that a difference expression is non-negative.

    Four stages, each strictly stronger than the previous:

    1. structural sign analysis of the difference as written;
    2. stride-aware constant-bounds analysis (:func:`~repro.symbolic.
       indexrange.index_range`): exact interval arithmetic over the
       env-declared constant variable ranges, which — unlike the structural
       stage — handles negative coefficients (``n - r - brick*bz - tz - 1``)
       and div/mod folding, the shapes guard elimination produces;
    3. the same sign analysis after distributing products over sums, which
       lets the n-ary ``Add`` canonicaliser cancel syntactically different
       but equal terms (``nt_n*(X + 1) - nt_n - nt_n*X``);
    4. term cancellation against relational facts — user-declared ``lhs <=
       rhs`` constraints plus the built-in lemma ``min(a, b) * max(1, a // b)
       <= a`` for non-negative ``a``/positive ``b`` (which Z3 discharges for
       the paper; grouped thread-block layouts need it).
    """
    if is_nonneg(diff, env):
        return True
    if _indexrange_nonneg(diff, env):
        return True
    from .simplify import expand  # local import: simplify imports this module

    expanded = expand(diff)
    if expanded != diff and (
        is_nonneg(expanded, env) or _indexrange_nonneg(expanded, env)
    ):
        return True
    return _nonneg_with_facts(expanded, env)


def _indexrange_nonneg(diff: Expr, env: SymbolicEnv) -> bool:
    """Stride-aware stage: ``base + [lo, hi] >= 0`` when ``lo >= 0`` and the
    residual base is itself provably non-negative (trivially so when zero)."""
    from .indexrange import index_range  # local import: avoids a cycle

    r = index_range(diff, env)
    if r.lo is None or r.lo < 0:
        return False
    if r.is_constant():
        return True
    return is_nonneg(r.base, env)


def _product_facts(expr: Expr, env: SymbolicEnv) -> list[tuple[Expr, Expr]]:
    """Relational facts usable for term cancellation in ``expr``.

    Combines user-declared ``declare_le`` facts with instances of the lemma
    ``Min(a, b) * Max(1, a // b) <= a`` for every ``Min``/``Max`` pair of that
    shape appearing in ``expr`` (both orientations of the ``Min``).
    """
    facts: list[tuple[Expr, Expr]] = list(env.le_facts())
    # The structural identity d * (x // d) <= x for non-negative x, positive d.
    for node in expr.walk():
        if isinstance(node, FloorDiv):
            x, d = node.numerator, node.denominator
            if is_nonneg(x, env) and is_positive(d, env):
                facts.append((Mul(d, node), x))
    mins = [node for node in expr.walk() if isinstance(node, Min) and len(node.args) == 2]
    maxes = [node for node in expr.walk() if isinstance(node, Max) and len(node.args) == 2]
    for min_node in mins:
        for max_node in maxes:
            if not any(isinstance(arg, Const) and arg.value == 1 for arg in max_node.args):
                continue
            div = next((arg for arg in max_node.args if isinstance(arg, FloorDiv)), None)
            if div is None:
                continue
            a, b = div.numerator, div.denominator
            if set(min_node.args) != {a, b}:
                continue
            if is_nonneg(a, env) and is_positive(b, env):
                facts.append((Mul(min_node, max_node), a))
    return facts


def _mul_factors(expr: Expr) -> tuple[int, list[Expr]]:
    """Split an expression into (integer coefficient, non-constant factors)."""
    if isinstance(expr, Const):
        return expr.value, []
    if isinstance(expr, Mul):
        coeff = 1
        factors: list[Expr] = []
        for arg in expr.args:
            if isinstance(arg, Const):
                coeff *= arg.value
            else:
                factors.append(arg)
        return coeff, factors
    return 1, [expr]


def _remove_factors(factors: list[Expr], to_remove: list[Expr]) -> Optional[list[Expr]]:
    """Multiset difference of factor lists, or ``None`` when not a superset."""
    remaining = list(factors)
    for item in to_remove:
        try:
            remaining.remove(item)
        except ValueError:
            return None
    return remaining


def _nonneg_with_facts(diff: Expr, env: SymbolicEnv) -> bool:
    """Prove ``diff >= 0`` by weakening negative terms with ``<=`` facts.

    For every additive term ``-c * f_lhs * extra`` (``c > 0``, ``extra`` a
    product of non-negative factors) and every fact ``f_lhs <= f_rhs``, the
    term is bounded below by ``-c * f_rhs * extra``; replacing it can only
    decrease the sum, so if the weakened sum is non-negative the original is
    too.  A single round of replacements is attempted (sufficient for the
    layout queries; the brute-force oracle in the test-suite guards against
    over-claiming).
    """
    terms = list(diff.args) if isinstance(diff, Add) else [diff]
    facts = _product_facts(diff, env)
    if not facts:
        return False
    replaced_any = False
    new_terms: list[Expr] = []
    for term in terms:
        coeff, factors = _mul_factors(term)
        if coeff >= 0:
            new_terms.append(term)
            continue
        replacement: Optional[Expr] = None
        for fact_lhs, fact_rhs in facts:
            _, fact_factors = _mul_factors(fact_lhs)
            if not fact_factors:
                fact_factors = [fact_lhs]
            extra = _remove_factors(factors, fact_factors)
            if extra is None:
                continue
            if not all(is_nonneg(f, env) for f in extra):
                continue
            replacement = Mul(Const(coeff), fact_rhs, *extra) if extra else Mul(Const(coeff), fact_rhs)
            break
        if replacement is not None:
            new_terms.append(replacement)
            replaced_any = True
        else:
            new_terms.append(term)
    if not replaced_any:
        return False
    from .simplify import expand

    weakened = expand(Add(*new_terms)) if len(new_terms) > 1 else new_terms[0]
    return is_nonneg(weakened, env)


def prove_lt(lhs: ExprLike, rhs: ExprLike, env: SymbolicEnv) -> bool:
    """Prove ``lhs < rhs`` (equivalently ``lhs <= rhs - 1`` over integers)."""
    return prove_le(as_expr(lhs) + 1, rhs, env)


def prove_in_bounds(
    expr: ExprLike, lo: ExprLike, hi: ExprLike, env: SymbolicEnv
) -> bool:
    """Prove the access-in-bounds obligation ``lo <= expr <= hi``.

    This is the query code generation issues to discharge a bounds guard:
    ``lo``/``hi`` are *inclusive* (an index into an extent-``n`` buffer is in
    bounds when ``prove_in_bounds(idx, 0, n - 1, env)``).  Both sides run
    through :func:`prove_le` and therefore benefit from the stride-aware
    constant-bounds stage.
    """
    expr = as_expr(expr)
    result = prove_le(lo, expr, env) and prove_le(expr, hi, env)
    return _record_query(
        "in_bounds", lambda: f"{as_expr(lo)} <= {expr} <= {as_expr(hi)}", result
    )


def prove(predicate: Expr, env: SymbolicEnv) -> bool:
    """Prove a comparison/boolean predicate node."""
    result = _prove_impl(predicate, env)
    return _record_query("prove", lambda: str(predicate), result)


def _prove_impl(predicate: Expr, env: SymbolicEnv) -> bool:
    if isinstance(predicate, Cmp):
        lhs, rhs = predicate.lhs, predicate.rhs
        if predicate.op == "<":
            return prove_lt(lhs, rhs, env)
        if predicate.op == "<=":
            return prove_le(lhs, rhs, env)
        if predicate.op == ">":
            return prove_lt(rhs, lhs, env)
        if predicate.op == ">=":
            return prove_le(rhs, lhs, env)
        if predicate.op == "==":
            return prove_le(lhs, rhs, env) and prove_le(rhs, lhs, env)
        if predicate.op == "!=":
            return is_nonzero(lhs - rhs, env)
    if isinstance(predicate, BoolAnd):
        return all(prove(arg, env) for arg in predicate.args)
    if isinstance(predicate, BoolOr):
        return any(prove(arg, env) for arg in predicate.args)
    if isinstance(predicate, Const):
        return predicate.value != 0
    return False


def brute_force_check(
    predicate_or_pair,
    domains: Mapping[str, Iterable[int]],
    equivalent_to: Expr | None = None,
) -> bool:
    """Exhaustively check a predicate (or expression equivalence) over small domains.

    ``predicate_or_pair`` is either a boolean predicate :class:`Expr` (checked
    to hold for every assignment) or, when ``equivalent_to`` is given, an
    arbitrary expression whose value is compared against ``equivalent_to`` for
    every assignment.  Used by the test-suite as the ground-truth oracle for
    both the prover and the simplifier.
    """
    names = list(domains.keys())
    value_lists = [list(domains[name]) for name in names]
    for combo in itertools.product(*value_lists):
        env = dict(zip(names, combo))
        try:
            left = predicate_or_pair.evaluate(env)
        except ZeroDivisionError:
            continue
        if equivalent_to is not None:
            try:
                right = equivalent_to.evaluate(env)
            except ZeroDivisionError:
                continue
            if left != right:
                return False
        else:
            if not left:
                return False
    return True
