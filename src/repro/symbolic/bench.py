"""Range-analysis benchmark: static proofs, guard elimination, generation time.

The ``range-smoke`` CI job runs this module (``python -m repro.symbolic.bench``)
to gate the stride-aware range analysis on three observable outcomes:

* **LUD bijectivity is static** — every distinct kernel shape of the tuned
  LUD search space must discharge its ``element_offset`` bijectivity proof
  through the mixed-radix stride decomposition, with zero enumeration
  fallbacks; the enumeration cross-check must agree on every shape.
* **Guards are eliminated** — running the NW wavefront and the stencil sweep
  must bump ``repro.symbolic.guards_eliminated`` by at least one each (the
  wave-span and interior-block launches prove their masks redundant).
* **Generation stays fast** — the full LUD kernel-shape sweep, proofs
  included, must generate within a generous wall-clock bound so the analysis
  never becomes the slow part of search.

Writes ``BENCH_symbolic.json`` and exits nonzero when any gate fails.
"""

from __future__ import annotations

import json
import sys
import time

#: wall-clock ceiling for generating (and proving) every LUD kernel shape;
#: generous — shared CI runners are slow — but far below the minutes a
#: per-shape ``B^2`` enumeration sweep would cost at the large blocks
GENERATION_BUDGET_SECONDS = 30.0

#: enumeration cross-check ceiling: shapes up to this block size are cheap
#: to enumerate, larger ones rely on the (structural, exact) static proof
CROSS_CHECK_MAX_BLOCK = 64


def _lud_kernel_shapes() -> list[tuple[int, int]]:
    """Distinct ``(block, cuda_block)`` shapes of the tuned LUD space."""
    from ..apps.lud import app_spec

    spec = app_spec()
    shapes = sorted({
        (c["block"], c["cuda_block"])
        for c in spec.space
    })
    return shapes


def bench_lud_static_bijectivity() -> dict:
    """Gate 1: the whole LUD shape sweep proves bijectivity statically."""
    from ..apps.lud import (
        LudConfig,
        check_element_offsets,
        generate_lud_internal_kernel,
        prove_element_offset_bijection,
    )

    shapes = _lud_kernel_shapes()
    started = time.perf_counter()
    static, fallbacks, cross_checked = 0, [], 0
    for block, cuda_block in shapes:
        cfg = LudConfig(n=2 * block, block=block, cuda_block=cuda_block)
        kernel = generate_lud_internal_kernel(cfg)
        verdict = prove_element_offset_bijection(kernel, cfg)
        if verdict is True:
            static += 1
            if block <= CROSS_CHECK_MAX_BLOCK:
                check_element_offsets(kernel, cfg)  # enumeration must agree
                cross_checked += 1
        else:
            fallbacks.append({"block": block, "cuda_block": cuda_block, "verdict": verdict})
    elapsed = time.perf_counter() - started
    return {
        "shapes": len(shapes),
        "static_proofs": static,
        "fallbacks": fallbacks,
        "cross_checked": cross_checked,
        "generation_seconds": elapsed,
        "budget_seconds": GENERATION_BUDGET_SECONDS,
        "all_static": not fallbacks and static == len(shapes),
        "within_budget": elapsed <= GENERATION_BUDGET_SECONDS,
    }


def bench_guard_elimination() -> dict:
    """Gate 2: NW and stencil runs each eliminate at least one launch guard."""
    import numpy as np

    from ..apps import nw, stencil
    from ..obs.metrics import counter

    # fresh proofs: the per-shape proof caches would otherwise swallow the
    # counter increments this gate watches for
    nw._prove_wave_guard.cache_clear()
    stencil._prove_interior_span.cache_clear()
    eliminated = counter("repro.symbolic.guards_eliminated")
    rng = np.random.default_rng(0)

    before = eliminated.value
    cfg = nw.NwConfig(n=64, block=16)
    reference = rng.integers(-4, 5, size=(cfg.n, cfg.n)).astype(np.int32)
    nw.run_nw_blocked(reference, cfg, layout=nw.antidiagonal_buffer_layout(cfg.block))
    nw_eliminated = eliminated.value - before

    before = eliminated.value
    spec = stencil.STENCILS[0]
    grid = rng.standard_normal((16, 16, 16)).astype(np.float32)
    stencil.run_stencil(grid, spec, layout=stencil.brick_layout(16, 4), brick=4)
    stencil_eliminated = eliminated.value - before

    return {
        "nw_guards_eliminated": nw_eliminated,
        "stencil_guards_eliminated": stencil_eliminated,
        "nw_ok": nw_eliminated >= 1,
        "stencil_ok": stencil_eliminated >= 1,
    }


def run() -> dict:
    """Run every gate and assemble the report."""
    from .. import __version__

    lud = bench_lud_static_bijectivity()
    guards = bench_guard_elimination()
    ok = (
        lud["all_static"]
        and lud["within_budget"]
        and guards["nw_ok"]
        and guards["stencil_ok"]
    )
    return {
        "version": __version__,
        "lud_bijectivity": lud,
        "guard_elimination": guards,
        "ok": ok,
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "BENCH_symbolic.json"
    report = run()
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)
    lud, guards = report["lud_bijectivity"], report["guard_elimination"]
    print(
        f"lud: {lud['static_proofs']}/{lud['shapes']} shapes static "
        f"({lud['cross_checked']} cross-checked) in {lud['generation_seconds']:.2f}s"
    )
    print(
        f"guards eliminated: nw={guards['nw_guards_eliminated']:.0f} "
        f"stencil={guards['stencil_guards_eliminated']:.0f}"
    )
    print(f"ok={report['ok']} -> {out_path}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
