"""Stride-aware index-range analysis over the interned expression IR.

The Exo compiler's ``range_analysis.py`` tracks, per index expression, a
*symbolic base* plus *constant bounds* — ``expr ∈ base + [lo, hi]`` — and a
per-symbol stride query.  This module ports that idiom onto the
reproduction's :class:`~repro.symbolic.ranges.Interval` / assumption-env
stack and adds the two consumers the layout pipeline needs:

* **constant-bounds proving** — an :class:`IndexRange` whose base is zero
  carries exact integer bounds even through negative coefficients and
  div/mod folding, which the purely symbolic :meth:`SymbolicEnv.range_of`
  widens to top.  The prover uses this to discharge ``lhs <= rhs`` on the
  access-in-bounds obligations of guard elimination.
* **stride extraction** — :func:`affine_strides` decomposes an expression
  into ``const + Σ coeff_v · v`` exactly; layouts whose flattened offset is
  affine in their index symbols can then be proven bijective *statically*
  (:func:`is_mixed_radix_bijection`) instead of by runtime enumeration.

Soundness contract: for every assignment of the free variables consistent
with the environment, ``expr - base`` evaluates into ``[lo, hi]``.  When a
sub-expression resists the analysis it becomes its *own* base with bounds
``[0, 0]`` — exact, so enclosing additions still cancel against it.

Results of the env-dependent entry point (:func:`index_range`) are memoised
in the environment's unified cache (``env.caches.indexrange``), which shares
one invalidation epoch with the simplify/proof/range families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    as_expr,
)
from .ranges import Interval
from .stats import CACHE_STATS
from .symranges import SymbolicEnv

__all__ = [
    "IndexRange",
    "index_range",
    "constant_interval",
    "affine_strides",
    "is_mixed_radix_bijection",
]

_ZERO = None  # initialised lazily; Const(0) at import time is fine too


def _zero() -> Expr:
    global _ZERO
    if _ZERO is None:
        _ZERO = Const(0)
    return _ZERO


@dataclass(frozen=True)
class IndexRange:
    """``expr ∈ base + [lo, hi]`` with per-variable strides of the base.

    ``base`` is the symbolic part the analysis could not (or was told not
    to) fold into constant bounds; ``Const(0)`` when the expression is fully
    constant-bounded.  ``strides`` maps variable names to their integer
    coefficients in ``base`` when the base is an exact affine combination of
    variables, and is ``None`` when the base contains a residual non-affine
    node (the stride of any symbol is then unknown).
    """

    base: Expr
    interval: Interval
    strides: Optional[Tuple[Tuple[str, int], ...]] = ()

    @property
    def lo(self) -> Optional[int]:
        return self.interval.lo

    @property
    def hi(self) -> Optional[int]:
        return self.interval.hi

    def is_constant(self) -> bool:
        """True when the whole value is covered by the constant interval."""
        return isinstance(self.base, Const) and self.base.value == 0

    def stride_of(self, name: str) -> Optional[int]:
        """Coefficient of ``name`` in the base (0 if absent; None if unknown)."""
        if self.strides is None:
            return None
        for var_name, coeff in self.strides:
            if var_name == name:
                return coeff
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexRange({self.base!s} + {self.interval!r}, strides={self.strides})"

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def constant(interval: Interval) -> "IndexRange":
        return IndexRange(_zero(), interval, ())

    @staticmethod
    def opaque(expr: Expr) -> "IndexRange":
        """The exact-but-uninformative element: ``expr ∈ expr + [0, 0]``."""
        return IndexRange(expr, Interval.point(0), None)

    @staticmethod
    def of_var(var: Var) -> "IndexRange":
        return IndexRange(var, Interval.point(0), ((var.name, 1),))


def _merge_strides(
    a: Optional[Tuple[Tuple[str, int], ...]],
    b: Optional[Tuple[Tuple[str, int], ...]],
) -> Optional[Tuple[Tuple[str, int], ...]]:
    if a is None or b is None:
        return None
    merged: dict[str, int] = dict(a)
    for name, coeff in b:
        merged[name] = merged.get(name, 0) + coeff
    return tuple(sorted((n, c) for n, c in merged.items() if c != 0))


def _scale_strides(
    strides: Optional[Tuple[Tuple[str, int], ...]], factor: int
) -> Optional[Tuple[Tuple[str, int], ...]]:
    if strides is None:
        return None
    if factor == 0:
        return ()
    return tuple((n, c * factor) for n, c in strides)


def _add_ranges(a: IndexRange, b: IndexRange) -> IndexRange:
    return IndexRange(
        Add(a.base, b.base), a.interval + b.interval, _merge_strides(a.strides, b.strides)
    )


def _scale_range(r: IndexRange, factor: int) -> IndexRange:
    if factor == 0:
        return IndexRange.constant(Interval.point(0))
    return IndexRange(
        Mul(factor, r.base),
        r.interval * Interval.point(factor),
        _scale_strides(r.strides, factor),
    )


def _var_interval(var: Var, env: SymbolicEnv) -> Optional[Interval]:
    """Constant bounds of a variable, from the env or the var's meta hint."""
    sym = env.range_of_var(var.name)
    lo, hi = sym.constant_bounds()
    if lo is None and hi is None:
        meta_range = var.meta.get("range")
        if isinstance(meta_range, Interval):
            return meta_range
        if isinstance(meta_range, tuple) and len(meta_range) == 2:
            if all(v is None or isinstance(v, int) for v in meta_range):
                return Interval(meta_range[0], meta_range[1])
        return None
    # Half-symbolic ranges keep the constant end; the symbolic end widens.
    if sym.lo is not None and lo is None:
        lo = None
    if sym.hi is not None and hi is None:
        hi = None
    return Interval(lo, hi)


def index_range(expr: ExprLike, env: SymbolicEnv) -> IndexRange:
    """Stride-aware constant-bounds analysis of ``expr`` (memoised per env).

    Variables with constant bounds in ``env`` fold into the interval;
    variables without bounds (and sub-expressions the analysis cannot
    handle) accumulate in the symbolic base.  The result is sound for every
    assignment consistent with the environment.
    """
    expr = as_expr(expr)
    cache = env.caches.indexrange
    cached = cache.get(expr._id)
    if cached is not None:
        CACHE_STATS.range_hits += 1
        return cached
    result = _index_range_impl(expr, env)
    CACHE_STATS.range_misses += 1
    cache[expr._id] = result
    return result


def constant_interval(expr: ExprLike, env: SymbolicEnv) -> Optional[Interval]:
    """The exact-constant interval of ``expr``, or None when the base is
    non-trivial (some part of the value stayed symbolic)."""
    r = index_range(expr, env)
    return r.interval if r.is_constant() else None


def _index_range_impl(expr: Expr, env: SymbolicEnv) -> IndexRange:
    if isinstance(expr, Const):
        return IndexRange.constant(Interval.point(expr.value))
    if isinstance(expr, Var):
        bounds = _var_interval(expr, env)
        if bounds is None or (bounds.lo is None and bounds.hi is None):
            # unbounded: keep the variable symbolic so sums can cancel it
            return IndexRange.of_var(expr)
        return IndexRange.constant(bounds)
    if isinstance(expr, Add):
        out = IndexRange.constant(Interval.point(0))
        for arg in expr.args:
            out = _add_ranges(out, index_range(arg, env))
        return out
    if isinstance(expr, Mul):
        coeff = 1
        rest: list[IndexRange] = []
        for arg in expr.args:
            if isinstance(arg, Const):
                coeff *= arg.value
            else:
                rest.append(index_range(arg, env))
        if not rest:
            return IndexRange.constant(Interval.point(coeff))
        constant = [r for r in rest if r.is_constant()]
        symbolic = [r for r in rest if not r.is_constant()]
        if not symbolic:
            product = Interval.point(coeff)
            for r in constant:
                product = product * r.interval
            return IndexRange.constant(product)
        if len(symbolic) == 1 and all(r.interval.is_point for r in constant):
            # point-constant factors fold into the integer coefficient
            for r in constant:
                coeff *= r.interval.lo  # type: ignore[operator]
            return _scale_range(symbolic[0], coeff)
        return IndexRange.opaque(expr)
    if isinstance(expr, FloorDiv):
        num = index_range(expr.numerator, env)
        den = index_range(expr.denominator, env)
        if num.is_constant() and den.is_constant():
            return IndexRange.constant(num.interval.floordiv(den.interval))
        return IndexRange.opaque(expr)
    if isinstance(expr, Mod):
        value = index_range(expr.value_expr, env)
        modulus = index_range(expr.modulus, env)
        if value.is_constant() and modulus.is_constant():
            return IndexRange.constant(value.interval.mod(modulus.interval))
        if modulus.is_constant() and modulus.interval.is_positive():
            # whatever the value, a positive modulus bounds the result
            hi = None if modulus.interval.hi is None else modulus.interval.hi - 1
            return IndexRange.constant(Interval(0, hi))
        return IndexRange.opaque(expr)
    if isinstance(expr, Min):
        parts = [index_range(a, env) for a in expr.args]
        if all(p.is_constant() for p in parts):
            out = parts[0].interval
            for p in parts[1:]:
                out = out.min(p.interval)
            return IndexRange.constant(out)
        return IndexRange.opaque(expr)
    if isinstance(expr, Max):
        parts = [index_range(a, env) for a in expr.args]
        if all(p.is_constant() for p in parts):
            out = parts[0].interval
            for p in parts[1:]:
                out = out.max(p.interval)
            return IndexRange.constant(out)
        return IndexRange.opaque(expr)
    if isinstance(expr, (Cmp, BoolAnd, BoolOr, BoolNot)):
        return IndexRange.constant(Interval(0, 1))
    return IndexRange.opaque(expr)


# ---------------------------------------------------------------------------
# exact affine decomposition (env-independent)
# ---------------------------------------------------------------------------


def affine_strides(
    expr: ExprLike, variables: Sequence[str]
) -> Optional[Tuple[int, dict]]:
    """Decompose ``expr`` into ``const + Σ strides[v] · v`` exactly.

    Returns ``(const, {name: stride})`` when the expression is an affine
    combination of the given variables (and nothing else); ``None`` when any
    free variable is outside ``variables`` or the structure is non-affine
    (div/mod/min/max of a variable term).  Purely structural — no
    environment, no approximation — so a non-``None`` result is an identity.
    """
    expr = as_expr(expr)
    allowed = set(variables)

    def walk(node: Expr) -> Optional[Tuple[int, dict]]:
        if isinstance(node, Const):
            return node.value, {}
        if isinstance(node, Var):
            if node.name not in allowed:
                return None
            return 0, {node.name: 1}
        if isinstance(node, Add):
            const = 0
            strides: dict[str, int] = {}
            for arg in node.args:
                part = walk(arg)
                if part is None:
                    return None
                const += part[0]
                for name, coeff in part[1].items():
                    strides[name] = strides.get(name, 0) + coeff
            return const, strides
        if isinstance(node, Mul):
            coeff = 1
            linear: Optional[Tuple[int, dict]] = None
            for arg in node.args:
                if isinstance(arg, Const):
                    coeff *= arg.value
                    continue
                part = walk(arg)
                if part is None:
                    return None
                if part[1]:
                    if linear is not None:
                        return None  # variable × variable: not affine
                    linear = part
                else:
                    coeff *= part[0]
            if linear is None:
                return coeff, {}
            const = linear[0] * coeff
            return const, {name: c * coeff for name, c in linear[1].items()}
        return None

    result = walk(expr)
    if result is None:
        return None
    const, strides = result
    return const, {name: c for name, c in strides.items() if c != 0}


def is_mixed_radix_bijection(
    const: int, pairs: Iterable[Tuple[int, int]], total: int
) -> bool:
    """Is ``const + Σ stride_k · i_k`` (``0 <= i_k < extent_k``) a bijection
    onto ``[0, total)``?

    ``pairs`` is the ``(stride, extent)`` list of the affine offset.  The map
    is a bijection exactly when the constant term is zero and the strides,
    sorted increasingly (dimensions of extent 1 contribute nothing and are
    skipped), form a *permuted mixed-radix basis*: the smallest stride is 1
    and each subsequent stride is the previous stride times the previous
    extent, with the extents multiplying out to ``total``.  This is the
    static form of the LUD ``element_offset`` check that previously ran by
    enumerating every index combination at runtime.
    """
    if const != 0 or total <= 0:
        return False
    live: list[Tuple[int, int]] = []
    for stride, extent in pairs:
        if extent <= 0:
            return False
        if extent == 1:
            continue
        if stride <= 0:
            # with const == 0 a negative or zero stride cannot reach [0, total)
            return False
        live.append((stride, extent))
    live.sort()
    expected = 1
    for stride, extent in live:
        if stride != expected:
            return False
        expected *= extent
    return expected == total
