"""Symbolic integer expression engine (SymPy / Z3 substitute).

Public surface of the engine used throughout the LEGO reproduction:

* expression construction — :class:`Var`, :class:`Const`, :func:`symbols`,
  operator overloading, :class:`Min`, :class:`Max`;
* assumptions — :class:`SymbolicEnv`, :class:`SymInterval`;
* simplification — :func:`simplify`, :func:`simplify_fixpoint`, :func:`expand`
  (the paper's Table II rules with range-proved side conditions);
* proofs — :func:`prove_le`, :func:`prove_lt`, :func:`prove_in_bounds`,
  :func:`brute_force_check`;
* stride-aware ranges — :class:`IndexRange`, :func:`index_range`,
  :func:`affine_strides`, :func:`is_mixed_radix_bijection` (the Exo-style
  base + constant-bounds + stride analysis behind guard elimination and
  static layout-bijectivity proofs);
* cost model — :func:`operation_count`, :func:`choose_cheapest`;
* printers — :class:`PythonPrinter`, :class:`TritonPrinter`, :class:`CPrinter`,
  :class:`MLIRArithPrinter`;
* caching — expressions are hash-consed (interned); :func:`cache_statistics`
  reports hit rates of the rewrite/proof/range/print memo layers and
  :data:`RULE_REGISTRY` lists the Table II rewrite rules as data.
"""

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    as_expr,
    intern_table_size,
    symbols,
)
from .ranges import Interval, RangeEnv
from .stats import CACHE_STATS, CacheCounters, cache_statistics, reset_cache_statistics
from .symranges import EnvCaches, SymInterval, SymbolicEnv
from .indexrange import (
    IndexRange,
    affine_strides,
    constant_interval,
    index_range,
    is_mixed_radix_bijection,
)
from .prover import (
    brute_force_check,
    is_nonneg,
    is_nonzero,
    is_positive,
    prove,
    prove_in_bounds,
    prove_le,
    prove_lt,
    prove_nonneg,
    prove_positive,
    record_proof_queries,
)
from .simplify import (
    RULE_REGISTRY,
    RewriteRule,
    expand,
    rules_for,
    simplify,
    simplify_fixpoint,
)
from .cost import CostWeights, choose_cheapest, operation_count
from .printers import CPrinter, MLIRArithPrinter, PythonPrinter, TritonPrinter

__all__ = [
    "Add",
    "BoolAnd",
    "BoolNot",
    "BoolOr",
    "Cmp",
    "Const",
    "Expr",
    "ExprLike",
    "FloorDiv",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Var",
    "as_expr",
    "symbols",
    "Interval",
    "RangeEnv",
    "EnvCaches",
    "SymInterval",
    "SymbolicEnv",
    "IndexRange",
    "index_range",
    "constant_interval",
    "affine_strides",
    "is_mixed_radix_bijection",
    "brute_force_check",
    "is_nonneg",
    "is_nonzero",
    "is_positive",
    "prove",
    "prove_in_bounds",
    "prove_le",
    "prove_lt",
    "record_proof_queries",
    "prove_nonneg",
    "prove_positive",
    "expand",
    "simplify",
    "simplify_fixpoint",
    "RewriteRule",
    "RULE_REGISTRY",
    "rules_for",
    "CACHE_STATS",
    "CacheCounters",
    "cache_statistics",
    "reset_cache_statistics",
    "intern_table_size",
    "CostWeights",
    "choose_cheapest",
    "operation_count",
    "CPrinter",
    "MLIRArithPrinter",
    "PythonPrinter",
    "TritonPrinter",
]
