"""Integer symbolic expression IR (hash-consed).

This module is the foundation of the LEGO reproduction's code-generation
pipeline.  The original paper embeds its layout algebra into SymPy; this
reproduction implements the (much smaller) fragment of symbolic integer
arithmetic that layout lowering actually needs, from scratch:

* expression nodes: constants, variables, ``Add``, ``Mul``, floor division,
  modulo, ``Min``, ``Max`` and comparisons,
* light canonicalisation at construction time (constant folding, flattening
  of associative nodes, deterministic ordering of commutative operands),
* substitution, concrete evaluation and free-variable queries,
* an operation-count used by the cost model that selects between expanded
  and unexpanded index expressions (Section IV-A of the paper).

All expressions are immutable, hashable and **interned** (hash-consed):
construction routes every node through a global intern table, so two
structurally identical expressions are the *same object*.  Structural
equality therefore degenerates to a pointer comparison in the common case,
dictionary lookups use a hash precomputed at construction time, and the
rewrite engine (:mod:`repro.symbolic.simplify`), the prover and the printers
key their memo tables on the per-node integer :attr:`Expr.expr_id`.

The one wrinkle is :class:`Var.meta`: rendering hints do not participate in
equality (two variables with the same name are the same variable), but they
must not be lost by interning either, so the intern key — unlike the
equality key — includes the meta payload.  Variables that differ only in
``meta`` are thus distinct objects that still compare equal; compound nodes
fall back to a cached structural-key comparison for exactly this case.

Arithmetic on expressions is available through the usual Python operators
(``+``, ``-``, ``*``, ``//``, ``%``) and mirrors Python's *floor* semantics
for division and modulo, which is also what the generated Triton / CUDA /
MLIR code assumes for the non-negative index ranges produced by layouts.

**Thread safety.**  Expression construction is safe from any number of
threads: the intern table's check-then-insert is serialised through striped
locks (hash of the intern key selects the stripe), with a lock-free read
fast path, so concurrent construction of structurally identical expressions
always yields the *same* node — the invariant the concurrent compilation
service (:mod:`repro.serve`) depends on.  Everything downstream of
construction is immutable and freely shareable.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Iterable, Iterator, Mapping, Sequence, Union

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Add",
    "Mul",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "Cmp",
    "BoolAnd",
    "BoolOr",
    "BoolNot",
    "ExprLike",
    "as_expr",
    "symbols",
    "intern_table_size",
]

ExprLike = Union["Expr", int]


# ---------------------------------------------------------------------------
# intern table
# ---------------------------------------------------------------------------

#: canonical instance per structural identity (including ``Var.meta``)
_INTERN: dict[tuple, "Expr"] = {}

#: monotonically increasing ids; ``Expr.expr_id`` keys identity-based caches
_IDS = itertools.count()

# Thread-safety contract (see DESIGN.md "Thread safety of the symbolic
# layer"): the intern table is the one piece of symbolic state shared by
# every thread, and its check-then-insert sequence must be atomic or two
# threads racing on the same structural key would mint two distinct nodes —
# breaking the pointer-identity guarantee that every identity-keyed memo
# table in the stack relies on.  Creation is therefore serialised through a
# set of striped locks selected by the intern key's hash, with a lock-free
# fast path: plain dict reads are safe under the GIL, so the common
# already-interned case costs no lock at all (double-checked locking).
_INTERN_STRIPES = 16
_INTERN_LOCKS = tuple(threading.Lock() for _ in range(_INTERN_STRIPES))


def _intern_lock(key: tuple) -> threading.Lock:
    """The stripe lock guarding creation of the node with this intern key."""
    return _INTERN_LOCKS[hash(key) % _INTERN_STRIPES]


def intern_table_size() -> int:
    """Number of live interned expression nodes (cache-statistics hook)."""
    return len(_INTERN)


def _finalize(obj: "Expr", ekey: tuple) -> "Expr":
    """Install the cached structural key, hash and id on a fresh node."""
    object.__setattr__(obj, "_ekey", ekey)
    object.__setattr__(obj, "_hash", hash(ekey))
    object.__setattr__(obj, "_id", next(_IDS))
    return obj


def as_expr(value: ExprLike) -> "Expr":
    """Coerce a Python ``int`` (or an existing expression) into an ``Expr``."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        # booleans are ints in Python; keep them out of integer arithmetic
        return Const(1 if value else 0)
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} of type {type(value).__name__} to Expr")


class Expr:
    """Base class of all symbolic integer expressions."""

    __slots__ = ("_hash", "_ekey", "_id")

    # -- construction helpers -------------------------------------------------

    def _key(self) -> tuple:
        """The structural key used for hashing, equality and ordering."""
        return self._ekey

    @property
    def expr_id(self) -> int:
        """Stable integer identity; interned nodes share ids, so this is the
        preferred key for memo tables (O(1), no tree walks)."""
        return self._id

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            if isinstance(other, int):
                return isinstance(self, Const) and self.value == other
            return NotImplemented
        # Interning makes structurally identical nodes pointer-identical
        # except when a Var differs only in meta; fall back to the cached
        # structural key for that case.
        if self._hash != other._hash:
            return False
        return type(self) is type(other) and self._ekey == other._ekey

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- structural queries ---------------------------------------------------

    @property
    def args(self) -> tuple["Expr", ...]:
        """Immediate sub-expressions."""
        return ()

    def free_vars(self) -> set[str]:
        """Names of all variables occurring in the expression."""
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, Var):
                out.add(node.name)
        return out

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.args))

    def count_ops(self, weights: Mapping[str, int] | None = None) -> int:
        """Count arithmetic operations (the paper's Table IV metric).

        ``Add``/``Mul`` with *n* operands count as ``n - 1`` operations;
        ``FloorDiv``, ``Mod``, ``Min``, ``Max`` and comparisons count as one
        each.  ``weights`` may override the per-operation cost (keyed by the
        lower-case node name, e.g. ``{"floordiv": 4}``).
        """
        weights = weights or {}
        total = 0
        for node in self.walk():
            name = type(node).__name__.lower()
            if isinstance(node, (Add, Mul)):
                total += (len(node.args) - 1) * weights.get(name, 1)
            elif isinstance(node, (FloorDiv, Mod, Cmp)):
                total += weights.get(name, 1)
            elif isinstance(node, (Min, Max)):
                total += (len(node.args) - 1) * weights.get(name, 1)
            elif isinstance(node, (BoolAnd, BoolOr)):
                total += (len(node.args) - 1) * weights.get(name, 1)
            elif isinstance(node, BoolNot):
                total += weights.get(name, 1)
        return total

    # -- rewriting ------------------------------------------------------------

    def subs(self, mapping: Mapping[ExprLike, ExprLike]) -> "Expr":
        """Substitute sub-expressions.

        Keys may be variables (most common), arbitrary sub-expressions or
        plain variable names (strings are accepted for convenience).
        """
        table: dict[Expr, Expr] = {}
        for key, value in mapping.items():
            if isinstance(key, str):
                key_expr: Expr = Var(key)
            else:
                key_expr = as_expr(key)
            table[key_expr] = as_expr(value)
        return self._substitute(table)

    def _substitute(self, table: Mapping["Expr", "Expr"]) -> "Expr":
        if self in table:
            return table[self]
        if not self.args:
            return self
        new_args = tuple(a._substitute(table) for a in self.args)
        if new_args == self.args:
            return self
        return self._rebuild(new_args)

    def _rebuild(self, args: Sequence["Expr"]) -> "Expr":
        """Reconstruct the node with new children (re-canonicalising)."""
        raise NotImplementedError

    def map_children(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Apply ``fn`` to each child and rebuild if anything changed."""
        if not self.args:
            return self
        new_args = tuple(fn(a) for a in self.args)
        if new_args == self.args:
            return self
        return self._rebuild(new_args)

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, env: Mapping[str, int] | None = None):
        """Evaluate to a concrete value.

        ``env`` maps variable names to integers (or NumPy arrays — any object
        supporting Python arithmetic works, which lets the mini-Triton
        interpreter evaluate index expressions over index grids).
        """
        raise NotImplementedError

    # -- printing -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printers import PythonPrinter

        return PythonPrinter().doprint(self)

    def __str__(self) -> str:
        from .printers import PythonPrinter

        return PythonPrinter().doprint(self)

    # -- operators ------------------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, other)

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(other, self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Add(self, Mul(-1, other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Add(other, Mul(-1, self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, other)

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(other, self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(self, other)

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(other, self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod(self, other)

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Mod(other, self)

    def __neg__(self) -> "Expr":
        return Mul(-1, self)

    def __pos__(self) -> "Expr":
        return self

    # Comparison helpers build predicate nodes (not Python booleans); use
    # ``Expr.__eq__`` for structural equality.
    def lt(self, other: ExprLike) -> "Cmp":
        return Cmp("<", self, other)

    def le(self, other: ExprLike) -> "Cmp":
        return Cmp("<=", self, other)

    def gt(self, other: ExprLike) -> "Cmp":
        return Cmp(">", self, other)

    def ge(self, other: ExprLike) -> "Cmp":
        return Cmp(">=", self, other)

    def eq(self, other: ExprLike) -> "Cmp":
        return Cmp("==", self, other)

    def ne(self, other: ExprLike) -> "Cmp":
        return Cmp("!=", self, other)

    # -- misc -----------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Const)

    def constant_value(self) -> int | None:
        """The integer value if the expression is a literal constant."""
        return self.value if isinstance(self, Const) else None

    def sort_key(self) -> tuple:
        """Deterministic ordering key used to canonicalise commutative nodes."""
        return (_TYPE_ORDER.get(type(self).__name__, 99), self._ekey)


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __new__(cls, value: int) -> "Const":
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int):
            raise TypeError(f"Const requires an int, got {type(value).__name__}")
        key = ("Const", value)
        cached = _INTERN.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        with _intern_lock(key):
            cached = _INTERN.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
            obj = object.__new__(cls)
            object.__setattr__(obj, "value", value)
            _finalize(obj, key)
            _INTERN[key] = obj
            return obj

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("Const is immutable")

    def evaluate(self, env: Mapping[str, int] | None = None):
        return self.value

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return self


class Var(Expr):
    """A named integer variable.

    ``meta`` carries optional printing / codegen hints (for example the
    Triton printer renders a variable tagged as an ``arange`` atom as
    ``tl.arange(lo, hi)`` with broadcasting suffixes).  ``meta`` does not
    participate in equality or hashing: two variables with the same name are
    the same variable.  It *does* participate in interning, so a variable's
    hints survive hash-consing.
    """

    __slots__ = ("name", "meta")

    def __new__(cls, name: str, meta: Mapping[str, object] | None = None) -> "Var":
        if not isinstance(name, str) or not name:
            raise TypeError("Var requires a non-empty string name")
        meta_dict = dict(meta) if meta else {}
        intern_key: tuple | None
        try:
            intern_key = ("Var", name, tuple(sorted(meta_dict.items())))
            hash(intern_key)
        except TypeError:
            intern_key = None  # unhashable meta payload: keep a unique node
        if intern_key is None:
            # unhashable meta cannot be interned; the node stays unique
            obj = object.__new__(cls)
            object.__setattr__(obj, "name", name)
            object.__setattr__(obj, "meta", meta_dict)
            _finalize(obj, ("Var", name))
            return obj
        cached = _INTERN.get(intern_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        with _intern_lock(intern_key):
            cached = _INTERN.get(intern_key)
            if cached is not None:
                return cached  # type: ignore[return-value]
            obj = object.__new__(cls)
            object.__setattr__(obj, "name", name)
            object.__setattr__(obj, "meta", meta_dict)
            _finalize(obj, ("Var", name))
            _INTERN[intern_key] = obj
            return obj

    def __setattr__(self, name, value):
        raise AttributeError("Var is immutable")

    def evaluate(self, env: Mapping[str, int] | None = None):
        env = env or {}
        if self.name not in env:
            raise KeyError(f"no value bound for variable {self.name!r}")
        return env[self.name]

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return self


def symbols(names: str | Iterable[str]) -> tuple[Var, ...]:
    """Create several variables at once: ``i, j = symbols("i j")``."""
    if isinstance(names, str):
        parts = names.replace(",", " ").split()
    else:
        parts = list(names)
    return tuple(Var(p) for p in parts)


class _NaryExpr(Expr):
    """Shared implementation for n-ary nodes (stored args are ``Expr``)."""

    __slots__ = ("_args",)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    @property
    def args(self) -> tuple[Expr, ...]:
        return self._args

    @classmethod
    def _make(cls, args: tuple[Expr, ...], extra: tuple = ()) -> Expr:
        """Intern-aware constructor for canonicalised argument tuples."""
        key = (cls.__name__,) + extra + tuple(a._id for a in args)
        cached = _INTERN.get(key)
        if cached is not None:
            return cached
        with _intern_lock(key):
            cached = _INTERN.get(key)
            if cached is not None:
                return cached
            obj = object.__new__(cls)
            object.__setattr__(obj, "_args", args)
            ekey = (cls.__name__,) + extra + tuple(a._ekey for a in args)
            _finalize(obj, ekey)
            _INTERN[key] = obj
            return obj


class Add(_NaryExpr):
    """Sum of two or more terms (canonicalised, constants folded)."""

    __slots__ = ()

    def __new__(cls, *operands: ExprLike) -> Expr:
        terms: list[Expr] = []
        const_total = 0
        for op in operands:
            op = as_expr(op)
            if isinstance(op, Add):
                children: Iterable[Expr] = op.args
            else:
                children = (op,)
            for child in children:
                if isinstance(child, Const):
                    const_total += child.value
                else:
                    terms.append(child)
        # Collect like terms by their non-constant part.
        collected: dict[Expr, int] = {}
        order: list[Expr] = []
        for term in terms:
            coeff, rest = _split_coeff(term)
            if rest not in collected:
                collected[rest] = 0
                order.append(rest)
            collected[rest] += coeff
        final_terms: list[Expr] = []
        for rest in order:
            coeff = collected[rest]
            if coeff == 0:
                continue
            if coeff == 1:
                final_terms.append(rest)
            else:
                final_terms.append(Mul(coeff, rest))
        if const_total != 0:
            final_terms.append(Const(const_total))
        if not final_terms:
            return Const(0)
        if len(final_terms) == 1:
            return final_terms[0]
        final_terms.sort(key=lambda e: e.sort_key())
        return cls._make(tuple(final_terms))

    def evaluate(self, env: Mapping[str, int] | None = None):
        total = None
        for arg in self._args:
            value = arg.evaluate(env)
            total = value if total is None else total + value
        return total

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return Add(*args)


class Mul(_NaryExpr):
    """Product of two or more factors (canonicalised, constants folded)."""

    __slots__ = ()

    def __new__(cls, *operands: ExprLike) -> Expr:
        factors: list[Expr] = []
        const_total = 1
        for op in operands:
            op = as_expr(op)
            if isinstance(op, Mul):
                children: Iterable[Expr] = op.args
            else:
                children = (op,)
            for child in children:
                if isinstance(child, Const):
                    const_total *= child.value
                else:
                    factors.append(child)
        if const_total == 0:
            return Const(0)
        if not factors:
            return Const(const_total)
        factors.sort(key=lambda e: e.sort_key())
        if const_total != 1:
            factors = [Const(const_total)] + factors
        if len(factors) == 1:
            return factors[0]
        return cls._make(tuple(factors))

    def evaluate(self, env: Mapping[str, int] | None = None):
        total = None
        for arg in self._args:
            value = arg.evaluate(env)
            total = value if total is None else total * value
        return total

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return Mul(*args)


def _split_coeff(term: Expr) -> tuple[int, Expr]:
    """Split ``term`` into ``(integer coefficient, remaining factor)``."""
    if isinstance(term, Mul):
        consts = [a for a in term.args if isinstance(a, Const)]
        rest = [a for a in term.args if not isinstance(a, Const)]
        coeff = 1
        for c in consts:
            coeff *= c.value
        if not rest:
            return coeff, Const(1)
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(*rest)
    if isinstance(term, Const):
        return term.value, Const(1)
    return 1, term


class FloorDiv(_NaryExpr):
    """Floor (integer) division ``a // b``."""

    __slots__ = ()

    def __new__(cls, numerator: ExprLike, denominator: ExprLike) -> Expr:
        num = as_expr(numerator)
        den = as_expr(denominator)
        if isinstance(den, Const):
            if den.value == 0:
                raise ZeroDivisionError("symbolic floor division by zero constant")
            if den.value == 1:
                return num
        if isinstance(num, Const) and isinstance(den, Const):
            return Const(num.value // den.value)
        if isinstance(num, Const) and num.value == 0:
            return Const(0)
        return cls._make((num, den))

    @property
    def numerator(self) -> Expr:
        return self._args[0]

    @property
    def denominator(self) -> Expr:
        return self._args[1]

    def evaluate(self, env: Mapping[str, int] | None = None):
        return self._args[0].evaluate(env) // self._args[1].evaluate(env)

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return FloorDiv(args[0], args[1])


class Mod(_NaryExpr):
    """Euclidean-style modulo ``a % b`` (Python semantics)."""

    __slots__ = ()

    def __new__(cls, value: ExprLike, modulus: ExprLike) -> Expr:
        val = as_expr(value)
        mod = as_expr(modulus)
        if isinstance(mod, Const):
            if mod.value == 0:
                raise ZeroDivisionError("symbolic modulo by zero constant")
            if mod.value == 1:
                return Const(0)
        if isinstance(val, Const) and isinstance(mod, Const):
            return Const(val.value % mod.value)
        if isinstance(val, Const) and val.value == 0:
            return Const(0)
        return cls._make((val, mod))

    @property
    def value_expr(self) -> Expr:
        return self._args[0]

    @property
    def modulus(self) -> Expr:
        return self._args[1]

    def evaluate(self, env: Mapping[str, int] | None = None):
        return self._args[0].evaluate(env) % self._args[1].evaluate(env)

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return Mod(args[0], args[1])


class Min(_NaryExpr):
    """Minimum of two or more expressions."""

    __slots__ = ()

    def __new__(cls, *operands: ExprLike) -> Expr:
        return _build_minmax(cls, operands, pick=min)

    def evaluate(self, env: Mapping[str, int] | None = None):
        return min(a.evaluate(env) for a in self._args)

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return Min(*args)


class Max(_NaryExpr):
    """Maximum of two or more expressions."""

    __slots__ = ()

    def __new__(cls, *operands: ExprLike) -> Expr:
        return _build_minmax(cls, operands, pick=max)

    def evaluate(self, env: Mapping[str, int] | None = None):
        return max(a.evaluate(env) for a in self._args)

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return Max(*args)


def _build_minmax(cls, operands: Sequence[ExprLike], pick) -> Expr:
    flat: list[Expr] = []
    consts: list[int] = []
    seen: set[Expr] = set()
    for op in operands:
        op = as_expr(op)
        children = op.args if isinstance(op, cls) else (op,)
        for child in children:
            if isinstance(child, Const):
                consts.append(child.value)
            elif child not in seen:
                seen.add(child)
                flat.append(child)
    if consts:
        flat.append(Const(pick(consts)))
    if not flat:
        raise ValueError(f"{cls.__name__} requires at least one operand")
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda e: e.sort_key())
    return cls._make(tuple(flat))


_CMP_EVAL = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class Cmp(_NaryExpr):
    """An integer comparison producing a boolean (0/1) value."""

    __slots__ = ("op",)

    def __new__(cls, op: str, lhs: ExprLike, rhs: ExprLike) -> "Cmp":
        if op not in _CMP_EVAL:
            raise ValueError(f"unknown comparison operator {op!r}")
        left = as_expr(lhs)
        right = as_expr(rhs)
        key = ("Cmp", op, left._id, right._id)
        cached = _INTERN.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        with _intern_lock(key):
            cached = _INTERN.get(key)
            if cached is not None:
                return cached  # type: ignore[return-value]
            obj = object.__new__(cls)
            object.__setattr__(obj, "op", op)
            object.__setattr__(obj, "_args", (left, right))
            _finalize(obj, ("Cmp", op, left._ekey, right._ekey))
            _INTERN[key] = obj
            return obj

    @property
    def lhs(self) -> Expr:
        return self._args[0]

    @property
    def rhs(self) -> Expr:
        return self._args[1]

    def evaluate(self, env: Mapping[str, int] | None = None):
        return _CMP_EVAL[self.op](self._args[0].evaluate(env), self._args[1].evaluate(env))

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return Cmp(self.op, args[0], args[1])


class BoolAnd(_NaryExpr):
    """Logical conjunction of predicates."""

    __slots__ = ()

    def __new__(cls, *operands: ExprLike) -> Expr:
        flat = [as_expr(op) for op in operands]
        if not flat:
            return Const(1)
        if len(flat) == 1:
            return flat[0]
        return cls._make(tuple(flat))

    def evaluate(self, env: Mapping[str, int] | None = None):
        result = True
        for arg in self._args:
            result = result & _as_bool(arg.evaluate(env))
        return result

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return BoolAnd(*args)


class BoolOr(_NaryExpr):
    """Logical disjunction of predicates."""

    __slots__ = ()

    def __new__(cls, *operands: ExprLike) -> Expr:
        flat = [as_expr(op) for op in operands]
        if not flat:
            return Const(0)
        if len(flat) == 1:
            return flat[0]
        return cls._make(tuple(flat))

    def evaluate(self, env: Mapping[str, int] | None = None):
        result = False
        for arg in self._args:
            result = result | _as_bool(arg.evaluate(env))
        return result

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return BoolOr(*args)


class BoolNot(_NaryExpr):
    """Logical negation of a predicate."""

    __slots__ = ()

    def __new__(cls, operand: ExprLike) -> "BoolNot":
        return cls._make((as_expr(operand),))  # type: ignore[return-value]

    def evaluate(self, env: Mapping[str, int] | None = None):
        value = self._args[0].evaluate(env)
        if isinstance(value, bool):
            return not value
        return ~_as_bool(value)

    def _rebuild(self, args: Sequence[Expr]) -> Expr:
        return BoolNot(args[0])


def _as_bool(value):
    if isinstance(value, (bool, int)):
        return bool(value)
    return value  # NumPy arrays and friends already behave element-wise


_TYPE_ORDER = {
    "Const": 0,
    "Var": 1,
    "Mul": 2,
    "Add": 3,
    "FloorDiv": 4,
    "Mod": 5,
    "Min": 6,
    "Max": 7,
    "Cmp": 8,
    "BoolAnd": 9,
    "BoolOr": 10,
    "BoolNot": 11,
}
