"""Code printers for symbolic index expressions.

The paper prints the simplified index expressions with SymPy's Python and C
printers, plus a custom MLIR printer built on the MLIR Python bindings.  This
module provides the reproduction's equivalents:

* :class:`PythonPrinter` — Python / Triton source (floor ``//`` and ``%``),
* :class:`TritonPrinter` — Python syntax plus rendering hints carried in
  ``Var.meta`` (``tl.arange`` atoms with broadcast suffixes, ``tl.program_id``),
* :class:`CPrinter` — C / CUDA source (``/`` and ``%``; all layout indices are
  non-negative so truncating division agrees with floor division),
* :class:`MLIRArithPrinter` — a straight-line sequence of ``arith`` dialect
  operations in SSA form, used by the MLIR integration.

``doprint`` may be called repeatedly; each printer keeps an identity-keyed
memo (expressions are hash-consed, so ``Expr.expr_id`` identifies a subtree)
that makes re-printing shared subtrees O(1).  The memo is private to the
printer instance because the rendered text depends on its substitutions.
"""

from __future__ import annotations

from typing import Mapping

from .stats import CACHE_STATS

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
)

__all__ = ["PythonPrinter", "TritonPrinter", "CPrinter", "MLIRArithPrinter"]


_PREC_ADD = 10
_PREC_MUL = 20
_PREC_UNARY = 30
_PREC_ATOM = 100


class PythonPrinter:
    """Print expressions as Python source (also valid inside Triton kernels)."""

    #: operator spellings, overridden by subclasses
    floordiv_op = "//"
    mod_op = "%"
    min_func = "min"
    max_func = "max"

    def __init__(self, substitutions: Mapping[str, str] | None = None):
        #: optional variable-name -> source-text substitutions
        self.substitutions = dict(substitutions or {})
        #: identity-keyed memo: (expr_id, parent precedence) -> rendered text
        self._memo: dict[tuple[int, int], str] = {}
        self._memo_subs: tuple | None = None

    # -- public API ------------------------------------------------------------

    def doprint(self, expr: Expr) -> str:
        # substitutions is a public mutable attribute; drop the memo whenever
        # it changed so cached text never reflects stale substitutions
        subs_key = tuple(sorted(self.substitutions.items()))
        if subs_key != self._memo_subs:
            self._memo.clear()
            self._memo_subs = subs_key
        return self._print(expr, _PREC_ADD)

    # -- dispatch ---------------------------------------------------------------

    def _print(self, expr: Expr, parent_prec: int) -> str:
        key = (expr._id, parent_prec)
        cached = self._memo.get(key)
        if cached is not None:
            CACHE_STATS.print_hits += 1
            return cached
        text = self._print_uncached(expr, parent_prec)
        CACHE_STATS.print_misses += 1
        self._memo[key] = text
        return text

    def _print_uncached(self, expr: Expr, parent_prec: int) -> str:
        if isinstance(expr, Const):
            text = str(expr.value)
            if expr.value < 0 and parent_prec > _PREC_ADD:
                return f"({text})"
            return text
        if isinstance(expr, Var):
            return self._print_var(expr)
        if isinstance(expr, Add):
            return self._wrap(self._print_add(expr), _PREC_ADD, parent_prec)
        if isinstance(expr, Mul):
            return self._wrap(self._print_mul(expr), _PREC_MUL, parent_prec)
        if isinstance(expr, FloorDiv):
            text = (
                f"{self._print(expr.numerator, _PREC_MUL + 1)}"
                f"{self.floordiv_op}"
                f"{self._print(expr.denominator, _PREC_MUL + 1)}"
            )
            return self._wrap(text, _PREC_MUL, parent_prec)
        if isinstance(expr, Mod):
            text = (
                f"{self._print(expr.value_expr, _PREC_MUL + 1)}"
                f" {self.mod_op} "
                f"{self._print(expr.modulus, _PREC_MUL + 1)}"
            )
            return self._wrap(text, _PREC_MUL, parent_prec)
        if isinstance(expr, Min):
            inner = ", ".join(self._print(a, _PREC_ADD) for a in expr.args)
            return f"{self.min_func}({inner})"
        if isinstance(expr, Max):
            inner = ", ".join(self._print(a, _PREC_ADD) for a in expr.args)
            return f"{self.max_func}({inner})"
        if isinstance(expr, Cmp):
            text = f"{self._print(expr.lhs, _PREC_ADD)} {expr.op} {self._print(expr.rhs, _PREC_ADD)}"
            return f"({text})"
        if isinstance(expr, BoolAnd):
            return "(" + " and ".join(self._print(a, _PREC_ADD) for a in expr.args) + ")"
        if isinstance(expr, BoolOr):
            return "(" + " or ".join(self._print(a, _PREC_ADD) for a in expr.args) + ")"
        if isinstance(expr, BoolNot):
            return f"(not {self._print(expr.args[0], _PREC_ADD)})"
        raise TypeError(f"cannot print expression of type {type(expr).__name__}")

    # -- helpers ----------------------------------------------------------------

    def _print_var(self, var: Var) -> str:
        if var.name in self.substitutions:
            return self.substitutions[var.name]
        render = var.meta.get("render")
        if isinstance(render, str):
            return render
        return var.name

    def _print_add(self, expr: Add) -> str:
        parts: list[str] = []
        for arg in expr.args:
            text = self._print(arg, _PREC_ADD)
            if parts and not text.startswith("-"):
                parts.append(" + " + text)
            elif parts:
                parts.append(" - " + text[1:])
            else:
                parts.append(text)
        return "".join(parts)

    def _print_mul(self, expr: Mul) -> str:
        # Print factors at a precedence strictly above '*' so that '//' and
        # '%' factors are parenthesised; '%'/'//' share Python's precedence
        # with '*' and would otherwise re-associate incorrectly.
        return "*".join(self._print(a, _PREC_MUL + 1) for a in expr.args)

    def _wrap(self, text: str, prec: int, parent_prec: int) -> str:
        if prec < parent_prec:
            return f"({text})"
        return text


class TritonPrinter(PythonPrinter):
    """Python printer with Triton-specific variable renderings.

    Renders exactly like :class:`PythonPrinter`, but variables carrying a
    ``triton_render`` meta entry (produced by the slicing front-end for
    ``tl.arange`` atoms and for ``tl.program_id``) use that rendering.
    """

    def _print_var(self, var: Var) -> str:
        if var.name in self.substitutions:
            return self.substitutions[var.name]
        render = var.meta.get("triton_render") or var.meta.get("render")
        if isinstance(render, str):
            return render
        return var.name


class CPrinter(PythonPrinter):
    """C / CUDA printer.

    Layout lowering only ever produces non-negative indices, so C's truncating
    integer division coincides with floor division and ``/`` / ``%`` are safe
    spellings of :class:`FloorDiv` / :class:`Mod`.
    """

    floordiv_op = "/"
    mod_op = "%"
    min_func = "min"
    max_func = "max"

    def _print_var(self, var: Var) -> str:
        if var.name in self.substitutions:
            return self.substitutions[var.name]
        render = var.meta.get("c_render") or var.meta.get("render")
        if isinstance(render, str):
            return render
        return var.name


class MLIRArithPrinter:
    """Emit an expression as a straight-line sequence of ``arith`` dialect ops.

    ``lower(expr)`` returns ``(lines, result_name)`` where ``lines`` is a list
    of MLIR operation strings (``%cN = arith.constant ...``, ``%N = arith.addi
    ...``) and ``result_name`` is the SSA value holding the expression result.
    Variables must be bound to existing SSA names via ``value_names``.
    """

    def __init__(self, value_names: Mapping[str, str], index_type: str = "index"):
        self.value_names = dict(value_names)
        self.index_type = index_type
        self._lines: list[str] = []
        self._counter = 0
        # identity-keyed (hash-consed ids): shared subtrees lower to one SSA
        # value without any structural hashing of the tree
        self._cache: dict[int, str] = {}
        self._const_cache: dict[int, str] = {}

    def _fresh(self, prefix: str = "v") -> str:
        self._counter += 1
        return f"%{prefix}{self._counter}"

    def _emit(self, text: str) -> None:
        self._lines.append(text)

    def lower(self, expr: Expr) -> tuple[list[str], str]:
        self._lines = []
        name = self._lower(expr)
        return list(self._lines), name

    # -- recursive lowering ------------------------------------------------------

    def _lower(self, expr: Expr) -> str:
        cached = self._cache.get(expr._id)
        if cached is not None:
            CACHE_STATS.print_hits += 1
            return cached
        name = self._lower_uncached(expr)
        CACHE_STATS.print_misses += 1
        self._cache[expr._id] = name
        return name

    def _lower_uncached(self, expr: Expr) -> str:
        ty = self.index_type
        if isinstance(expr, Const):
            if expr.value in self._const_cache:
                return self._const_cache[expr.value]
            name = self._fresh("c")
            self._emit(f"{name} = arith.constant {expr.value} : {ty}")
            self._const_cache[expr.value] = name
            return name
        if isinstance(expr, Var):
            if expr.name not in self.value_names:
                raise KeyError(f"no SSA value bound for variable {expr.name!r}")
            return self.value_names[expr.name]
        if isinstance(expr, Add):
            return self._fold_binary(expr.args, "arith.addi")
        if isinstance(expr, Mul):
            return self._fold_binary(expr.args, "arith.muli")
        if isinstance(expr, FloorDiv):
            lhs = self._lower(expr.numerator)
            rhs = self._lower(expr.denominator)
            name = self._fresh()
            self._emit(f"{name} = arith.floordivsi {lhs}, {rhs} : {ty}")
            return name
        if isinstance(expr, Mod):
            lhs = self._lower(expr.value_expr)
            rhs = self._lower(expr.modulus)
            name = self._fresh()
            self._emit(f"{name} = arith.remsi {lhs}, {rhs} : {ty}")
            return name
        if isinstance(expr, Min):
            return self._fold_binary(expr.args, "arith.minsi")
        if isinstance(expr, Max):
            return self._fold_binary(expr.args, "arith.maxsi")
        if isinstance(expr, Cmp):
            pred = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge", "==": "eq", "!=": "ne"}[expr.op]
            lhs = self._lower(expr.lhs)
            rhs = self._lower(expr.rhs)
            name = self._fresh("b")
            self._emit(f"{name} = arith.cmpi {pred}, {lhs}, {rhs} : {ty}")
            return name
        if isinstance(expr, BoolAnd):
            return self._fold_binary(expr.args, "arith.andi", ty="i1")
        if isinstance(expr, BoolOr):
            return self._fold_binary(expr.args, "arith.ori", ty="i1")
        raise TypeError(f"cannot lower expression of type {type(expr).__name__} to MLIR")

    def _fold_binary(self, args, opname: str, ty: str | None = None) -> str:
        ty = ty or self.index_type
        names = [self._lower(a) for a in args]
        current = names[0]
        for nxt in names[1:]:
            fresh = self._fresh()
            self._emit(f"{fresh} = {opname} {current}, {nxt} : {ty}")
            current = fresh
        return current
