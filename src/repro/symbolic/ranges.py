"""Interval (range) analysis for symbolic integer expressions.

The paper propagates index-range information derived from layout shapes
through the generated expressions and uses it (via Z3) to discharge the side
conditions of the division/modulo simplification rules of Table II.  This
module provides the reproduction's equivalent: a small abstract-interpretation
framework over integer intervals.

Two pieces:

* :class:`Interval` — a possibly unbounded integer interval ``[lo, hi]`` with
  sound arithmetic for the operations appearing in layout expressions
  (addition, multiplication, floor division, modulo, min/max).
* :class:`RangeEnv` — an environment mapping variable names to intervals,
  with :meth:`RangeEnv.range_of` computing a sound interval for an arbitrary
  expression.

Unbounded ends are represented by ``None``.  All operations are conservative:
the returned interval always contains every value the expression can take for
inputs inside the environment's intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
)

__all__ = ["Interval", "RangeEnv"]


def _neg(value: Optional[int]) -> Optional[int]:
    return None if value is None else -value


def _min_opt(values: Iterable[Optional[int]]) -> Optional[int]:
    out: Optional[int] = None
    first = True
    for v in values:
        if v is None:
            return None
        if first or v < out:  # type: ignore[operator]
            out = v
            first = False
    return out


def _max_opt(values: Iterable[Optional[int]]) -> Optional[int]:
    out: Optional[int] = None
    first = True
    for v in values:
        if v is None:
            return None
        if first or v > out:  # type: ignore[operator]
            out = v
            first = False
    return out


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``None`` means unbounded."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self):
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def nonneg() -> "Interval":
        return Interval(0, None)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def index(extent: int) -> "Interval":
        """The range of an index into a dimension of size ``extent``."""
        if extent <= 0:
            raise ValueError(f"index extent must be positive, got {extent}")
        return Interval(0, extent - 1)

    # -- queries --------------------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def is_nonnegative(self) -> bool:
        return self.lo is not None and self.lo >= 0

    def is_positive(self) -> bool:
        return self.lo is not None and self.lo > 0

    def is_negative(self) -> bool:
        return self.hi is not None and self.hi < 0

    def is_nonzero(self) -> bool:
        return self.is_positive() or self.is_negative()

    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def iter_values(self):
        """Iterate all values (only valid for bounded intervals)."""
        if not self.bounded():
            raise ValueError("cannot enumerate an unbounded interval")
        return range(self.lo, self.hi + 1)  # type: ignore[arg-type]

    # -- lattice --------------------------------------------------------------

    def union(self, other: "Interval") -> "Interval":
        return Interval(_min_opt([self.lo, other.lo]), _max_opt([self.hi, other.hi]))

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return None
        return Interval(lo, hi)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def __neg__(self) -> "Interval":
        return Interval(_neg(self.hi), _neg(self.lo))

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = []
        unbounded = False
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    unbounded = True
                else:
                    corners.append(a * b)
        if unbounded:
            # A product involving an unbounded end is only bounded in special
            # cases (e.g. multiplication by the point 0); keep it simple and
            # sound by treating any unbounded operand as fully unbounded,
            # unless one operand is exactly the point 0.
            if self == Interval.point(0) or other == Interval.point(0):
                return Interval.point(0)
            # Non-negative times non-negative keeps a lower bound of 0.
            if self.is_nonnegative() and other.is_nonnegative():
                lo = 0
                if self.lo is not None and other.lo is not None:
                    lo = self.lo * other.lo
                return Interval(lo, None)
            return Interval.top()
        return Interval(min(corners), max(corners))

    def floordiv(self, other: "Interval") -> "Interval":
        """Sound interval for floor division.

        The divisor interval implicitly excludes 0 (division by zero is a
        runtime error, so the result range only needs to cover defined
        executions).  A divisor interval that straddles 0 is split into its
        negative and positive halves and the results are unioned.  Half-
        bounded operands stay as tight as floor-division monotonicity allows:
        ``x // d`` for ``d >= 1`` is monotone increasing in ``x`` and, for a
        fixed ``x``, moves monotonically toward ``0`` (``x >= 0``) or ``-1``
        (``x < 0``) as ``d`` grows without bound.
        """
        positive = other.intersect(Interval(1, None))
        negative = other.intersect(Interval(None, -1))
        if positive is None and negative is None:
            # the divisor can only be 0: no defined executions to cover
            return Interval.top()
        if positive is None:
            # x // d == (-x) // (-d) exactly (same rational, same floor)
            return (-self).floordiv(-negative)
        if negative is not None:
            return self.floordiv(positive).union((-self).floordiv(-negative))
        dlo, dhi = positive.lo, positive.hi  # dlo >= 1; dhi None or >= dlo
        # Upper bound: driven by the numerator's upper end.
        if self.hi is None:
            hi: Optional[int] = None
        elif self.hi >= 0:
            hi = self.hi // dlo  # largest quotient at the smallest divisor
        else:
            # negative numerator: quotient grows toward -1 as d grows
            hi = -1 if dhi is None else self.hi // dhi
        # Lower bound: driven by the numerator's lower end.
        if self.lo is None:
            lo: Optional[int] = None
        elif self.lo >= 0:
            lo = 0 if dhi is None else self.lo // dhi  # shrinks toward 0
        else:
            lo = self.lo // dlo  # most negative at the smallest divisor
        return Interval(lo, hi)

    def mod(self, other: "Interval") -> "Interval":
        """Sound interval for Python-semantics modulo.

        Like :meth:`floordiv`, the divisor interval implicitly excludes 0;
        a straddling divisor is split into its sign-definite halves and the
        results are unioned.  ``x % d`` lies in ``[0, d - 1]`` for ``d >= 1``
        and in ``[d + 1, 0]`` for ``d <= -1`` (Python/floor semantics), with
        the identity refinement when the value provably never wraps.
        """
        positive = other.intersect(Interval(1, None))
        negative = other.intersect(Interval(None, -1))
        results = []
        if positive is not None:
            if (
                self.is_nonnegative()
                and positive.lo is not None
                and self.hi is not None
                and self.hi < positive.lo
            ):
                # value already smaller than any possible modulus
                results.append(Interval(self.lo, self.hi))
            else:
                results.append(
                    Interval(0, None if positive.hi is None else positive.hi - 1)
                )
        if negative is not None:
            if (
                self.hi is not None
                and self.hi <= 0
                and negative.hi is not None
                and self.lo is not None
                and self.lo > negative.hi
            ):
                # nonpositive value strictly above every divisor: identity
                results.append(Interval(self.lo, self.hi))
            else:
                results.append(
                    Interval(None if negative.lo is None else negative.lo + 1, 0)
                )
        if not results:
            return Interval.top()
        out = results[0]
        for extra in results[1:]:
            out = out.union(extra)
        return out

    def min(self, other: "Interval") -> "Interval":
        return Interval(_min_opt([self.lo, other.lo]), _min_opt([self.hi, other.hi]))

    def max(self, other: "Interval") -> "Interval":
        return Interval(_max_opt([self.lo, other.lo]), _max_opt([self.hi, other.hi]))

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


class RangeEnv:
    """Maps variable names to intervals and evaluates expression ranges.

    The environment is immutable from the caller's point of view: ``with_var``
    and ``updated`` return new environments.  Construction accepts either
    :class:`Interval` instances, ``(lo, hi)`` tuples, or plain ints (meaning a
    point interval).
    """

    def __init__(self, bindings: Mapping[str, object] | None = None):
        self._bindings: dict[str, Interval] = {}
        if bindings:
            for name, value in bindings.items():
                self._bindings[name] = self._coerce(value)

    @staticmethod
    def _coerce(value: object) -> Interval:
        if isinstance(value, Interval):
            return value
        if isinstance(value, int):
            return Interval.point(value)
        if isinstance(value, tuple) and len(value) == 2:
            return Interval(value[0], value[1])
        raise TypeError(f"cannot interpret {value!r} as an Interval")

    # -- functional updates ---------------------------------------------------

    def with_var(self, name: str, value: object) -> "RangeEnv":
        new = RangeEnv()
        new._bindings = dict(self._bindings)
        new._bindings[name] = self._coerce(value)
        return new

    def updated(self, bindings: Mapping[str, object]) -> "RangeEnv":
        new = RangeEnv()
        new._bindings = dict(self._bindings)
        for name, value in bindings.items():
            new._bindings[name] = self._coerce(value)
        return new

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __getitem__(self, name: str) -> Interval:
        return self._bindings[name]

    def get(self, name: str, default: Interval | None = None) -> Interval | None:
        return self._bindings.get(name, default)

    def items(self):
        return self._bindings.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self._bindings.items()))
        return f"RangeEnv({{{inner}}})"

    # -- analysis -------------------------------------------------------------

    def range_of(self, expr: Expr) -> Interval:
        """Compute a sound interval for ``expr`` under this environment."""
        if isinstance(expr, Const):
            return Interval.point(expr.value)
        if isinstance(expr, Var):
            bound = self._bindings.get(expr.name)
            if bound is not None:
                return bound
            meta_range = expr.meta.get("range")
            if isinstance(meta_range, Interval):
                return meta_range
            if isinstance(meta_range, tuple) and len(meta_range) == 2:
                return Interval(meta_range[0], meta_range[1])
            return Interval.top()
        if isinstance(expr, Add):
            out = Interval.point(0)
            for arg in expr.args:
                out = out + self.range_of(arg)
            return out
        if isinstance(expr, Mul):
            out = Interval.point(1)
            for arg in expr.args:
                out = out * self.range_of(arg)
            return out
        if isinstance(expr, FloorDiv):
            return self.range_of(expr.numerator).floordiv(self.range_of(expr.denominator))
        if isinstance(expr, Mod):
            return self.range_of(expr.value_expr).mod(self.range_of(expr.modulus))
        if isinstance(expr, Min):
            out: Interval | None = None
            for arg in expr.args:
                r = self.range_of(arg)
                out = r if out is None else out.min(r)
            return out if out is not None else Interval.top()
        if isinstance(expr, Max):
            out = None
            for arg in expr.args:
                r = self.range_of(arg)
                out = r if out is None else out.max(r)
            return out if out is not None else Interval.top()
        if isinstance(expr, (Cmp, BoolAnd, BoolOr, BoolNot)):
            return Interval(0, 1)
        return Interval.top()
