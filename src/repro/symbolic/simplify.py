"""Range-aware simplification of layout index expressions.

This module implements the paper's Table II integer division and modulo
rewrite rules, together with the supporting algebraic clean-ups that layout
lowering relies on.  Each rule fires only when its side condition is proven by
:mod:`repro.symbolic.prover` under the assumption environment
(:class:`repro.symbolic.symranges.SymbolicEnv`), mirroring the paper's use of
index ranges plus an SMT solver.

Table II rules (pattern -> result, condition):

1. ``(d*q + r) % d -> r % d``                      (``d != 0``)
2. ``(d*q + r) / d -> q``  or ``q + r / d``        (``d != 0``; first form when ``0 <= r < d``)
3. ``(x % d) / d -> 0``                            (``d > 0``)
4. ``x / a -> 0``                                  (``a > 0``, ``0 <= x < a``)
5. ``x % a -> x``                                  (``a > 0``, ``0 <= x < a``)
6. ``(n + y) / 1 -> n + (y / 1)``                  (``n`` integer; handled by the ``//1`` constructor fold)
7. ``a*(x/a) + x%a -> x``                          (``a != 0``)

Additional (documented) rules beyond Table II that the paper's generated code
requires (cf. Figure 10):

* nested modulo: ``(x % m) % d -> x % d`` when ``d`` divides ``m``;
* divisibility folding: ``(x // d) * d -> x`` and ``x % d -> 0`` when the user
  declared ``d | x`` (e.g. ``BK | K`` for full-tile matmul configurations);
* ``min``/``max`` collapsing when one side is provably dominant.

Architecture
------------

The rules live in an explicit registry (:data:`RULE_REGISTRY`): each is a
:class:`RewriteRule` — a named, documented pattern function attached to one
node type — rather than a branch in a nested if-chain.  The engine applies
them through a **memoised bottom-up rewriter**: expression nodes are
hash-consed (:mod:`repro.symbolic.expr`), so one single-pass rewrite result
per node id is cached on the :class:`SymbolicEnv` (whose caches are dropped
whenever an assumption is declared — the ``(expr_id, env_fingerprint)``
scheme).  :func:`simplify_fixpoint` additionally caches the final fixpoint per
root expression, making repeated lowering of the same index expressions — the
hot path of Tables III/IV — effectively free.

``expand`` distributes products over sums; the code-generation pipeline
generates both the expanded and unexpanded simplified forms and picks the one
with the lower operation count (Section IV-A's cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    as_expr,
)
from .indexrange import constant_interval
from .prover import is_nonzero, is_positive, prove_le, prove_lt, prove_nonneg
from .stats import CACHE_STATS
from .symranges import SymbolicEnv

__all__ = [
    "simplify",
    "expand",
    "simplify_fixpoint",
    "RewriteRule",
    "RULE_REGISTRY",
    "rules_for",
]

_MAX_PASSES = 8
_MAX_DEPTH = 24


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RewriteRule:
    """One named rewrite: a pattern function attached to a node type.

    ``fn(expr, env, rw)`` returns the rewritten expression, or ``None`` when
    the rule does not fire.  ``rw`` is the active :class:`_Rewriter`; rules
    use it to re-enter the engine on freshly built sub-terms (e.g. rule 2
    collapses the remainder division it emits).
    """

    name: str
    node_type: type
    description: str
    fn: Callable[[Expr, SymbolicEnv, "_Rewriter"], Optional[Expr]]


#: all rules, in registration (= application) order
RULE_REGISTRY: list[RewriteRule] = []

_RULES_BY_TYPE: dict[type, tuple[RewriteRule, ...]] = {}


def rules_for(node_type: type) -> tuple[RewriteRule, ...]:
    """The registered rules for one node type, in application order."""
    return _RULES_BY_TYPE.get(node_type, ())


def _rule(node_type: type, name: str, description: str):
    """Class decorator registering a pattern function as a :class:`RewriteRule`."""

    def register(fn):
        rule = RewriteRule(name=name, node_type=node_type, description=description, fn=fn)
        RULE_REGISTRY.append(rule)
        _RULES_BY_TYPE[node_type] = _RULES_BY_TYPE.get(node_type, ()) + (rule,)
        return fn

    return register


# ---------------------------------------------------------------------------
# the memoised rewrite engine
# ---------------------------------------------------------------------------


class _Rewriter:
    """One simplification pass: bottom-up, memoised on the environment.

    The single-pass result for a node is a pure function of the node identity
    and the environment's facts, so it is cached in
    ``env._simplify_cache[expr_id]``.  Results whose computation ran into the
    depth cutoff are not cached (they would poison shallower queries).
    """

    __slots__ = ("env", "_cutoff_hit")

    def __init__(self, env: SymbolicEnv):
        self.env = env
        self._cutoff_hit = False

    def rewrite(self, expr: Expr, depth: int = 0) -> Expr:
        if isinstance(expr, (Const, Var)):
            return expr
        cache = self.env._simplify_cache
        cached = cache.get(expr._id)
        if cached is not None:
            CACHE_STATS.simplify_hits += 1
            return cached
        if depth > _MAX_DEPTH:
            self._cutoff_hit = True
            return expr
        outer_cutoff = self._cutoff_hit
        self._cutoff_hit = False
        new = expr.map_children(lambda child: self.rewrite(child, depth + 1))
        result = self.apply_rules(type(new), new)
        subtree_clean = not self._cutoff_hit
        self._cutoff_hit = self._cutoff_hit or outer_cutoff
        if subtree_clean:
            CACHE_STATS.simplify_misses += 1
            cache[expr._id] = result
        return result

    def apply_rules(self, node_type: type, expr: Expr) -> Expr:
        """Apply ``node_type``'s rules to ``expr``, restarting after each hit.

        Mirrors the historical recursive structure: a rule that produces a
        node of the same type re-enters the rule list from the top (e.g. the
        modulo-split rule re-examines its own output); a different node type
        is returned as-is, constructor canonicalisation included.
        """
        rules = _RULES_BY_TYPE.get(node_type)
        if not rules:
            return expr
        for _ in range(64):  # structural-termination backstop
            if not isinstance(expr, node_type):
                return expr
            for rule in rules:
                out = rule.fn(expr, self.env, self)
                if out is not None and out is not expr:
                    CACHE_STATS.count_rule(rule.name)
                    expr = out
                    break
            else:
                return expr
        return expr


def simplify(expr: ExprLike, env: SymbolicEnv | None = None, _depth: int = 0) -> Expr:
    """Simplify ``expr`` under the assumptions in ``env`` (single pass, bottom-up)."""
    expr = as_expr(expr)
    env = env or SymbolicEnv()
    return _Rewriter(env).rewrite(expr, _depth)


def simplify_fixpoint(expr: ExprLike, env: SymbolicEnv | None = None) -> Expr:
    """Apply :func:`simplify` repeatedly until the expression stops changing.

    Fixpoints are memoised per root expression on the environment: every
    intermediate form seen along the way maps to the same final result, so
    re-simplifying either the original or an already-simplified expression is
    a dictionary lookup.
    """
    expr = as_expr(expr)
    env = env or SymbolicEnv()
    cache = env._fixpoint_cache
    cached = cache.get(expr._id)
    if cached is not None:
        CACHE_STATS.fixpoint_hits += 1
        return cached
    CACHE_STATS.fixpoint_misses += 1
    chain = [expr]
    current = expr
    converged = False
    for _ in range(_MAX_PASSES):
        rewriter = _Rewriter(env)
        new = rewriter.rewrite(current, 0)
        if new is current or new == current:
            current = new
            converged = True
            break
        current = new
        chain.append(new)
    if converged:
        # Every intermediate form reaches the same fixpoint, so all of them
        # map to it.  A chain that exhausted the pass budget is NOT cached:
        # querying an intermediate directly would run further passes, and the
        # cache must never return a less-simplified answer than a cold call.
        for seen in chain:
            cache[seen._id] = current
    return current


# ---------------------------------------------------------------------------
# modulo rules
# ---------------------------------------------------------------------------


@_rule(Mod, "mod-divisible-zero", "x % d -> 0 when d | x (declared or structural)")
def _mod_divisible_zero(expr: Mod, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    if env.divides(expr.modulus, expr.value_expr):
        return Const(0)
    return None


@_rule(Mod, "mod-split-multiple", "Table II rule 1: (d*q + r) % d -> r % d when d != 0")
def _mod_split_multiple(expr: Mod, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    value, modulus = expr.value_expr, expr.modulus
    if not is_nonzero(modulus, env):
        return None
    multiple, rest = _split_multiple_of(value, modulus, env)
    if multiple is None:
        return None
    if isinstance(rest, Const) and rest.value == 0:
        return Const(0)
    return rw.apply_rules(Mod, Mod(rest, modulus))


@_rule(Mod, "mod-range-identity", "Table II rule 5: x % a -> x when a > 0 and 0 <= x < a")
def _mod_range_identity(expr: Mod, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    value, modulus = expr.value_expr, expr.modulus
    if not (is_positive(modulus, env) and prove_nonneg(value, env)):
        return None
    value_hi = env.range_of(value).hi
    if value_hi is not None and prove_lt(value_hi, modulus, env):
        return value
    if prove_lt(value, modulus, env):
        return value
    return None


@_rule(Mod, "mod-nested", "(x % m) % d -> x % d when d | m")
def _mod_nested(expr: Mod, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    value, modulus = expr.value_expr, expr.modulus
    if isinstance(value, Mod) and env.divides(modulus, value.modulus):
        return rw.apply_rules(Mod, Mod(value.value_expr, modulus))
    return None


# ---------------------------------------------------------------------------
# floor-division rules
# ---------------------------------------------------------------------------


@_rule(FloorDiv, "div-exact", "(c*d*rest) // d -> c*rest when the division is provably exact")
def _div_exact(expr: FloorDiv, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    return _exact_quotient(expr.numerator, expr.denominator, env)


@_rule(FloorDiv, "div-mod-zero", "Table II rule 3: (x % d) / d -> 0 when d > 0")
def _div_mod_zero(expr: FloorDiv, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    num, den = expr.numerator, expr.denominator
    if isinstance(num, Mod) and num.modulus == den and is_positive(den, env):
        return Const(0)
    return None


@_rule(FloorDiv, "div-range-zero", "Table II rule 4: x / a -> 0 when a > 0 and 0 <= x < a")
def _div_range_zero(expr: FloorDiv, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    num, den = expr.numerator, expr.denominator
    if not (is_positive(den, env) and prove_nonneg(num, env)):
        return None
    num_hi = env.range_of(num).hi
    if num_hi is not None and prove_lt(num_hi, den, env):
        return Const(0)
    if prove_lt(num, den, env):
        return Const(0)
    return None


@_rule(FloorDiv, "div-negative-const", "c // d -> -1 when -d <= c < 0 and d > 0")
def _div_negative_const(expr: FloorDiv, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    # Needed so symbolic range bounds such as (mn*ntn - 1)//mn collapse to
    # ntn - 1, which in turn lets rules 4 and 5 fire on grouped thread layouts.
    num, den = expr.numerator, expr.denominator
    if isinstance(num, Const) and num.value < 0 and is_positive(den, env):
        if prove_le(Const(-num.value), den, env):
            return Const(-1)
    return None


@_rule(
    FloorDiv,
    "div-interval-collapse",
    "x // c -> q when the constant range of x lies within [q*c, (q+1)*c)",
)
def _div_interval_collapse(expr: FloorDiv, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    # The stride-aware range analysis carries exact constant bounds through
    # negative coefficients, so this subsumes div-range-zero (q == 0, x >= 0)
    # and additionally collapses negative-range and shifted numerators.
    den = expr.denominator
    if not isinstance(den, Const) or den.value <= 0:
        return None
    bounds = constant_interval(expr.numerator, env)
    if bounds is None or bounds.lo is None or bounds.hi is None:
        return None
    quotient = bounds.lo // den.value
    if bounds.hi // den.value != quotient:
        return None
    return Const(quotient)


@_rule(
    Mod,
    "mod-interval-collapse",
    "x % c -> x - q*c when the constant range of x lies within [q*c, (q+1)*c)",
)
def _mod_interval_collapse(expr: Mod, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    mod = expr.modulus
    if not isinstance(mod, Const) or mod.value <= 0:
        return None
    bounds = constant_interval(expr.value_expr, env)
    if bounds is None or bounds.lo is None or bounds.hi is None:
        return None
    quotient = bounds.lo // mod.value
    if bounds.hi // mod.value != quotient:
        return None
    if quotient == 0:
        return expr.value_expr
    return Add(expr.value_expr, Const(-quotient * mod.value))


@_rule(FloorDiv, "div-split-multiple", "Table II rule 2: (d*q + r) / d -> q + r/d when d != 0")
def _div_split_multiple(expr: FloorDiv, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    num, den = expr.numerator, expr.denominator
    if not is_nonzero(den, env):
        return None
    multiple, rest = _split_multiple_of(num, den, env)
    if multiple is None:
        return None
    quotient = multiple
    if isinstance(rest, Const) and rest.value == 0:
        return quotient
    # The split identity (d*q + r)//d == q + r//d requires floor semantics,
    # which hold unconditionally for d != 0 only when the remainder term's
    # floor division is kept; emit q + r//d and let the re-entrant rewrite
    # collapse r//d when 0 <= r < d.
    rest_div = rw.apply_rules(FloorDiv, FloorDiv(rest, den))
    return Add(quotient, rest_div)


def _exact_quotient(num: Expr, den: Expr, env: SymbolicEnv) -> Optional[Expr]:
    """Return ``num / den`` when the division is provably exact and removable."""
    if num == den:
        return Const(1)
    if isinstance(num, Mul):
        factors = list(num.args)
        # literal factor equal to the denominator
        for i, factor in enumerate(factors):
            if factor == den:
                rest = factors[:i] + factors[i + 1 :]
                return Mul(*rest) if rest else Const(1)
        # constant // constant folding with a constant coefficient
        if isinstance(den, Const):
            for i, factor in enumerate(factors):
                if isinstance(factor, Const) and den.value != 0 and factor.value % den.value == 0:
                    rest = factors[:i] + factors[i + 1 :]
                    coeff = Const(factor.value // den.value)
                    return Mul(coeff, *rest) if rest else coeff
    if isinstance(num, Const) and isinstance(den, Const) and den.value != 0:
        if num.value % den.value == 0:
            return Const(num.value // den.value)
    return None


def _split_multiple_of(
    value: Expr, divisor: Expr, env: SymbolicEnv
) -> tuple[Optional[Expr], Expr]:
    """Split ``value`` into ``divisor * quotient + rest``.

    Returns ``(quotient, rest)`` when at least one additive term of ``value``
    is a provable multiple of ``divisor`` (structurally, through a literal
    factor, constant divisibility, or a user-declared divisibility fact);
    otherwise ``(None, value)``.
    """
    terms = list(value.args) if isinstance(value, Add) else [value]
    quotient_terms: list[Expr] = []
    rest_terms: list[Expr] = []
    for term in terms:
        q = _term_quotient(term, divisor, env)
        if q is not None:
            quotient_terms.append(q)
        else:
            rest_terms.append(term)
    if not quotient_terms:
        return None, value
    quotient = Add(*quotient_terms) if len(quotient_terms) > 1 else quotient_terms[0]
    rest = Add(*rest_terms) if rest_terms else Const(0)
    return quotient, rest


def _term_quotient(term: Expr, divisor: Expr, env: SymbolicEnv) -> Optional[Expr]:
    """If ``term`` is a multiple of ``divisor``, return ``term / divisor``."""
    if term == divisor:
        return Const(1)
    if isinstance(term, Const) and isinstance(divisor, Const):
        if divisor.value != 0 and term.value % divisor.value == 0:
            return Const(term.value // divisor.value)
        return None
    if isinstance(term, Mul):
        factors = list(term.args)
        # a literal occurrence of the divisor among the factors
        for i, factor in enumerate(factors):
            if factor == divisor:
                rest = factors[:i] + factors[i + 1 :]
                return Mul(*rest) if rest else Const(1)
        # a constant coefficient divisible by a constant divisor
        if isinstance(divisor, Const) and divisor.value != 0:
            for i, factor in enumerate(factors):
                if isinstance(factor, Const) and factor.value % divisor.value == 0:
                    rest = factors[:i] + factors[i + 1 :]
                    coeff = Const(factor.value // divisor.value)
                    return Mul(coeff, *rest) if rest else coeff
        # a factor pair (d, x // d) whose product is exactly the divisor x
        # (requires d | x, e.g. BK * (K // BK) == K for the matmul layouts)
        for i, factor in enumerate(factors):
            if not isinstance(factor, FloorDiv):
                continue
            x, d = factor.numerator, factor.denominator
            if x != divisor or not env.divides(d, x):
                continue
            for j, other in enumerate(factors):
                if j != i and other == d:
                    rest = [f for k, f in enumerate(factors) if k not in (i, j)]
                    return Mul(*rest) if rest else Const(1)
        # a factor the user declared divisible by the divisor (e.g. K with BK | K)
        for i, factor in enumerate(factors):
            if not isinstance(factor, Const) and factor != divisor and env.divides(divisor, factor):
                rest = factors[:i] + factors[i + 1 :]
                quotient_factor = FloorDiv(factor, divisor)
                return Mul(quotient_factor, *rest) if rest else quotient_factor
    # whole-term divisibility fact (e.g. K with BK | K)
    if not isinstance(term, (Const, Mul)) and env.divides(divisor, term) and term != divisor:
        return FloorDiv(term, divisor)
    return None


# ---------------------------------------------------------------------------
# addition: rule 7 and divisibility folding
# ---------------------------------------------------------------------------


@_rule(Add, "add-recompose", "Table II rule 7: a*(x/a) + x%a -> x when a != 0")
def _add_recompose(expr: Add, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    terms = list(expr.args)

    # Match pairs of terms with equal integer coefficients where one is
    # c*Mod(x, a) and the other is c*a*FloorDiv(x, a).
    changed_any = False
    changed = True
    while changed:
        changed = False
        mod_positions: list[tuple[int, int, Expr, Expr]] = []  # (idx, coeff, x, a)
        for i, term in enumerate(terms):
            coeff, body = _coeff_and_body(term)
            if isinstance(body, Mod):
                mod_positions.append((i, coeff, body.value_expr, body.modulus))
        for (i, coeff, x, a) in mod_positions:
            if not is_nonzero(a, env):
                continue
            for j, other in enumerate(terms):
                if j == i:
                    continue
                if _matches_div_times_divisor(other, coeff, x, a):
                    replacement = Mul(coeff, x) if coeff != 1 else x
                    new_terms = [t for k, t in enumerate(terms) if k not in (i, j)]
                    new_terms.append(replacement)
                    terms = new_terms
                    changed = True
                    changed_any = True
                    break
            if changed:
                break
    if not changed_any:
        return None
    return Add(*terms) if len(terms) > 1 else (terms[0] if terms else Const(0))


def _coeff_and_body(term: Expr) -> tuple[int, Expr]:
    """Split a term into an integer coefficient and the remaining factor."""
    if isinstance(term, Mul):
        coeff = 1
        rest: list[Expr] = []
        for factor in term.args:
            if isinstance(factor, Const):
                coeff *= factor.value
            else:
                rest.append(factor)
        if len(rest) == 1:
            return coeff, rest[0]
        if rest:
            return coeff, Mul(*rest)
        return coeff, Const(1)
    if isinstance(term, Const):
        return term.value, Const(1)
    return 1, term


def _matches_div_times_divisor(term: Expr, coeff: int, x: Expr, a: Expr) -> bool:
    """Does ``term`` equal ``coeff * a * (x // a)``?"""
    expected = Mul(coeff, a, FloorDiv(x, a))
    return term == expected


# ---------------------------------------------------------------------------
# multiplication: divisibility folding
# ---------------------------------------------------------------------------


@_rule(Mul, "mul-div-cancel", "(x // d) * d -> x when d | x")
def _mul_div_cancel(expr: Mul, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    factors = list(expr.args)
    changed_any = False
    changed = True
    while changed:
        changed = False
        for i, factor in enumerate(factors):
            if not isinstance(factor, FloorDiv):
                continue
            x, d = factor.numerator, factor.denominator
            if not env.divides(d, x):
                continue
            for j, other in enumerate(factors):
                if j != i and other == d:
                    new_factors = [f for k, f in enumerate(factors) if k not in (i, j)]
                    new_factors.append(x)
                    factors = new_factors
                    changed = True
                    changed_any = True
                    break
            if changed:
                break
    if not changed_any:
        return None
    if len(factors) == 1:
        return factors[0]
    return Mul(*factors)


# ---------------------------------------------------------------------------
# min / max
# ---------------------------------------------------------------------------


@_rule(Min, "min-dominated", "drop Min arguments some other argument is provably <=")
def _min_dominated(expr: Min, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    args = list(expr.args)
    kept: list[Expr] = []
    for arg in args:
        dominated = False
        for other in args:
            if other is arg:
                continue
            # drop `arg` if some other argument is provably <= arg
            if other != arg and prove_le(other, arg, env) and not prove_le(arg, other, env):
                dominated = True
                break
        if not dominated:
            kept.append(arg)
    if not kept or len(kept) == len(args):
        return None
    if len(kept) == 1:
        return kept[0]
    return Min(*kept)


@_rule(Max, "max-dominated", "drop Max arguments provably <= some other argument")
def _max_dominated(expr: Max, env: SymbolicEnv, rw: _Rewriter) -> Optional[Expr]:
    args = list(expr.args)
    kept: list[Expr] = []
    for arg in args:
        dominated = False
        for other in args:
            if other is arg:
                continue
            if other != arg and prove_le(arg, other, env) and not prove_le(other, arg, env):
                dominated = True
                break
        if not dominated:
            kept.append(arg)
    if not kept or len(kept) == len(args):
        return None
    if len(kept) == 1:
        return kept[0]
    return Max(*kept)


# ---------------------------------------------------------------------------
# expansion (pre-expansion variant of the pipeline)
# ---------------------------------------------------------------------------


def expand(expr: ExprLike) -> Expr:
    """Distribute products over sums (recursively).

    The code-generation pipeline simplifies both the expanded and unexpanded
    forms of every index expression and keeps whichever has the lower
    operation count — the paper's NW benchmark favours the unexpanded form
    while LUD favours the expanded one.
    """
    expr = as_expr(expr)
    if isinstance(expr, (Const, Var)):
        return expr
    cached = _EXPAND_CACHE.get(expr._id)
    if cached is not None:
        return cached
    out = expr.map_children(expand)
    if isinstance(out, Mul):
        out = _expand_mul(out)
    _EXPAND_CACHE[expr._id] = out
    return out


#: ``expand`` is env-independent, so one process-global identity-keyed cache
#: is sound; interning keeps it compact (one entry per distinct expression).
#: Concurrency: dict reads/writes are individually atomic under the GIL and
#: ``expand`` is a pure function of the (interned) node identity, so a race
#: between two threads computing the same entry is benign — both write the
#: same interned result and last-writer-wins changes nothing.  The per-env
#: simplify/fixpoint/proof/range caches have no such story and rely on the
#: thread-confinement contract documented on :class:`SymbolicEnv`.
_EXPAND_CACHE: dict[int, Expr] = {}


def _expand_mul(expr: Expr) -> Expr:
    if not isinstance(expr, Mul):
        return expr
    # Separate out additive factors and distribute them pairwise.
    result_terms: list[Expr] = [Const(1)]
    for factor in expr.args:
        factor_terms = list(factor.args) if isinstance(factor, Add) else [factor]
        new_terms: list[Expr] = []
        for existing in result_terms:
            for ft in factor_terms:
                new_terms.append(Mul(existing, ft))
        result_terms = new_terms
    if len(result_terms) == 1:
        return result_terms[0]
    return Add(*result_terms)
