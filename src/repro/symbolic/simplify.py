"""Range-aware simplification of layout index expressions.

This module implements the paper's Table II integer division and modulo
rewrite rules, together with the supporting algebraic clean-ups that layout
lowering relies on.  Each rule fires only when its side condition is proven by
:mod:`repro.symbolic.prover` under the assumption environment
(:class:`repro.symbolic.symranges.SymbolicEnv`), mirroring the paper's use of
index ranges plus an SMT solver.

Table II rules (pattern -> result, condition):

1. ``(d*q + r) % d -> r % d``                      (``d != 0``)
2. ``(d*q + r) / d -> q``  or ``q + r / d``        (``d != 0``; first form when ``0 <= r < d``)
3. ``(x % d) / d -> 0``                            (``d > 0``)
4. ``x / a -> 0``                                  (``a > 0``, ``0 <= x < a``)
5. ``x % a -> x``                                  (``a > 0``, ``0 <= x < a``)
6. ``(n + y) / 1 -> n + (y / 1)``                  (``n`` integer; handled by the ``//1`` constructor fold)
7. ``a*(x/a) + x%a -> x``                          (``a != 0``)

Additional (documented) rules beyond Table II that the paper's generated code
requires (cf. Figure 10):

* nested modulo: ``(x % m) % d -> x % d`` when ``d`` divides ``m``;
* divisibility folding: ``(x // d) * d -> x`` and ``x % d -> 0`` when the user
  declared ``d | x`` (e.g. ``BK | K`` for full-tile matmul configurations);
* ``min``/``max`` collapsing when one side is provably dominant.

``expand`` distributes products over sums; the code-generation pipeline
generates both the expanded and unexpanded simplified forms and picks the one
with the lower operation count (Section IV-A's cost model).
"""

from __future__ import annotations

from typing import Optional

from .expr import (
    Add,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Const,
    Expr,
    ExprLike,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
    as_expr,
)
from .prover import is_nonzero, is_positive, prove_le, prove_lt, prove_nonneg
from .symranges import SymbolicEnv

__all__ = ["simplify", "expand", "simplify_fixpoint"]

_MAX_PASSES = 8


def simplify(expr: ExprLike, env: SymbolicEnv | None = None, _depth: int = 0) -> Expr:
    """Simplify ``expr`` under the assumptions in ``env`` (single pass, bottom-up)."""
    expr = as_expr(expr)
    env = env or SymbolicEnv()
    return _simplify_node(expr, env, _depth)


def simplify_fixpoint(expr: ExprLike, env: SymbolicEnv | None = None) -> Expr:
    """Apply :func:`simplify` repeatedly until the expression stops changing."""
    expr = as_expr(expr)
    env = env or SymbolicEnv()
    for _ in range(_MAX_PASSES):
        new = _simplify_node(expr, env, 0)
        if new == expr:
            return new
        expr = new
    return expr


def _simplify_node(expr: Expr, env: SymbolicEnv, depth: int) -> Expr:
    if depth > 24 or isinstance(expr, (Const, Var)):
        return expr
    # Simplify children first (the n-ary constructors re-canonicalise).
    expr = expr.map_children(lambda child: _simplify_node(child, env, depth + 1))
    if isinstance(expr, Mod):
        return _simplify_mod(expr, env, depth)
    if isinstance(expr, FloorDiv):
        return _simplify_floordiv(expr, env, depth)
    if isinstance(expr, Add):
        return _simplify_add(expr, env, depth)
    if isinstance(expr, Mul):
        return _simplify_mul(expr, env, depth)
    if isinstance(expr, Min):
        return _simplify_min(expr, env)
    if isinstance(expr, Max):
        return _simplify_max(expr, env)
    if isinstance(expr, (Cmp, BoolAnd, BoolOr, BoolNot)):
        return expr
    return expr


# ---------------------------------------------------------------------------
# modulo
# ---------------------------------------------------------------------------


def _simplify_mod(expr: Expr, env: SymbolicEnv, depth: int) -> Expr:
    if not isinstance(expr, Mod):
        return expr
    value, modulus = expr.value_expr, expr.modulus

    # Divisibility fact: d | x  =>  x % d == 0.
    if env.divides(modulus, value):
        return Const(0)

    # Rule 1: (d*q + r) % d -> r % d  when d != 0.
    if is_nonzero(modulus, env):
        multiple, rest = _split_multiple_of(value, modulus, env)
        if multiple is not None:
            return _simplify_mod(Mod(rest, modulus), env, depth + 1) if not isinstance(
                rest, Const
            ) or rest.value != 0 else Const(0)

    # Rule 5: x % a -> x  when a > 0 and 0 <= x < a.
    if is_positive(modulus, env) and prove_nonneg(value, env):
        value_hi = env.range_of(value).hi
        if value_hi is not None and prove_lt(value_hi, modulus, env):
            return value
        if prove_lt(value, modulus, env):
            return value

    # Nested modulo: (x % m) % d -> x % d  when d | m.
    if isinstance(value, Mod) and env.divides(modulus, value.modulus):
        return _simplify_mod(Mod(value.value_expr, modulus), env, depth + 1)

    return Mod(value, modulus)


# ---------------------------------------------------------------------------
# floor division
# ---------------------------------------------------------------------------


def _simplify_floordiv(expr: Expr, env: SymbolicEnv, depth: int) -> Expr:
    if not isinstance(expr, FloorDiv):
        return expr
    num, den = expr.numerator, expr.denominator

    # Divisibility fact folding: (c*d*rest) // d -> c*rest when d | num exactly
    # through a literal factor.
    exact = _exact_quotient(num, den, env)
    if exact is not None:
        return exact

    # Rule 3: (x % d) / d -> 0  when d > 0.
    if isinstance(num, Mod) and num.modulus == den and is_positive(den, env):
        return Const(0)

    # Rule 4: x / a -> 0  when a > 0, 0 <= x < a.
    if is_positive(den, env) and prove_nonneg(num, env):
        num_hi = env.range_of(num).hi
        if num_hi is not None and prove_lt(num_hi, den, env):
            return Const(0)
        if prove_lt(num, den, env):
            return Const(0)

    # Small negative constant numerators: -d <= c < 0 and d > 0 imply c//d == -1.
    # (Needed so symbolic range bounds such as (mn*ntn - 1)//mn collapse to
    # ntn - 1, which in turn lets rules 4 and 5 fire on grouped thread layouts.)
    if isinstance(num, Const) and num.value < 0 and is_positive(den, env):
        if prove_le(Const(-num.value), den, env):
            return Const(-1)

    # Rule 2: (d*q + r) / d -> q  (or q + r/d)  when d != 0.
    if is_nonzero(den, env):
        multiple, rest = _split_multiple_of(num, den, env)
        if multiple is not None:
            quotient = multiple
            if isinstance(rest, Const) and rest.value == 0:
                return quotient
            # The split identity (d*q + r)//d == q + r//d requires floor
            # semantics, which hold unconditionally for d != 0 only when the
            # remainder term's floor division is kept; emit q + r//d and let
            # the recursive call collapse r//d when 0 <= r < d.
            rest_div = _simplify_floordiv(FloorDiv(rest, den), env, depth + 1)
            return Add(quotient, rest_div)

    return FloorDiv(num, den)


def _exact_quotient(num: Expr, den: Expr, env: SymbolicEnv) -> Optional[Expr]:
    """Return ``num / den`` when the division is provably exact and removable."""
    if num == den:
        return Const(1)
    if isinstance(num, Mul):
        factors = list(num.args)
        # literal factor equal to the denominator
        for i, factor in enumerate(factors):
            if factor == den:
                rest = factors[:i] + factors[i + 1 :]
                return Mul(*rest) if rest else Const(1)
        # constant // constant folding with a constant coefficient
        if isinstance(den, Const):
            for i, factor in enumerate(factors):
                if isinstance(factor, Const) and den.value != 0 and factor.value % den.value == 0:
                    rest = factors[:i] + factors[i + 1 :]
                    coeff = Const(factor.value // den.value)
                    return Mul(coeff, *rest) if rest else coeff
    if isinstance(num, Const) and isinstance(den, Const) and den.value != 0:
        if num.value % den.value == 0:
            return Const(num.value // den.value)
    return None


def _split_multiple_of(
    value: Expr, divisor: Expr, env: SymbolicEnv
) -> tuple[Optional[Expr], Expr]:
    """Split ``value`` into ``divisor * quotient + rest``.

    Returns ``(quotient, rest)`` when at least one additive term of ``value``
    is a provable multiple of ``divisor`` (structurally, through a literal
    factor, constant divisibility, or a user-declared divisibility fact);
    otherwise ``(None, value)``.
    """
    terms = list(value.args) if isinstance(value, Add) else [value]
    quotient_terms: list[Expr] = []
    rest_terms: list[Expr] = []
    for term in terms:
        q = _term_quotient(term, divisor, env)
        if q is not None:
            quotient_terms.append(q)
        else:
            rest_terms.append(term)
    if not quotient_terms:
        return None, value
    quotient = Add(*quotient_terms) if len(quotient_terms) > 1 else quotient_terms[0]
    rest = Add(*rest_terms) if rest_terms else Const(0)
    return quotient, rest


def _term_quotient(term: Expr, divisor: Expr, env: SymbolicEnv) -> Optional[Expr]:
    """If ``term`` is a multiple of ``divisor``, return ``term / divisor``."""
    if term == divisor:
        return Const(1)
    if isinstance(term, Const) and isinstance(divisor, Const):
        if divisor.value != 0 and term.value % divisor.value == 0:
            return Const(term.value // divisor.value)
        return None
    if isinstance(term, Mul):
        factors = list(term.args)
        # a literal occurrence of the divisor among the factors
        for i, factor in enumerate(factors):
            if factor == divisor:
                rest = factors[:i] + factors[i + 1 :]
                return Mul(*rest) if rest else Const(1)
        # a constant coefficient divisible by a constant divisor
        if isinstance(divisor, Const) and divisor.value != 0:
            for i, factor in enumerate(factors):
                if isinstance(factor, Const) and factor.value % divisor.value == 0:
                    rest = factors[:i] + factors[i + 1 :]
                    coeff = Const(factor.value // divisor.value)
                    return Mul(coeff, *rest) if rest else coeff
        # a factor pair (d, x // d) whose product is exactly the divisor x
        # (requires d | x, e.g. BK * (K // BK) == K for the matmul layouts)
        for i, factor in enumerate(factors):
            if not isinstance(factor, FloorDiv):
                continue
            x, d = factor.numerator, factor.denominator
            if x != divisor or not env.divides(d, x):
                continue
            for j, other in enumerate(factors):
                if j != i and other == d:
                    rest = [f for k, f in enumerate(factors) if k not in (i, j)]
                    return Mul(*rest) if rest else Const(1)
        # a factor the user declared divisible by the divisor (e.g. K with BK | K)
        for i, factor in enumerate(factors):
            if not isinstance(factor, Const) and factor != divisor and env.divides(divisor, factor):
                rest = factors[:i] + factors[i + 1 :]
                quotient_factor = FloorDiv(factor, divisor)
                return Mul(quotient_factor, *rest) if rest else quotient_factor
    # whole-term divisibility fact (e.g. K with BK | K)
    if not isinstance(term, (Const, Mul)) and env.divides(divisor, term) and term != divisor:
        return FloorDiv(term, divisor)
    return None


# ---------------------------------------------------------------------------
# addition: rule 7 and divisibility folding
# ---------------------------------------------------------------------------


def _simplify_add(expr: Expr, env: SymbolicEnv, depth: int) -> Expr:
    if not isinstance(expr, Add):
        return expr
    terms = list(expr.args)

    # Rule 7: a*(x/a) + x%a -> x  (a != 0).  Match pairs of terms with equal
    # integer coefficients where one is c*Mod(x, a) and the other is
    # c*a*FloorDiv(x, a).
    changed = True
    while changed:
        changed = False
        mod_positions: list[tuple[int, int, Expr, Expr]] = []  # (idx, coeff, x, a)
        for i, term in enumerate(terms):
            coeff, body = _coeff_and_body(term)
            if isinstance(body, Mod):
                mod_positions.append((i, coeff, body.value_expr, body.modulus))
        for (i, coeff, x, a) in mod_positions:
            if not is_nonzero(a, env):
                continue
            for j, other in enumerate(terms):
                if j == i:
                    continue
                if _matches_div_times_divisor(other, coeff, x, a):
                    replacement = Mul(coeff, x) if coeff != 1 else x
                    new_terms = [t for k, t in enumerate(terms) if k not in (i, j)]
                    new_terms.append(replacement)
                    terms = new_terms
                    changed = True
                    break
            if changed:
                break
    return Add(*terms) if len(terms) > 1 else (terms[0] if terms else Const(0))


def _coeff_and_body(term: Expr) -> tuple[int, Expr]:
    """Split a term into an integer coefficient and the remaining factor."""
    if isinstance(term, Mul):
        coeff = 1
        rest: list[Expr] = []
        for factor in term.args:
            if isinstance(factor, Const):
                coeff *= factor.value
            else:
                rest.append(factor)
        if len(rest) == 1:
            return coeff, rest[0]
        if rest:
            return coeff, Mul(*rest)
        return coeff, Const(1)
    if isinstance(term, Const):
        return term.value, Const(1)
    return 1, term


def _matches_div_times_divisor(term: Expr, coeff: int, x: Expr, a: Expr) -> bool:
    """Does ``term`` equal ``coeff * a * (x // a)``?"""
    expected = Mul(coeff, a, FloorDiv(x, a))
    return term == expected


# ---------------------------------------------------------------------------
# multiplication: divisibility folding
# ---------------------------------------------------------------------------


def _simplify_mul(expr: Expr, env: SymbolicEnv, depth: int) -> Expr:
    if not isinstance(expr, Mul):
        return expr
    factors = list(expr.args)
    # (x // d) * d -> x   when d | x (user divisibility fact or structure)
    changed = True
    while changed:
        changed = False
        for i, factor in enumerate(factors):
            if not isinstance(factor, FloorDiv):
                continue
            x, d = factor.numerator, factor.denominator
            if not env.divides(d, x):
                continue
            for j, other in enumerate(factors):
                if j != i and other == d:
                    new_factors = [f for k, f in enumerate(factors) if k not in (i, j)]
                    new_factors.append(x)
                    factors = new_factors
                    changed = True
                    break
            if changed:
                break
    if len(factors) == 1:
        return factors[0]
    return Mul(*factors)


# ---------------------------------------------------------------------------
# min / max
# ---------------------------------------------------------------------------


def _simplify_min(expr: Expr, env: SymbolicEnv) -> Expr:
    if not isinstance(expr, Min):
        return expr
    args = list(expr.args)
    kept: list[Expr] = []
    for arg in args:
        dominated = False
        for other in args:
            if other is arg:
                continue
            # drop `arg` if some other argument is provably <= arg
            if other != arg and prove_le(other, arg, env) and not prove_le(arg, other, env):
                dominated = True
                break
        if not dominated:
            kept.append(arg)
    if not kept:
        kept = args
    if len(kept) == 1:
        return kept[0]
    return Min(*kept)


def _simplify_max(expr: Expr, env: SymbolicEnv) -> Expr:
    if not isinstance(expr, Max):
        return expr
    args = list(expr.args)
    kept: list[Expr] = []
    for arg in args:
        dominated = False
        for other in args:
            if other is arg:
                continue
            if other != arg and prove_le(arg, other, env) and not prove_le(other, arg, env):
                dominated = True
                break
        if not dominated:
            kept.append(arg)
    if not kept:
        kept = args
    if len(kept) == 1:
        return kept[0]
    return Max(*kept)


# ---------------------------------------------------------------------------
# expansion (pre-expansion variant of the pipeline)
# ---------------------------------------------------------------------------


def expand(expr: ExprLike) -> Expr:
    """Distribute products over sums (recursively).

    The code-generation pipeline simplifies both the expanded and unexpanded
    forms of every index expression and keeps whichever has the lower
    operation count — the paper's NW benchmark favours the unexpanded form
    while LUD favours the expanded one.
    """
    expr = as_expr(expr)
    if isinstance(expr, (Const, Var)):
        return expr
    expr = expr.map_children(expand)
    if isinstance(expr, Mul):
        return _expand_mul(expr)
    return expr


def _expand_mul(expr: Expr) -> Expr:
    if not isinstance(expr, Mul):
        return expr
    # Separate out additive factors and distribute them pairwise.
    result_terms: list[Expr] = [Const(1)]
    for factor in expr.args:
        factor_terms = list(factor.args) if isinstance(factor, Add) else [factor]
        new_terms: list[Expr] = []
        for existing in result_terms:
            for ft in factor_terms:
                new_terms.append(Mul(existing, ft))
        result_terms = new_terms
    if len(result_terms) == 1:
        return result_terms[0]
    return Add(*result_terms)
