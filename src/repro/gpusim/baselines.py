"""Analytic baselines: cuBLAS-class matmul and PyTorch eager element-wise ops.

Figure 11 of the paper compares LEGO-generated Triton kernels against the
reference Triton kernels and against PyTorch, whose CUDA backend dispatches
matrix multiplication to cuBLAS.  We do not have cuBLAS; the comparison only
needs the baseline's characteristic *shape*:

* cuBLAS achieves a large fraction of tensor-core peak, with its advantage
  largest at small/medium sizes (hand-tuned tiling amortises launch and
  prologue overheads better than Triton autotuning) and shrinking at large
  sizes where every implementation saturates the tensor cores;
* PyTorch eager element-wise/normalisation kernels are memory-bound and pay
  one kernel launch per primitive, so a fused Triton/LEGO kernel beats them
  when fusion removes intermediate traffic.

The efficiency curves below encode exactly that and nothing more.
"""

from __future__ import annotations

from .device import DeviceSpec, bytes_per_element
from .kernelmodel import KernelCost, estimate_time

__all__ = [
    "cublas_matmul_time",
    "cublas_efficiency",
    "pytorch_elementwise_time",
    "triton_matmul_efficiency",
]


def cublas_efficiency(m: int, n: int, k: int) -> float:
    """Fraction of tensor-core peak cuBLAS-class libraries achieve on M=N=K-ish GEMMs."""
    size = min(m, n, k)
    if size >= 8192:
        return 0.90
    if size >= 4096:
        return 0.88
    if size >= 2048:
        return 0.84
    if size >= 1024:
        return 0.72
    if size >= 512:
        return 0.55
    return 0.35


def triton_matmul_efficiency(m: int, n: int, k: int) -> float:
    """Fraction of tensor-core peak a well-tiled Triton GEMM achieves.

    Triton (and hence LEGO's generated kernels, which lower to the same tiling)
    trails cuBLAS slightly at small sizes and matches it at large sizes —
    the relationship visible in the paper's Figure 11.
    """
    size = min(m, n, k)
    if size >= 8192:
        return 0.89
    if size >= 4096:
        return 0.85
    if size >= 2048:
        return 0.76
    if size >= 1024:
        return 0.60
    if size >= 512:
        return 0.42
    return 0.25


def cublas_matmul_time(
    m: int,
    n: int,
    k: int,
    device: DeviceSpec,
    dtype: str = "fp16",
) -> float:
    """Estimated cuBLAS GEMM time in seconds."""
    element = bytes_per_element(dtype)
    cost = KernelCost(
        name="cublas_gemm",
        flops=2.0 * m * n * k,
        dtype=dtype,
        tensor_core=dtype in ("fp16", "bf16"),
        dram_bytes=float(element) * (m * k + k * n + m * n),
        compute_efficiency=cublas_efficiency(m, n, k),
        dram_efficiency=0.9,
        blocks=max(1, (m // 128) * (n // 128)),
        threads_per_block=256,
        threads=max(1, (m // 128) * (n // 128)) * 256,
    )
    return estimate_time(cost, device).total


def pytorch_elementwise_time(
    total_elements: int,
    device: DeviceSpec,
    dtype: str = "fp32",
    reads: int = 1,
    writes: int = 1,
    kernel_launches: int = 1,
) -> float:
    """Estimated PyTorch eager time for a memory-bound element-wise/reduction op.

    ``reads``/``writes`` count array passes over the data; unfused eager
    execution typically performs several (e.g. LayerNorm backward launches
    separate reduction and normalisation kernels).
    """
    element = bytes_per_element(dtype)
    cost = KernelCost(
        name="pytorch_eager",
        flops=float(total_elements) * (reads + writes),
        dtype=dtype,
        dram_bytes=float(total_elements) * element * (reads + writes),
        dram_efficiency=0.8,
        launches=kernel_launches,
        blocks=max(1, total_elements // 1024),
        threads_per_block=256,
        threads=float(total_elements),
    )
    return estimate_time(cost, device).total
