"""GPU device descriptions for the analytic performance model.

The paper's evaluation runs on an NVIDIA A100-80GB.  Since this reproduction
has no GPU, kernel performance is estimated with an analytic
roofline-with-overheads model (:mod:`repro.gpusim.kernelmodel`) parameterised
by the device description below.  Absolute numbers are not expected to match
the paper's measurements; the model only has to preserve *relative* behaviour
(which layout wins, by roughly what factor, and where problem-size crossovers
fall), which is determined by ratios of the quantities recorded here.

Besides the paper's :data:`A100_80GB`, a small **device zoo** covers the
machine shapes a tuning table has to distinguish: a Hopper-class datacenter
part (more SMs, much more DRAM bandwidth), a consumer Ada part (huge clock
and L2, a *fraction* of the DRAM bandwidth, fewer resident threads per SM)
and an embedded Orin-class part (16 SMs, two orders of magnitude less of
everything).  The entries are shaped from public spec sheets, not
calibrated measurements — like the A100 entry, they only have to move the
model's *ratios* the way the real parts would, so per-device search
(:mod:`repro.tune.search`) has real crossovers to find.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "A100_80GB",
    "H100_80GB",
    "RTX4090",
    "ORIN_AGX",
    "DEVICE_ZOO",
    "get_device",
    "bytes_per_element",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Capability summary of one GPU."""

    name: str
    #: streaming multiprocessors
    num_sms: int
    #: SM clock in GHz
    clock_ghz: float
    #: DRAM bandwidth in GB/s
    dram_bandwidth_gbs: float
    #: L2 bandwidth in GB/s (aggregate)
    l2_bandwidth_gbs: float
    #: L2 capacity in bytes
    l2_capacity_bytes: int
    #: shared memory per SM in bytes
    smem_per_sm_bytes: int
    #: shared-memory banks
    smem_banks: int
    #: shared-memory bandwidth per SM in bytes/cycle (32 banks * 4B)
    smem_bytes_per_cycle_per_sm: int
    #: peak FP32 throughput (FMA counted as 2 flops) in GFLOP/s
    fp32_gflops: float
    #: peak FP16 tensor-core throughput in GFLOP/s
    fp16_tensor_gflops: float
    #: peak FP64 throughput in GFLOP/s
    fp64_gflops: float
    #: peak INT32 throughput in GOP/s
    int32_gops: float
    #: maximum resident threads per SM
    max_threads_per_sm: int
    #: warp size
    warp_size: int
    #: maximum resident thread blocks per SM (hardware scheduler limit)
    max_blocks_per_sm: int
    #: kernel launch overhead in microseconds
    launch_overhead_us: float
    #: DRAM access granularity (sector) in bytes
    dram_sector_bytes: int = 32
    #: cache line size in bytes
    cache_line_bytes: int = 128
    #: CUDA's static ``__shared__`` allocation limit per block: kernels
    #: declaring more than this fail to launch regardless of the SM's
    #: physical capacity (opting into more requires dynamic shared memory)
    max_static_smem_bytes: int = 48 * 1024

    @property
    def smem_bandwidth_gbs(self) -> float:
        """Aggregate shared-memory bandwidth across all SMs in GB/s."""
        return self.smem_bytes_per_cycle_per_sm * self.num_sms * self.clock_ghz

    def peak_flops(self, dtype: str = "fp32", tensor_core: bool = False) -> float:
        """Peak arithmetic throughput in GFLOP/s for the given precision."""
        if tensor_core and dtype in ("fp16", "bf16"):
            return self.fp16_tensor_gflops
        if dtype in ("fp16", "bf16"):
            return self.fp32_gflops * 2
        if dtype == "fp64":
            return self.fp64_gflops
        if dtype in ("int32", "int"):
            return self.int32_gops
        return self.fp32_gflops


#: The paper's evaluation platform: NVIDIA A100-SXM4-80GB (GA100).
A100_80GB = DeviceSpec(
    name="NVIDIA A100 80GB",
    num_sms=108,
    clock_ghz=1.41,
    dram_bandwidth_gbs=2039.0,
    l2_bandwidth_gbs=4800.0,
    l2_capacity_bytes=40 * 1024 * 1024,
    smem_per_sm_bytes=164 * 1024,
    smem_banks=32,
    smem_bytes_per_cycle_per_sm=128,
    fp32_gflops=19_500.0,
    fp16_tensor_gflops=312_000.0,
    fp64_gflops=9_700.0,
    int32_gops=19_500.0,
    max_threads_per_sm=2048,
    warp_size=32,
    max_blocks_per_sm=32,
    launch_overhead_us=5.0,
)


#: Hopper-class datacenter GPU (H100 SXM shape): 132 SMs, HBM3, big tensor
#: throughput.  Relative to the A100 everything scales up, but DRAM
#: bandwidth grows faster than shared-memory bandwidth — memory-bound
#: layout wins shrink, occupancy cliffs move.
H100_80GB = DeviceSpec(
    name="NVIDIA H100 80GB",
    num_sms=132,
    clock_ghz=1.83,
    dram_bandwidth_gbs=3350.0,
    l2_bandwidth_gbs=7200.0,
    l2_capacity_bytes=50 * 1024 * 1024,
    smem_per_sm_bytes=228 * 1024,
    smem_banks=32,
    smem_bytes_per_cycle_per_sm=128,
    fp32_gflops=66_900.0,
    fp16_tensor_gflops=989_000.0,
    fp64_gflops=33_500.0,
    int32_gops=33_400.0,
    max_threads_per_sm=2048,
    warp_size=32,
    max_blocks_per_sm=32,
    launch_overhead_us=4.0,
)

#: Consumer Ada GPU (RTX 4090 shape): more SMs than an A100 and a far higher
#: clock, but half the DRAM bandwidth and only 1536 resident threads per SM —
#: the configurations that win here are *not* the A100 winners, which is the
#: point of keeping it in the zoo.
RTX4090 = DeviceSpec(
    name="NVIDIA GeForce RTX 4090",
    num_sms=128,
    clock_ghz=2.52,
    dram_bandwidth_gbs=1008.0,
    l2_bandwidth_gbs=5200.0,
    l2_capacity_bytes=72 * 1024 * 1024,
    smem_per_sm_bytes=100 * 1024,
    smem_banks=32,
    smem_bytes_per_cycle_per_sm=128,
    fp32_gflops=82_600.0,
    fp16_tensor_gflops=165_200.0,
    fp64_gflops=1_290.0,
    int32_gops=41_300.0,
    max_threads_per_sm=1536,
    warp_size=32,
    max_blocks_per_sm=24,
    launch_overhead_us=6.0,
)

#: Embedded Ampere (Jetson AGX Orin shape): 16 SMs on LPDDR5.  The
#: small-SM regime stresses the tail/occupancy terms of the model — launches
#: that fill an A100 for a single wave run eight waves here.
ORIN_AGX = DeviceSpec(
    name="NVIDIA Jetson AGX Orin",
    num_sms=16,
    clock_ghz=1.3,
    dram_bandwidth_gbs=204.8,
    l2_bandwidth_gbs=850.0,
    l2_capacity_bytes=4 * 1024 * 1024,
    smem_per_sm_bytes=164 * 1024,
    smem_banks=32,
    smem_bytes_per_cycle_per_sm=128,
    fp32_gflops=5_320.0,
    fp16_tensor_gflops=21_300.0,
    fp64_gflops=166.0,
    int32_gops=5_320.0,
    max_threads_per_sm=1536,
    warp_size=32,
    max_blocks_per_sm=16,
    launch_overhead_us=10.0,
)

#: short name -> spec, the registry per-device tuning keys off
DEVICE_ZOO: dict[str, DeviceSpec] = {
    "a100": A100_80GB,
    "h100": H100_80GB,
    "rtx4090": RTX4090,
    "orin": ORIN_AGX,
}


def get_device(name) -> DeviceSpec:
    """Resolve a device by zoo key, full name, or pass a spec through.

    Accepts the short zoo key (``"h100"``), a spec's full ``name`` (so a
    round trip through a persisted tuning table resolves), or an existing
    :class:`DeviceSpec` (returned unchanged, convenient for APIs that take
    ``device: str | DeviceSpec``).
    """
    if isinstance(name, DeviceSpec):
        return name
    key = str(name).strip()
    if key.lower() in DEVICE_ZOO:
        return DEVICE_ZOO[key.lower()]
    for spec in DEVICE_ZOO.values():
        if spec.name == key:
            return spec
    raise ValueError(
        f"unknown device {name!r}; zoo has {sorted(DEVICE_ZOO)} "
        f"(or pass a DeviceSpec)"
    )


_DTYPE_BYTES = {
    "fp16": 2,
    "bf16": 2,
    "fp32": 4,
    "float32": 4,
    "float16": 2,
    "fp64": 8,
    "float64": 8,
    "int32": 4,
    "int64": 8,
    "int8": 1,
    "uint8": 1,
}


def bytes_per_element(dtype: str) -> int:
    """Size in bytes of one element of the named dtype."""
    try:
        return _DTYPE_BYTES[dtype]
    except KeyError as exc:
        raise ValueError(f"unknown dtype {dtype!r}") from exc
