"""Analytic GPU performance-model substrate (A100-class).

Replaces the paper's physical A100 for performance-shape reproduction:

* :class:`DeviceSpec` / :data:`A100_80GB` — device capability description,
* :class:`KernelCost`, :func:`estimate_time`, :func:`roofline_point` — the
  roofline-with-overheads kernel model,
* :func:`warp_transactions`, :func:`coalescing_efficiency`,
  :class:`AccessPattern`, :func:`strided_traffic` — global-memory coalescing,
* :func:`warp_conflict_degree`, :func:`access_conflict_profile` —
  shared-memory bank conflicts,
* cuBLAS / PyTorch baselines for Figure 11.
"""

from .device import (
    A100_80GB,
    DEVICE_ZOO,
    H100_80GB,
    ORIN_AGX,
    RTX4090,
    DeviceSpec,
    bytes_per_element,
    get_device,
)
from .memory import AccessPattern, coalescing_efficiency, strided_traffic, warp_transactions
from .sharedmem import ConflictProfile, access_conflict_profile, warp_conflict_degree
from .kernelmodel import (
    KernelCost,
    TimeBreakdown,
    cost_features,
    estimate_time,
    occupancy_factor,
    roofline_point,
)
from .baselines import (
    cublas_efficiency,
    cublas_matmul_time,
    pytorch_elementwise_time,
    triton_matmul_efficiency,
)

__all__ = [
    "A100_80GB",
    "H100_80GB",
    "RTX4090",
    "ORIN_AGX",
    "DEVICE_ZOO",
    "get_device",
    "DeviceSpec",
    "bytes_per_element",
    "AccessPattern",
    "coalescing_efficiency",
    "strided_traffic",
    "warp_transactions",
    "ConflictProfile",
    "access_conflict_profile",
    "warp_conflict_degree",
    "KernelCost",
    "TimeBreakdown",
    "estimate_time",
    "occupancy_factor",
    "roofline_point",
    "cost_features",
    "cublas_efficiency",
    "cublas_matmul_time",
    "pytorch_elementwise_time",
    "triton_matmul_efficiency",
]
