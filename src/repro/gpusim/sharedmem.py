"""Shared-memory bank-conflict model.

Shared memory on NVIDIA GPUs is divided into 32 four-byte banks; a warp
access that maps several lanes to different words of the same bank is
serialised into that many conflict-free passes.  The NW benchmark's speedup
in the paper comes entirely from removing such conflicts by changing the
shared buffer's layout to anti-diagonal order, so this model is the heart of
the Figure 12a reproduction.

``warp_conflict_degree`` computes the serialisation factor of a single warp
access from the per-lane *element* indices into the shared buffer;
``access_conflict_profile`` aggregates a whole kernel phase.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["warp_conflict_degree", "ConflictProfile", "access_conflict_profile"]


def warp_conflict_degree(
    element_indices: Sequence[int],
    element_bytes: int = 4,
    num_banks: int = 32,
    bank_bytes: int = 4,
) -> int:
    """Serialisation factor (>= 1) of one warp's shared-memory access.

    ``element_indices`` are the per-lane indices into the shared buffer
    (inactive lanes omitted).  Lanes hitting the *same word* broadcast and do
    not conflict; lanes hitting different words in the same bank serialise.
    """
    if len(element_indices) == 0:
        return 1
    words = np.asarray(element_indices, dtype=np.int64) * element_bytes // bank_bytes
    unique_words = np.unique(words)
    banks = unique_words % num_banks
    counts = Counter(banks.tolist())
    return max(counts.values())


@dataclass
class ConflictProfile:
    """Aggregated bank-conflict statistics for a sequence of warp accesses."""

    accesses: int = 0
    total_passes: int = 0
    worst_degree: int = 1
    histogram: Counter = field(default_factory=Counter)

    @property
    def average_degree(self) -> float:
        if self.accesses == 0:
            return 1.0
        return self.total_passes / self.accesses

    def record(self, degree: int) -> None:
        self.accesses += 1
        self.total_passes += degree
        self.worst_degree = max(self.worst_degree, degree)
        self.histogram[degree] += 1

    def record_many(self, degrees) -> None:
        """Record a batch of warp-access degrees at once.

        Equivalent to calling :meth:`record` per degree (the profile's
        statistics are all order-insensitive); the vectorized engine uses
        this to commit a whole launch's degrees in one call.
        """
        degrees = np.asarray(degrees, dtype=np.int64)
        if degrees.size == 0:
            return
        self.accesses += int(degrees.size)
        self.total_passes += int(degrees.sum())
        self.worst_degree = max(self.worst_degree, int(degrees.max()))
        counts = np.bincount(degrees)
        for degree in np.nonzero(counts)[0]:
            self.histogram[int(degree)] += int(counts[degree])

    def merge(self, other: "ConflictProfile") -> "ConflictProfile":
        merged = ConflictProfile(
            accesses=self.accesses + other.accesses,
            total_passes=self.total_passes + other.total_passes,
            worst_degree=max(self.worst_degree, other.worst_degree),
        )
        merged.histogram = self.histogram + other.histogram
        return merged


def access_conflict_profile(
    warp_accesses: Iterable[Sequence[int]],
    element_bytes: int = 4,
    num_banks: int = 32,
) -> ConflictProfile:
    """Profile a sequence of warp accesses (each a list of per-lane element indices)."""
    profile = ConflictProfile()
    for access in warp_accesses:
        profile.record(warp_conflict_degree(access, element_bytes, num_banks))
    return profile
