"""Global-memory transaction and coalescing model.

Global memory on NVIDIA GPUs is accessed in 32-byte sectors; a warp's load or
store is serviced by as many sector transactions as the warp's addresses
touch.  The functions here compute, from a set of per-lane byte addresses,

* the number of sector transactions (:func:`warp_transactions`),
* the coalescing efficiency — useful bytes / transferred bytes
  (:func:`coalescing_efficiency`),
* aggregate traffic for strided/blocked access patterns described
  analytically (:func:`strided_traffic`), which lets the stencil and
  transpose benchmarks reason about entire arrays without enumerating every
  thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .device import DeviceSpec

__all__ = [
    "warp_transactions",
    "coalescing_efficiency",
    "AccessPattern",
    "strided_traffic",
]


def warp_transactions(byte_addresses: Sequence[int], sector_bytes: int = 32) -> int:
    """Number of memory sectors touched by one warp access."""
    addresses = np.asarray(byte_addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    sectors = np.unique(addresses // sector_bytes)
    return int(sectors.size)


def coalescing_efficiency(
    byte_addresses: Sequence[int],
    element_bytes: int,
    sector_bytes: int = 32,
) -> float:
    """Useful bytes divided by bytes actually moved for one warp access."""
    addresses = np.asarray(byte_addresses, dtype=np.int64)
    if addresses.size == 0:
        return 1.0
    useful = addresses.size * element_bytes
    sectors = np.unique(
        np.concatenate([(addresses + off) // sector_bytes for off in range(0, element_bytes, 1)])
    )
    moved = sectors.size * sector_bytes
    return float(useful) / float(moved)


@dataclass(frozen=True)
class AccessPattern:
    """An analytic description of how one array is traversed by a kernel.

    ``contiguous_run`` is the number of consecutive elements accessed together
    (per warp / per innermost loop); ``run_stride`` is the element distance
    between consecutive runs; ``num_runs`` the number of runs over the whole
    kernel; ``element_bytes`` the element size.  From these the model derives
    how many bytes DRAM actually has to move, accounting for partially used
    sectors.
    """

    contiguous_run: int
    run_stride: int
    num_runs: int
    element_bytes: int

    def useful_bytes(self) -> int:
        return self.contiguous_run * self.num_runs * self.element_bytes

    def moved_bytes(self, sector_bytes: int = 32) -> int:
        """Bytes transferred from DRAM including partially used sectors."""
        run_bytes = self.contiguous_run * self.element_bytes
        # Each run touches ceil(run_bytes / sector) sectors, plus possibly one
        # extra for misalignment when runs are strided apart.
        sectors_per_run = (run_bytes + sector_bytes - 1) // sector_bytes
        if self.run_stride * self.element_bytes % sector_bytes != 0 and self.contiguous_run > 1:
            sectors_per_run += 1
        return sectors_per_run * sector_bytes * self.num_runs


def strided_traffic(patterns: Iterable[AccessPattern], device: DeviceSpec) -> dict[str, float]:
    """Aggregate DRAM traffic summary for a collection of access patterns."""
    useful = 0
    moved = 0
    for pattern in patterns:
        useful += pattern.useful_bytes()
        moved += pattern.moved_bytes(device.dram_sector_bytes)
    efficiency = (useful / moved) if moved else 1.0
    return {
        "useful_bytes": float(useful),
        "moved_bytes": float(moved),
        "efficiency": float(efficiency),
    }
