"""Analytic kernel performance model (roofline with overheads).

A kernel execution is summarised by a :class:`KernelCost`: how many flops it
performs, how many bytes it moves through DRAM / L2 / shared memory, how much
the shared-memory traffic is serialised by bank conflicts, and how much
parallelism it exposes.  :func:`estimate_time` turns this into a wall-clock
estimate for a :class:`~repro.gpusim.device.DeviceSpec`:

``time = launch_overhead
       + max(compute_time, dram_time, l2_time, smem_time) / occupancy_factor``

where each component is ``work / (peak * efficiency)``.  The model is a
deliberately simple bottleneck ("roofline") model — it is not a cycle
simulator — but it captures exactly the effects the paper's CUDA and Triton
experiments exercise: data-movement volume (layouts change DRAM bytes), bank
conflicts (NW), work-per-thread / parallelism (LUD coarsening) and
tensor-core utilisation versus problem size (matmul).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .device import DeviceSpec

__all__ = [
    "KernelCost",
    "TimeBreakdown",
    "estimate_time",
    "occupancy_factor",
    "roofline_point",
    "cost_features",
]


@dataclass
class KernelCost:
    """Resource summary of one kernel launch."""

    name: str = "kernel"
    #: floating-point (or integer) operations performed
    flops: float = 0.0
    #: arithmetic precision of the flops
    dtype: str = "fp32"
    #: whether the flops run on tensor cores
    tensor_core: bool = False
    #: bytes moved between DRAM and L2
    dram_bytes: float = 0.0
    #: bytes moved between L2 and the SMs (defaults to dram_bytes when zero)
    l2_bytes: float = 0.0
    #: bytes moved through shared memory
    smem_bytes: float = 0.0
    #: average shared-memory serialisation factor from bank conflicts (>= 1)
    bank_conflict_factor: float = 1.0
    #: total threads launched
    threads: float = 0.0
    #: thread blocks launched
    blocks: float = 0.0
    #: threads per block
    threads_per_block: float = 0.0
    #: shared memory per block in bytes (occupancy limiter)
    smem_per_block: float = 0.0
    #: efficiency factor applied to the compute roof (0..1]
    compute_efficiency: float = 0.85
    #: efficiency factor applied to DRAM bandwidth (0..1]
    dram_efficiency: float = 0.85
    #: number of kernel launches represented by this cost
    launches: int = 1
    extra: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "KernelCost":
        """Scale all extensive quantities (used to extrapolate from a sampled block)."""
        return replace(
            self,
            flops=self.flops * factor,
            dram_bytes=self.dram_bytes * factor,
            l2_bytes=self.l2_bytes * factor,
            smem_bytes=self.smem_bytes * factor,
            threads=self.threads * factor,
            blocks=self.blocks * factor,
        )

    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (the roofline x-axis)."""
        if self.dram_bytes <= 0:
            return float("inf")
        return self.flops / self.dram_bytes


@dataclass(frozen=True)
class TimeBreakdown:
    """The estimate plus its per-resource components (all in seconds)."""

    total: float
    compute: float
    dram: float
    l2: float
    smem: float
    overhead: float
    occupancy: float
    bound: str

    @property
    def milliseconds(self) -> float:
        return self.total * 1e3

    @property
    def microseconds(self) -> float:
        return self.total * 1e6

    def as_dict(self) -> dict[str, float | str]:
        """JSON-friendly form (used by the autotune benchmark artifact)."""
        return {
            "total": self.total,
            "compute": self.compute,
            "dram": self.dram,
            "l2": self.l2,
            "smem": self.smem,
            "overhead": self.overhead,
            "occupancy": self.occupancy,
            "bound": self.bound,
        }


def occupancy_factor(cost: KernelCost, device: DeviceSpec) -> float:
    """How well the launch fills the machine (0..1].

    Three effects: (1) too few thread blocks to occupy every SM (tail
    effect / low block-level parallelism, the LUD lever), (2) shared-memory
    usage limiting resident blocks per SM, and (3) too few resident *warps*
    to hide latency — an SM with plenty of resident blocks still stalls
    when those blocks are narrow (a 64-thread block contributes only two
    warps), which is what separates coarsening factors that share every
    other resource.  All intentionally coarse.
    """
    if cost.blocks <= 0:
        return 1.0
    # blocks needed to give every SM at least one resident block
    wave = min(1.0, cost.blocks / device.num_sms)
    # resident-thread limit, capped by the hardware's max resident blocks per
    # SM: without the cap a tiny block (32 threads on A100) would report
    # 2048/32 = 64 resident blocks when the scheduler stops at 32
    if cost.threads_per_block > 0:
        resident_blocks = max(1, int(device.max_threads_per_sm // max(cost.threads_per_block, 1)))
        resident_blocks = min(resident_blocks, device.max_blocks_per_sm)
        if cost.smem_per_block > 0:
            smem_blocks = max(1, int(device.smem_per_sm_bytes // max(cost.smem_per_block, 1)))
            resident_blocks = min(resident_blocks, smem_blocks)
        # fewer than 4 resident blocks — or fewer than 16 resident warps —
        # per SM limits latency hiding
        resident_warps = resident_blocks * cost.threads_per_block / device.warp_size
        latency_hiding = min(1.0, resident_blocks / 4.0, resident_warps / 16.0)
    else:
        latency_hiding = 1.0
    # combine; never return 0
    return max(0.05, wave * (0.5 + 0.5 * latency_hiding))


def estimate_time(cost: KernelCost, device: DeviceSpec) -> TimeBreakdown:
    """Estimate the wall-clock time of the kernel described by ``cost``."""
    peak_gflops = device.peak_flops(cost.dtype, cost.tensor_core) * cost.compute_efficiency
    compute_time = cost.flops / (peak_gflops * 1e9) if cost.flops else 0.0

    dram_bw = device.dram_bandwidth_gbs * 1e9 * cost.dram_efficiency
    dram_time = cost.dram_bytes / dram_bw if cost.dram_bytes else 0.0

    l2_bytes = cost.l2_bytes if cost.l2_bytes else cost.dram_bytes
    l2_time = l2_bytes / (device.l2_bandwidth_gbs * 1e9) if l2_bytes else 0.0

    smem_bw = device.smem_bandwidth_gbs * 1e9
    smem_time = (cost.smem_bytes * cost.bank_conflict_factor) / smem_bw if cost.smem_bytes else 0.0

    occupancy = occupancy_factor(cost, device)
    components = {
        "compute": compute_time,
        "dram": dram_time,
        "l2": l2_time,
        "smem": smem_time,
    }
    bound = max(components, key=components.get)
    busy = components[bound] / occupancy
    overhead = device.launch_overhead_us * 1e-6 * cost.launches
    total = busy + overhead
    return TimeBreakdown(
        total=total,
        compute=compute_time,
        dram=dram_time,
        l2=l2_time,
        smem=smem_time,
        overhead=overhead,
        occupancy=occupancy,
        bound=bound,
    )


def cost_features(cost: KernelCost, breakdown: TimeBreakdown) -> dict:
    """The analytic-trace features a learned cost model trains on.

    One canonical recipe shared by the apps' ``evaluate`` metric dicts and
    the profile store (:mod:`repro.tune.model`), so the features a model was
    *trained* on and the features it *predicts* from can never drift apart.
    Everything here is available before any measurement happens — it all
    comes from the analytic :class:`KernelCost`.
    """
    return {
        "flops": cost.flops,
        "dram_bytes": cost.dram_bytes,
        "l2_bytes": cost.l2_bytes if cost.l2_bytes else cost.dram_bytes,
        "smem_bytes": cost.smem_bytes,
        "bank_conflict_factor": cost.bank_conflict_factor,
        "occupancy": breakdown.occupancy,
        "blocks": cost.blocks,
        "threads_per_block": cost.threads_per_block,
        "smem_per_block": cost.smem_per_block,
        "launches": float(cost.launches),
        "bound": breakdown.bound,
    }


def roofline_point(cost: KernelCost, device: DeviceSpec) -> dict[str, float]:
    """The (arithmetic intensity, achieved GFLOP/s) point for a roofline plot."""
    breakdown = estimate_time(cost, device)
    achieved = cost.flops / breakdown.total / 1e9 if breakdown.total > 0 else 0.0
    return {
        "arithmetic_intensity": cost.arithmetic_intensity(),
        "achieved_gflops": achieved,
        "peak_gflops": device.peak_flops(cost.dtype, cost.tensor_core),
        "memory_roof_gflops": cost.arithmetic_intensity() * device.dram_bandwidth_gbs,
        "bound": breakdown.bound,
    }
