"""Engine-mode selection shared by the three substrates.

One process-wide mode decides how :func:`repro.minitriton.launch`,
:func:`repro.minicuda.launch` and :func:`repro.mlir.run_gpu_kernel`
execute.  The default comes from the ``REPRO_VM`` environment variable
(``vectorized`` when unset); tests and benchmarks switch modes locally
with the :func:`use_engine` context manager.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = ["MODES", "engine_mode", "set_engine_mode", "use_engine"]

MODES = ("vectorized", "vectorized-strict", "treewalk")

_local = threading.local()


def _default_mode() -> str:
    mode = os.environ.get("REPRO_VM", "vectorized").strip().lower()
    return mode if mode in MODES else "vectorized"


def engine_mode() -> str:
    """The active execution mode for all three substrates."""
    mode = getattr(_local, "mode", None)
    return mode if mode is not None else _default_mode()


def set_engine_mode(mode: str) -> None:
    """Set the execution mode for the current thread (until changed)."""
    if mode not in MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {MODES}")
    _local.mode = mode


@contextmanager
def use_engine(mode: str):
    """Run a block under ``mode``, restoring the previous mode after."""
    if mode not in MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {MODES}")
    previous = getattr(_local, "mode", None)
    _local.mode = mode
    try:
        yield
    finally:
        _local.mode = previous
