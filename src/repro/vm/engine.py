"""Engine-mode selection shared by the three substrates.

One process-wide mode decides how :func:`repro.minitriton.launch`,
:func:`repro.minicuda.launch` and :func:`repro.mlir.run_gpu_kernel`
execute.  The default comes from the ``REPRO_VM`` environment variable
(``vectorized`` when unset); tests and benchmarks switch modes locally
with the :func:`use_engine` context manager.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = ["MODES", "engine_mode", "set_engine_mode", "use_engine"]

MODES = ("vectorized", "vectorized-strict", "treewalk")

_local = threading.local()


def _default_mode() -> str:
    raw = os.environ.get("REPRO_VM", "")
    mode = raw.strip().lower()
    if not mode:
        return "vectorized"
    if mode not in MODES:
        # a typo'd REPRO_VM must not silently run the default engine — the
        # variable exists precisely to force a specific one
        raise ValueError(
            f"invalid REPRO_VM value {raw!r}; expected one of {MODES} (or unset)"
        )
    return mode


def engine_mode() -> str:
    """The active execution mode for all three substrates."""
    mode = getattr(_local, "mode", None)
    return mode if mode is not None else _default_mode()


def set_engine_mode(mode: str) -> None:
    """Set the execution mode for the current thread (until changed)."""
    if mode not in MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {MODES}")
    _local.mode = mode


@contextmanager
def use_engine(mode: str):
    """Run a block under ``mode``, restoring the previous mode after."""
    if mode not in MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {MODES}")
    previous = getattr(_local, "mode", None)
    _local.mode = mode
    try:
        yield
    finally:
        _local.mode = previous
