"""Batched trace-counter synthesis primitives.

The tree-walk recorders compute, per program / per warp, "how many
unique sectors did this access touch" and "how badly do these lanes
conflict on shared-memory banks".  These helpers compute the same
quantities for *every* program / warp chunk of a whole-grid batched
access at once, from sorted runs instead of per-access ``np.unique``
calls.  All results are exact integer counts, so the synthesized trace
is bit-for-bit the tree-walk trace regardless of batching.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "row_unique_counts",
    "grouped_unique_count",
    "grouped_conflict_degrees",
    "chunk_keys",
]

_SENTINEL = np.iinfo(np.int64).max


def row_unique_counts(values: np.ndarray, valid: np.ndarray | None = None) -> np.ndarray:
    """Per-row count of distinct values among the row's valid entries.

    ``values`` is ``(R, C)`` integer-like; ``valid`` (same shape, bool)
    masks entries out of the count (a fully masked row counts 0).  This
    is the batched twin of ``np.unique(row).size`` — used for
    per-program DRAM sector transactions in the mini-Triton recorder,
    where one program's whole access is deduplicated at once.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.ndim != 2:
        raise ValueError(f"row_unique_counts expects a 2-D array, got shape {v.shape}")
    rows, cols = v.shape
    if cols == 0:
        return np.zeros(rows, dtype=np.int64)
    if valid is not None:
        valid = np.broadcast_to(np.asarray(valid, dtype=bool), v.shape)
        v = np.where(valid, v, _SENTINEL)
        n_valid = valid.sum(axis=1)
    else:
        n_valid = np.full(rows, cols, dtype=np.int64)
    ordered = np.sort(v, axis=1)
    is_new = np.ones((rows, cols), dtype=bool)
    is_new[:, 1:] = ordered[:, 1:] != ordered[:, :-1]
    in_valid_run = np.arange(cols) < n_valid[:, None]
    return (is_new & in_valid_run).sum(axis=1).astype(np.int64)


def grouped_unique_count(group_ids: np.ndarray, values: np.ndarray) -> int:
    """Total number of distinct ``(group, value)`` pairs.

    The ragged counterpart of :func:`row_unique_counts`: lanes carry an
    explicit group id (block row, warp chunk, ...) instead of sitting in
    rectangular rows.  Summing per-group unique counts equals counting
    unique pairs, which one lexsort delivers for the whole batch.
    """
    g = np.asarray(group_ids, dtype=np.int64).ravel()
    v = np.asarray(values, dtype=np.int64).ravel()
    if g.size != v.size:
        raise ValueError("group_ids and values must have the same number of lanes")
    if g.size == 0:
        return 0
    order = np.lexsort((v, g))
    g, v = g[order], v[order]
    is_new = np.ones(g.size, dtype=bool)
    is_new[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
    return int(is_new.sum())


def grouped_conflict_degrees(
    group_ids: np.ndarray,
    element_indices: np.ndarray,
    element_bytes: int,
    *,
    num_banks: int = 32,
    bank_bytes: int = 4,
) -> np.ndarray:
    """Per-group shared-memory conflict degree, one entry per group.

    Mirrors :func:`repro.gpusim.sharedmem.warp_conflict_degree` for every
    warp chunk at once: word addresses are deduplicated within the group
    (broadcast is free), surviving words map to banks, and the group's
    degree is the worst per-bank multiplicity.  Groups are whatever the
    caller keyed lanes by — the returned degrees form the same multiset
    the tree-walk recorder feeds to ``ConflictProfile.record`` chunk by
    chunk.
    """
    g = np.asarray(group_ids, dtype=np.int64).ravel()
    idx = np.asarray(element_indices, dtype=np.int64).ravel()
    if g.size != idx.size:
        raise ValueError("group_ids and element_indices must have the same number of lanes")
    if g.size == 0:
        return np.zeros(0, dtype=np.int64)
    words = idx * int(element_bytes) // int(bank_bytes)
    order = np.lexsort((words, g))
    g, words = g[order], words[order]
    is_new = np.ones(g.size, dtype=bool)
    is_new[1:] = (g[1:] != g[:-1]) | (words[1:] != words[:-1])
    g_unique, words_unique = g[is_new], words[is_new]
    group_start = np.ones(g_unique.size, dtype=bool)
    group_start[1:] = g_unique[1:] != g_unique[:-1]
    group_compact = np.cumsum(group_start) - 1
    num_groups = int(group_compact[-1]) + 1
    banks = words_unique % num_banks
    per_bank = np.bincount(
        group_compact * num_banks + banks, minlength=num_groups * num_banks
    )
    degrees = per_bank.reshape(num_groups, num_banks).max(axis=1)
    return np.maximum(degrees, 1).astype(np.int64)


def chunk_keys(rows: int, row_length: int, warp_size: int) -> np.ndarray:
    """Warp-chunk group keys for a dense ``(rows, row_length)`` access.

    The tree-walk recorders split each block's flat lane list into
    ``warp_size`` chunks (C order, ragged tail kept).  This returns the
    matching ``(rows, row_length)`` key array — one distinct key per
    (row, chunk) — for feeding :func:`grouped_unique_count` /
    :func:`grouped_conflict_degrees`.
    """
    chunks_per_row = (row_length + warp_size - 1) // warp_size
    chunk_in_row = np.arange(row_length, dtype=np.int64) // warp_size
    return np.arange(rows, dtype=np.int64)[:, None] * chunks_per_row + chunk_in_row[None, :]
