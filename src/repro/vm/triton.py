"""Whole-grid batched execution of mini-Triton kernels.

The tree-walk launcher runs one Python call per program id.  Here the
kernel source is re-executed under a *batched* ``tl`` namespace in which
``tl.program_id`` returns an array holding every launched program id at
once, so a single pass through the kernel body evaluates the whole grid:
values derived from the program id become :class:`BatchedTensor`\\ s —
NumPy arrays with a leading batch (program) axis — while values that do
not depend on the program id stay plain arrays shared by all programs,
exactly as a register common to all CTAs would be.

Alignment convention: a ``BatchedTensor`` stores ``data`` of shape
``(P,) + block_shape``; binary operations pad the shorter *block* rank
with leading singleton axes (after the batch axis), so plain operands
broadcast right-aligned into the block dims and never touch the batch
axis.  Trace counters are synthesized per program with
:mod:`repro.vm.batch` — per-program unique sector counts match the
tree-walk ``np.unique`` per access — and stores flatten in C (program
-major) order so duplicate offsets resolve identically to sequential
program execution.
"""

from __future__ import annotations

import builtins
from typing import Callable, Mapping

import numpy as np

from ..minitriton import language as tl
from ..minitriton.language import DeviceBuffer, KernelTrace, _np_dtype
from .batch import row_unique_counts

__all__ = ["BatchedTensor", "batched_tl", "launch_batched"]


class BatchedTensor:
    """A block value carried by every program: ``data`` is ``(P,) + block_shape``."""

    __array_ufunc__ = None  # force NumPy to defer to our reflected operators
    __array_priority__ = 1000

    __slots__ = ("data", "block_ndim")

    def __init__(self, data: np.ndarray, block_ndim: int):
        data = np.asarray(data)
        if data.ndim != block_ndim + 1:
            raise ValueError(
                f"batched data of shape {data.shape} inconsistent with block rank {block_ndim}"
            )
        self.data = data
        self.block_ndim = int(block_ndim)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def to(self, dtype) -> "BatchedTensor":
        return BatchedTensor(self.data.astype(_np_dtype(dtype)), self.block_ndim)

    astype = to

    def __repr__(self) -> str:
        return f"BatchedTensor(P={self.data.shape[0]}, block={self.data.shape[1:]})"

    # -- indexing ----------------------------------------------------------

    def __getitem__(self, key) -> "BatchedTensor":
        if not isinstance(key, tuple):
            key = (key,)
        block_ndim = self.block_ndim
        for item in key:
            if item is None:
                block_ndim += 1
            elif isinstance(item, (int, np.integer)):
                block_ndim -= 1
            elif not isinstance(item, slice):
                raise TypeError(
                    f"batched indexing supports ints, slices and None, got {type(item).__name__}"
                )
        return BatchedTensor(self.data[(slice(None),) + key], block_ndim)

    # -- unary -------------------------------------------------------------

    def __neg__(self):
        return BatchedTensor(-self.data, self.block_ndim)

    def __pos__(self):
        return self

    def __invert__(self):
        return BatchedTensor(~self.data, self.block_ndim)

    def __abs__(self):
        return BatchedTensor(np.abs(self.data), self.block_ndim)

    # -- binary (generated below) ------------------------------------------


def _block_rank(x) -> int:
    return x.block_ndim if isinstance(x, BatchedTensor) else np.ndim(x)


def _aligned_raw(x, rank: int):
    """Raw array for ``x`` broadcast-compatible at block rank ``rank``.

    Batched operands pad missing block axes directly after the batch
    axis; plain operands are returned as-is — right-aligned NumPy
    broadcasting lines them up with the trailing block dims without ever
    touching the batch axis (their rank is at most ``rank`` < data rank).
    """
    if isinstance(x, BatchedTensor):
        data = x.data
        pad = rank - x.block_ndim
        if pad:
            data = data.reshape(data.shape[:1] + (1,) * pad + data.shape[1:])
        return data
    return x


def _apply2(op, a, b):
    """Apply a two-operand NumPy op under the batch-alignment convention."""
    if not (isinstance(a, BatchedTensor) or isinstance(b, BatchedTensor)):
        return op(a, b)
    rank = builtins.max(_block_rank(a), _block_rank(b))
    return BatchedTensor(op(_aligned_raw(a, rank), _aligned_raw(b, rank)), rank)


def _make_binop(op, reflected: bool):
    def method(self, other):
        if isinstance(other, (_BatchedDeviceBuffer, _BatchedPointerArray)):
            return NotImplemented
        if reflected:
            return _apply2(op, other, self)
        return _apply2(op, self, other)

    return method


for _name, _op in {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "truediv": np.true_divide, "floordiv": np.floor_divide, "mod": np.mod,
    "pow": np.power, "and": np.bitwise_and, "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}.items():
    setattr(BatchedTensor, f"__{_name}__", _make_binop(_op, reflected=False))
    setattr(BatchedTensor, f"__r{_name}__", _make_binop(_op, reflected=True))
for _name, _op in {
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
}.items():
    setattr(BatchedTensor, f"__{_name}__", _make_binop(_op, reflected=False))


class _BatchedDeviceBuffer:
    """Wrapper handed to kernels in place of a :class:`DeviceBuffer` argument."""

    __slots__ = ("buffer",)

    def __init__(self, buffer: DeviceBuffer):
        self.buffer = buffer

    def __add__(self, offsets) -> "_BatchedPointerArray":
        return _BatchedPointerArray(self.buffer, offsets)

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"BatchedDeviceBuffer({self.buffer.name})"


class _BatchedPointerArray:
    """``buffer + offsets`` where offsets may be batched or program-uniform."""

    __slots__ = ("buffer", "offsets")

    def __init__(self, buffer: DeviceBuffer, offsets):
        self.buffer = buffer
        self.offsets = offsets

    def __add__(self, more) -> "_BatchedPointerArray":
        return _BatchedPointerArray(self.buffer, _apply2(np.add, self.offsets, more))

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"BatchedPointerArray({self.buffer.name})"


class _BatchedLanguage:
    """The ``tl`` namespace generated kernels see during a batched launch.

    Mirrors :mod:`repro.minitriton.language` operation for operation; the
    flop-counting rule is that a program-uniform value would have been
    computed by every program, so plain operands count ``size * P``
    while batched operands already carry the program axis in their size.
    """

    # dtype markers and constructors are the language module's own
    constexpr = tl.constexpr
    float16 = tl.float16
    float32 = tl.float32
    int32 = tl.int32
    int64 = tl.int64
    arange = staticmethod(tl.arange)
    zeros = staticmethod(tl.zeros)
    full = staticmethod(tl.full)

    def __init__(self):
        self._trace: KernelTrace | None = None
        self._pids: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._grid: tuple[int, int, int] = (1, 1, 1)
        self._sector_bytes: int = 32
        self._programs: int = 0

    # -- launch state ------------------------------------------------------

    def _begin(self, pids, grid, trace, sector_bytes):
        self._pids = pids
        self._grid = grid
        self._trace = trace
        self._sector_bytes = sector_bytes
        self._programs = int(pids[0].size)

    def _end(self):
        self._pids = None
        self._trace = None
        self._programs = 0

    # -- program / grid queries --------------------------------------------

    def program_id(self, axis: int) -> BatchedTensor:
        return BatchedTensor(self._pids[axis], 0)

    def num_programs(self, axis: int) -> int:
        return self._grid[axis]

    # -- tracing helpers ---------------------------------------------------

    def _size_of(self, x) -> float:
        """Element count of ``x`` summed over programs (the tree-walk total)."""
        if isinstance(x, BatchedTensor):
            return float(x.data.size)
        return float(np.asarray(x).size) * self._programs

    def _count_flops(self, x, per_element: float = 1.0) -> None:
        if self._trace is not None:
            self._trace.flops += self._size_of(x) * per_element

    def _record_batched(self, offsets: np.ndarray, element_bytes: int,
                        is_store: bool, valid: np.ndarray | None = None) -> None:
        """Per-program sector dedup over a ``(P,) + block`` offset array."""
        trace = self._trace
        if trace is None:
            return
        programs = offsets.shape[0]
        flat = offsets.reshape(programs, -1)
        if valid is not None:
            valid = np.broadcast_to(valid, offsets.shape).reshape(programs, -1)
            count = float(valid.sum())
        else:
            count = float(flat.size)
        sectors = flat * element_bytes // self._sector_bytes
        transactions = float(row_unique_counts(sectors, valid).sum())
        self._bump(trace, is_store, count, count * element_bytes, transactions)

    def _record_uniform(self, offsets: np.ndarray, element_bytes: int,
                        is_store: bool, valid: np.ndarray | None = None) -> None:
        """A program-uniform access repeats identically in every program."""
        trace = self._trace
        if trace is None:
            return
        flat = offsets.reshape(-1)
        if valid is not None:
            flat = flat[np.broadcast_to(valid, offsets.shape).reshape(-1)]
        count = float(flat.size) * self._programs
        sectors = np.unique(flat * element_bytes // self._sector_bytes)
        transactions = float(sectors.size) * self._programs
        self._bump(trace, is_store, count, count * element_bytes, transactions)

    @staticmethod
    def _bump(trace, is_store, count, nbytes, transactions):
        if is_store:
            trace.store_elements += count
            trace.store_bytes += nbytes
            trace.store_transactions += transactions
        else:
            trace.load_elements += count
            trace.load_bytes += nbytes
            trace.load_transactions += transactions

    # -- memory operations -------------------------------------------------

    def load(self, pointer, mask=None, other=0.0):
        if not isinstance(pointer, _BatchedPointerArray):
            raise TypeError("tl.load expects a pointer expression (buffer + offsets)")
        data = pointer.buffer.data
        element_bytes = pointer.buffer.element_bytes
        offsets = pointer.offsets
        if not isinstance(offsets, BatchedTensor) and isinstance(mask, BatchedTensor):
            # a uniform pointer guarded by a per-program mask gathers
            # differently in each program: replay it batched
            raw = np.broadcast_to(
                np.asarray(offsets, dtype=np.int64),
                (self._programs,) + np.asarray(offsets).shape,
            )
            offsets = BatchedTensor(raw, np.ndim(np.asarray(offsets)))
        if isinstance(offsets, BatchedTensor):
            raw = offsets.data.astype(np.int64, copy=False)
            if mask is None:
                if raw.size and (raw.min() < 0 or raw.max() >= data.size):
                    raise IndexError(
                        f"out-of-bounds unmasked load on {pointer.buffer.name}: "
                        f"range [{raw.min()}, {raw.max()}] vs size {data.size}"
                    )
                self._record_batched(raw, element_bytes, is_store=False)
                return BatchedTensor(data[raw], offsets.block_ndim)
            rank = builtins.max(offsets.block_ndim, _block_rank(mask))
            raw = _aligned_raw(offsets, rank).astype(np.int64, copy=False)
            mask_raw = np.broadcast_to(
                np.asarray(_aligned_raw(mask, rank), dtype=bool), raw.shape
            )
            safe = np.where(mask_raw, raw, 0)
            if safe.size and (safe.min() < 0 or safe.max() >= data.size):
                raise IndexError(f"masked load still out of bounds on {pointer.buffer.name}")
            other_raw = _aligned_raw(other, rank) if isinstance(other, BatchedTensor) else other
            values = np.where(mask_raw, data[safe], other_raw)
            self._record_batched(raw, element_bytes, is_store=False, valid=mask_raw)
            return BatchedTensor(values, rank)
        # program-uniform access: identical in every program
        raw = np.asarray(offsets, dtype=np.int64)
        if mask is None:
            if raw.size and (raw.min() < 0 or raw.max() >= data.size):
                raise IndexError(
                    f"out-of-bounds unmasked load on {pointer.buffer.name}: "
                    f"range [{raw.min()}, {raw.max()}] vs size {data.size}"
                )
            self._record_uniform(raw, element_bytes, is_store=False)
            return tl._as_tensor(data[raw])
        mask_raw = np.broadcast_to(np.asarray(mask, dtype=bool), raw.shape)
        safe = np.where(mask_raw, raw, 0)
        if safe.size and (safe.min() < 0 or safe.max() >= data.size):
            raise IndexError(f"masked load still out of bounds on {pointer.buffer.name}")
        values = np.where(mask_raw, data[safe], other)
        self._record_uniform(raw, element_bytes, is_store=False, valid=mask_raw)
        return tl._as_tensor(values)

    def store(self, pointer, value, mask=None) -> None:
        if not isinstance(pointer, _BatchedPointerArray):
            raise TypeError("tl.store expects a pointer expression (buffer + offsets)")
        data = pointer.buffer.data
        element_bytes = pointer.buffer.element_bytes
        offsets = pointer.offsets
        if not isinstance(offsets, BatchedTensor):
            # a program-uniform store target is written by every program in
            # turn; replaying it batched (broadcast over the program axis)
            # reproduces both the last-writer-wins result and the counters
            raw = np.broadcast_to(
                np.asarray(offsets, dtype=np.int64),
                (self._programs,) + np.asarray(offsets).shape,
            )
            offsets = BatchedTensor(raw, np.ndim(np.asarray(offsets)))
        rank = builtins.max(offsets.block_ndim, _block_rank(value))
        if mask is not None:
            rank = builtins.max(rank, _block_rank(mask))
        raw = np.broadcast_to(
            _aligned_raw(offsets, rank).astype(np.int64, copy=False),
            np.broadcast_shapes(
                _np_shape(_aligned_raw(offsets, rank)),
                _np_shape(_aligned_raw(value, rank)),
            ),
        )
        values = np.broadcast_to(np.asarray(_aligned_raw(value, rank)), raw.shape)
        if mask is None:
            if raw.size and (raw.min() < 0 or raw.max() >= data.size):
                raise IndexError(
                    f"out-of-bounds unmasked store on {pointer.buffer.name}: "
                    f"range [{raw.min()}, {raw.max()}] vs size {data.size}"
                )
            # C-order flatten is program-major: duplicate offsets resolve to
            # the highest program id, matching sequential execution
            data[raw.reshape(-1)] = values.reshape(-1).astype(data.dtype, copy=False)
            self._record_batched(raw, element_bytes, is_store=True)
            return
        mask_raw = np.broadcast_to(
            np.asarray(_aligned_raw(mask, rank), dtype=bool), raw.shape
        )
        flat_offsets = raw[mask_raw]
        if flat_offsets.size and (flat_offsets.min() < 0 or flat_offsets.max() >= data.size):
            raise IndexError(f"masked store still out of bounds on {pointer.buffer.name}")
        data[flat_offsets] = values[mask_raw].astype(data.dtype, copy=False)
        self._record_batched(raw, element_bytes, is_store=True, valid=mask_raw)

    # -- arithmetic --------------------------------------------------------

    def dot(self, a, b, acc=None):
        a_raw = a.data if isinstance(a, BatchedTensor) else np.asarray(a)
        b_raw = b.data if isinstance(b, BatchedTensor) else np.asarray(b)
        batched = isinstance(a, BatchedTensor) or isinstance(b, BatchedTensor)
        result = np.matmul(a_raw.astype(np.float32), b_raw.astype(np.float32))
        if acc is not None:
            acc_raw = acc.data if isinstance(acc, BatchedTensor) else np.asarray(acc, dtype=np.float32)
            result = result + np.asarray(acc_raw, dtype=np.float32)
        if self._trace is not None:
            m, k = a_raw.shape[-2], a_raw.shape[-1]
            n = b_raw.shape[-1]
            flops = 2.0 * m * n * k * self._programs
            self._trace.flops += flops
            if a_raw.dtype == np.float16 or b_raw.dtype == np.float16:
                self._trace.tensor_core_flops += flops
        if batched:
            return BatchedTensor(result, 2)
        return tl._as_tensor(result)

    def cdiv(self, a, b):
        if isinstance(a, BatchedTensor) or isinstance(b, BatchedTensor):
            return -(-a // b)
        return tl.cdiv(a, b)

    # -- reductions --------------------------------------------------------

    def _reduce(self, np_op, x, axis, cast=None):
        self._count_flops(x)
        if isinstance(x, BatchedTensor):
            data = x.data if cast is None else x.data.astype(cast)
            if axis is None:
                # the tree-walk reduces each program's flat block, so the
                # batched twin reduces each row of the (P, -1) view — the
                # element order (and hence pairwise summation) is identical
                return BatchedTensor(np_op(data.reshape(data.shape[0], -1), axis=1), 0)
            data_axis = axis + 1 if axis >= 0 else axis
            return BatchedTensor(np_op(data, axis=data_axis), x.block_ndim - 1)
        arr = np.asarray(x) if cast is None else np.asarray(x, dtype=cast)
        return tl._as_tensor(np_op(arr, axis=axis))

    def sum(self, x, axis=None):  # noqa: A003 - Triton spelling
        return self._reduce(np.sum, x, axis, cast=np.float32)

    def max(self, x, axis=None):  # noqa: A003 - Triton spelling
        return self._reduce(np.max, x, axis)

    def min(self, x, axis=None):  # noqa: A003 - Triton spelling
        return self._reduce(np.min, x, axis)

    # -- elementwise -------------------------------------------------------

    def _unary(self, np_op, x, cast=None):
        self._count_flops(x)
        if isinstance(x, BatchedTensor):
            data = x.data if cast is None else x.data.astype(cast)
            return BatchedTensor(np_op(data), x.block_ndim)
        arr = np.asarray(x) if cast is None else np.asarray(x, dtype=cast)
        return tl._as_tensor(np_op(arr))

    def exp(self, x):
        return self._unary(np.exp, x, cast=np.float32)

    def log(self, x):
        return self._unary(np.log, x, cast=np.float32)

    def sqrt(self, x):
        return self._unary(np.sqrt, x, cast=np.float32)

    def rsqrt(self, x):
        return self._unary(lambda v: 1.0 / np.sqrt(v), x, cast=np.float32)

    def abs(self, x):  # noqa: A003 - Triton spelling
        return self._unary(np.abs, x)

    def where(self, cond, a, b):
        self._count_flops(cond)
        if not any(isinstance(v, BatchedTensor) for v in (cond, a, b)):
            return tl._as_tensor(np.where(np.asarray(cond), a, b))
        rank = builtins.max(_block_rank(cond), _block_rank(a), _block_rank(b))
        raws = [np.asarray(_aligned_raw(v, rank)) for v in (cond, a, b)]
        return BatchedTensor(np.where(*raws), rank)

    def maximum(self, a, b):
        self._count_flops(a)
        return _apply2(np.maximum, a, b)

    def minimum(self, a, b):
        self._count_flops(a)
        return _apply2(np.minimum, a, b)


def _np_shape(x) -> tuple:
    return np.asarray(x).shape if not isinstance(x, np.ndarray) else x.shape


batched_tl = _BatchedLanguage()


def _namespace_min(*args, **kwargs):
    """``min`` builtin that understands batched scalars (``min(GM, nt_m - pid)``)."""
    if len(args) == 2 and not kwargs and any(isinstance(a, BatchedTensor) for a in args):
        return _apply2(np.minimum, args[0], args[1])
    return builtins.min(*args, **kwargs)


def _namespace_max(*args, **kwargs):
    if len(args) == 2 and not kwargs and any(isinstance(a, BatchedTensor) for a in args):
        return _apply2(np.maximum, args[0], args[1])
    return builtins.max(*args, **kwargs)


_COMPILE_CACHE: dict[tuple[str, str], Callable] = {}


def _compile_batched(source: str, kernel_name: str) -> Callable:
    """Re-execute kernel source under the batched ``tl`` namespace (cached)."""
    key = (source, kernel_name)
    cached = _COMPILE_CACHE.get(key)
    if cached is not None:
        return cached
    from ..minitriton.runtime import TritonJitShim

    namespace: dict[str, object] = {
        "tl": batched_tl,
        "triton": TritonJitShim(),
        "min": _namespace_min,
        "max": _namespace_max,
        "range": range,
    }
    code = compile(source, filename=f"<lego-kernel-batched:{kernel_name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - generated by this package, not user input
    fn = namespace[kernel_name]
    _COMPILE_CACHE[key] = fn
    return fn


#: programs executed per batched pass; bounds peak memory at roughly
#: ``chunk * block_elements`` while keeping counters additive and the
#: program-major store order intact (chunks run in increasing id order)
PROGRAM_CHUNK = 8192


def launch_batched(
    kernel: Callable,
    grid3: tuple[int, int, int],
    kernel_args: Mapping[str, object],
    run_trace: KernelTrace | None,
    program_ids,
    sector_bytes: int,
) -> None:
    """Execute ``program_ids`` of the grid in vectorized batches.

    Counters accumulate into ``run_trace`` (which the caller owns) and
    device buffers are mutated in place, exactly as the per-program loop
    would have.  Raises when the kernel was not compiled through
    :func:`repro.minitriton.compile_kernel` (no attached source) or uses
    a construct the batched namespace cannot express — the caller falls
    back to the tree-walk interpreter.
    """
    source = getattr(kernel, "_lego_source", None)
    name = getattr(kernel, "_lego_name", None)
    if not source or not name:
        raise TypeError("kernel carries no source; batched execution unavailable")
    fn = _compile_batched(source, name)
    ids = np.asarray(list(program_ids), dtype=np.int64)
    wrapped = {
        key: _BatchedDeviceBuffer(value) if isinstance(value, DeviceBuffer) else value
        for key, value in kernel_args.items()
    }
    for start in range(0, ids.size, PROGRAM_CHUNK):
        chunk = ids[start:start + PROGRAM_CHUNK]
        pid0 = chunk % grid3[0]
        pid1 = (chunk // grid3[0]) % grid3[1]
        pid2 = chunk // (grid3[0] * grid3[1])
        batched_tl._begin((pid0, pid1, pid2), grid3, run_trace, sector_bytes)
        try:
            fn(**wrapped)
        finally:
            batched_tl._end()
